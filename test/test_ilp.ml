(* Tests for the ILP substrate: expressions, model audit, simplex on known
   LPs, branch & bound on known ILPs, brute-force cross-checks on random
   small models, LP-format output. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- Linexpr ------------------------------------------------------------- *)

let test_linexpr_algebra () =
  let open Ilp.Linexpr in
  let e = of_list [ (2, 1); (3, 0); (-2, 1); (1, 2) ] in
  Alcotest.(check (list (pair int int))) "collapse" [ (3, 0); (1, 2) ] (terms e);
  check_int "coef present" 3 (coef e 0);
  check_int "coef absent" 0 (coef e 5);
  let f = add (var 0) (scale 2 (var 2)) in
  Alcotest.(check (list (pair int int)))
    "sum" [ (4, 0); (3, 2) ] (terms (add e f));
  check_bool "zero" true (is_zero (sub e e));
  check_int "n_terms" 2 (n_terms e)

let test_linexpr_pp () =
  let open Ilp.Linexpr in
  let s = Format.asprintf "%a" (pp ()) (of_list [ (1, 0); (-2, 1); (1, 3) ]) in
  Alcotest.(check string) "render" "x0 - 2 x1 + x3" s

(* -- Model --------------------------------------------------------------- *)

let knapsack () =
  (* max 10a + 13b + 7c st 3a + 4b + 2c <= 6  ==  min -(...) *)
  let m = Ilp.Model.create ~name:"knap" () in
  let a = Ilp.Model.bool_var m "a" in
  let b = Ilp.Model.bool_var m "b" in
  let c = Ilp.Model.bool_var m "c" in
  Ilp.Model.add_le m
    (Ilp.Linexpr.of_list [ (3, a); (4, b); (2, c) ])
    6;
  Ilp.Model.set_objective m
    (Ilp.Linexpr.of_list [ (-10, a); (-13, b); (-7, c) ]);
  (m, a, b, c)

let test_model_check () =
  let m, _, _, _ = knapsack () in
  check_bool "feasible point" true (Ilp.Model.check m [| 1; 0; 1 |] = Ok ());
  check_bool "infeasible point" true
    (Result.is_error (Ilp.Model.check m [| 1; 1; 1 |]));
  check_bool "bad arity" true (Result.is_error (Ilp.Model.check m [| 1; 1 |]));
  check_bool "out of bounds" true
    (Result.is_error (Ilp.Model.check m [| 2; 0; 0 |]));
  check_int "objective" (-17) (Ilp.Model.objective_value m [| 1; 0; 1 |])

(* -- Simplex ------------------------------------------------------------- *)

let close what expected actual =
  Alcotest.(check (float 1e-5)) what expected actual

let test_simplex_basic () =
  (* min -x - 2y st x + y <= 4, x <= 3, y <= 2, x,y >= 0: opt at (2,2) = -6 *)
  let p =
    {
      Ilp.Simplex.n_vars = 2;
      lower = [| 0.0; 0.0 |];
      upper = [| 3.0; 2.0 |];
      objective = [| -1.0; -2.0 |];
      rows = [ (Ilp.Model.Le, [ (0, 1.0); (1, 1.0) ], 4.0) ];
    }
  in
  match Ilp.Simplex.solve p with
  | Ilp.Simplex.Optimal { objective; primal } ->
      close "objective" (-6.0) objective;
      close "x" 2.0 primal.(0);
      close "y" 2.0 primal.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_phase1 () =
  (* min x + y st x + y >= 3, x - y = 1, 0 <= x,y <= 10: opt (2,1) = 3 *)
  let p =
    {
      Ilp.Simplex.n_vars = 2;
      lower = [| 0.0; 0.0 |];
      upper = [| 10.0; 10.0 |];
      objective = [| 1.0; 1.0 |];
      rows =
        [
          (Ilp.Model.Ge, [ (0, 1.0); (1, 1.0) ], 3.0);
          (Ilp.Model.Eq, [ (0, 1.0); (1, -1.0) ], 1.0);
        ];
    }
  in
  match Ilp.Simplex.solve p with
  | Ilp.Simplex.Optimal { objective; primal } ->
      close "objective" 3.0 objective;
      close "x" 2.0 primal.(0);
      close "y" 1.0 primal.(1)
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_infeasible () =
  let p =
    {
      Ilp.Simplex.n_vars = 1;
      lower = [| 0.0 |];
      upper = [| 1.0 |];
      objective = [| 1.0 |];
      rows = [ (Ilp.Model.Ge, [ (0, 1.0) ], 2.0) ];
    }
  in
  check_bool "infeasible" true (Ilp.Simplex.solve p = Ilp.Simplex.Infeasible)

let test_simplex_unbounded () =
  let p =
    {
      Ilp.Simplex.n_vars = 2;
      lower = [| 0.0; 0.0 |];
      upper = [| infinity; infinity |];
      objective = [| -1.0; 0.0 |];
      rows = [ (Ilp.Model.Le, [ (0, 1.0); (1, -1.0) ], 1.0) ];
    }
  in
  check_bool "unbounded" true (Ilp.Simplex.solve p = Ilp.Simplex.Unbounded)

let test_simplex_relax_knapsack () =
  let m, _, _, _ = knapsack () in
  match Ilp.Simplex.relax m with
  | Ilp.Simplex.Optimal { objective; _ } ->
      (* LP optimum: c=1, a=1, b=1/4 (ratios 3.5, 3.33, 3.25): -20.25 *)
      close "lp bound" (-20.25) objective
  | _ -> Alcotest.fail "expected optimal"

(* -- Branch & bound ------------------------------------------------------ *)

let test_bb_knapsack () =
  let m, _, _, _ = knapsack () in
  let r = Ilp.Solver.solve m in
  check_bool "optimal" true (r.Ilp.Solver.status = Ilp.Solver.Optimal);
  check_int "objective (-20: b+c)" (-20)
    (Option.get r.Ilp.Solver.objective);
  match r.Ilp.Solver.solution with
  | Some x -> check_bool "b and c chosen" true (x.(1) = 1 && x.(2) = 1 && x.(0) = 0)
  | None -> Alcotest.fail "no solution"

let test_bb_assignment () =
  (* 3x3 assignment problem, cost matrix rows: [4 2 8; 4 3 7; 3 1 6].
     Optimum: x01 + x10 + x22? cost 2 + 4 + 6 = 12; alternative x02.. let the
     solver decide, optimal value is 12 (2,4,6) vs (4,3,6)=13, (8,3,3)=14;
     best is col order (1,0,2) -> 2+4+6 = 12. *)
  let cost = [| [| 4; 2; 8 |]; [| 4; 3; 7 |]; [| 3; 1; 6 |] |] in
  let m = Ilp.Model.create ~name:"assign" () in
  let x =
    Array.init 3 (fun i ->
        Array.init 3 (fun j ->
            Ilp.Model.bool_var m (Printf.sprintf "x%d%d" i j)))
  in
  for i = 0 to 2 do
    Ilp.Model.add_eq m
      (Ilp.Linexpr.sum (List.init 3 (fun j -> Ilp.Linexpr.var x.(i).(j))))
      1;
    Ilp.Model.add_eq m
      (Ilp.Linexpr.sum (List.init 3 (fun j -> Ilp.Linexpr.var x.(j).(i))))
      1
  done;
  Ilp.Model.set_objective m
    (Ilp.Linexpr.of_list
       (List.concat
          (List.init 3 (fun i ->
               List.init 3 (fun j -> (cost.(i).(j), x.(i).(j)))))));
  let r = Ilp.Solver.solve m in
  check_bool "optimal" true (r.Ilp.Solver.status = Ilp.Solver.Optimal);
  check_int "objective" 12 (Option.get r.Ilp.Solver.objective)

let test_bb_infeasible () =
  let m = Ilp.Model.create () in
  let a = Ilp.Model.bool_var m "a" in
  let b = Ilp.Model.bool_var m "b" in
  Ilp.Model.add_ge m (Ilp.Linexpr.of_list [ (1, a); (1, b) ]) 2;
  Ilp.Model.add_le m (Ilp.Linexpr.of_list [ (1, a); (1, b) ]) 1;
  let r = Ilp.Solver.solve m in
  check_bool "infeasible" true (r.Ilp.Solver.status = Ilp.Solver.Infeasible)

let test_bb_integer_vars () =
  (* min 3x + 4y st 2x + y >= 7, x + 3y >= 9, x,y in [0,10] integer.
     LP opt at intersection (2.4, 2.2); integer optimum: try x=3,y=2:
     2*3+2=8>=7, 3+6=9>=9, cost 17. x=2,y=3: 4+3=7, 2+9=11, cost 18.
     x=4,y=2 -> cost 20. x=3,y=2 = 17 wins; x=0,y=7 -> 28. *)
  let m = Ilp.Model.create () in
  let x = Ilp.Model.int_var m ~lb:0 ~ub:10 "x" in
  let y = Ilp.Model.int_var m ~lb:0 ~ub:10 "y" in
  Ilp.Model.add_ge m (Ilp.Linexpr.of_list [ (2, x); (1, y) ]) 7;
  Ilp.Model.add_ge m (Ilp.Linexpr.of_list [ (1, x); (3, y) ]) 9;
  Ilp.Model.set_objective m (Ilp.Linexpr.of_list [ (3, x); (4, y) ]);
  let r = Ilp.Solver.solve m in
  check_bool "optimal" true (r.Ilp.Solver.status = Ilp.Solver.Optimal);
  check_int "objective" 17 (Option.get r.Ilp.Solver.objective)

let test_bb_warm_start () =
  let m, _, _, _ = knapsack () in
  let opts =
    { Ilp.Solver.default with Ilp.Solver.warm_start = Some [| 0; 1; 1 |] }
  in
  let r = Ilp.Solver.solve ~options:opts m in
  check_bool "optimal" true (r.Ilp.Solver.status = Ilp.Solver.Optimal);
  check_int "objective" (-20) (Option.get r.Ilp.Solver.objective)

let test_bb_node_limit () =
  let m, _, _, _ = knapsack () in
  let opts = { Ilp.Solver.default with Ilp.Solver.node_limit = Some 1 } in
  let r = Ilp.Solver.solve ~options:opts m in
  check_bool "stopped early" true
    (r.Ilp.Solver.status = Ilp.Solver.Feasible
    || r.Ilp.Solver.status = Ilp.Solver.Unknown
    || r.Ilp.Solver.status = Ilp.Solver.Optimal (* tiny model may finish *))

let test_bb_equality_propagation () =
  (* sum of 5 binaries = 1 with costs; optimal picks cheapest. *)
  let m = Ilp.Model.create () in
  let xs = Array.init 5 (fun i -> Ilp.Model.bool_var m (Printf.sprintf "x%d" i)) in
  Ilp.Model.add_eq m
    (Ilp.Linexpr.sum (Array.to_list (Array.map Ilp.Linexpr.var xs)))
    1;
  Ilp.Model.set_objective m
    (Ilp.Linexpr.of_list (Array.to_list (Array.mapi (fun i x -> (10 - i, x)) xs)));
  let r = Ilp.Solver.solve m in
  check_int "cheapest" 6 (Option.get r.Ilp.Solver.objective)

let test_bb_edge_cases () =
  (* empty model: vacuously optimal at objective 0 *)
  let m = Ilp.Model.create () in
  let r = Ilp.Solver.solve m in
  check_bool "empty model optimal" true (r.Ilp.Solver.status = Ilp.Solver.Optimal);
  check_int "empty objective" 0 (Option.get r.Ilp.Solver.objective);
  (* unconstrained variable: sits at the bound its cost prefers *)
  let m = Ilp.Model.create () in
  let x = Ilp.Model.int_var m ~lb:(-3) ~ub:9 "x" in
  Ilp.Model.set_objective m (Ilp.Linexpr.var x);
  let r = Ilp.Solver.solve m in
  check_int "lower bound chosen" (-3) (Option.get r.Ilp.Solver.objective);
  (* constraint with empty expression: 0 <= -1 infeasible, 0 <= 3 redundant *)
  let m = Ilp.Model.create () in
  let _ = Ilp.Model.bool_var m "a" in
  Ilp.Model.add_le m Ilp.Linexpr.zero (-1);
  check_bool "0 <= -1 infeasible" true
    ((Ilp.Solver.solve m).Ilp.Solver.status = Ilp.Solver.Infeasible);
  let m = Ilp.Model.create () in
  let a = Ilp.Model.bool_var m "a" in
  Ilp.Model.add_le m Ilp.Linexpr.zero 3;
  Ilp.Model.set_objective m (Ilp.Linexpr.var a);
  check_int "0 <= 3 harmless" 0 (Option.get (Ilp.Solver.solve m).Ilp.Solver.objective)

let test_bb_negative_bounds () =
  (* integers spanning zero: min x + y st x - y >= -2, x,y in [-5,5]:
     optimum x=-5, y=-5 (0 >= -2 holds) -> -10 *)
  let m = Ilp.Model.create () in
  let x = Ilp.Model.int_var m ~lb:(-5) ~ub:5 "x" in
  let y = Ilp.Model.int_var m ~lb:(-5) ~ub:5 "y" in
  Ilp.Model.add_ge m (Ilp.Linexpr.of_list [ (1, x); (-1, y) ]) (-2);
  Ilp.Model.set_objective m (Ilp.Linexpr.of_list [ (1, x); (1, y) ]);
  let r = Ilp.Solver.solve m in
  check_bool "optimal" true (r.Ilp.Solver.status = Ilp.Solver.Optimal);
  check_int "objective" (-10) (Option.get r.Ilp.Solver.objective);
  (* tighter: x - y >= 2 forces y <= x - 2: optimum x=-3, y=-5 -> -8 *)
  let m = Ilp.Model.create () in
  let x = Ilp.Model.int_var m ~lb:(-5) ~ub:5 "x" in
  let y = Ilp.Model.int_var m ~lb:(-5) ~ub:5 "y" in
  Ilp.Model.add_ge m (Ilp.Linexpr.of_list [ (1, x); (-1, y) ]) 2;
  Ilp.Model.set_objective m (Ilp.Linexpr.of_list [ (1, x); (1, y) ]);
  check_int "objective tight" (-8)
    (Option.get (Ilp.Solver.solve m).Ilp.Solver.objective)

let test_simplex_equalities_only () =
  (* x + y = 3, x - y = 1 -> (2,1); minimize x *)
  let q =
    {
      Ilp.Simplex.n_vars = 2;
      lower = [| 0.0; 0.0 |];
      upper = [| 10.0; 10.0 |];
      objective = [| 1.0; 0.0 |];
      rows =
        [
          (Ilp.Model.Eq, [ (0, 1.0); (1, 1.0) ], 3.0);
          (Ilp.Model.Eq, [ (0, 1.0); (1, -1.0) ], 1.0);
        ];
    }
  in
  match Ilp.Simplex.solve q with
  | Ilp.Simplex.Optimal { objective; primal } ->
      close "x" 2.0 primal.(0);
      close "y" 1.0 primal.(1);
      close "obj" 2.0 objective
  | _ -> Alcotest.fail "expected optimal"

let test_simplex_no_rows () =
  let q =
    {
      Ilp.Simplex.n_vars = 2;
      lower = [| 1.0; 0.0 |];
      upper = [| 4.0; 2.0 |];
      objective = [| 1.0; -1.0 |];
      rows = [];
    }
  in
  match Ilp.Simplex.solve q with
  | Ilp.Simplex.Optimal { objective; _ } -> close "bounds only" (-1.0) objective
  | _ -> Alcotest.fail "expected optimal"

(* -- Brute-force cross-check on random models ---------------------------- *)

let gen_small_model =
  QCheck2.Gen.(
    let* n = int_range 2 8 in
    let* n_rows = int_range 1 6 in
    let* obj = list_size (return n) (int_range (-8) 8) in
    let* rows =
      list_size (return n_rows)
        (let* terms = list_size (return n) (int_range (-4) 4) in
         let* sense = oneofl [ Ilp.Model.Le; Ilp.Model.Ge; Ilp.Model.Eq ] in
         let* rhs = int_range (-4) 6 in
         return (terms, sense, rhs))
    in
    return (n, obj, rows))

let build_model (n, obj, rows) =
  let m = Ilp.Model.create ~name:"rand" () in
  let xs = Array.init n (fun i -> Ilp.Model.bool_var m (Printf.sprintf "x%d" i)) in
  List.iter
    (fun (terms, sense, rhs) ->
      let e =
        Ilp.Linexpr.of_list (List.mapi (fun i c -> (c, xs.(i))) terms)
      in
      (* Skip empty-expression equalities that are trivially (in)feasible;
         they are legal but uninteresting. *)
      Ilp.Model.add m e sense rhs)
    rows;
  Ilp.Model.set_objective m
    (Ilp.Linexpr.of_list (List.mapi (fun i c -> (c, xs.(i))) obj));
  m

let brute_force m =
  let n = Ilp.Model.n_vars m in
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun i -> (mask lsr i) land 1) in
    if Ilp.Model.check m x = Ok () then begin
      let obj = Ilp.Model.objective_value m x in
      match !best with
      | Some b when b <= obj -> ()
      | Some _ | None -> best := Some obj
    end
  done;
  !best

let prop_bb_matches_brute_force =
  QCheck2.Test.make ~name:"B&B = brute force on random 0-1 models" ~count:300
    gen_small_model (fun spec ->
      let m = build_model spec in
      let r = Ilp.Solver.solve m in
      match (brute_force m, r.Ilp.Solver.status) with
      | None, Ilp.Solver.Infeasible -> true
      | None, _ -> false
      | Some _, Ilp.Solver.Infeasible -> false
      | Some expect, Ilp.Solver.Optimal ->
          Option.get r.Ilp.Solver.objective = expect
      | Some _, (Ilp.Solver.Feasible | Ilp.Solver.Unknown) -> false)

let prop_bb_without_lp_matches =
  QCheck2.Test.make ~name:"B&B without LP matches brute force" ~count:200
    gen_small_model (fun spec ->
      let m = build_model spec in
      let opts = { Ilp.Solver.default with Ilp.Solver.lp = Ilp.Solver.Lp_never } in
      let r = Ilp.Solver.solve ~options:opts m in
      match (brute_force m, r.Ilp.Solver.status) with
      | None, Ilp.Solver.Infeasible -> true
      | None, _ -> false
      | Some _, Ilp.Solver.Infeasible -> false
      | Some expect, Ilp.Solver.Optimal ->
          Option.get r.Ilp.Solver.objective = expect
      | Some _, (Ilp.Solver.Feasible | Ilp.Solver.Unknown) -> false)

let prop_lp_is_lower_bound =
  QCheck2.Test.make ~name:"LP relaxation lower-bounds the ILP optimum"
    ~count:200 gen_small_model (fun spec ->
      let m = build_model spec in
      match (brute_force m, Ilp.Simplex.relax m) with
      | Some opt, Ilp.Simplex.Optimal { objective; _ } ->
          objective <= float_of_int opt +. 1e-6
      | None, _ -> true (* nothing to compare *)
      | Some _, Ilp.Simplex.Infeasible -> false
      | Some _, (Ilp.Simplex.Unbounded | Ilp.Simplex.Iteration_limit) -> true)

(* The node LP bound must never exceed the true 0-1 optimum of the
   subproblem: re-solve the warm instance under random bound fixings (as
   branch-and-bound does) and cross-check the LP objective — and the
   weak-duality fallback bound — against brute force restricted to the
   same fixings. *)
let prop_node_lp_bound_sound =
  QCheck2.Test.make ~name:"node LP bound lower-bounds the fixed subproblem"
    ~count:100
    QCheck2.Gen.(pair gen_small_model (int_range 0 1_000_000))
    (fun (spec, seed) ->
      let m = build_model spec in
      let n = Ilp.Model.n_vars m in
      let rng = Random.State.make [| seed |] in
      let lower = Array.make n 0 and upper = Array.make n 1 in
      for v = 0 to n - 1 do
        match Random.State.int rng 3 with
        | 0 ->
            lower.(v) <- 0;
            upper.(v) <- 0
        | 1 ->
            lower.(v) <- 1;
            upper.(v) <- 1
        | _ -> ()
      done;
      let restricted_opt =
        let best = ref None in
        for mask = 0 to (1 lsl n) - 1 do
          let x = Array.init n (fun i -> (mask lsr i) land 1) in
          let in_box = ref true in
          for i = 0 to n - 1 do
            if x.(i) < lower.(i) || x.(i) > upper.(i) then in_box := false
          done;
          let in_box = !in_box in
          if in_box && Ilp.Model.check m x = Ok () then begin
            let obj = Ilp.Model.objective_value m x in
            match !best with
            | Some b when b <= obj -> ()
            | Some _ | None -> best := Some obj
          end
        done;
        !best
      in
      match Ilp.Simplex.instance_of_model ~lower ~upper m with
      | None -> true
      | Some inst -> (
          let sound_dual =
            match (Ilp.Simplex.dual_bound inst, restricted_opt) with
            | Some d, Some opt -> d <= float_of_int opt +. 1e-6
            | _, _ -> true
          in
          sound_dual
          &&
          match (Ilp.Simplex.resolve inst, restricted_opt) with
          | Ilp.Simplex.Optimal { objective; _ }, Some opt ->
              objective <= float_of_int opt +. 1e-6
          | Ilp.Simplex.Optimal _, None ->
              (* LP feasible over an integer-infeasible box is fine *) true
          | Ilp.Simplex.Infeasible, Some _ -> false
          | Ilp.Simplex.Infeasible, None -> true
          | (Ilp.Simplex.Unbounded | Ilp.Simplex.Iteration_limit), _ -> true))

(* Reduced-cost fixing and probing are pruning heuristics driven by the
   incumbent cutoff; forcing node LPs at every depth exercises both, and
   the solver must still return the brute-force optimum. *)
let prop_rc_fixing_preserves_optimum =
  QCheck2.Test.make
    ~name:"deep node LPs + reduced-cost fixing keep the optimum" ~count:150
    gen_small_model (fun spec ->
      let m = build_model spec in
      let opts =
        { Ilp.Solver.default with Ilp.Solver.lp = Ilp.Solver.Lp_depth 64 }
      in
      let r = Ilp.Solver.solve ~options:opts m in
      match (brute_force m, r.Ilp.Solver.status) with
      | None, Ilp.Solver.Infeasible -> true
      | None, _ -> false
      | Some _, Ilp.Solver.Infeasible -> false
      | Some expect, Ilp.Solver.Optimal ->
          Option.get r.Ilp.Solver.objective = expect
          && r.Ilp.Solver.bound = expect
      | Some _, (Ilp.Solver.Feasible | Ilp.Solver.Unknown) -> false)

(* Cover and clique cuts are derived from the constraint rows alone, so
   they must not cut off any integer-feasible point (not merely the
   optimum). *)
let prop_root_cuts_preserve_feasible_set =
  QCheck2.Test.make ~name:"root cuts preserve the 0-1 feasible set"
    ~count:150 gen_small_model (fun spec ->
      let m = build_model spec in
      let m' = Ilp.Solver.with_root_cuts m in
      let n = Ilp.Model.n_vars m in
      let ok = ref true in
      for mask = 0 to (1 lsl n) - 1 do
        let x = Array.init n (fun i -> (mask lsr i) land 1) in
        if Ilp.Model.check m x = Ok () && Ilp.Model.check m' x <> Ok () then
          ok := false
      done;
      !ok)

(* -- Warm-started dual simplex ------------------------------------------- *)

(* Basis reuse across >= 1000 bound changes on one persistent instance per
   model: every warm dual-simplex re-solve must agree with a cold two-phase
   solve at the same bounds (status and objective). *)
let test_warm_matches_cold () =
  let rng = Random.State.make [| 42 |] in
  let resolves = ref 0 in
  let models = ref 0 in
  while !resolves < 1000 do
    incr models;
    let m = build_model (QCheck2.Gen.generate1 ~rand:rng gen_small_model) in
    match Ilp.Simplex.instance_of_model m with
    | None -> Alcotest.fail "bounded model must yield an instance"
    | Some inst ->
        let n = Ilp.Model.n_vars m in
        let lower = Array.make n 0 and upper = Array.make n 1 in
        for _ = 1 to 45 do
          let v = Random.State.int rng n in
          (match Random.State.int rng 3 with
          | 0 ->
              lower.(v) <- 0;
              upper.(v) <- 0
          | 1 ->
              lower.(v) <- 1;
              upper.(v) <- 1
          | _ ->
              lower.(v) <- 0;
              upper.(v) <- 1);
          Ilp.Simplex.set_bounds inst v ~lo:(float_of_int lower.(v))
            ~up:(float_of_int upper.(v));
          incr resolves;
          let warm = Ilp.Simplex.resolve inst in
          let cold = Ilp.Simplex.relax ~lower ~upper m in
          match (warm, cold) with
          | Ilp.Simplex.Optimal a, Ilp.Simplex.Optimal b ->
              Alcotest.(check (float 1e-4))
                (Printf.sprintf "objective (model %d, resolve %d)" !models
                   !resolves)
                b.objective a.objective
          | Ilp.Simplex.Infeasible, Ilp.Simplex.Infeasible -> ()
          | Ilp.Simplex.Iteration_limit, _ | _, Ilp.Simplex.Iteration_limit ->
              () (* inconclusive; instance stays usable *)
          | _ ->
              Alcotest.failf "warm/cold status mismatch (model %d, resolve %d)"
                !models !resolves
        done
  done;
  check_bool "exercised >= 1000 warm resolves" true (!resolves >= 1000)

(* -- Presolve ------------------------------------------------------------- *)

let test_presolve_detects_infeasible () =
  let m = Ilp.Model.create () in
  let a = Ilp.Model.bool_var m "a" in
  Ilp.Model.add_ge m (Ilp.Linexpr.var a) 2;
  let m', stats = Ilp.Presolve.strengthen m in
  check_bool "infeasible" true stats.Ilp.Presolve.infeasible;
  check_bool "solver agrees" true
    ((Ilp.Solver.solve m').Ilp.Solver.status = Ilp.Solver.Infeasible)

let test_presolve_drops_redundant () =
  let m = Ilp.Model.create () in
  let a = Ilp.Model.bool_var m "a" in
  let b = Ilp.Model.bool_var m "b" in
  Ilp.Model.add_le m (Ilp.Linexpr.of_list [ (1, a); (1, b) ]) 5;
  (* always true *)
  let stats = Ilp.Presolve.analyze m in
  check_int "dropped" 1 stats.Ilp.Presolve.dropped_rows

let test_presolve_fixes_variables () =
  let m = Ilp.Model.create () in
  let a = Ilp.Model.bool_var m "a" in
  let b = Ilp.Model.bool_var m "b" in
  Ilp.Model.add_ge m (Ilp.Linexpr.of_list [ (1, a); (1, b) ]) 2;
  (* both forced to 1 *)
  let stats = Ilp.Presolve.analyze m in
  check_int "fixed" 2 stats.Ilp.Presolve.fixed_vars

let test_presolve_strengthens () =
  (* 5a + b <= 5: maxact 6, d = 1, a_0 = 5 > 1: coefficient shrinks to d,
     giving a + b <= 1; feasible sets identical: (0,0),(0,1),(1,0). *)
  let m = Ilp.Model.create () in
  let a = Ilp.Model.bool_var m "a" in
  let b = Ilp.Model.bool_var m "b" in
  Ilp.Model.add_le m (Ilp.Linexpr.of_list [ (5, a); (1, b) ]) 5;
  let m', stats = Ilp.Presolve.strengthen m in
  check_int "strengthened" 1 stats.Ilp.Presolve.strengthened_coefs;
  let ok_points = [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |] ] in
  List.iter
    (fun x -> check_bool "still feasible" true (Ilp.Model.check m' x = Ok ()))
    ok_points;
  check_bool "still infeasible" true
    (Result.is_error (Ilp.Model.check m' [| 1; 1 |]))

let prop_presolve_preserves_feasible_set =
  QCheck2.Test.make ~name:"presolve preserves the 0-1 feasible set"
    ~count:300 gen_small_model (fun spec ->
      let m = build_model spec in
      let m', stats = Ilp.Presolve.strengthen m in
      let n = Ilp.Model.n_vars m in
      if stats.Ilp.Presolve.infeasible then brute_force m = None
      else begin
        let same = ref true in
        for mask = 0 to (1 lsl n) - 1 do
          let x = Array.init n (fun i -> (mask lsr i) land 1) in
          let f1 = Ilp.Model.check m x = Ok () in
          let f2 = Ilp.Model.check m' x = Ok () in
          if f1 <> f2 then same := false
        done;
        !same
      end)

let prop_presolve_preserves_optimum =
  QCheck2.Test.make ~name:"presolve preserves the optimum" ~count:200
    gen_small_model (fun spec ->
      let m = build_model spec in
      let m', _ = Ilp.Presolve.strengthen m in
      let r = Ilp.Solver.solve m in
      let r' = Ilp.Solver.solve m' in
      match (r.Ilp.Solver.status, r'.Ilp.Solver.status) with
      | Ilp.Solver.Infeasible, Ilp.Solver.Infeasible -> true
      | Ilp.Solver.Optimal, Ilp.Solver.Optimal ->
          r.Ilp.Solver.objective = r'.Ilp.Solver.objective
      | _, _ -> false)

(* -- LP format ----------------------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_lp_format () =
  let m, _, _, _ = knapsack () in
  let s = Ilp.Lp_format.to_string m in
  check_bool "minimize" true (contains s "Minimize");
  check_bool "subject to" true (contains s "Subject To");
  check_bool "binary section" true (contains s "Binary");
  check_bool "constraint" true (contains s "3 a + 4 b + 2 c <= 6");
  check_bool "end" true (contains s "End")

let test_lp_parse_knapsack () =
  let src =
    {|\ a comment
Maximize
 obj: 10 a + 13 b + 7 c
Subject To
 cap: 3 a + 4 b + 2 c <= 6
Binary
 a
 b
 c
End
|}
  in
  match Ilp.Lp_parse.of_string src with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok { Ilp.Lp_parse.model; negated } ->
      check_bool "negated" true negated;
      check_int "3 vars" 3 (Ilp.Model.n_vars model);
      let r = Ilp.Solver.solve model in
      check_int "objective (-20, maximize 20)" (-20)
        (Option.get r.Ilp.Solver.objective)

let test_lp_parse_bounds_forms () =
  let src =
    {|Minimize
 obj: x + y + z
Subject To
 c1: x + y + z >= 4
Bounds
 1 <= x <= 5
 y >= 2
 z = 1
General
 x
 y
 z
End
|}
  in
  match Ilp.Lp_parse.of_string src with
  | Error msg -> Alcotest.failf "parse: %s" msg
  | Ok { Ilp.Lp_parse.model; negated } ->
      check_bool "not negated" false negated;
      let r = Ilp.Solver.solve model in
      (* x >= 1, y >= 2, z = 1: already sums to 4 *)
      check_int "objective" 4 (Option.get r.Ilp.Solver.objective)

let test_lp_parse_errors () =
  List.iter
    (fun src ->
      check_bool
        (Printf.sprintf "reject %s" (String.sub src 0 (min 25 (String.length src))))
        true
        (Result.is_error (Ilp.Lp_parse.of_string src)))
    [
      "";
      "Bounds
 x <= 3
End";
      "Minimize obj: 1.5 x
Subject To
 c: x <= 1
End";
      "Minimize obj: x
Subject To
 c: x
End";
      "Minimize obj: x
Subject To
 c: x <= y
End";
    ]

let prop_lp_roundtrip =
  QCheck2.Test.make ~name:"LP write/parse/solve roundtrip" ~count:100
    gen_small_model (fun spec ->
      let m = build_model spec in
      let src = Ilp.Lp_format.to_string m in
      match Ilp.Lp_parse.of_string src with
      | Error _ -> false
      | Ok { Ilp.Lp_parse.model = m'; negated } ->
          (not negated)
          &&
          let r = Ilp.Solver.solve m in
          let r' = Ilp.Solver.solve m' in
          (match (r.Ilp.Solver.status, r'.Ilp.Solver.status) with
          | Ilp.Solver.Infeasible, Ilp.Solver.Infeasible -> true
          | Ilp.Solver.Optimal, Ilp.Solver.Optimal ->
              r.Ilp.Solver.objective = r'.Ilp.Solver.objective
          | _, _ -> false))

(* Structural round-trip: write/parse must reproduce the model itself, not
   only its optimum.  Variable indices may be permuted by the parser (it
   numbers by first appearance), so everything is compared through the
   name-based index mapping; zero coefficients are dropped on both sides
   since Linexpr canonicalizes them away. *)
let models_structurally_equal m m' =
  let n = Ilp.Model.n_vars m in
  let canon perm e =
    List.sort compare
      (List.filter_map
         (fun (c, v) -> if c = 0 then None else Some (c, perm v))
         (Ilp.Linexpr.terms e))
  in
  let id v = v in
  n = Ilp.Model.n_vars m'
  &&
  let by_name = Hashtbl.create 16 in
  for v = 0 to n - 1 do
    Hashtbl.replace by_name (Ilp.Model.var_name m' v) v
  done;
  let perm = Array.make n (-1) in
  let mapped = ref true in
  for v = 0 to n - 1 do
    match Hashtbl.find_opt by_name (Ilp.Model.var_name m v) with
    | Some v' -> perm.(v) <- v'
    | None -> mapped := false
  done;
  !mapped
  && (let ok = ref true in
      for v = 0 to n - 1 do
        if Ilp.Model.bounds m v <> Ilp.Model.bounds m' perm.(v) then
          ok := false
      done;
      !ok)
  && canon (fun v -> perm.(v)) (Ilp.Model.objective m)
     = canon id (Ilp.Model.objective m')
  &&
  let canon_constrs perm model =
    List.sort compare
      (Array.to_list
         (Array.map
            (fun (c : Ilp.Model.constr) ->
              (canon perm c.Ilp.Model.expr, c.Ilp.Model.sense, c.Ilp.Model.rhs))
            (Ilp.Model.constraints model)))
  in
  canon_constrs (fun v -> perm.(v)) m = canon_constrs id m'

let gen_mixed_model =
  (* like gen_small_model but with general integer variables too, so the
     round-trip exercises the Bounds and General sections *)
  QCheck2.Gen.(
    let* spec = gen_small_model in
    let* n_ints = int_range 0 3 in
    let* int_bounds =
      list_size (return n_ints)
        (let* lb = int_range (-5) 2 in
         let* w = int_range 0 6 in
         return (lb, lb + w))
    in
    return (spec, int_bounds))

let build_mixed_model (spec, int_bounds) =
  let m = build_model spec in
  List.iteri
    (fun i (lb, ub) ->
      ignore (Ilp.Model.int_var m ~lb ~ub (Printf.sprintf "y%d" i)))
    int_bounds;
  m

let prop_lp_roundtrip_structural =
  QCheck2.Test.make ~name:"LP write/parse reproduces the model structurally"
    ~count:300 gen_mixed_model (fun spec ->
      let m = build_mixed_model spec in
      match Ilp.Lp_parse.of_string (Ilp.Lp_format.to_string m) with
      | Error _ -> false
      | Ok { Ilp.Lp_parse.model = m'; negated } ->
          (not negated) && models_structurally_equal m m')

(* -- Pool ----------------------------------------------------------------- *)

let test_pool_map_matches_sequential () =
  let xs = List.init 40 Fun.id in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int))
    "parallel map = List.map" (List.map f xs)
    (Ilp.Pool.map ~jobs:4 f xs)

let test_pool_map_propagates_exception () =
  check_bool "raises" true
    (try
       ignore
         (Ilp.Pool.map ~jobs:3
            (fun x -> if x = 5 then failwith "boom" else x)
            (List.init 8 Fun.id));
       false
     with Failure msg -> msg = "boom")

let test_pool_submit_await () =
  let pool = Ilp.Pool.create ~jobs:2 in
  let t1 = Ilp.Pool.submit pool (fun () -> 6 * 7) in
  let t2 = Ilp.Pool.submit pool (fun () -> failwith "nope") in
  check_bool "t1" true (Ilp.Pool.await t1 = Ok 42);
  check_bool "t2" true
    (match Ilp.Pool.await t2 with
    | Error (Failure msg) -> msg = "nope"
    | _ -> false);
  Ilp.Pool.shutdown pool;
  check_bool "submit after shutdown rejected" true
    (try
       ignore (Ilp.Pool.submit pool (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_pool_cancellation () =
  let pool = Ilp.Pool.create ~jobs:1 in
  let token = Atomic.make false in
  let task =
    Ilp.Pool.submit ~cancel:token pool (fun () ->
        (* a cooperative workload: spin until the token flips (bounded so a
           cancellation bug fails the test instead of hanging it) *)
        let i = ref 0 in
        while (not (Atomic.get token)) && !i < 2_000_000_000 do
          incr i
        done;
        if Atomic.get token then "cancelled" else "ran to completion")
  in
  Ilp.Pool.cancel task;
  check_bool "observed the token" true
    (Ilp.Pool.await task = Ok "cancelled");
  Ilp.Pool.shutdown pool

let test_solver_stop_token () =
  (* a pre-set stop token halts the search at the first limit check *)
  let m, _, _, _ = knapsack () in
  let stop = Atomic.make true in
  let r =
    Ilp.Solver.solve
      ~options:{ Ilp.Solver.default with Ilp.Solver.stop = Some stop }
      m
  in
  check_bool "no proof claimed" true
    (r.Ilp.Solver.status = Ilp.Solver.Unknown
    || r.Ilp.Solver.status = Ilp.Solver.Feasible)

(* -- Portfolio ------------------------------------------------------------ *)

let test_portfolio_knapsack () =
  let m, _, _, _ = knapsack () in
  let { Ilp.Portfolio.outcome; outcomes; _ } =
    Ilp.Portfolio.solve
      ~configs:(Ilp.Portfolio.default_configs Ilp.Solver.default)
      m
  in
  check_int "three members" 3 (List.length outcomes);
  check_bool "optimal" true (outcome.Ilp.Solver.status = Ilp.Solver.Optimal);
  check_int "objective (-20: b+c)" (-20)
    (Option.get outcome.Ilp.Solver.objective);
  check_int "bound = objective" (-20) outcome.Ilp.Solver.bound

let prop_portfolio_matches_brute_force =
  QCheck2.Test.make ~name:"portfolio = brute force on random 0-1 models"
    ~count:60 gen_small_model (fun spec ->
      let m = build_model spec in
      let { Ilp.Portfolio.outcome = r; _ } =
        Ilp.Portfolio.solve
          ~configs:(Ilp.Portfolio.default_configs Ilp.Solver.default)
          m
      in
      match (brute_force m, r.Ilp.Solver.status) with
      | None, Ilp.Solver.Infeasible -> true
      | None, _ -> false
      | Some _, Ilp.Solver.Infeasible -> false
      | Some expect, Ilp.Solver.Optimal ->
          Option.get r.Ilp.Solver.objective = expect
      | Some _, (Ilp.Solver.Feasible | Ilp.Solver.Unknown) -> false)

let test_lp_format_sanitize () =
  let m = Ilp.Model.create () in
  let _ = Ilp.Model.bool_var m "x[1,2]" in
  let _ = Ilp.Model.int_var m ~lb:(-3) ~ub:5 "0weird name" in
  Ilp.Model.set_objective m (Ilp.Linexpr.var 0);
  let s = Ilp.Lp_format.to_string m in
  check_bool "sanitized name used" true (contains s "x_1_2_");
  check_bool "general section" true (contains s "General")

(* -- Symmetry ------------------------------------------------------------- *)

(* A random model with a planted symmetric column group: [g] extra boolean
   variables that carry the same coefficient in every row and in the
   objective, so any permutation of them is a model automorphism. *)
let gen_planted_symmetric =
  QCheck2.Gen.(pair gen_small_model (int_range 2 3))

let build_planted_model ((n, obj, rows), g) =
  let m = Ilp.Model.create ~name:"planted" () in
  let xs =
    Array.init n (fun i -> Ilp.Model.bool_var m (Printf.sprintf "x%d" i))
  in
  let ys =
    Array.init g (fun i -> Ilp.Model.bool_var m (Printf.sprintf "y%d" i))
  in
  List.iter
    (fun (terms, sense, rhs) ->
      let shared = match terms with c :: _ -> c | [] -> 1 in
      let e =
        Ilp.Linexpr.of_list
          (List.mapi (fun i c -> (c, xs.(i))) terms
          @ List.map (fun y -> (shared, y)) (Array.to_list ys))
      in
      Ilp.Model.add m e sense rhs)
    rows;
  let shared_obj = match obj with c :: _ -> c | [] -> 1 in
  Ilp.Model.set_objective m
    (Ilp.Linexpr.of_list
       (List.mapi (fun i c -> (c, xs.(i))) obj
       @ List.map (fun y -> (shared_obj, y)) (Array.to_list ys)));
  (m, ys)

let prop_symmetry_preserves_optimum =
  QCheck2.Test.make
    ~name:"lex rows + orbital fixing preserve the optimum (planted orbits)"
    ~count:200 gen_planted_symmetric (fun spec ->
      let m, _ = build_planted_model spec in
      let r = Ilp.Solver.solve m in
      let plain =
        Ilp.Solver.solve
          ~options:{ Ilp.Solver.default with Ilp.Solver.sym = false }
          m
      in
      r.Ilp.Solver.orbits >= 1
      && r.Ilp.Solver.status = plain.Ilp.Solver.status
      &&
      match (brute_force m, r.Ilp.Solver.status) with
      | None, Ilp.Solver.Infeasible -> true
      | Some expect, Ilp.Solver.Optimal ->
          Option.get r.Ilp.Solver.objective = expect
      | _ -> false)

let prop_trusted_orbits_preserve_optimum =
  QCheck2.Test.make
    ~name:"solver-trusted verified orbits preserve the optimum" ~count:200
    gen_planted_symmetric (fun spec ->
      let m, ys = build_planted_model spec in
      let orbits =
        Ilp.Symmetry.filter_verified m [ Ilp.Symmetry.Scalar ys ]
      in
      (* the planted group is symmetric by construction *)
      List.length orbits = 1
      &&
      let r =
        Ilp.Solver.solve
          ~options:{ Ilp.Solver.default with Ilp.Solver.orbits } m
      in
      match (brute_force m, r.Ilp.Solver.status) with
      | None, Ilp.Solver.Infeasible -> true
      | Some expect, Ilp.Solver.Optimal ->
          Option.get r.Ilp.Solver.objective = expect
      | _ -> false)

let test_symmetry_detects_planted () =
  let m, ys = build_planted_model ((3, [ 2; -1; 3 ], [ ([ 1; 2; -1 ], Ilp.Model.Le, 3) ]), 3) in
  let orbits = Ilp.Symmetry.detect m in
  (* some detected orbit must contain the whole planted group *)
  let covers o =
    let vars = Ilp.Symmetry.vars o in
    Array.for_all (fun y -> List.mem y vars) ys
  in
  check_bool "planted group detected" true (List.exists covers orbits)

(* -- Work-stealing parallel search ---------------------------------------- *)

let test_deques () =
  let d = Ilp.Pool.Deques.create ~owners:2 in
  check_int "owners" 2 (Ilp.Pool.Deques.owners d);
  Ilp.Pool.Deques.push d ~owner:0 1;
  Ilp.Pool.Deques.push d ~owner:0 2;
  Ilp.Pool.Deques.push d ~owner:0 3;
  check_bool "pop is LIFO" true (Ilp.Pool.Deques.pop d ~owner:0 = Some 3);
  check_bool "steal takes the oldest" true
    (Ilp.Pool.Deques.steal d ~thief:1 = Some (1, 0));
  check_bool "owner keeps the rest" true
    (Ilp.Pool.Deques.pop d ~owner:0 = Some 2);
  check_bool "empty pop" true (Ilp.Pool.Deques.pop d ~owner:0 = None);
  check_bool "empty steal" true (Ilp.Pool.Deques.steal d ~thief:1 = None);
  check_bool "thief never steals from itself" true
    (Ilp.Pool.Deques.push d ~owner:1 9;
     Ilp.Pool.Deques.steal d ~thief:1 = None);
  check_bool "other thief does" true
    (Ilp.Pool.Deques.steal d ~thief:0 = Some (9, 1))

let prop_parallel_matches_brute_force =
  QCheck2.Test.make
    ~name:"work-stealing solve = brute force, identical across jobs"
    ~count:60 gen_small_model (fun spec ->
      let m = build_model spec in
      let runs =
        List.map (fun jobs -> Ilp.Solver.solve_parallel ~jobs m) [ 1; 2; 4 ]
      in
      let r = List.hd runs in
      List.for_all
        (fun (r' : Ilp.Solver.outcome) ->
          r'.Ilp.Solver.status = r.Ilp.Solver.status
          && r'.Ilp.Solver.objective = r.Ilp.Solver.objective
          && r'.Ilp.Solver.solution = r.Ilp.Solver.solution)
        runs
      &&
      match (brute_force m, r.Ilp.Solver.status) with
      | None, Ilp.Solver.Infeasible -> true
      | Some expect, Ilp.Solver.Optimal ->
          Option.get r.Ilp.Solver.objective = expect
      | _ -> false)

(* -- Flat kernel cross-checks --------------------------------------------- *)

(* Devex and Dantzig leaving-row rules must land on the same LP optimum,
   both on the cold first solve and on warm dual re-solves under the kind
   of bound fixings branch-and-bound performs. *)
let prop_devex_matches_dantzig =
  QCheck2.Test.make ~name:"devex = Dantzig LP optimum (cold and warm)"
    ~count:200
    QCheck2.Gen.(pair gen_small_model (int_range 0 1_000_000))
    (fun (spec, seed) ->
      let m = build_model spec in
      let n = Ilp.Model.n_vars m in
      let agree ra rb =
        match (ra, rb) with
        | ( Ilp.Simplex.Optimal { objective = oa; _ },
            Ilp.Simplex.Optimal { objective = ob; _ } ) ->
            abs_float (oa -. ob) <= 1e-6
        | Ilp.Simplex.Infeasible, Ilp.Simplex.Infeasible -> true
        | Ilp.Simplex.Unbounded, Ilp.Simplex.Unbounded -> true
        | Ilp.Simplex.Iteration_limit, _ | _, Ilp.Simplex.Iteration_limit ->
            true (* no claim made *)
        | _ -> false
      in
      match
        ( Ilp.Simplex.instance_of_model ~pricing:Ilp.Simplex.Dantzig m,
          Ilp.Simplex.instance_of_model ~pricing:Ilp.Simplex.Devex m )
      with
      | None, None -> true
      | Some a, Some b ->
          agree (Ilp.Simplex.resolve a) (Ilp.Simplex.resolve b)
          &&
          let rng = Random.State.make [| seed |] in
          let ok = ref true in
          for _ = 1 to 4 do
            let v = Random.State.int rng n in
            let x = float_of_int (Random.State.int rng 2) in
            Ilp.Simplex.set_bounds a v ~lo:x ~up:x;
            Ilp.Simplex.set_bounds b v ~lo:x ~up:x;
            if not (agree (Ilp.Simplex.resolve a) (Ilp.Simplex.resolve b))
            then ok := false
          done;
          !ok
      | _ -> false)

(* The flat CSR kernel's incremental minimal activities must equal an
   independent recomputation from the boxed model: normalize exactly as
   the solver does (Le as-is, Ge negated, Eq split positive-then-negated)
   and fold each row's min activity directly from the bounds. *)
let prop_flat_min_activities =
  QCheck2.Test.make
    ~name:"flat min-activities = boxed recomputation under random fixings"
    ~count:300
    QCheck2.Gen.(pair gen_small_model (int_range 0 1_000_000))
    (fun (spec, seed) ->
      let m = build_model spec in
      let n = Ilp.Model.n_vars m in
      let rng = Random.State.make [| seed |] in
      let lower = Array.make n 0 and upper = Array.make n 1 in
      for v = 0 to n - 1 do
        match Random.State.int rng 3 with
        | 0 -> upper.(v) <- 0
        | 1 -> lower.(v) <- 1
        | _ -> ()
      done;
      let min_activity terms =
        List.fold_left
          (fun acc (c, v) ->
            acc + if c > 0 then c * lower.(v) else c * upper.(v))
          0 terms
      in
      let expect =
        Array.of_list
          (List.concat_map
             (fun (c : Ilp.Model.constr) ->
               let terms = Ilp.Linexpr.terms c.Ilp.Model.expr in
               let neg = List.map (fun (a, v) -> (-a, v)) terms in
               match c.Ilp.Model.sense with
               | Ilp.Model.Le -> [ min_activity terms ]
               | Ilp.Model.Ge -> [ min_activity neg ]
               | Ilp.Model.Eq -> [ min_activity terms; min_activity neg ])
             (Array.to_list (Ilp.Model.constraints m)))
      in
      Ilp.Solver.row_min_activities ~lower ~upper m = expect)

(* The optimum must be invariant to both the pricing rule and the worker
   count; within one pricing rule the reported solution must be identical
   across jobs (first-found determinism). *)
let prop_pricing_and_jobs_invariant =
  QCheck2.Test.make
    ~name:"optimum invariant to pricing rule and worker count" ~count:60
    gen_small_model (fun spec ->
      let m = build_model spec in
      let run pricing jobs =
        Ilp.Solver.solve_parallel
          ~options:{ Ilp.Solver.default with Ilp.Solver.pricing }
          ~jobs m
      in
      let dv1 = run Ilp.Simplex.Devex 1 in
      let dv3 = run Ilp.Simplex.Devex 3 in
      let da1 = run Ilp.Simplex.Dantzig 1 in
      let da3 = run Ilp.Simplex.Dantzig 3 in
      dv1.Ilp.Solver.status = da1.Ilp.Solver.status
      && dv1.Ilp.Solver.objective = da1.Ilp.Solver.objective
      && dv3.Ilp.Solver.status = dv1.Ilp.Solver.status
      && dv3.Ilp.Solver.objective = dv1.Ilp.Solver.objective
      && dv3.Ilp.Solver.solution = dv1.Ilp.Solver.solution
      && da3.Ilp.Solver.status = da1.Ilp.Solver.status
      && da3.Ilp.Solver.objective = da1.Ilp.Solver.objective
      && da3.Ilp.Solver.solution = da1.Ilp.Solver.solution
      &&
      match (brute_force m, dv1.Ilp.Solver.status) with
      | None, Ilp.Solver.Infeasible -> true
      | Some expect, Ilp.Solver.Optimal ->
          Option.get dv1.Ilp.Solver.objective = expect
      | _ -> false)

(* -- Stats & trace ------------------------------------------------------- *)

(* The 3x3 assignment model from test_bb_assignment, as a builder. *)
let assignment_model () =
  let cost = [| [| 4; 2; 8 |]; [| 4; 3; 7 |]; [| 3; 1; 6 |] |] in
  let m = Ilp.Model.create ~name:"assign" () in
  let x =
    Array.init 3 (fun i ->
        Array.init 3 (fun j ->
            Ilp.Model.bool_var m (Printf.sprintf "x%d%d" i j)))
  in
  for i = 0 to 2 do
    Ilp.Model.add_eq m
      (Ilp.Linexpr.sum (List.init 3 (fun j -> Ilp.Linexpr.var x.(i).(j))))
      1;
    Ilp.Model.add_eq m
      (Ilp.Linexpr.sum (List.init 3 (fun j -> Ilp.Linexpr.var x.(j).(i))))
      1
  done;
  Ilp.Model.set_objective m
    (Ilp.Linexpr.of_list
       (List.concat
          (List.init 3 (fun i ->
               List.init 3 (fun j -> (cost.(i).(j), x.(i).(j)))))));
  m

(* Disjoint odd cycles: maximise the stable set.  The LP relaxation is
   half-integral on every cycle, and neither cover nor clique cuts close
   the gap, so the search genuinely branches — enough tree to populate
   the parallel frontier. *)
let odd_cycles_model ~cycles ~len () =
  let m = Ilp.Model.create ~name:"odd-cycles" () in
  let x =
    Array.init cycles (fun c ->
        Array.init len (fun i ->
            Ilp.Model.bool_var m (Printf.sprintf "c%dv%d" c i)))
  in
  for c = 0 to cycles - 1 do
    for i = 0 to len - 1 do
      Ilp.Model.add_le m
        Ilp.Linexpr.(add (var x.(c).(i)) (var x.(c).((i + 1) mod len)))
        1
    done
  done;
  (* minimise the negated size: the solver minimises *)
  Ilp.Model.set_objective m
    (Ilp.Linexpr.of_list
       (List.concat
          (List.init cycles (fun c ->
               List.init len (fun i -> (-1, x.(c).(i)))))));
  m

let test_stats_sequential () =
  let quiet = Ilp.Solver.solve (assignment_model ()) in
  check_bool "stats off by default" true (quiet.Ilp.Solver.stats = None);
  let options = { Ilp.Solver.default with Ilp.Solver.stats = true } in
  let r = Ilp.Solver.solve ~options (assignment_model ()) in
  check_bool "stats collection changes nothing" true
    (r.Ilp.Solver.status = quiet.Ilp.Solver.status
    && r.Ilp.Solver.objective = quiet.Ilp.Solver.objective
    && r.Ilp.Solver.nodes = quiet.Ilp.Solver.nodes);
  match r.Ilp.Solver.stats with
  | None -> Alcotest.fail "options.stats = true returned no stats"
  | Some st ->
      check_int "depth histogram sums to the node count"
        r.Ilp.Solver.nodes (Ilp.Stats.total_nodes st);
      check_bool "phases are non-negative" true
        (List.for_all (fun (_, s) -> s >= 0.0) (Ilp.Stats.phases st));
      check_bool "accounted time within wall clock (plus timer noise)" true
        (Ilp.Stats.accounted_s st <= r.Ilp.Solver.time_s +. 0.05);
      check_bool "incumbent curve ends at the optimum" true
        (match Ilp.Stats.primal_progress st with
        | [] -> false
        | curve ->
            let _, _, obj = List.nth curve (List.length curve - 1) in
            Some obj = r.Ilp.Solver.objective)

let test_stats_parallel_jobs_invariant () =
  let options = { Ilp.Solver.default with Ilp.Solver.stats = true } in
  let run jobs =
    Ilp.Solver.solve_parallel ~options ~jobs
      (odd_cycles_model ~cycles:4 ~len:9 ())
  in
  let r1 = run 1 and r4 = run 4 in
  let s1 = Option.get r1.Ilp.Solver.stats in
  let s4 = Option.get r4.Ilp.Solver.stats in
  check_bool "status/objective/solution identical" true
    (r1.Ilp.Solver.status = r4.Ilp.Solver.status
    && r1.Ilp.Solver.objective = r4.Ilp.Solver.objective
    && r1.Ilp.Solver.solution = r4.Ilp.Solver.solution);
  check_int "node count identical across jobs" r1.Ilp.Solver.nodes
    r4.Ilp.Solver.nodes;
  check_int "hist sum = nodes (jobs=1)" r1.Ilp.Solver.nodes
    (Ilp.Stats.total_nodes s1);
  check_int "hist sum = nodes (jobs=4)" r4.Ilp.Solver.nodes
    (Ilp.Stats.total_nodes s4);
  check_bool "depth histograms identical" true
    (Ilp.Stats.max_depth s1 = Ilp.Stats.max_depth s4
    &&
    let h1 = s1.Ilp.Stats.depth_hist and h4 = s4.Ilp.Stats.depth_hist in
    let len = max (Array.length h1) (Array.length h4) in
    let get h d = if d < Array.length h then h.(d) else 0 in
    List.for_all
      (fun d -> get h1 d = get h4 d)
      (List.init len (fun d -> d)));
  check_int "orbit fixings identical" s1.Ilp.Stats.orbit_fixings
    s4.Ilp.Stats.orbit_fixings;
  check_int "cuts generated identical" s1.Ilp.Stats.cuts_generated
    s4.Ilp.Stats.cuts_generated;
  check_int "cuts kept identical" s1.Ilp.Stats.cuts_kept
    s4.Ilp.Stats.cuts_kept;
  check_int "subtree count identical" s1.Ilp.Stats.subtrees
    s4.Ilp.Stats.subtrees;
  check_bool "the frontier actually spawned subtrees" true
    (s4.Ilp.Stats.subtrees > 0);
  check_int "workers recorded" 4 s4.Ilp.Stats.workers

(* Synthetic stats records with integer-valued floats, so float addition
   is exact and merge associativity can be checked with (=). *)
let mk_stats ints =
  let a = Array.of_list ints in
  let get i =
    if Array.length a = 0 then 0 else abs a.(i mod Array.length a) mod 100
  in
  let st = Ilp.Stats.create () in
  st.Ilp.Stats.presolve_s <- float_of_int (get 0);
  st.Ilp.Stats.cuts_s <- float_of_int (get 1);
  st.Ilp.Stats.search_s <- float_of_int (get 2);
  st.Ilp.Stats.lp_s <- float_of_int (get 3);
  st.Ilp.Stats.probe_s <- float_of_int (get 4);
  st.Ilp.Stats.cut_rounds <- get 5;
  st.Ilp.Stats.cuts_kept <- get 6;
  st.Ilp.Stats.prop_fixpoints <- get 7;
  st.Ilp.Stats.prop_ticks <- get 8;
  st.Ilp.Stats.probe_trials <- get 9;
  st.Ilp.Stats.probe_hits <- get 10;
  st.Ilp.Stats.lp_resolves <- get 11;
  st.Ilp.Stats.lp_warm <- get 12;
  st.Ilp.Stats.rc_fixings <- get 13;
  st.Ilp.Stats.orbit_fixings <- get 14;
  st.Ilp.Stats.subtrees <- get 15;
  st.Ilp.Stats.steals <- get 16;
  for d = 0 to get 17 mod 8 do
    Ilp.Stats.node st ~depth:d
  done;
  Ilp.Stats.incumbent st
    ~time_s:(float_of_int (get 18))
    ~nodes:(get 19) ~objective:(get 20);
  st

(* Histogram arrays may carry trailing zeros of different lengths, so
   compare stats records field-wise with a padded histogram. *)
let stats_eq (a : Ilp.Stats.t) (b : Ilp.Stats.t) =
  let hist_eq =
    let la = Array.length a.Ilp.Stats.depth_hist in
    let lb = Array.length b.Ilp.Stats.depth_hist in
    let get (h : int array) d = if d < Array.length h then h.(d) else 0 in
    List.for_all
      (fun d -> get a.Ilp.Stats.depth_hist d = get b.Ilp.Stats.depth_hist d)
      (List.init (max la lb) (fun d -> d))
  in
  hist_eq
  && { a with Ilp.Stats.depth_hist = [||] }
     = { b with Ilp.Stats.depth_hist = [||] }

let gen_stats_ints = QCheck2.Gen.(list_size (int_range 1 24) (int_range 0 99))

let prop_stats_merge_commutative =
  QCheck2.Test.make ~name:"Stats.merge is commutative" ~count:200
    QCheck2.Gen.(pair gen_stats_ints gen_stats_ints)
    (fun (xs, ys) ->
      let a = mk_stats xs and b = mk_stats ys in
      stats_eq (Ilp.Stats.merge a b) (Ilp.Stats.merge b a))

let prop_stats_merge_associative =
  QCheck2.Test.make ~name:"Stats.merge is associative" ~count:200
    QCheck2.Gen.(triple gen_stats_ints gen_stats_ints gen_stats_ints)
    (fun (xs, ys, zs) ->
      let a = mk_stats xs and b = mk_stats ys and c = mk_stats zs in
      stats_eq
        (Ilp.Stats.merge a (Ilp.Stats.merge b c))
        (Ilp.Stats.merge (Ilp.Stats.merge a b) c))

let test_trace_ring () =
  let ring = Ilp.Trace.ring 100_000 in
  let options = { Ilp.Solver.default with Ilp.Solver.trace = Some ring } in
  let r = Ilp.Solver.solve ~options (assignment_model ()) in
  let events = List.map snd (Ilp.Trace.events ring) in
  let nodes =
    List.length
      (List.filter (function Ilp.Trace.Node _ -> true | _ -> false) events)
  in
  check_int "one Node event per search node" r.Ilp.Solver.nodes nodes;
  check_bool "an Incumbent event carries the optimum" true
    (List.exists
       (function
         | Ilp.Trace.Incumbent { objective; _ } ->
             Some objective = r.Ilp.Solver.objective
         | _ -> false)
       events);
  check_bool "timestamps are monotone non-decreasing" true
    (let ts = List.map fst (Ilp.Trace.events ring) in
     List.for_all2 (fun a b -> a <= b)
       (List.filteri (fun i _ -> i < List.length ts - 1) ts)
       (List.tl ts))

let test_trace_jsonl () =
  let path = Filename.temp_file "ilp_trace" ".jsonl" in
  let sink = Ilp.Trace.file path in
  let options = { Ilp.Solver.default with Ilp.Solver.trace = Some sink } in
  let r = Ilp.Solver.solve ~options (assignment_model ()) in
  Ilp.Trace.close sink;
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Sys.remove path;
  check_bool "one JSONL line per event, at least one per node" true
    (List.length lines >= r.Ilp.Solver.nodes);
  check_bool "every line is a {\"t\":...} object" true
    (List.for_all
       (fun l ->
         String.length l > 6
         && String.sub l 0 5 = "{\"t\":"
         && l.[String.length l - 1] = '}')
       lines)

(* -- Replay -------------------------------------------------------------- *)

(* Histograms of different lengths must merge as if zero-padded: the two
   QCheck merge laws above exercise this shape only by accident, so pin
   it explicitly (including the empty [create ()] histogram). *)
let test_stats_merge_unequal_hist () =
  let a = Ilp.Stats.create () and b = Ilp.Stats.create () in
  Ilp.Stats.node a ~depth:0;
  Ilp.Stats.node a ~depth:2;
  Ilp.Stats.node b ~depth:7;
  let m = Ilp.Stats.merge a b in
  check_int "total nodes" 3 (Ilp.Stats.total_nodes m);
  check_int "max depth" 7 (Ilp.Stats.max_depth m);
  check_int "depth 0 kept" 1 m.Ilp.Stats.depth_hist.(0);
  check_int "depth 2 kept" 1 m.Ilp.Stats.depth_hist.(2);
  check_int "short side zero-padded" 0 m.Ilp.Stats.depth_hist.(5);
  check_int "depth 7 kept" 1 m.Ilp.Stats.depth_hist.(7);
  let m' = Ilp.Stats.merge (Ilp.Stats.create ()) m in
  check_int "empty histogram is a unit" 3 (Ilp.Stats.total_nodes m');
  check_int "empty histogram keeps depth" 7 (Ilp.Stats.max_depth m')

(* [Trace.events] only means something on a ring; on a write-through sink
   it must refuse loudly (and leave the sink usable: the mutex is
   released before the raise). *)
let test_trace_events_raises_on_file_sink () =
  let path = Filename.temp_file "ilp_trace" ".jsonl" in
  let sink = Ilp.Trace.file path in
  let raised =
    try
      ignore (Ilp.Trace.events sink);
      false
    with Invalid_argument _ -> true
  in
  check_bool "events on a file sink raises" true raised;
  Ilp.Trace.emit sink ~time_s:0.5 (Ilp.Trace.Message "still alive");
  Ilp.Trace.close sink;
  (match Ilp.Replay.of_file path with
  | Ok [ (_, Ilp.Trace.Message "still alive") ] -> ()
  | Ok evs -> Alcotest.failf "unexpected events after raise: %d" (List.length evs)
  | Error msg -> Alcotest.failf "sink unusable after raise: %s" msg);
  Sys.remove path

(* Every [Trace.event] constructor, with payloads covering negatives,
   [max_int] (a pruned-empty node's bound — must round-trip bit-exactly,
   which rules out any float path in the parser) and messages that need
   every escape class. *)
let gen_trace_event =
  let open QCheck2.Gen in
  let nat = int_range 0 5_000_000 in
  let bound = oneof [ int_range (-10_000) 10_000; return max_int ] in
  let reason =
    oneofl
      [
        Ilp.Trace.Cutoff;
        Ilp.Trace.Probed;
        Ilp.Trace.Lp_infeasible;
        Ilp.Trace.Lp_bound;
      ]
  in
  let message =
    string_size (int_range 0 30)
      ~gen:
        (oneofl
           [ 'a'; 'Z'; '0'; ' '; '"'; '\\'; '\n'; '\t'; '\r'; '\x01'; '\x1f' ])
  in
  oneof
    [
      map
        (fun ((depth, nodes), (var, value), bound) ->
          Ilp.Trace.Node { depth; nodes; var; value; bound })
        (triple
           (pair (int_range 0 500) nat)
           (pair (int_range (-1) 2000) (int_range (-50) 50))
           bound);
      map
        (fun (depth, reason, (bound, nodes)) ->
          Ilp.Trace.Prune { depth; reason; bound; nodes })
        (triple (int_range 0 500) reason (pair bound nat));
      map (fun (bound, nodes) -> Ilp.Trace.Bound { bound; nodes }) (pair bound nat);
      map
        (fun (objective, nodes) -> Ilp.Trace.Incumbent { objective; nodes })
        (pair (int_range (-10_000) 10_000) nat);
      map
        (fun (round, cuts) -> Ilp.Trace.Cut_round { round; cuts })
        (pair (int_range 0 50) (int_range 0 500));
      map
        (fun (id, depth) -> Ilp.Trace.Subtree { id; depth })
        (pair nat (int_range 0 500));
      map
        (fun (thief, victim) -> Ilp.Trace.Steal { thief; victim })
        (pair (int_range 0 63) (int_range 0 63));
      map
        (fun (pivots, (iters, refactors)) ->
          Ilp.Trace.Lp { pivots; iters; refactors })
        (pair nat (pair nat nat));
      map (fun s -> Ilp.Trace.Message s) message;
    ]

let prop_trace_jsonl_roundtrip =
  QCheck2.Test.make ~name:"Replay.event_of_line inverts Trace.jsonl_line"
    ~count:1000
    (* microsecond ticks: %.6f renders them exactly, so the parse must be
       an identity and render/parse/render a fixpoint *)
    QCheck2.Gen.(pair (int_range 0 1_000_000_000) gen_trace_event)
    (fun (us, ev) ->
      let time_s = float_of_int us /. 1e6 in
      let line = Ilp.Trace.jsonl_line ~time_s ev in
      match Ilp.Replay.event_of_line line with
      | Error msg -> QCheck2.Test.fail_reportf "parse failed on %s: %s" line msg
      | Ok (t, ev') ->
          ev' = ev && Ilp.Trace.jsonl_line ~time_s:t ev' = line)

(* End-to-end: solve with a JSONL sink, parse the trace back, and check
   the post-mortem's books balance against the solver's own outcome. *)
let test_replay_analyze_matches_solve () =
  let path = Filename.temp_file "ilp_trace" ".jsonl" in
  let sink = Ilp.Trace.file path in
  let options = { Ilp.Solver.default with Ilp.Solver.trace = Some sink } in
  let r = Ilp.Solver.solve ~options (assignment_model ()) in
  Ilp.Trace.close sink;
  let events =
    match Ilp.Replay.of_file path with
    | Ok evs -> evs
    | Error msg -> Alcotest.failf "trace does not parse: %s" msg
  in
  Sys.remove path;
  let rep = Ilp.Replay.analyze events in
  check_int "replay counts every node" r.Ilp.Solver.nodes rep.Ilp.Replay.nodes;
  check_int "prune rows sum to the total" rep.Ilp.Replay.pruned_total
    (List.fold_left
       (fun acc (p : Ilp.Replay.prune_row) -> acc + p.Ilp.Replay.count)
       0 rep.Ilp.Replay.prunes);
  check_bool "final incumbent is the optimum" true
    (rep.Ilp.Replay.final_incumbent = r.Ilp.Solver.objective);
  check_bool "waste within [0, 100]" true
    (rep.Ilp.Replay.waste_pct >= 0.0 && rep.Ilp.Replay.waste_pct <= 100.0);
  check_int "depth profile covers every node" rep.Ilp.Replay.nodes
    (List.fold_left
       (fun acc (d : Ilp.Replay.depth_row) -> acc + d.Ilp.Replay.opened)
       0 rep.Ilp.Replay.depths);
  (if rep.Ilp.Replay.pruned_total > 0 then
     let total =
       List.fold_left (fun a (_, s) -> a +. s) 0.0 (Ilp.Replay.prune_shares rep)
     in
     check_bool "prune shares sum to 100" true (Float.abs (total -. 100.0) < 1e-6));
  let report = Format.asprintf "%a" Ilp.Replay.render_report rep in
  check_bool "report renders" true (String.length report > 100);
  let chrome =
    String.trim (Ilp.Replay.chrome_of_events ~phases:[ ("search", 0.1) ] events)
  in
  check_bool "chrome export is a JSON array" true
    (String.length chrome > 2
    && chrome.[0] = '['
    && chrome.[String.length chrome - 1] = ']')

let () =
  Alcotest.run "ilp"
    [
      ( "linexpr",
        [
          Alcotest.test_case "algebra" `Quick test_linexpr_algebra;
          Alcotest.test_case "pp" `Quick test_linexpr_pp;
        ] );
      ("model", [ Alcotest.test_case "check" `Quick test_model_check ]);
      ( "simplex",
        [
          Alcotest.test_case "basic" `Quick test_simplex_basic;
          Alcotest.test_case "phase1" `Quick test_simplex_phase1;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "relax knapsack" `Quick test_simplex_relax_knapsack;
          Alcotest.test_case "equalities only" `Quick test_simplex_equalities_only;
          Alcotest.test_case "no rows" `Quick test_simplex_no_rows;
          Alcotest.test_case "warm = cold" `Quick test_warm_matches_cold;
        ] );
      ( "branch_bound",
        [
          Alcotest.test_case "knapsack" `Quick test_bb_knapsack;
          Alcotest.test_case "assignment" `Quick test_bb_assignment;
          Alcotest.test_case "infeasible" `Quick test_bb_infeasible;
          Alcotest.test_case "integer vars" `Quick test_bb_integer_vars;
          Alcotest.test_case "warm start" `Quick test_bb_warm_start;
          Alcotest.test_case "node limit" `Quick test_bb_node_limit;
          Alcotest.test_case "eq propagation" `Quick test_bb_equality_propagation;
          Alcotest.test_case "edge cases" `Quick test_bb_edge_cases;
          Alcotest.test_case "negative bounds" `Quick test_bb_negative_bounds;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bb_matches_brute_force;
            prop_bb_without_lp_matches;
            prop_lp_is_lower_bound;
            prop_node_lp_bound_sound;
            prop_rc_fixing_preserves_optimum;
            prop_root_cuts_preserve_feasible_set;
          ] );
      ( "lp_format",
        [
          Alcotest.test_case "render" `Quick test_lp_format;
          Alcotest.test_case "sanitize" `Quick test_lp_format_sanitize;
        ] );
      ( "presolve",
        [
          Alcotest.test_case "infeasible" `Quick test_presolve_detects_infeasible;
          Alcotest.test_case "redundant" `Quick test_presolve_drops_redundant;
          Alcotest.test_case "fixing" `Quick test_presolve_fixes_variables;
          Alcotest.test_case "strengthening" `Quick test_presolve_strengthens;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_presolve_preserves_feasible_set;
              prop_presolve_preserves_optimum ] );
      ( "lp_parse",
        [
          Alcotest.test_case "knapsack" `Quick test_lp_parse_knapsack;
          Alcotest.test_case "bounds forms" `Quick test_lp_parse_bounds_forms;
          Alcotest.test_case "errors" `Quick test_lp_parse_errors;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_lp_roundtrip; prop_lp_roundtrip_structural ] );
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_pool_map_matches_sequential;
          Alcotest.test_case "map exception" `Quick
            test_pool_map_propagates_exception;
          Alcotest.test_case "submit/await" `Quick test_pool_submit_await;
          Alcotest.test_case "cancellation" `Quick test_pool_cancellation;
          Alcotest.test_case "solver stop token" `Quick test_solver_stop_token;
        ] );
      ( "portfolio",
        [ Alcotest.test_case "knapsack" `Quick test_portfolio_knapsack ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_portfolio_matches_brute_force ] );
      ( "symmetry",
        [
          Alcotest.test_case "planted group detected" `Quick
            test_symmetry_detects_planted;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_symmetry_preserves_optimum;
              prop_trusted_orbits_preserve_optimum;
            ] );
      ( "parallel",
        [ Alcotest.test_case "deques" `Quick test_deques ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_parallel_matches_brute_force ] );
      ( "flat_kernel",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_devex_matches_dantzig;
            prop_flat_min_activities;
            prop_pricing_and_jobs_invariant;
          ] );
      ( "stats",
        [
          Alcotest.test_case "sequential solve" `Quick test_stats_sequential;
          Alcotest.test_case "jobs-invariant counters" `Quick
            test_stats_parallel_jobs_invariant;
          Alcotest.test_case "merge pads unequal histograms" `Quick
            test_stats_merge_unequal_hist;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_stats_merge_commutative; prop_stats_merge_associative ] );
      ( "trace",
        [
          Alcotest.test_case "ring sink" `Quick test_trace_ring;
          Alcotest.test_case "jsonl sink" `Quick test_trace_jsonl;
          Alcotest.test_case "events raises off-ring" `Quick
            test_trace_events_raises_on_file_sink;
        ] );
      ( "replay",
        [
          Alcotest.test_case "analyze balances the books" `Quick
            test_replay_analyze_matches_solve;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_trace_jsonl_roundtrip ] );
    ]
