(* Tests for the core ADVBIST library: the ILP encoding of Eqs. (1)-(23),
   the decoder audits, the warm-start vector construction, the session
   optimizer, the enumeration oracle, and engine cross-validation on small
   instances (the repository's strongest end-to-end correctness check). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let fig1 = Dfg.Benchmarks.fig1

let get = function
  | Ok x -> x
  | Error (msg : string) -> Alcotest.failf "unexpected error: %s" msg

(* -- Encoding structure -------------------------------------------------- *)

let test_encoding_stats () =
  let e = Advbist.Encoding.build fig1 ~n_regs:3 ~k:2 in
  check_int "n_regs" 3 e.Advbist.Encoding.n_regs;
  check_int "k" 2 e.Advbist.Encoding.k;
  check_bool "has variables" true (Ilp.Model.n_vars e.Advbist.Encoding.model > 100);
  check_bool "has constraints" true
    (Ilp.Model.n_constraints e.Advbist.Encoding.model > 100);
  (* fig1 has no constants: no tc variables *)
  Array.iter
    (fun row -> Array.iter (fun tc -> check_int "no tc" (-1) tc) row)
    e.Advbist.Encoding.tc

let test_encoding_rejects_bad_inputs () =
  check_bool "too few registers" true
    (try
       ignore (Advbist.Encoding.build fig1 ~n_regs:2 ~k:1);
       false
     with Invalid_argument _ -> true);
  check_bool "k = 0 rejected" true
    (try
       ignore (Advbist.Encoding.build fig1 ~n_regs:3 ~k:0);
       false
     with Invalid_argument _ -> true)

let test_encoding_symmetry_fixes_clique () =
  let e = Advbist.Encoding.build fig1 ~n_regs:3 ~k:1 in
  (* the maximum clique {2,3,4} is pre-assigned: those x variables are
     fixed *)
  List.iteri
    (fun slot v ->
      for r = 0 to 2 do
        let lb, ub = Ilp.Model.bounds e.Advbist.Encoding.model
            e.Advbist.Encoding.x_vr.(v).(r) in
        let expected = if r = slot then 1 else 0 in
        check_int (Printf.sprintf "x_v%d_r%d fixed" v r) expected lb;
        check_int (Printf.sprintf "x_v%d_r%d fixed ub" v r) expected ub
      done)
    [ 2; 3; 4 ];
  let e' = Advbist.Encoding.build ~symmetry:false fig1 ~n_regs:3 ~k:1 in
  let lb, ub =
    Ilp.Model.bounds e'.Advbist.Encoding.model e'.Advbist.Encoding.x_vr.(2).(0)
  in
  check_bool "free without symmetry" true (lb = 0 && ub = 1)

let test_lp_export_of_encoding () =
  let e = Advbist.Encoding.build fig1 ~n_regs:3 ~k:1 in
  let s = Ilp.Lp_format.to_string e.Advbist.Encoding.model in
  check_bool "exports" true (String.length s > 1000)

(* -- Warm-start vector --------------------------------------------------- *)

let test_vector_of_plan_feasible () =
  List.iter
    (fun k ->
      let e = Advbist.Encoding.build fig1 ~n_regs:3 ~k in
      (* heuristic netlist may differ from the symmetry-fixed register
         naming; use the symmetry-free encoding for this roundtrip *)
      let e_free = Advbist.Encoding.build ~symmetry:false fig1 ~n_regs:3 ~k in
      let plan = (get (Advbist.Heuristic.synthesize fig1 ~k)).Advbist.Session_opt.plan in
      let x = get (Advbist.Encoding.vector_of_plan e_free plan) in
      check_bool "model accepts the vector" true
        (Ilp.Model.check e_free.Advbist.Encoding.model x = Ok ());
      (* decoding the vector reproduces the plan cost *)
      let _netlist, plan' = get (Advbist.Encoding.decode e_free x) in
      (match plan' with
      | Some plan' ->
          check_int "same cost"
            (Bist.Plan.objective_cost plan)
            (Bist.Plan.objective_cost plan')
      | None -> Alcotest.fail "expected a plan");
      ignore e)
    [ 1; 2 ]

let test_vector_of_netlist_reference () =
  let e = Advbist.Encoding.build_reference ~symmetry:false fig1 ~n_regs:3 in
  let d = get (Advbist.Heuristic.netlist fig1) in
  let x = get (Advbist.Encoding.vector_of_netlist e d) in
  check_bool "feasible" true (Ilp.Model.check e.Advbist.Encoding.model x = Ok ());
  (* the model objective equals the netlist mux area *)
  check_int "objective = mux area"
    (Datapath.Netlist.mux_area d)
    (Ilp.Model.objective_value e.Advbist.Encoding.model x)

(* -- Session optimizer (Figs. 2-3 variable filtering) --------------------- *)

let paper_netlist () =
  Datapath.Netlist.make_exn fig1
    ~reg_of_var:[| 0; 1; 2; 1; 0; 2; 1; 2 |]
    ~module_of_op:[| 0; 0; 1; 1 |]

let test_session_opt_respects_wires () =
  (* On the paper's Fig. 1 data path the multiplier (module 1) writes only
     R1 and R2 — the Eq. (6) filtering of the paper's Fig. 2 example: no
     plan may use R0 as the multiplier's SR. *)
  let d = paper_netlist () in
  List.iter
    (fun k ->
      let o = get (Advbist.Session_opt.solve d ~k) in
      check_bool "optimal" true o.Advbist.Session_opt.optimal;
      let plan = o.Advbist.Session_opt.plan in
      check_bool "mul SR is wired" true
        (List.mem (1, plan.Bist.Plan.sr_of_module.(1))
           d.Datapath.Netlist.module_to_reg);
      (* Eq. 9 analog of Fig. 3: every TPG sits behind a real wire *)
      Array.iteri
        (fun m tpgs ->
          Array.iteri
            (fun l r ->
              if r >= 0 then
                check_bool "tpg wired" true
                  (List.mem (r, m, l) d.Datapath.Netlist.reg_to_port))
            tpgs)
        plan.Bist.Plan.tpg_of_port)
    [ 1; 2 ]

let test_session_opt_k_monotone () =
  (* more sessions can only help (weakly) on a fixed data path *)
  let d = paper_netlist () in
  let cost k =
    Bist.Plan.objective_cost (get (Advbist.Session_opt.solve d ~k)).Advbist.Session_opt.plan
  in
  check_bool "k=2 <= k=1" true (cost 2 <= cost 1)

(* Exhaustive check of the session optimizer on the Fig. 1 data path. *)
let brute_force_sessions d k =
  let p = d.Datapath.Netlist.problem in
  let n_mod = Dfg.Problem.n_modules p in
  let writers m =
    List.filter_map
      (fun (m', r) -> if m' = m then Some r else None)
      d.Datapath.Netlist.module_to_reg
  in
  let feeders m l =
    List.filter_map
      (fun (r, m', l') -> if m' = m && l' = l then Some r else None)
      d.Datapath.Netlist.reg_to_port
  in
  let best = ref None in
  let rec sessions m acc =
    if m >= n_mod then srs 0 [] (List.rev acc)
    else
      for s = 0 to k - 1 do
        sessions (m + 1) (s :: acc)
      done
  and srs m acc sess =
    if m >= n_mod then tpgs 0 0 [] sess (List.rev acc)
    else
      List.iter (fun r -> srs (m + 1) (r :: acc) sess) (writers m)
  and tpgs m l acc sess srl =
    if m >= n_mod then finish sess srl (List.rev acc)
    else begin
      let ports = Dfg.Fu_kind.n_ports p.Dfg.Problem.modules.(m) in
      if l >= ports then tpgs (m + 1) 0 acc sess srl
      else begin
        let srcs = feeders m l in
        if srcs = [] then tpgs m (l + 1) (-1 :: acc) sess srl
        else List.iter (fun r -> tpgs m (l + 1) (r :: acc) sess srl) srcs
      end
    end
  and finish sess srl flat_tpg =
    let session_of_module = Array.of_list sess in
    let sr_of_module = Array.of_list srl in
    let tpg_of_port =
      let rest = ref flat_tpg in
      Array.init n_mod (fun m ->
          Array.init (Dfg.Fu_kind.n_ports p.Dfg.Problem.modules.(m)) (fun _ ->
              match !rest with
              | x :: tl ->
                  rest := tl;
                  x
              | [] -> -1))
    in
    match Bist.Plan.make d ~k ~session_of_module ~sr_of_module ~tpg_of_port with
    | Error _ -> ()
    | Ok plan -> (
        let cost = Bist.Plan.objective_cost plan in
        match !best with
        | Some c when c <= cost -> ()
        | Some _ | None -> best := Some cost)
  in
  sessions 0 [];
  !best

let test_session_opt_matches_brute_force () =
  let d = paper_netlist () in
  List.iter
    (fun k ->
      let o = get (Advbist.Session_opt.solve d ~k) in
      match brute_force_sessions d k with
      | None -> Alcotest.fail "brute force found nothing"
      | Some c ->
          check_int
            (Printf.sprintf "k=%d optimal" k)
            c
            (Bist.Plan.objective_cost o.Advbist.Session_opt.plan))
    [ 1; 2 ]

(* -- Engine cross-validation --------------------------------------------- *)

let test_engines_agree_fig1 () =
  List.iter
    (fun k ->
      let ilp = get (Advbist.Synth.synthesize ~time_limit:60.0 fig1 ~k) in
      check_bool "ilp proven optimal" true ilp.Advbist.Synth.optimal;
      let enum = get (Advbist.Enum_engine.synthesize fig1 ~k) in
      check_int
        (Printf.sprintf "k=%d engines agree" k)
        (Bist.Plan.objective_cost enum.Advbist.Enum_engine.plan)
        (Bist.Plan.objective_cost ilp.Advbist.Synth.plan))
    [ 1; 2 ]

let test_reference_engines_agree () =
  let ilp = get (Advbist.Synth.reference ~time_limit:60.0 fig1) in
  check_bool "proven optimal" true ilp.Advbist.Synth.ref_optimal;
  let enum = get (Advbist.Enum_engine.reference fig1) in
  check_int "reference areas agree" enum ilp.Advbist.Synth.ref_area

let test_symmetry_does_not_change_optimum () =
  let with_sym = get (Advbist.Synth.synthesize ~time_limit:60.0 fig1 ~k:1) in
  let without =
    get (Advbist.Synth.synthesize ~time_limit:60.0 ~symmetry:false fig1 ~k:1)
  in
  check_bool "both optimal" true
    (with_sym.Advbist.Synth.optimal && without.Advbist.Synth.optimal);
  check_int "same optimum" with_sym.Advbist.Synth.area without.Advbist.Synth.area

(* -- Functional audit of synthesized data paths --------------------------- *)

let test_synthesized_datapath_simulates () =
  let o = get (Advbist.Synth.synthesize ~time_limit:60.0 fig1 ~k:2) in
  let d = o.Advbist.Synth.plan.Bist.Plan.netlist in
  let g = fig1.Dfg.Problem.dfg in
  let inputs =
    List.map
      (fun v -> ((Dfg.Graph.variable g v).Dfg.Graph.var_name, 13 * (v + 3)))
      (Dfg.Graph.primary_inputs g)
  in
  check_bool "ILP-optimized data path computes the DFG" true
    (Datapath.Sim.agrees d ~inputs)

(* -- k-sweep shape -------------------------------------------------------- *)

let test_sweep_fig1 () =
  let reference, rows = get (Advbist.Synth.sweep ~time_limit:60.0 fig1) in
  check_int "N rows" 2 (List.length rows);
  check_bool "reference optimal" true reference.Advbist.Synth.ref_optimal;
  List.iter
    (fun row ->
      check_bool "positive overhead" true (row.Advbist.Synth.overhead_pct > 0.0))
    rows;
  (* overhead decreases (weakly) with k on fig1 *)
  match rows with
  | [ r1; r2 ] ->
      check_bool "k=2 no worse" true
        (r2.Advbist.Synth.overhead_pct <= r1.Advbist.Synth.overhead_pct +. 1e-9)
  | _ -> Alcotest.fail "expected two rows"

(* -- Constants (§3.3.4) --------------------------------------------------- *)

let const_problem =
  (* one multiplication by a constant: the multiplier's coefficient port can
     only be fed by the constant, forcing a dedicated TPG. *)
  let b = Dfg.Graph.Builder.create ~name:"constport" () in
  let x = Dfg.Graph.Builder.input b "x" in
  let y = Dfg.Graph.Builder.op ~name:"y" b Dfg.Op_kind.Mul ~step:0 x (Dfg.Graph.Const 3) in
  let (_ : Dfg.Graph.operand) =
    Dfg.Graph.Builder.op ~name:"w" b Dfg.Op_kind.Mul ~step:1 y (Dfg.Graph.Const 5)
  in
  Dfg.Problem.make_exn (Dfg.Graph.Builder.build_exn b) [ Dfg.Fu_kind.multiplier ]

let test_constant_port_gets_dedicated_tpg () =
  let o = get (Advbist.Synth.synthesize ~time_limit:60.0 const_problem ~k:1) in
  check_bool "optimal" true o.Advbist.Synth.optimal;
  let plan = o.Advbist.Synth.plan in
  check_int "one dedicated generator" 1 (Bist.Plan.n_constant_tpgs plan);
  (* reported area charges the real TPG cost, not the steering weight *)
  check_bool "area includes constant TPG" true
    (Bist.Plan.area plan >= Datapath.Area.constant_tpg);
  check_bool "objective uses the large weight" true
    (Bist.Plan.objective_cost plan - Bist.Plan.area plan
    = Datapath.Area.constant_tpg_weight - Datapath.Area.constant_tpg)

let test_commutativity_avoids_constant_tpg () =
  (* two multiplications where swapping one lets both ports see a register:
     y = x * 3 and z = y * x.  Unswapped, port 1 of the multiplier sees
     {#3, x}; port 0 sees {x, y}: no constant-only port even unswapped.
     Force the interesting case instead: y = x*3, w = y*5 (const_problem)
     has port 1 = {#3, #5} constant-only under identity, but the ILP can
     swap one of them, giving port1 = {#3, y} and port0 = {x, #5}: no
     constant-only port, saving the dedicated TPG.  Verify the optimizer
     found such a design iff it is cheaper. *)
  let o = get (Advbist.Synth.synthesize ~time_limit:60.0 const_problem ~k:1) in
  let plan = o.Advbist.Synth.plan in
  (* with the huge w_tc, a swap-based design must win if feasible; whether
     it is depends on register lifetimes.  We only require optimality plus
     audit success, and that the objective accounts match. *)
  check_bool "plan audit passed" true (Bist.Plan.area plan > 0)

let test_vector_roundtrip_whole_suite () =
  (* the heuristic plan of every benchmark circuit must be expressible as a
     feasible vector of its (symmetry-free) encoding — a broad regression
     net over the whole Eq. (1)-(23) generator *)
  List.iter
    (fun (name, p) ->
      let k = Dfg.Problem.n_modules p in
      match Advbist.Heuristic.synthesize p ~k with
      | Error _ -> () (* no decoupled plan exists (see ewf); nothing to check *)
      | Ok o ->
          let e =
            Advbist.Encoding.build ~symmetry:false p
              ~n_regs:(Dfg.Problem.min_registers p) ~k
          in
          let plan = o.Advbist.Session_opt.plan in
          (match Advbist.Encoding.vector_of_plan e plan with
          | Error msg -> Alcotest.failf "%s: %s" name msg
          | Ok x ->
              check_bool (name ^ " vector feasible") true
                (Ilp.Model.check e.Advbist.Encoding.model x = Ok ());
              let _netlist, plan' = get (Advbist.Encoding.decode e x) in
              (match plan' with
              | Some plan' ->
                  check_int (name ^ " cost roundtrip")
                    (Bist.Plan.objective_cost plan)
                    (Bist.Plan.objective_cost plan')
              | None -> Alcotest.failf "%s: no plan decoded" name)))
    (Circuits.Suite.all @ Circuits.Suite.extras)

(* -- Random cross-validation ---------------------------------------------- *)

(* Tiny random scheduled DFGs: the strongest oracle in the repository — the
   concurrent ILP and the exhaustive engine must agree on the optimum for
   every instance. *)
let gen_tiny =
  QCheck2.Gen.(
    let* n_inputs = int_range 2 3 in
    let* ops =
      list_size (int_range 2 4)
        (pair
           (oneofl [ Dfg.Op_kind.Add; Dfg.Op_kind.Mul ])
           (pair (int_range 0 50) (int_range 0 50)))
    in
    return (n_inputs, ops))

let build_tiny (n_inputs, ops) =
  let b = Dfg.Graph.Builder.create ~name:"tiny" () in
  let pool =
    ref
      (List.init n_inputs (fun i ->
           (Dfg.Graph.Builder.input b (Printf.sprintf "i%d" i), 0)))
  in
  List.iteri
    (fun i (kind, (sa, sb)) ->
      let arr = Array.of_list !pool in
      let x, sx = arr.(sa mod Array.length arr) in
      let y, sy = arr.(sb mod Array.length arr) in
      let step = max sx sy in
      let out =
        Dfg.Graph.Builder.op ~name:(Printf.sprintf "t%d" i) b kind ~step x y
      in
      pool := (out, step + 1) :: !pool)
    ops;
  match Dfg.Graph.Builder.build b with
  | Error _ -> None
  | Ok g -> (
      let unit_kinds =
        List.map
          (fun k ->
            if Dfg.Op_kind.equal k Dfg.Op_kind.Mul then Dfg.Fu_kind.multiplier
            else Dfg.Fu_kind.adder)
          (Dfg.Graph.op_kinds g)
      in
      let counts = Dfg.Lifetime.min_modules g unit_kinds in
      let units =
        List.concat_map (fun (fu, n) -> List.init n (fun _ -> fu)) counts
      in
      match Dfg.Problem.make g units with Ok p -> Some p | Error _ -> None)

let prop_engines_agree_random =
  QCheck2.Test.make ~name:"ILP = exhaustive on random tiny instances"
    ~count:40 gen_tiny (fun spec ->
      match build_tiny spec with
      | None -> true
      | Some p -> (
          match
            ( Advbist.Synth.synthesize ~time_limit:60.0 p ~k:1,
              Advbist.Enum_engine.synthesize ~max_leaves:60_000 p ~k:1 )
          with
          | Ok ilp, Ok enum ->
              (not ilp.Advbist.Synth.optimal)
              || Bist.Plan.objective_cost ilp.Advbist.Synth.plan
                 = Bist.Plan.objective_cost enum.Advbist.Enum_engine.plan
          | Error _, Error _ -> true
          | Ok ilp, Error msg ->
              (* enumeration refused (too large) is fine; a feasibility
                 disagreement is not *)
              ignore ilp;
              msg = "instance too large for exhaustive enumeration"
          | Error msg, Ok _ ->
              (* ILP must not claim infeasibility when a design exists *)
              not
                (String.length msg > 0
                && String.sub msg (String.length msg - 19) 19
                   = "(proven infeasible)")))

let prop_synthesized_simulates_random =
  QCheck2.Test.make ~name:"random instances simulate correctly after synthesis"
    ~count:20 gen_tiny (fun spec ->
      match build_tiny spec with
      | None -> true
      | Some p -> (
          match Advbist.Synth.synthesize ~time_limit:30.0 p ~k:1 with
          | Error _ -> true
          | Ok o ->
              let g = p.Dfg.Problem.dfg in
              let inputs =
                List.map
                  (fun v ->
                    ((Dfg.Graph.variable g v).Dfg.Graph.var_name, 7 * (v + 2)))
                  (Dfg.Graph.primary_inputs g)
              in
              Datapath.Sim.agrees o.Advbist.Synth.plan.Bist.Plan.netlist ~inputs))

(* Work stealing must not change results: the frontier of open subtrees is
   independent of the worker count, each subtree's outcome is a pure
   function of the subtree (canonical reset state, per-subtree node
   budgets), and the combine step is a deterministic (objective, lex
   solution) fold — so a node-limited sweep returns identical designs for
   any worker count.  (A node limit, unlike a wall-clock one, is
   unaffected by machine load.) *)
let test_parallel_sweep_deterministic name () =
  let p = Option.get (Circuits.Suite.find name) in
  let run jobs =
    match Advbist.Synth.sweep ~node_limit:2_000 ~jobs p with
    | Ok (reference, rows) ->
        ( reference.Advbist.Synth.ref_area,
          List.map
            (fun (r : Advbist.Synth.sweep_row) ->
              ( r.Advbist.Synth.k,
                r.Advbist.Synth.outcome.Advbist.Synth.area ))
            rows )
    | Error msg -> Alcotest.failf "%s sweep (jobs=%d): %s" name jobs msg
  in
  let ref_area_2, rows_2 = run 2 in
  let ref_area_4, rows_4 = run 4 in
  check_int "reference area" ref_area_2 ref_area_4;
  Alcotest.(check (list (pair int int)))
    "per-k areas" rows_2 rows_4

(* The work-stealing search on a real circuit model: jobs 1..4 must return
   the same status, objective and solution vector (run to completion — no
   limits — so even the optimality flag is schedule-independent). *)
let test_solve_parallel_determinism () =
  let e = Advbist.Encoding.build fig1 ~n_regs:3 ~k:1 in
  let model, _ = Ilp.Presolve.strengthen e.Advbist.Encoding.model in
  let options =
    {
      Ilp.Solver.default with
      Ilp.Solver.cuts = false;
      branch_order = Some (Advbist.Encoding.branch_order e);
      orbits = Advbist.Encoding.orbits e;
    }
  in
  let runs =
    List.map
      (fun jobs -> Ilp.Solver.solve_parallel ~options ~jobs model)
      [ 1; 2; 3; 4 ]
  in
  let r0 = List.hd runs in
  check_bool "k=1 proven optimal" true
    (r0.Ilp.Solver.status = Ilp.Solver.Optimal);
  List.iteri
    (fun i (r : Ilp.Solver.outcome) ->
      check_bool (Printf.sprintf "status jobs=%d" (i + 1)) true
        (r.Ilp.Solver.status = r0.Ilp.Solver.status);
      check_bool (Printf.sprintf "objective jobs=%d" (i + 1)) true
        (r.Ilp.Solver.objective = r0.Ilp.Solver.objective);
      check_bool (Printf.sprintf "solution jobs=%d" (i + 1)) true
        (r.Ilp.Solver.solution = r0.Ilp.Solver.solution))
    runs

(* With more registers than the clique pins, the spare registers are
   interchangeable: Encoding.orbits must surface them (exactly verified),
   and solving with those orbits must reach the same optimum. *)
let test_encoding_orbits_free_registers () =
  let e = Advbist.Encoding.build fig1 ~n_regs:5 ~k:1 in
  let orbits = Advbist.Encoding.orbits e in
  check_bool "spare-register orbit found" true (orbits <> []);
  let solve orbits =
    let model, _ = Ilp.Presolve.strengthen e.Advbist.Encoding.model in
    let options =
      {
        Ilp.Solver.default with
        Ilp.Solver.cuts = false;
        sym = orbits <> [];
        orbits;
        branch_order = Some (Advbist.Encoding.branch_order e);
      }
    in
    Ilp.Solver.solve ~options model
  in
  let with_orbits = solve orbits in
  let without = solve [] in
  check_bool "both optimal" true
    (with_orbits.Ilp.Solver.status = Ilp.Solver.Optimal
    && without.Ilp.Solver.status = Ilp.Solver.Optimal);
  check_int "same optimum"
    (Option.get without.Ilp.Solver.objective)
    (Option.get with_orbits.Ilp.Solver.objective)

(* Cross-k seeding: a seed netlist gives synthesize a finite incumbent, and
   the seeded design can never be worse than the seed's own repaired cost;
   sweeping with seeds must preserve the per-k areas of independent
   solves on an instance small enough to prove optimal everywhere. *)
let test_sweep_cross_k_seeding () =
  let reference, rows = get (Advbist.Synth.sweep ~time_limit:60.0 fig1) in
  List.iter
    (fun (r : Advbist.Synth.sweep_row) ->
      check_bool
        (Printf.sprintf "k=%d optimal" r.Advbist.Synth.k)
        true r.Advbist.Synth.outcome.Advbist.Synth.optimal;
      (* independent solve of the same instance: same optimum *)
      let indep =
        get
          (Advbist.Synth.synthesize ~time_limit:60.0 fig1
             ~k:r.Advbist.Synth.k)
      in
      check_int
        (Printf.sprintf "k=%d area matches independent solve"
           r.Advbist.Synth.k)
        indep.Advbist.Synth.area r.Advbist.Synth.outcome.Advbist.Synth.area)
    rows;
  (* seeding from the reference data path is accepted and feasible *)
  let seeded =
    get
      (Advbist.Synth.synthesize ~time_limit:60.0
         ~seed:reference.Advbist.Synth.ref_netlist fig1 ~k:1)
  in
  let unseeded = get (Advbist.Synth.synthesize ~time_limit:60.0 fig1 ~k:1) in
  check_int "seeded optimum unchanged" unseeded.Advbist.Synth.area
    seeded.Advbist.Synth.area

(* The structural dual bound must hold for every feasible design — check it
   against proven optima (fig1 across k, tseng k=1) and against every
   feasible incumbent on limit-hit suite instances.  Also pin down that it
   is non-trivial (strictly above the bare mux-free design floor would be
   circuit-specific; > 0 is the portable claim). *)
let test_objective_lower_bound_sound () =
  List.iter
    (fun k ->
      let n_regs = Dfg.Problem.min_registers fig1 in
      let e = Advbist.Encoding.build fig1 ~n_regs ~k in
      let lb = Advbist.Encoding.objective_lower_bound e in
      check_bool (Printf.sprintf "fig1 k=%d bound positive" k) true (lb > 0);
      let o = get (Advbist.Synth.synthesize ~time_limit:60.0 fig1 ~k) in
      check_bool (Printf.sprintf "fig1 k=%d optimal" k) true
        o.Advbist.Synth.optimal;
      check_bool
        (Printf.sprintf "fig1 k=%d bound below optimum (%d <= %d)" k
           (lb + e.Advbist.Encoding.base_area)
           o.Advbist.Synth.area)
        true
        (lb + e.Advbist.Encoding.base_area <= o.Advbist.Synth.area))
    [ 1; 2 ];
  let tseng = Option.get (Circuits.Suite.find "tseng") in
  let n_regs = Dfg.Problem.min_registers tseng in
  let e = Advbist.Encoding.build tseng ~n_regs ~k:1 in
  let lb = Advbist.Encoding.objective_lower_bound e in
  let o = get (Advbist.Synth.synthesize ~time_limit:60.0 tseng ~k:1) in
  check_bool "tseng k=1 optimal" true o.Advbist.Synth.optimal;
  check_bool
    (Printf.sprintf "tseng k=1 bound below optimum (%d <= %d)"
       (lb + e.Advbist.Encoding.base_area)
       o.Advbist.Synth.area)
    true
    (lb + e.Advbist.Encoding.base_area <= o.Advbist.Synth.area)

(* On a limit-hit solve the reported gap must reflect the structural bound:
   strictly below 100, and consistent with the outcome's own area. *)
let test_gap_uses_structural_bound () =
  let iir3 = Option.get (Circuits.Suite.find "iir3") in
  let o = get (Advbist.Synth.synthesize ~node_limit:5_000 iir3 ~k:1) in
  check_bool "limit hit" true (not o.Advbist.Synth.optimal);
  check_bool
    (Printf.sprintf "gap below 100 (%.1f)" o.Advbist.Synth.gap_pct)
    true
    (o.Advbist.Synth.gap_pct < 100.0);
  let n_regs = Dfg.Problem.min_registers iir3 in
  let e = Advbist.Encoding.build iir3 ~n_regs ~k:1 in
  let lb_area =
    Advbist.Encoding.objective_lower_bound e + e.Advbist.Encoding.base_area
  in
  check_bool "incumbent respects the bound" true
    (o.Advbist.Synth.area >= lb_area)

(* -- Bench snapshots ----------------------------------------------------- *)

(* Tests run from _build/default/test; the committed snapshot is a declared
   dune dep one level up. *)
let committed_snapshot_path = "../BENCH_solver.json"

let load_committed_snapshot () =
  match Advbist.Bench_snapshot.of_file committed_snapshot_path with
  | Ok t -> t
  | Error msg ->
      Alcotest.failf "committed BENCH_solver.json does not parse: %s" msg

let test_bench_snapshot_parse_committed () =
  let t = load_committed_snapshot () in
  check_bool "committed snapshot is schema v2..v5" true
    (t.Advbist.Bench_snapshot.version >= 2
    && t.Advbist.Bench_snapshot.version <= 5);
  List.iter
    (fun (c : Advbist.Bench_snapshot.circuit) ->
      List.iter
        (fun (r : Advbist.Bench_snapshot.row) ->
          check_bool
            (Printf.sprintf "%s k=%d throughput derived when absent" c.circuit
               r.k)
            true
            (r.time_s <= 0.0 || r.nodes_per_sec > 0.0 || r.nodes = 0))
        c.rows)
    t.Advbist.Bench_snapshot.circuits;
  check_bool "snapshot has circuits" true
    (t.Advbist.Bench_snapshot.circuits <> []);
  check_bool "tseng is benched" true
    (List.exists
       (fun (c : Advbist.Bench_snapshot.circuit) -> c.circuit = "tseng")
       t.Advbist.Bench_snapshot.circuits);
  List.iter
    (fun (c : Advbist.Bench_snapshot.circuit) ->
      check_bool
        (Printf.sprintf "%s has rows" c.circuit)
        true (c.rows <> []))
    t.Advbist.Bench_snapshot.circuits

let test_bench_snapshot_roundtrip () =
  let t = load_committed_snapshot () in
  let s1 = Advbist.Bench_snapshot.to_string t in
  match Advbist.Bench_snapshot.of_string s1 with
  | Error msg -> Alcotest.failf "re-rendered snapshot does not parse: %s" msg
  | Ok t' ->
      Alcotest.(check int)
        "writer always emits schema v5" 5 t'.Advbist.Bench_snapshot.version;
      Alcotest.(check string)
        "render/parse/render is a fixpoint" s1
        (Advbist.Bench_snapshot.to_string t')

(* Return [t] with the area of row [k] of [circuit] bumped by [delta]. *)
let bump_area t ~circuit ~k ~delta =
  let open Advbist.Bench_snapshot in
  {
    t with
    circuits =
      List.map
        (fun (c : Advbist.Bench_snapshot.circuit) ->
          if c.circuit <> circuit then c
          else
            {
              c with
              rows =
                List.map
                  (fun (r : row) ->
                    if r.k = k then { r with area = r.area + delta } else r)
                  c.rows;
            })
        t.circuits;
  }

let test_bench_diff_self_clean () =
  let t = load_committed_snapshot () in
  let findings = Advbist.Bench_snapshot.diff ~baseline:t ~current:t in
  check_bool "self-diff has no findings" true (findings = []);
  check_bool "self-diff passes" true
    (not (Advbist.Bench_snapshot.has_failures findings))

let test_bench_diff_flags_area_regression () =
  let baseline = load_committed_snapshot () in
  let current = bump_area baseline ~circuit:"tseng" ~k:1 ~delta:64 in
  let findings = Advbist.Bench_snapshot.diff ~baseline ~current in
  check_bool "regression detected" true
    (Advbist.Bench_snapshot.has_failures findings);
  let fails =
    List.filter
      (fun f -> f.Advbist.Bench_snapshot.severity = Advbist.Bench_snapshot.Fail)
      findings
  in
  Alcotest.(check int) "exactly one failure" 1 (List.length fails);
  (match fails with
  | [ f ] ->
      Alcotest.(check string)
        "failure names the circuit" "tseng" f.Advbist.Bench_snapshot.circuit;
      check_bool "failure names the row" true
        (f.Advbist.Bench_snapshot.k = Some 1)
  | _ -> Alcotest.fail "unreachable");
  let report =
    Advbist.Bench_snapshot.render_report ~baseline ~current findings
  in
  check_bool "report says FAIL" true
    (let rec contains i =
       i + 4 <= String.length report
       && (String.sub report i 4 = "FAIL" || contains (i + 1))
     in
     contains 0)

(* A >20% node-throughput drop on a row that ran long enough to measure
   (both sides >= 0.05 s, baseline rate nonzero) must surface as a Warn —
   and only a Warn: throughput is machine-dependent, so it never gates. *)
let test_bench_diff_flags_throughput_drop () =
  let open Advbist.Bench_snapshot in
  let baseline = load_committed_snapshot () in
  let measurable (r : row) = r.time_s >= 0.05 && r.nodes_per_sec > 0.0 in
  let circuit, k =
    match
      List.find_map
        (fun (c : circuit) ->
          List.find_map
            (fun (r : row) -> if measurable r then Some (c.circuit, r.k) else None)
            c.rows)
        baseline.circuits
    with
    | Some pick -> pick
    | None -> Alcotest.fail "no committed row runs long enough to measure"
  in
  let current =
    {
      baseline with
      circuits =
        List.map
          (fun (c : circuit) ->
            if c.circuit <> circuit then c
            else
              {
                c with
                rows =
                  List.map
                    (fun (r : row) ->
                      if r.k = k then
                        { r with nodes_per_sec = r.nodes_per_sec /. 2.0 }
                      else r)
                    c.rows;
              })
          baseline.circuits;
    }
  in
  let findings = diff ~baseline ~current in
  check_bool "throughput drop is not a failure" true (not (has_failures findings));
  check_bool "throughput drop is warned" true
    (List.exists
       (fun f -> f.severity = Warn && f.circuit = circuit && f.k = Some k)
       findings)

let contains_sub s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* Rewrite one (circuit, k) row of [t] through [f]. *)
let map_row t ~circuit ~k f =
  let open Advbist.Bench_snapshot in
  {
    t with
    circuits =
      List.map
        (fun (c : circuit) ->
          if c.circuit <> circuit then c
          else
            {
              c with
              rows = List.map (fun (r : row) -> if r.k = k then f r else r) c.rows;
            })
        t.circuits;
  }

(* A >20% node-count move between two finished searches must be warned,
   and when both rows carry v5 prune attribution the warning must name
   the reason whose share moved most. *)
let test_bench_diff_localizes_node_regression () =
  let open Advbist.Bench_snapshot in
  let committed = load_committed_snapshot () in
  let circuit, k =
    match
      List.find_map
        (fun (c : circuit) ->
          List.find_map
            (fun (r : row) ->
              if r.optimal && r.nodes > 0 then Some (c.circuit, r.k) else None)
            c.rows)
        committed.circuits
    with
    | Some pick -> pick
    | None -> Alcotest.fail "no committed row is optimal with nodes > 0"
  in
  let baseline =
    map_row committed ~circuit ~k (fun r ->
        { r with prune_shares = [ ("probed", 80.0); ("cutoff", 20.0) ] })
  in
  let current =
    map_row committed ~circuit ~k (fun r ->
        {
          r with
          nodes = r.nodes * 2;
          prune_shares = [ ("probed", 40.0); ("cutoff", 60.0) ];
        })
  in
  let findings = diff ~baseline ~current in
  check_bool "node-count move is a warn, not a fail" true
    (not (has_failures findings));
  let warn =
    List.find_opt
      (fun f ->
        f.severity = Warn && f.circuit = circuit && f.k = Some k
        && contains_sub f.what "node count")
      findings
  in
  match warn with
  | None -> Alcotest.fail "no node-count warning emitted"
  | Some f ->
      check_bool "warning names the shifted prune reason" true
        (contains_sub f.what "cutoff share 20% -> 60%")

(* A waste_pct jump of more than 10 points of the tree is its own warn. *)
let test_bench_diff_flags_waste_growth () =
  let open Advbist.Bench_snapshot in
  let committed = load_committed_snapshot () in
  let circuit, k =
    match committed.circuits with
    | c :: _ -> (c.circuit, (List.hd c.rows).k)
    | [] -> Alcotest.fail "committed snapshot has no circuits"
  in
  let baseline =
    map_row committed ~circuit ~k (fun r -> { r with waste_pct = Some 3.0 })
  in
  let current =
    map_row committed ~circuit ~k (fun r -> { r with waste_pct = Some 25.0 })
  in
  let findings = diff ~baseline ~current in
  check_bool "waste growth is a warn, not a fail" true
    (not (has_failures findings));
  check_bool "waste growth is warned" true
    (List.exists
       (fun f ->
         f.severity = Warn && f.circuit = circuit && f.k = Some k
         && contains_sub f.what "wasted work")
       findings)

let () =
  Alcotest.run "advbist"
    [
      ( "parallel",
        [
          Alcotest.test_case "sweep determinism (tseng)" `Slow
            (test_parallel_sweep_deterministic "tseng");
          Alcotest.test_case "sweep determinism (paulin)" `Slow
            (test_parallel_sweep_deterministic "paulin");
          Alcotest.test_case "solve_parallel jobs 1..4 (fig1)" `Quick
            test_solve_parallel_determinism;
          Alcotest.test_case "cross-k seeding (fig1)" `Quick
            test_sweep_cross_k_seeding;
        ] );
      ( "orbits",
        [
          Alcotest.test_case "free registers" `Quick
            test_encoding_orbits_free_registers;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "structural bound sound" `Slow
            test_objective_lower_bound_sound;
          Alcotest.test_case "gap uses structural bound" `Quick
            test_gap_uses_structural_bound;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "stats" `Quick test_encoding_stats;
          Alcotest.test_case "bad inputs" `Quick test_encoding_rejects_bad_inputs;
          Alcotest.test_case "symmetry fixing" `Quick
            test_encoding_symmetry_fixes_clique;
          Alcotest.test_case "lp export" `Quick test_lp_export_of_encoding;
        ] );
      ( "warm_start",
        [
          Alcotest.test_case "vector of plan" `Quick test_vector_of_plan_feasible;
          Alcotest.test_case "vector of netlist" `Quick
            test_vector_of_netlist_reference;
          Alcotest.test_case "whole-suite roundtrip" `Quick
            test_vector_roundtrip_whole_suite;
        ] );
      ( "session_opt",
        [
          Alcotest.test_case "respects wires" `Quick test_session_opt_respects_wires;
          Alcotest.test_case "k monotone" `Quick test_session_opt_k_monotone;
          Alcotest.test_case "matches brute force" `Quick
            test_session_opt_matches_brute_force;
        ] );
      ( "engines",
        [
          Alcotest.test_case "BIST optima agree" `Quick test_engines_agree_fig1;
          Alcotest.test_case "reference optima agree" `Quick
            test_reference_engines_agree;
          Alcotest.test_case "symmetry ablation" `Quick
            test_symmetry_does_not_change_optimum;
        ] );
      ( "audits",
        [
          Alcotest.test_case "functional simulation" `Quick
            test_synthesized_datapath_simulates;
          Alcotest.test_case "k sweep" `Quick test_sweep_fig1;
        ] );
      ( "constants",
        [
          Alcotest.test_case "dedicated TPG" `Quick
            test_constant_port_gets_dedicated_tpg;
          Alcotest.test_case "commutativity" `Quick
            test_commutativity_avoids_constant_tpg;
        ] );
      ( "random_cross_validation",
        List.map QCheck_alcotest.to_alcotest
          [ prop_engines_agree_random; prop_synthesized_simulates_random ] );
      ( "bench_snapshot",
        [
          Alcotest.test_case "parse committed snapshot" `Quick
            test_bench_snapshot_parse_committed;
          Alcotest.test_case "v5 round-trip fixpoint" `Quick
            test_bench_snapshot_roundtrip;
          Alcotest.test_case "self-diff is clean" `Quick
            test_bench_diff_self_clean;
          Alcotest.test_case "area regression flagged" `Quick
            test_bench_diff_flags_area_regression;
          Alcotest.test_case "throughput drop warned" `Quick
            test_bench_diff_flags_throughput_drop;
          Alcotest.test_case "node regression localized to prune reason" `Quick
            test_bench_diff_localizes_node_regression;
          Alcotest.test_case "waste growth warned" `Quick
            test_bench_diff_flags_waste_growth;
        ] );
    ]
