type status = Optimal | Feasible | Infeasible | Unknown

type outcome = {
  status : status;
  solution : int array option;
  objective : int option;
  bound : int;
  nodes : int;
  time_s : float;
}

type lp_mode = Lp_never | Lp_root | Lp_depth of int

type options = {
  time_limit : float option;
  node_limit : int option;
  lp : lp_mode;
  branch_order : int list option;
  prefer_high : bool;
  warm_start : int array option;
  verbose : bool;
  branch_window : int;
  stop : bool Atomic.t option;
  shared_incumbent : int Atomic.t option;
}

let default =
  {
    time_limit = None;
    node_limit = None;
    lp = Lp_root;
    branch_order = None;
    prefer_high = true;
    warm_start = None;
    verbose = false;
    branch_window = 16;
    stop = None;
    shared_incumbent = None;
  }

(* Internal row: terms `sum coef*var <= rhs`.  Eq model rows are split into
   two Le rows; Ge rows are negated.  [minact] caches the row's minimal
   activity (sum of a*lb for a > 0, a*ub for a < 0) and is maintained
   incrementally by every bound change and its trail undo, so propagation
   never rescans the terms to recompute it. *)
type row = { terms : (int * int) array; mutable rhs : int; mutable minact : int }

exception Out_of_time

type search = {
  model : Model.t;
  n : int;
  lb : int array;
  ub : int array;
  rows : row array;
  occ_rows : int array array;  (* var -> deduped row indices, for the worklist *)
  occ_pos : (int * int) array array;  (* var -> (row idx, coef > 0) *)
  occ_neg : (int * int) array array;  (* var -> (row idx, coef < 0) *)
  obj_terms : (int * int) array;
  objc : int array;  (* var -> objective coefficient (0 when absent) *)
  obj_row : row option;  (* objective cutoff, rhs tightened on incumbents *)
  trail : (int * int * bool) Stack.t;  (* (var, old bound, is_lb) *)
  opts : options;
  started : float;
  mutable incumbent : int array option;
  mutable incumbent_obj : int;
  mutable nodes : int;
  mutable ticks : int;  (* row propagations, for the limit-check cadence *)
  mutable root_bound : int;
  branch_seq : int array;
  act : float array;  (* conflict-driven branching activity (VSIDS-style) *)
  mutable act_inc : float;
  value_hint : int array option;
}

let now () = Unix.gettimeofday ()

(* --- trail + incremental activities ------------------------------------ *)

let apply_lb_delta s v delta =
  let ps = s.occ_pos.(v) in
  for i = 0 to Array.length ps - 1 do
    let ri, a = ps.(i) in
    let r = s.rows.(ri) in
    r.minact <- r.minact + (a * delta)
  done;
  let c = s.objc.(v) in
  if c > 0 then
    match s.obj_row with
    | Some r -> r.minact <- r.minact + (c * delta)
    | None -> ()

let apply_ub_delta s v delta =
  let ns = s.occ_neg.(v) in
  for i = 0 to Array.length ns - 1 do
    let ri, a = ns.(i) in
    let r = s.rows.(ri) in
    r.minact <- r.minact + (a * delta)
  done;
  let c = s.objc.(v) in
  if c < 0 then
    match s.obj_row with
    | Some r -> r.minact <- r.minact + (c * delta)
    | None -> ()

let set_lb s v value =
  if value > s.lb.(v) then begin
    Stack.push (v, s.lb.(v), true) s.trail;
    let delta = value - s.lb.(v) in
    s.lb.(v) <- value;
    apply_lb_delta s v delta
  end

let set_ub s v value =
  if value < s.ub.(v) then begin
    Stack.push (v, s.ub.(v), false) s.trail;
    let delta = value - s.ub.(v) in
    s.ub.(v) <- value;
    apply_ub_delta s v delta
  end

let mark s = Stack.length s.trail

let undo_to s m =
  while Stack.length s.trail > m do
    let v, old, is_lb = Stack.pop s.trail in
    if is_lb then begin
      let delta = old - s.lb.(v) in
      s.lb.(v) <- old;
      apply_lb_delta s v delta
    end
    else begin
      let delta = old - s.ub.(v) in
      s.ub.(v) <- old;
      apply_ub_delta s v delta
    end
  done

(* --- limits ------------------------------------------------------------- *)

let check_limits s =
  (match s.opts.stop with
  | Some flag when Atomic.get flag -> raise Out_of_time
  | Some _ | None -> ());
  (match s.opts.time_limit with
  | Some tl when now () -. s.started > tl -> raise Out_of_time
  | Some _ | None -> ());
  match s.opts.node_limit with
  | Some nl when s.nodes >= nl -> raise Out_of_time
  | Some _ | None -> ()

(* Best objective value known anywhere: the local incumbent, tightened by
   solutions other portfolio members published through the shared atomic. *)
let cutoff s =
  match s.opts.shared_incumbent with
  | Some a -> min s.incumbent_obj (Atomic.get a)
  | None -> s.incumbent_obj

(* --- branching activity ------------------------------------------------- *)

let bump_conflict s (r : row) =
  let inc = s.act_inc in
  Array.iter (fun (_, v) -> s.act.(v) <- s.act.(v) +. inc) r.terms;
  s.act_inc <- inc *. 1.02;
  if s.act_inc > 1e100 then begin
    for v = 0 to s.n - 1 do
      s.act.(v) <- s.act.(v) *. 1e-100
    done;
    s.act_inc <- s.act_inc *. 1e-100
  end

(* --- propagation ------------------------------------------------------- *)

(* Bound tightening on one Le row; returns false on conflict, records
   touched variables through [touch].  A row's own tightenings never move
   its cached [minact] (positive-coefficient vars lose upper bound, which
   the min-activity does not read, and symmetrically), so the slack
   computed on entry stays valid throughout the scan. *)
let propagate_row s (r : row) ~touch =
  let minact = r.minact in
  if minact > r.rhs then begin
    bump_conflict s r;
    false
  end
  else begin
    let slack = r.rhs - minact in
    Array.iter
      (fun (a, v) ->
        if a > 0 then begin
          (* a * (x - lb) <= slack *)
          let max_x = s.lb.(v) + (slack / a) in
          if max_x < s.ub.(v) then begin
            set_ub s v max_x;
            touch v
          end
        end
        else begin
          (* (-a) * (ub - x) <= slack  =>  x >= ub - slack / (-a) *)
          let na = -a in
          let min_x = s.ub.(v) - (slack / na) in
          if min_x > s.lb.(v) then begin
            set_lb s v min_x;
            touch v
          end
        end)
      r.terms;
    true
  end

(* Worklist propagation to fixpoint starting from the given variables (or
   all rows when [None]). *)
let propagate s seeds =
  let pending = Queue.create () in
  let queued = Array.make (Array.length s.rows) false in
  let enqueue_row i =
    if not queued.(i) then begin
      queued.(i) <- true;
      Queue.add i pending
    end
  in
  let touch v = Array.iter enqueue_row s.occ_rows.(v) in
  (match seeds with
  | None -> Array.iteri (fun i _ -> enqueue_row i) s.rows
  | Some vars -> List.iter touch vars);
  let ok = ref true in
  (* The objective cutoff row participates whenever a cutoff is known.  Its
     tightenings enqueue ordinary rows, so the whole thing must run to a
     joint fixpoint: drain the queue, re-run the cutoff pass, and repeat
     until neither produces new work. *)
  let obj_pass () =
    match s.obj_row with
    | None -> true
    | Some r ->
        let c = cutoff s in
        if c = max_int then true
        else begin
          if c - 1 < r.rhs then r.rhs <- c - 1;
          propagate_row s r ~touch
        end
  in
  let drain () =
    while !ok && not (Queue.is_empty pending) do
      (* Deep propagation-heavy subtrees must still honour the limits:
         check on a coarse tick counter rather than only per node. *)
      s.ticks <- s.ticks + 1;
      if s.ticks land 2047 = 0 then check_limits s;
      let i = Queue.take pending in
      queued.(i) <- false;
      if not (propagate_row s s.rows.(i) ~touch) then ok := false
    done
  in
  let rec fixpoint () =
    drain ();
    if !ok then
      if not (obj_pass ()) then ok := false
      else if not (Queue.is_empty pending) then fixpoint ()
  in
  fixpoint ();
  !ok

(* --- bounding ---------------------------------------------------------- *)

let objective_min_activity s =
  match s.obj_row with Some r -> r.minact | None -> 0

let lp_bound s =
  match Simplex.relax ~lower:s.lb ~upper:s.ub s.model with
  | Simplex.Optimal { objective; _ } ->
      (* Safety margin before integer rounding: the LP is float-based. *)
      Some (int_of_float (Float.ceil (objective -. 1e-4 -. (1e-9 *. Float.abs objective))))
  | Simplex.Infeasible -> Some max_int
  | Simplex.Unbounded | Simplex.Iteration_limit -> None

let use_lp_at s depth =
  match s.opts.lp with
  | Lp_never -> false
  | Lp_root -> depth = 0
  | Lp_depth d -> depth <= d

(* --- search ------------------------------------------------------------ *)

let record_incumbent s =
  let x = Array.copy s.lb in
  let obj =
    Array.fold_left (fun acc (a, v) -> acc + (a * x.(v))) 0 s.obj_terms
  in
  if s.incumbent = None || obj < s.incumbent_obj then begin
    (match Model.check s.model x with
    | Ok () -> ()
    | Error errs ->
        failwith
          ("Ilp.Solver internal error: incumbent fails audit: "
          ^ String.concat "; " errs));
    s.incumbent <- Some x;
    s.incumbent_obj <- obj;
    (match s.obj_row with
    | Some r -> if obj - 1 < r.rhs then r.rhs <- obj - 1
    | None -> ());
    (match s.opts.shared_incumbent with
    | Some a ->
        (* lower the shared bound to [obj] unless someone got there first *)
        let rec publish () =
          let cur = Atomic.get a in
          if obj < cur && not (Atomic.compare_and_set a cur obj) then
            publish ()
        in
        publish ()
    | None -> ());
    if s.opts.verbose then
      Printf.eprintf "[ilp] incumbent %d after %d nodes (%.2fs)\n%!" obj
        s.nodes
        (now () -. s.started)
  end

(* Dynamic most-constrained selection, windowed over the static order:
   among the first [branch_window] unfixed variables of [branch_seq], pick
   the smallest remaining domain, ties broken by conflict activity, then
   by order.  The window keeps the caller's branch order authoritative at
   the large scale — the ADVBIST encoding's variable hierarchy is
   essential to its pruning — while conflicts still reorder locally.
   With no conflicts recorded yet (all activities zero) and uniform
   domains, this is exactly the static first-unfixed scan, including its
   early exit. *)
let pick_branch_var s =
  let seq = s.branch_seq in
  let n_seq = Array.length seq in
  let w = max 1 s.opts.branch_window in
  let best = ref (-1) in
  let best_dom = ref max_int in
  let best_act = ref neg_infinity in
  let seen = ref 0 in
  let i = ref 0 in
  while !i < n_seq && !seen < w do
    let v = seq.(!i) in
    let dom = s.ub.(v) - s.lb.(v) in
    if dom > 0 then begin
      incr seen;
      if dom < !best_dom || (dom = !best_dom && s.act.(v) > !best_act) then begin
        best := v;
        best_dom := dom;
        best_act := s.act.(v)
      end
    end;
    incr i
  done;
  if !best < 0 then None else Some !best

let rec dfs s depth =
  s.nodes <- s.nodes + 1;
  if s.nodes land 63 = 0 || use_lp_at s depth then check_limits s;
  let c = cutoff s in
  if c < max_int && objective_min_activity s >= c then ()
  else if use_lp_at s depth then begin
    match lp_bound s with
    | Some b ->
        if depth = 0 && b > s.root_bound then s.root_bound <- b;
        if b = max_int then () (* LP-infeasible node *)
        else if c < max_int && b >= c then ()
        else branch s depth
    | None -> branch s depth
  end
  else branch s depth

and branch s depth =
  match pick_branch_var s with
  | None -> record_incumbent s
  | Some v ->
      let lo = s.lb.(v) and hi = s.ub.(v) in
      let values =
        if hi - lo <= 8 then begin
          (* enumerate values, hint (or preferred end) first *)
          let all = List.init (hi - lo + 1) (fun i -> lo + i) in
          let all = if s.opts.prefer_high then List.rev all else all in
          match s.value_hint with
          | Some h when h.(v) >= lo && h.(v) <= hi ->
              h.(v) :: List.filter (fun x -> x <> h.(v)) all
          | Some _ | None -> all
        end
        else []
      in
      if values <> [] then
        List.iter
          (fun value ->
            let m = mark s in
            set_lb s v value;
            set_ub s v value;
            if propagate s (Some [ v ]) then dfs s (depth + 1);
            undo_to s m)
          values
      else begin
        (* wide integer domain: bisect *)
        let mid = lo + ((hi - lo) / 2) in
        let m = mark s in
        set_ub s v mid;
        if propagate s (Some [ v ]) then dfs s (depth + 1);
        undo_to s m;
        let m = mark s in
        set_lb s v (mid + 1);
        if propagate s (Some [ v ]) then dfs s (depth + 1);
        undo_to s m
      end

let solve ?(options = default) model =
  let n = Model.n_vars model in
  let lb = Array.make n 0 and ub = Array.make n 0 in
  for v = 0 to n - 1 do
    let l, u = Model.bounds model v in
    lb.(v) <- l;
    ub.(v) <- u
  done;
  (* Normalize rows to Le. *)
  let rows = ref [] in
  Array.iter
    (fun (c : Model.constr) ->
      let terms = Array.of_list (Linexpr.terms c.Model.expr) in
      let neg = Array.map (fun (a, v) -> (-a, v)) terms in
      match c.Model.sense with
      | Model.Le -> rows := { terms; rhs = c.Model.rhs; minact = 0 } :: !rows
      | Model.Ge -> rows := { terms = neg; rhs = -c.Model.rhs; minact = 0 } :: !rows
      | Model.Eq ->
          rows :=
            { terms = neg; rhs = -c.Model.rhs; minact = 0 }
            :: { terms; rhs = c.Model.rhs; minact = 0 }
            :: !rows)
    (Model.constraints model);
  let rows = Array.of_list (List.rev !rows) in
  (* Occurrence lists, deduped and split by coefficient sign.  [occ_rows]
     drives worklist enqueueing; [occ_pos]/[occ_neg] drive the incremental
     min-activity updates on lower/upper bound changes respectively. *)
  let occ_all = Array.make (max n 1) [] in
  Array.iteri
    (fun i r ->
      Array.iter (fun (a, v) -> occ_all.(v) <- (i, a) :: occ_all.(v)) r.terms)
    rows;
  let occ_rows =
    Array.map
      (fun l -> Array.of_list (List.sort_uniq compare (List.map fst l)))
      occ_all
  in
  let occ_pos =
    Array.map
      (fun l -> Array.of_list (List.rev (List.filter (fun (_, a) -> a > 0) l)))
      occ_all
  in
  let occ_neg =
    Array.map
      (fun l -> Array.of_list (List.rev (List.filter (fun (_, a) -> a < 0) l)))
      occ_all
  in
  let obj_terms = Array.of_list (Linexpr.terms (Model.objective model)) in
  let objc = Array.make (max n 1) 0 in
  Array.iter (fun (a, v) -> objc.(v) <- a) obj_terms;
  let obj_row =
    if Array.length obj_terms = 0 then None
    else Some { terms = obj_terms; rhs = max_int / 2; minact = 0 }
  in
  (* Initial min-activities from the root bounds; every later bound change
     updates them through the trail. *)
  let init_minact (r : row) =
    r.minact <-
      Array.fold_left
        (fun acc (a, v) -> acc + (if a > 0 then a * lb.(v) else a * ub.(v)))
        0 r.terms
  in
  Array.iter init_minact rows;
  Option.iter init_minact obj_row;
  let branch_seq =
    match options.branch_order with
    | None -> Array.init n (fun i -> i)
    | Some order ->
        let seen = Array.make n false in
        let pref = List.filter (fun v -> v >= 0 && v < n) order in
        List.iter (fun v -> seen.(v) <- true) pref;
        let rest = List.filter (fun v -> not seen.(v)) (List.init n Fun.id) in
        Array.of_list (pref @ rest)
  in
  let warm =
    match options.warm_start with
    | Some x when Array.length x = n && Model.check model x = Ok () -> Some x
    | Some _ | None -> None
  in
  let s =
    {
      model;
      n;
      lb;
      ub;
      rows;
      occ_rows;
      occ_pos;
      occ_neg;
      obj_terms;
      objc;
      obj_row;
      trail = Stack.create ();
      opts = options;
      started = now ();
      incumbent = None;
      incumbent_obj = max_int;
      nodes = 0;
      ticks = 0;
      root_bound = min_int;
      branch_seq;
      act = Array.make (max n 1) 0.0;
      act_inc = 1.0;
      value_hint = options.warm_start;
    }
  in
  (match warm with
  | Some x ->
      let obj =
        Array.fold_left (fun acc (a, v) -> acc + (a * x.(v))) 0 obj_terms
      in
      s.incumbent <- Some (Array.copy x);
      s.incumbent_obj <- obj;
      (match s.obj_row with Some r -> r.rhs <- obj - 1 | None -> ())
  | None -> ());
  let root_mark = ref 0 in
  let complete =
    try
      let root_ok = propagate s None in
      root_mark := mark s;
      if root_ok then dfs s 0;
      true
    with Out_of_time -> false
  in
  (* A limit can fire mid-branch with the trail partially wound; rewind to
     the root-propagated state so the trivial bound below is a bound on the
     whole problem, not on the interrupted subtree. *)
  undo_to s !root_mark;
  let time_s = now () -. s.started in
  let trivial_bound = objective_min_activity s in
  match (s.incumbent, complete) with
  | Some x, true ->
      {
        status = Optimal;
        solution = Some x;
        objective = Some s.incumbent_obj;
        bound = s.incumbent_obj;
        nodes = s.nodes;
        time_s;
      }
  | Some x, false ->
      {
        status = Feasible;
        solution = Some x;
        objective = Some s.incumbent_obj;
        bound = max s.root_bound trivial_bound;
        nodes = s.nodes;
        time_s;
      }
  | None, true ->
      {
        status = Infeasible;
        solution = None;
        objective = None;
        bound = max_int;
        nodes = s.nodes;
        time_s;
      }
  | None, false ->
      {
        status = Unknown;
        solution = None;
        objective = None;
        bound = max s.root_bound trivial_bound;
        nodes = s.nodes;
        time_s;
      }
