type status = Optimal | Feasible | Infeasible | Unknown

type outcome = {
  status : status;
  solution : int array option;
  objective : int option;
  bound : int;
  nodes : int;
  time_s : float;
  orbits : int;
  stolen : int;
  stats : Stats.t option;
}

type lp_mode = Lp_never | Lp_root | Lp_depth of int

type options = {
  time_limit : float option;
  node_limit : int option;
  lp : lp_mode;
  pricing : Simplex.pricing;
  cuts : bool;
  branch_order : int list option;
  prefer_high : bool;
  warm_start : int array option;
  incumbent_start : int array option;
  verbose : bool;
  branch_window : int;
  stop : bool Atomic.t option;
  shared_incumbent : int Atomic.t option;
  sym : bool;
  orbits : Symmetry.orbit list;
  stats : bool;
  trace : Trace.sink option;
}

let default =
  {
    time_limit = None;
    node_limit = None;
    lp = Lp_root;
    pricing = Simplex.Devex;
    cuts = true;
    branch_order = None;
    prefer_high = true;
    warm_start = None;
    incumbent_start = None;
    verbose = false;
    branch_window = 16;
    stop = None;
    shared_incumbent = None;
    sym = true;
    orbits = [];
    stats = false;
    trace = None;
  }

exception Out_of_time

(* Warm LP engine state: one persistent dual-simplex instance reused across
   every node of the DFS.  The basis is never rewound with the trail — the
   parent's optimal basis stays dual feasible under the child's bounds, so
   each node re-solves in a few dual pivots from wherever the last node
   left off.  [root_basis] is a recovery point (restored after repeated
   numerical failures), not a per-node protocol. *)
type lp_state = {
  inst : Simplex.instance;
  root_basis : Simplex.snapshot;
  mutable fails : int;  (* consecutive resolves without a usable result *)
  mutable last_obj : float;  (* objective of the last Optimal resolve *)
  mutable at_optimum : bool;
      (* the last resolve reached optimality — required before the
         reduced costs can drive variable fixing *)
}

(* Search state.  The per-node hot structures are flat int arrays:

   - Rows live in one CSR block ([row_start]/[row_coef]/[row_var], with
     [row_rhs]/[row_minact]/[row_stamp] per row): `sum coefs * vars <=
     rhs`, Eq model rows split into two Le rows, Ge rows negated.
     Ordinary rows are [0 .. n_rows-1]; the objective cutoff row, when the
     model has an objective, is row [n_rows] in the same block — uniform
     indexing keeps [propagate_row]/[bump_conflict] branch-free.  [minact]
     caches the row's minimal activity (sum of a*lb for a > 0, a*ub for
     a < 0), maintained incrementally by every bound change and its undo.
   - Occurrence lists are CSR too: [occ_start]/[occ_row] (deduped row
     indices per variable, driving worklist enqueueing) and the signed
     pairs [occ_pos_*]/[occ_neg_*] driving the incremental min-activity
     updates on lower/upper bound changes.
   - The trail is two parallel int arrays ([(v lsl 1) lor is_lb], old
     bound) grown by doubling — no per-push block allocation.
   - The propagation worklist is a power-of-two ring buffer with
     generation-stamped membership; a row is in the queue at most once,
     so the ring never overflows.

   Everything a node touches is therefore preallocated with the search
   (per worker in [solve_parallel]): the steady-state DFS loop allocates
   nothing. *)
type search = {
  model : Model.t;
  n : int;
  lb : int array;
  ub : int array;
  n_rows : int;  (* ordinary rows; the cutoff row is index [n_rows] *)
  has_obj_row : bool;
  row_start : int array;  (* n_rows + 2 *)
  row_coef : int array;
  row_var : int array;
  row_rhs : int array;
  row_minact : int array;
  row_stamp : int array;
      (* generation of the last (non-probing) min-activity change; lets
         probing skip variables whose rows haven't moved since their last
         probe *)
  occ_start : int array;  (* n + 1 *)
  occ_row : int array;  (* deduped row indices, ascending *)
  occ_pos_start : int array;
  occ_pos_ri : int array;  (* row indices with coef > 0 ... *)
  occ_pos_a : int array;  (* ... and the matching coefficients *)
  occ_neg_start : int array;
  occ_neg_ri : int array;
  occ_neg_a : int array;
  obj_terms : (int * int) array;
  objc : int array;  (* var -> objective coefficient (0 when absent) *)
  mutable obj_dirty : bool;
      (* the cutoff row's minact or rhs moved since its last scan; clean
         means a rescan cannot deduce anything new, so [obj_pass] skips
         the O(obj nnz) row walk on the (common) nodes that never touch
         an objective variable's minact side *)
  orbits_arr : Symmetry.orbit array;  (* [opts.orbits], array-indexed *)
  var_orbit_start : int array;  (* n + 1: CSR var -> orbits containing it *)
  var_orbit_idx : int array;
  orbit_dirty : bool array;  (* orbit is in the dirty stack *)
  orbit_stack : int array;
  mutable orbit_top : int;
      (* orbit enforcement is worklist-driven like rows: a bound change
         on an orbit member pushes its orbit; clean orbits stay at their
         canonical fixpoint and are never rescanned *)
  mutable trail_entry : int array;  (* (var lsl 1) lor is_lb *)
  mutable trail_old : int array;  (* previous bound value *)
  mutable trail_len : int;
  opts : options;
  started : float;
  mutable incumbent : int array option;
  mutable incumbent_obj : int;
  mutable nodes : int;
  mutable ticks : int;  (* row propagations, for the limit-check cadence *)
  mutable root_bound : int;
  mutable lp_st : lp_state option;
  prop_queue : int array;  (* ring buffer, power-of-two capacity *)
  queue_mask : int;
  mutable q_head : int;
  mutable q_tail : int;
  prop_queued : int array;  (* row -> generation when last enqueued *)
  mutable prop_gen : int;
  probe_stamp : int array;  (* var -> change generation at last probe *)
  mutable change_gen : int;  (* bound-change generation counter *)
  mutable no_stamp : bool;  (* true inside probing trials: don't stamp *)
  mutable probe_hit : bool;  (* last probe_candidates landed a fixing *)
  mutable probe_miss : int;  (* consecutive probe calls without a fixing *)
  mutable probe_skip : int;  (* nodes left to skip before probing again *)
  probe_depth : int;  (* deepest node level probing may fire at *)
  branch_seq : int array;
  seq_pos : int array;
      (* var -> index in [branch_seq] (a total permutation); lets [undo_to]
         clamp [branch_head] when a restore re-widens an earlier variable *)
  mutable branch_head : int;
      (* first index of [branch_seq] that may still be unfixed; advanced
         lazily by [pick_branch_var], only ever moved back by [undo_to] *)
  act : float array;  (* conflict-driven branching activity (VSIDS-style) *)
  mutable act_inc : float;
  value_hint : int array option;
  stats : Stats.t option;
      (* telemetry; None costs one branch per instrumented site *)
}

let now () = Unix.gettimeofday ()

(* --- trail + incremental activities ------------------------------------ *)

let trail_push s v old is_lb =
  let len = s.trail_len in
  if len = Array.length s.trail_entry then begin
    let cap = 2 * len in
    let e = Array.make cap 0 and o = Array.make cap 0 in
    Array.blit s.trail_entry 0 e 0 len;
    Array.blit s.trail_old 0 o 0 len;
    s.trail_entry <- e;
    s.trail_old <- o
  end;
  Array.unsafe_set s.trail_entry len ((v lsl 1) lor Bool.to_int is_lb);
  Array.unsafe_set s.trail_old len old;
  s.trail_len <- len + 1

let apply_lb_delta s v delta =
  if not s.no_stamp then s.change_gen <- s.change_gen + 1;
  let gen = s.change_gen and stamping = not s.no_stamp in
  let minact = s.row_minact and stamp = s.row_stamp in
  for i = s.occ_pos_start.(v) to s.occ_pos_start.(v + 1) - 1 do
    let r = Array.unsafe_get s.occ_pos_ri i in
    Array.unsafe_set minact r
      (Array.unsafe_get minact r + (Array.unsafe_get s.occ_pos_a i * delta));
    if stamping then Array.unsafe_set stamp r gen
  done;
  let c = Array.unsafe_get s.objc v in
  if c > 0 && s.has_obj_row then begin
    minact.(s.n_rows) <- minact.(s.n_rows) + (c * delta);
    s.obj_dirty <- true
  end

let apply_ub_delta s v delta =
  if not s.no_stamp then s.change_gen <- s.change_gen + 1;
  let gen = s.change_gen and stamping = not s.no_stamp in
  let minact = s.row_minact and stamp = s.row_stamp in
  for i = s.occ_neg_start.(v) to s.occ_neg_start.(v + 1) - 1 do
    let r = Array.unsafe_get s.occ_neg_ri i in
    Array.unsafe_set minact r
      (Array.unsafe_get minact r + (Array.unsafe_get s.occ_neg_a i * delta));
    if stamping then Array.unsafe_set stamp r gen
  done;
  let c = Array.unsafe_get s.objc v in
  if c < 0 && s.has_obj_row then begin
    minact.(s.n_rows) <- minact.(s.n_rows) + (c * delta);
    s.obj_dirty <- true
  end

(* Mark every orbit containing [v] dirty.  Only the forward path ([set_lb]
   / [set_ub]) marks: the trail undo restores a state whose orbits were
   already at fixpoint, so it applies the deltas directly and skips
   this. *)
let enqueue_orbits s v =
  for i = s.var_orbit_start.(v) to s.var_orbit_start.(v + 1) - 1 do
    let oi = Array.unsafe_get s.var_orbit_idx i in
    if not (Array.unsafe_get s.orbit_dirty oi) then begin
      Array.unsafe_set s.orbit_dirty oi true;
      s.orbit_stack.(s.orbit_top) <- oi;
      s.orbit_top <- s.orbit_top + 1
    end
  done

let enqueue_all_orbits s =
  s.orbit_top <- 0;
  for oi = 0 to Array.length s.orbits_arr - 1 do
    s.orbit_dirty.(oi) <- true;
    s.orbit_stack.(oi) <- oi;
    s.orbit_top <- oi + 1
  done

let set_lb s v value =
  if value > s.lb.(v) then begin
    trail_push s v s.lb.(v) true;
    let delta = value - s.lb.(v) in
    s.lb.(v) <- value;
    apply_lb_delta s v delta;
    enqueue_orbits s v
  end

let set_ub s v value =
  if value < s.ub.(v) then begin
    trail_push s v s.ub.(v) false;
    let delta = value - s.ub.(v) in
    s.ub.(v) <- value;
    apply_ub_delta s v delta;
    enqueue_orbits s v
  end

let mark s = s.trail_len

let undo_to s m =
  while s.trail_len > m do
    let len = s.trail_len - 1 in
    s.trail_len <- len;
    let e = Array.unsafe_get s.trail_entry len in
    let old = Array.unsafe_get s.trail_old len in
    let v = e lsr 1 in
    let p = Array.unsafe_get s.seq_pos v in
    if p < s.branch_head then s.branch_head <- p;
    if e land 1 = 1 then begin
      let delta = old - s.lb.(v) in
      s.lb.(v) <- old;
      apply_lb_delta s v delta
    end
    else begin
      let delta = old - s.ub.(v) in
      s.ub.(v) <- old;
      apply_ub_delta s v delta
    end
  done

(* --- limits ------------------------------------------------------------- *)

let check_limits s =
  (match s.opts.stop with
  | Some flag when Atomic.get flag -> raise Out_of_time
  | Some _ | None -> ());
  (match s.opts.time_limit with
  | Some tl when now () -. s.started > tl -> raise Out_of_time
  | Some _ | None -> ());
  match s.opts.node_limit with
  | Some nl when s.nodes >= nl -> raise Out_of_time
  | Some _ | None -> ()

(* Best objective value known anywhere: the local incumbent, tightened by
   solutions other portfolio members published through the shared atomic. *)
let cutoff s =
  match s.opts.shared_incumbent with
  | Some a -> min s.incumbent_obj (Atomic.get a)
  | None -> s.incumbent_obj

(* --- branching activity ------------------------------------------------- *)

let bump_conflict s ri =
  let inc = s.act_inc in
  for i = s.row_start.(ri) to s.row_start.(ri + 1) - 1 do
    let v = Array.unsafe_get s.row_var i in
    Array.unsafe_set s.act v (Array.unsafe_get s.act v +. inc)
  done;
  s.act_inc <- inc *. 1.02;
  if s.act_inc > 1e100 then begin
    for v = 0 to s.n - 1 do
      s.act.(v) <- s.act.(v) *. 1e-100
    done;
    s.act_inc <- s.act_inc *. 1e-100
  end

(* --- propagation ------------------------------------------------------- *)

(* Worklist membership is generation-stamped: a row whose stamp equals the
   current generation is in the ring.  Dequeuing resets the stamp so a row
   can re-enter within the same fixpoint, exactly like the old queue. *)
let enqueue_row s i =
  if Array.unsafe_get s.prop_queued i <> s.prop_gen then begin
    Array.unsafe_set s.prop_queued i s.prop_gen;
    Array.unsafe_set s.prop_queue (s.q_tail land s.queue_mask) i;
    s.q_tail <- s.q_tail + 1
  end

let touch s v =
  for i = Array.unsafe_get s.occ_start v
       to Array.unsafe_get s.occ_start (v + 1) - 1 do
    enqueue_row s (Array.unsafe_get s.occ_row i)
  done

(* Bound tightening on one Le row; returns false on conflict, enqueues the
   rows of every touched variable.  A row's own tightenings never move its
   cached [minact] (positive-coefficient vars lose upper bound, which the
   min-activity does not read, and symmetrically), so the slack computed
   on entry stays valid throughout the scan. *)
let propagate_row s ri =
  let minact = Array.unsafe_get s.row_minact ri in
  let rhs = Array.unsafe_get s.row_rhs ri in
  if minact > rhs then begin
    bump_conflict s ri;
    false
  end
  else begin
    let slack = rhs - minact in
    for i = s.row_start.(ri) to s.row_start.(ri + 1) - 1 do
      let a = Array.unsafe_get s.row_coef i
      and v = Array.unsafe_get s.row_var i in
      (* Unit coefficients dominate these models; skipping the integer
         division for them is worth a branch. *)
      if a > 0 then begin
        (* a * (x - lb) <= slack *)
        let max_x =
          Array.unsafe_get s.lb v + (if a = 1 then slack else slack / a)
        in
        if max_x < Array.unsafe_get s.ub v then begin
          set_ub s v max_x;
          touch s v
        end
      end
      else begin
        (* (-a) * (ub - x) <= slack  =>  x >= ub - slack / (-a) *)
        let min_x =
          Array.unsafe_get s.ub v - (if a = -1 then slack else slack / -a)
        in
        if min_x > Array.unsafe_get s.lb v then begin
          set_lb s v min_x;
          touch s v
        end
      end
    done;
    true
  end

(* --- orbital fixing ------------------------------------------------------

   Enforce the canonical sorted-decreasing representative of every orbit in
   [s.opts.orbits] on the current domains (see {!Symmetry}).  Scalar chains
   propagate upper bounds forward and lower bounds backward; block orbits
   run a bounded lex propagator on adjacent column pairs, advancing past
   components the domains already force equal.  Sound because each orbit is
   a true symmetry: restricting the search to canonical representatives
   keeps at least one optimal solution, and the lex rows added at the root
   commit the search to that representative anyway.  Returns [false] on a
   canonical-order conflict. *)
let orbit_pass s =
  let ok = ref true in
  (* enforce value(a) >= value(b); after the ub clamp lb(b) <= ub(a) always
     holds, so the lb raise below can never cross *)
  let ge a b =
    if s.ub.(b) > s.ub.(a) then begin
      if s.ub.(a) < s.lb.(b) then ok := false
      else begin
        set_ub s b s.ub.(a);
        (match s.stats with
        | Some st -> st.Stats.orbit_fixings <- st.Stats.orbit_fixings + 1
        | None -> ());
        touch s b
      end
    end;
    if !ok && s.lb.(a) < s.lb.(b) then begin
      set_lb s a s.lb.(b);
      (match s.stats with
      | Some st -> st.Stats.orbit_fixings <- st.Stats.orbit_fixings + 1
      | None -> ());
      touch s a
    end
  in
  (* Drain the dirty stack; a tightening made while an orbit is processed
     re-pushes the owning orbit, so the loop runs to its own fixpoint. *)
  while !ok && s.orbit_top > 0 do
    s.orbit_top <- s.orbit_top - 1;
    let oi = s.orbit_stack.(s.orbit_top) in
    s.orbit_dirty.(oi) <- false;
    match s.orbits_arr.(oi) with
    | Symmetry.Scalar vs ->
        let m = Array.length vs in
        s.ticks <- s.ticks + 1;
        for i = 0 to m - 2 do
          if !ok then ge vs.(i) vs.(i + 1)
        done;
        for i = m - 2 downto 0 do
          if !ok then ge vs.(i) vs.(i + 1)
        done
    | Symmetry.Blocks cols ->
        let nc = Array.length cols in
        let len = if nc = 0 then 0 else Array.length cols.(0) in
        for j = 0 to nc - 2 do
          if !ok then begin
            s.ticks <- s.ticks + 1;
            let a = cols.(j) and b = cols.(j + 1) in
            let i = ref 0 and go = ref true in
            while !ok && !go && !i < len do
              let u = a.(!i) and v = b.(!i) in
              ge u v;
              (* the component ordering is only implied while every
                 earlier component pair is forced equal *)
              if
                !ok
                && s.lb.(u) = s.ub.(u)
                && s.lb.(v) = s.ub.(v)
                && s.lb.(u) = s.lb.(v)
              then incr i
              else go := false
            done
          end
        done
  done;
  !ok

(* Reset the worklist for a fresh fixpoint: a new generation invalidates
   all membership stamps in O(1) and the ring rewinds. *)
let prop_enter s =
  (match s.stats with
  | Some st -> st.Stats.prop_fixpoints <- st.Stats.prop_fixpoints + 1
  | None -> ());
  s.prop_gen <- s.prop_gen + 1;
  s.q_head <- 0;
  s.q_tail <- 0

(* The objective cutoff row participates whenever a cutoff is known.  Its
   tightenings enqueue ordinary rows, so the whole thing must run to a
   joint fixpoint with the drain loop. *)
let obj_pass s =
  if not s.has_obj_row then begin
    s.obj_dirty <- false;
    true
  end
  else begin
    let c = cutoff s in
    if c = max_int then begin
      (* no cutoff: the row's huge rhs can't deduce anything — stay clean
         so the pending-work check below terminates *)
      s.obj_dirty <- false;
      true
    end
    else begin
      let ri = s.n_rows in
      if c - 1 < s.row_rhs.(ri) then begin
        s.row_rhs.(ri) <- c - 1;
        s.obj_dirty <- true
      end;
      (* A scan can only deduce something new when the row's slack shrank,
         i.e. its minact rose or its rhs dropped — exactly what sets the
         dirty flag.  (Upper-bound cuts on positive-coefficient objective
         variables leave every threshold lb(v) + slack/a unchanged.) *)
      if s.obj_dirty then begin
        s.obj_dirty <- false;
        propagate_row s ri
      end
      else true
    end
  end

(* Run the seeded worklist to fixpoint.  [budget] caps the number of row
   propagations: an exhausted budget stops early and reports [true] —
   sound for probing trials, where a missed deduction only means a missed
   fixing, never a wrong one (callers undo the trial bounds either way). *)
let prop_run ?(budget = max_int) s =
  let ok = ref true in
  let left = ref budget in
  let drain () =
    while !ok && !left > 0 && s.q_head <> s.q_tail do
      (* Deep propagation-heavy subtrees must still honour the limits:
         check on a coarse tick counter rather than only per node. *)
      s.ticks <- s.ticks + 1;
      decr left;
      if s.ticks land 2047 = 0 then check_limits s;
      let i = Array.unsafe_get s.prop_queue (s.q_head land s.queue_mask) in
      s.q_head <- s.q_head + 1;
      Array.unsafe_set s.prop_queued i 0;
      if not (propagate_row s i) then ok := false
    done
  in
  let rec fixpoint () =
    drain ();
    if !ok && !left > 0 then
      if not (obj_pass s) then ok := false
      else if s.orbit_top > 0 && not (orbit_pass s) then ok := false
        (* orbit enforcement may move an objective variable's minact side
           without enqueueing any ordinary row, so pending obj work keeps
           the fixpoint going too *)
      else if s.q_head <> s.q_tail || s.obj_dirty then fixpoint ()
  in
  fixpoint ();
  (match s.stats with
  | Some st when not !ok ->
      st.Stats.prop_conflicts <- st.Stats.prop_conflicts + 1
  | Some _ | None -> ());
  !ok

(* Worklist propagation to fixpoint starting from the given variables (or
   all rows when [None]). *)
let propagate ?budget s seeds =
  prop_enter s;
  (match seeds with
  | None ->
      for i = 0 to s.n_rows - 1 do
        enqueue_row s i
      done;
      s.obj_dirty <- true;
      enqueue_all_orbits s
  | Some vars -> List.iter (fun v -> touch s v) vars);
  prop_run ?budget s

(* Single-seed fast path for branching and probing: no list allocation. *)
let propagate1 ?budget s v =
  prop_enter s;
  touch s v;
  prop_run ?budget s

(* --- bounding ---------------------------------------------------------- *)

let objective_min_activity s =
  if s.has_obj_row then s.row_minact.(s.n_rows) else 0

(* The LP is float-based; round up only past a safety margin so the integer
   bound can never overshoot the true optimum. *)
let safe_bound obj =
  int_of_float (Float.ceil (obj -. 1e-4 -. (1e-9 *. Float.abs obj)))

(* An explicit infeasibility constructor instead of the old [Some max_int]
   sentinel, which any caller arithmetic could have silently overflowed. *)
type node_bound = Bound of int | Bound_infeasible | Bound_none

(* At most this many dual pivots per node LP.  A capped solve still
   returns its weak-duality bound, so the cap trades bound sharpness for
   node throughput — unfinished re-optimization simply continues from the
   same basis at the next node. *)
let node_lp_iters = 40

let lp_bound_core s =
  match s.lp_st with
  | Some st when st.fails < 50 -> begin
      let inst = st.inst in
      for v = 0 to s.n - 1 do
        Simplex.set_bounds inst v ~lo:(float_of_int s.lb.(v))
          ~up:(float_of_int s.ub.(v))
      done;
      (match s.stats with
      | Some t -> t.Stats.lp_resolves <- t.Stats.lp_resolves + 1
      | None -> ());
      match Simplex.resolve ~max_iters:node_lp_iters inst with
      | Simplex.Optimal { objective; _ } ->
          st.fails <- 0;
          st.last_obj <- objective;
          st.at_optimum <- true;
          (match s.stats with
          | Some t -> t.Stats.lp_warm <- t.Stats.lp_warm + 1
          | None -> ());
          Bound (safe_bound objective)
      | Simplex.Infeasible ->
          st.fails <- 0;
          st.at_optimum <- false;
          (match s.stats with
          | Some t -> t.Stats.lp_infeasible <- t.Stats.lp_infeasible + 1
          | None -> ());
          Bound_infeasible
      | Simplex.Iteration_limit | Simplex.Unbounded -> (
          st.at_optimum <- false;
          match Simplex.dual_bound inst with
          | Some z ->
              st.fails <- 0;
              (match s.stats with
              | Some t -> t.Stats.lp_fallbacks <- t.Stats.lp_fallbacks + 1
              | None -> ());
              Bound (safe_bound z)
          | None ->
              st.fails <- st.fails + 1;
              if st.fails mod 5 = 0 then
                ignore (Simplex.restore inst st.root_basis);
              Bound_none)
    end
  | Some _ -> Bound_none (* engine written off after repeated failures *)
  | None -> begin
      (* cold fallback: two-phase solve from scratch *)
      (match s.stats with
      | Some t ->
          t.Stats.lp_resolves <- t.Stats.lp_resolves + 1;
          t.Stats.lp_cold <- t.Stats.lp_cold + 1
      | None -> ());
      match Simplex.relax ~lower:s.lb ~upper:s.ub s.model with
      | Simplex.Optimal { objective; _ } -> Bound (safe_bound objective)
      | Simplex.Infeasible ->
          (match s.stats with
          | Some t -> t.Stats.lp_infeasible <- t.Stats.lp_infeasible + 1
          | None -> ());
          Bound_infeasible
      | Simplex.Unbounded | Simplex.Iteration_limit -> Bound_none
    end

let lp_bound s =
  match s.stats with
  | None -> lp_bound_core s
  | Some st ->
      let t0 = now () in
      let r = lp_bound_core s in
      st.Stats.lp_s <- st.Stats.lp_s +. (now () -. t0);
      r

(* Reduced-cost fixing against cutoff [c]: with node LP value [z], moving a
   nonbasic variable off its bound costs at least its reduced cost, so if
   [z + |d|] already rounds to [>= c] no solution *better* than the
   incumbent can move it — fix it at the bound for the whole subtree (via
   the trail, so backtracking undoes it).  Returns the fixed variables for
   the propagation fixpoint. *)
let reduced_cost_fix s c =
  match s.lp_st with
  | None -> []
  | Some st when not st.at_optimum -> []
  | Some st ->
      let z = st.last_obj in
      let fixed = ref [] in
      List.iter
        (fun (v, at_upper, d) ->
          if s.lb.(v) < s.ub.(v) && safe_bound (z +. Float.abs d) >= c then begin
            if at_upper then set_lb s v s.ub.(v) else set_ub s v s.lb.(v);
            fixed := v :: !fixed
          end)
        (Simplex.nonbasic_reduced_costs st.inst);
      (match (s.stats, !fixed) with
      | Some t, _ :: _ ->
          t.Stats.rc_fixings <- t.Stats.rc_fixings + List.length !fixed
      | _ -> ());
      !fixed

(* Root probing (failed-literal shaving) against the incumbent cutoff:
   tentatively commit each endpoint of every unit-domain variable and run
   the propagation fixpoint; an endpoint that conflicts is removed for
   good.  Because the objective cutoff row joins the fixpoint, this is
   objective-driven — a fixing only ever excludes solutions no better
   than the incumbent, so the optimum survives.  Passes repeat while
   fixings land; [false] means the root itself is exhausted under the
   cutoff, i.e. the incumbent is optimal. *)
let probe_fixpoint s ~max_passes =
  if cutoff s = max_int then true
  else begin
    let alive = ref true in
    let changed = ref true in
    let passes = ref 0 in
    while !alive && !changed && !passes < max_passes do
      incr passes;
      changed := false;
      let i = ref 0 in
      while !alive && !i < s.n do
        let v = !i in
        if s.ub.(v) - s.lb.(v) = 1 then begin
          let lo = s.lb.(v) and hi = s.ub.(v) in
          (match s.stats with
          | Some st -> st.Stats.probe_trials <- st.Stats.probe_trials + 1
          | None -> ());
          let m = mark s in
          set_ub s v lo;
          let ok_lo = propagate1 s v in
          undo_to s m;
          if not ok_lo then begin
            set_lb s v hi;
            changed := true;
            if not (propagate1 s v) then alive := false
          end
          else begin
            (match s.stats with
            | Some st -> st.Stats.probe_trials <- st.Stats.probe_trials + 1
            | None -> ());
            let m = mark s in
            set_lb s v hi;
            let ok_hi = propagate1 s v in
            undo_to s m;
            if not ok_hi then begin
              set_ub s v lo;
              changed := true;
              if not (propagate1 s v) then alive := false
            end
          end
        end;
        incr i
      done
    done;
    !alive
  end

let use_lp_at s depth =
  match s.opts.lp with
  | Lp_never -> false
  | Lp_root -> depth = 0
  | Lp_depth d -> depth <= d

(* In-tree probing parameters.  [probe_window] candidates are examined per
   probed node; each trial propagation is cut off after [probe_budget] row
   propagations (a truncated trial just means a missed fixing, never a
   wrong one).  [probe_half] probes only the endpoint the warm-start hint
   disfavours — the branching step commits the hinted value first anyway,
   so refuting the opposite endpoint is the deduction that pays. *)
let probe_window = 24
let probe_budget = 300
let probe_half = true

(* Exponential backoff on fruitless probing: after [m] consecutive probe
   calls that fixed nothing, the next [2^m - 1] nodes skip probing
   entirely (capped at 63-node gaps).  A search that is still improving
   its incumbent rarely yields probe fixings, so probing self-throttles
   to a few percent of nodes and the dive keeps its raw throughput; once
   the search turns into an optimality proof the fixings come back, the
   streak resets, and probing runs at full cadence where it pays. *)
let probe_max_backoff = 6

(* Probe only the next [w] unfixed variables in branch order — the node's
   own branching candidates — instead of every unit-domain variable, and
   skip any candidate none of whose rows changed since its last probe
   (the row stamps): a probe can only learn something new when the
   variable's neighbourhood moved.  Trial propagations run un-stamped so
   probing never marks work dirty for itself; only real deductions (the
   permanent fixings, and the search's own bound changes) do. *)
let probe_candidates s ~w =
  s.probe_hit <- false;
  let alive = ref true in
  let seen = ref 0 in
  (* everything before [branch_head] is fixed, so start the scan there *)
  let i = ref s.branch_head in
  let n_seq = Array.length s.branch_seq in
  while !alive && !i < n_seq && !seen < w do
    let v = s.branch_seq.(!i) in
    if s.ub.(v) - s.lb.(v) = 1 then begin
      incr seen;
      let dirty = ref false in
      let occ1 = s.occ_start.(v + 1) in
      let last = s.probe_stamp.(v) in
      let j = ref s.occ_start.(v) in
      while (not !dirty) && !j < occ1 do
        if s.row_stamp.(Array.unsafe_get s.occ_row !j) > last then
          dirty := true;
        incr j
      done;
      if !dirty then begin
        s.probe_stamp.(v) <- s.change_gen;
        let lo = s.lb.(v) and hi = s.ub.(v) in
        (* With a warm-start hint, the hinted value is tried first by the
           branching step anyway; probing just the opposite endpoint buys
           the common deduction (hint forced) at half the cost. *)
        let hint_lo =
          match s.value_hint with Some h -> h.(v) <= lo | None -> true
        in
        let skip_lo = probe_half && not hint_lo in
        let skip_hi = probe_half && hint_lo in
        let ok_lo =
          skip_lo
          ||
          let m = mark s in
          (match s.stats with
          | Some st -> st.Stats.probe_trials <- st.Stats.probe_trials + 1
          | None -> ());
          s.no_stamp <- true;
          set_ub s v lo;
          let ok = propagate1 ~budget:probe_budget s v in
          undo_to s m;
          s.no_stamp <- false;
          ok
        in
        if not ok_lo then begin
          s.probe_hit <- true;
          set_lb s v hi;
          if not (propagate1 s v) then alive := false
        end
        else begin
          let ok_hi =
            skip_hi
            ||
            let m = mark s in
            (match s.stats with
            | Some st -> st.Stats.probe_trials <- st.Stats.probe_trials + 1
            | None -> ());
            s.no_stamp <- true;
            set_lb s v hi;
            let ok = propagate1 ~budget:probe_budget s v in
            undo_to s m;
            s.no_stamp <- false;
            ok
          in
          if not ok_hi then begin
            s.probe_hit <- true;
            set_ub s v lo;
            if not (propagate1 s v) then alive := false
          end
        end
      end
    end
    else if s.ub.(v) > s.lb.(v) then incr seen;
    incr i
  done;
  !alive

(* --- search ------------------------------------------------------------ *)

let record_incumbent s =
  let x = Array.copy s.lb in
  let obj =
    Array.fold_left (fun acc (a, v) -> acc + (a * x.(v))) 0 s.obj_terms
  in
  if s.incumbent = None || obj < s.incumbent_obj then begin
    (match Model.check s.model x with
    | Ok () -> ()
    | Error errs ->
        failwith
          ("Ilp.Solver internal error: incumbent fails audit: "
          ^ String.concat "; " errs));
    s.incumbent <- Some x;
    s.incumbent_obj <- obj;
    if s.has_obj_row && obj - 1 < s.row_rhs.(s.n_rows) then begin
      s.row_rhs.(s.n_rows) <- obj - 1;
      s.obj_dirty <- true
    end;
    (match s.opts.shared_incumbent with
    | Some a ->
        (* lower the shared bound to [obj] unless someone got there first *)
        let rec publish () =
          let cur = Atomic.get a in
          if obj < cur && not (Atomic.compare_and_set a cur obj) then
            publish ()
        in
        publish ()
    | None -> ());
    (match s.stats with
    | Some st ->
        Stats.incumbent st ~time_s:(now () -. s.started) ~nodes:s.nodes
          ~objective:obj
    | None -> ());
    match s.opts.trace with
    | Some tr ->
        Trace.emit tr ~time_s:(now () -. s.started)
          (Trace.Incumbent { objective = obj; nodes = s.nodes })
    | None -> ()
  end

(* Dynamic most-constrained selection, windowed over the static order:
   among the first [branch_window] unfixed variables of [branch_seq], pick
   the smallest remaining domain, ties broken by conflict activity, then
   by order.  The window keeps the caller's branch order authoritative at
   the large scale — the ADVBIST encoding's variable hierarchy is
   essential to its pruning — while conflicts still reorder locally.
   With no conflicts recorded yet (all activities zero) and uniform
   domains, this is exactly the static first-unfixed scan, including its
   early exit. *)
let pick_branch_var s =
  let seq = s.branch_seq in
  let n_seq = Array.length seq in
  (* Skip the fixed prefix once and remember where it ends: deep subtrees
     would otherwise rescan hundreds of fixed variables at every node.
     [undo_to] moves the cursor back whenever backtracking re-widens an
     earlier variable, so the skip is always sound. *)
  let h = ref s.branch_head in
  while
    !h < n_seq
    &&
    let v = Array.unsafe_get seq !h in
    Array.unsafe_get s.ub v = Array.unsafe_get s.lb v
  do
    incr h
  done;
  s.branch_head <- !h;
  let w = max 1 s.opts.branch_window in
  let best = ref (-1) in
  let best_dom = ref max_int in
  let best_act = ref neg_infinity in
  let seen = ref 0 in
  let i = ref !h in
  while !i < n_seq && !seen < w do
    let v = Array.unsafe_get seq !i in
    let dom = Array.unsafe_get s.ub v - Array.unsafe_get s.lb v in
    if dom > 0 then begin
      incr seen;
      let a = Array.unsafe_get s.act v in
      if dom < !best_dom || (dom = !best_dom && a > !best_act) then begin
        best := v;
        best_dom := dom;
        best_act := a
      end
    end;
    incr i
  done;
  if !best < 0 then None else Some !best

(* One backoff-gated probing step at a node: [true] when probing proved
   the node infeasible against the cutoff.  Misses widen the skip gap
   (see [probe_max_backoff]); any landed fixing resets it. *)
let probe_prune s =
  if s.probe_skip > 0 then begin
    s.probe_skip <- s.probe_skip - 1;
    (match s.stats with
    | Some st -> st.Stats.probe_skips <- st.Stats.probe_skips + 1
    | None -> ());
    false
  end
  else begin
    let t0 = match s.stats with Some _ -> now () | None -> 0.0 in
    let alive = probe_candidates s ~w:probe_window in
    (match s.stats with
    | Some st ->
        st.Stats.probe_s <- st.Stats.probe_s +. (now () -. t0);
        st.Stats.probe_calls <- st.Stats.probe_calls + 1;
        if s.probe_hit then st.Stats.probe_hits <- st.Stats.probe_hits + 1
    | None -> ());
    if s.probe_hit then s.probe_miss <- 0
    else begin
      s.probe_miss <- min (s.probe_miss + 1) probe_max_backoff;
      s.probe_skip <- (1 lsl s.probe_miss) - 1;
      (match s.stats with
      | Some st -> st.Stats.probe_backoffs <- st.Stats.probe_backoffs + 1
      | None -> ())
    end;
    not alive
  end

(* Prune-reason telemetry: the reason is a constant constructor, so the
   event record is only allocated once a sink is installed.  [bound] is
   the dual bound that fired ([max_int] when the node was proven empty
   rather than dominated), [nodes] the count at emission — both feed
   {!Replay}'s attribution. *)
let pruned s depth reason bound =
  match s.opts.trace with
  | Some tr ->
      Trace.emit tr ~time_s:(now () -. s.started)
        (Trace.Prune { depth; reason; bound; nodes = s.nodes })
  | None -> ()

(* [var]/[value] are the branching decision that created this node
   ([var = -1] at a subtree root); they only exist for the trace, so the
   disabled path still passes two immediates and allocates nothing. *)
let rec dfs s depth ~var ~value =
  s.nodes <- s.nodes + 1;
  (match s.stats with Some st -> Stats.node st ~depth | None -> ());
  (match s.opts.trace with
  | Some tr ->
      Trace.emit tr ~time_s:(now () -. s.started)
        (Trace.Node
           {
             depth;
             nodes = s.nodes;
             var;
             value;
             bound = objective_min_activity s;
           })
  | None -> ());
  if s.nodes land 63 = 0 || use_lp_at s depth then check_limits s;
  let c = cutoff s in
  if c < max_int && objective_min_activity s >= c then
    pruned s depth Trace.Cutoff (objective_min_activity s)
  else if
    depth > 0 && depth <= s.probe_depth && c < max_int && probe_prune s
  then pruned s depth Trace.Probed max_int
    (* Below the root an LP bound only prunes against an incumbent; skip
       the solve while there is none. *)
  else if use_lp_at s depth && (depth = 0 || c < max_int) then begin
    match lp_bound s with
    | Bound_infeasible -> pruned s depth Trace.Lp_infeasible max_int
    | Bound_none -> branch s depth
    | Bound b ->
        if depth = 0 && b > s.root_bound then begin
          s.root_bound <- b;
          match s.opts.trace with
          | Some tr ->
              Trace.emit tr ~time_s:(now () -. s.started)
                (Trace.Bound { bound = b; nodes = s.nodes })
          | None -> ()
        end;
        if c < max_int && b >= c then pruned s depth Trace.Lp_bound b
        else if c = max_int then branch s depth
        else begin
          (* bound-based fixings join the node's propagation fixpoint *)
          let fixed = reduced_cost_fix s c in
          if fixed = [] || propagate s (Some fixed) then branch s depth
        end
  end
  else branch s depth

and branch s depth =
  match pick_branch_var s with
  | None -> record_incumbent s
  | Some v ->
      let lo = s.lb.(v) and hi = s.ub.(v) in
      (* Batched sibling LPs: when the children will run LP bounds, stash
         the engine's current (parent) factorization once and restore it
         before every later sibling, so each child re-solves from the
         shared parent basis instead of from wherever the previous
         sibling's subtree drifted the engine — fewer dual pivots and no
         recovery refactorizations mid-branch. *)
      let batch =
        match s.lp_st with
        | Some st when st.fails < 50 && use_lp_at s (depth + 1) ->
            Simplex.stash st.inst ~slot:depth
        | Some _ | None -> false
      in
      let first = ref true in
      let enter () =
        if !first then first := false
        else if batch then begin
          match s.lp_st with
          | Some st when Simplex.unstash st.inst ~slot:depth -> (
              match s.stats with
              | Some t -> t.Stats.lp_batched <- t.Stats.lp_batched + 1
              | None -> ())
          | Some _ | None -> ()
        end
      in
      let try_value value =
        let m = mark s in
        set_lb s v value;
        set_ub s v value;
        if propagate1 s v then begin
          enter ();
          dfs s (depth + 1) ~var:v ~value
        end;
        undo_to s m
      in
      if hi - lo <= 8 then begin
        (* enumerate values, hint (or preferred end) first — same order
           as [child_paths], with no list construction *)
        let hint =
          match s.value_hint with
          | Some h when h.(v) >= lo && h.(v) <= hi -> h.(v)
          | Some _ | None -> min_int
        in
        if hint <> min_int then try_value hint;
        if s.opts.prefer_high then
          for value = hi downto lo do
            if value <> hint then try_value value
          done
        else
          for value = lo to hi do
            if value <> hint then try_value value
          done
      end
      else begin
        (* wide integer domain: bisect *)
        let mid = lo + ((hi - lo) / 2) in
        let m = mark s in
        set_ub s v mid;
        if propagate1 s v then begin
          enter ();
          dfs s (depth + 1) ~var:v ~value:mid
        end;
        undo_to s m;
        let m = mark s in
        set_lb s v (mid + 1);
        if propagate1 s v then begin
          enter ();
          dfs s (depth + 1) ~var:v ~value:(mid + 1)
        end;
        undo_to s m
      end

(* --- root cut loop ------------------------------------------------------ *)

(* Solve the root LP, separate violated cover/clique cuts, append them to
   (a copy of) the model and to the warm instance, and repeat until no cut
   is violated, the round limit is hit, or the deadline passes.  Returns
   the possibly-strengthened model and the warm instance (already hot on
   the cut-augmented root LP) for the search to keep using. *)
let root_cut_loop ?deadline ?stats ?started ~(options : options) model =
  match Simplex.instance_of_model ~pricing:options.pricing model with
  | None -> (model, None)
  | Some inst ->
      let t0 = match started with Some t -> t | None -> now () in
      let model = ref model and copied = ref false in
      let rounds = ref 0 and total = ref 0 and go = ref true in
      while !go && !rounds < 8 do
        incr rounds;
        (match deadline with
        | Some d when now () > d -> go := false
        | Some _ | None -> ());
        (match options.stop with
        | Some flag when Atomic.get flag -> go := false
        | Some _ | None -> ());
        if !go then
          match Simplex.resolve ~max_iters:20_000 inst with
          | Simplex.Optimal { primal; _ } ->
              let cuts = Cuts.separate !model ~x:primal ~max_cuts:64 in
              if cuts = [] then go := false
              else begin
                if not !copied then begin
                  model := Model.copy !model;
                  copied := true
                end;
                List.iteri
                  (fun i (c : Cuts.cut) ->
                    Model.add_le !model
                      ~name:(Printf.sprintf "cut%d_%d" !rounds i)
                      (Linexpr.of_list c.terms) c.rhs;
                    Simplex.add_row inst
                      (List.map (fun (a, v) -> (v, float_of_int a)) c.terms)
                      (float_of_int c.rhs))
                  cuts;
                let n = List.length cuts in
                total := !total + n;
                (match stats with
                | Some st ->
                    st.Stats.cut_rounds <- st.Stats.cut_rounds + 1;
                    st.Stats.cuts_generated <- st.Stats.cuts_generated + n;
                    st.Stats.cuts_kept <- st.Stats.cuts_kept + n
                | None -> ());
                match options.trace with
                | Some tr ->
                    Trace.emit tr ~time_s:(now () -. t0)
                      (Trace.Cut_round { round = !rounds; cuts = n })
                | None -> ()
              end
          | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit
            ->
              go := false
      done;
      (match options.trace with
      | Some tr when !total > 0 ->
          Trace.emit tr ~time_s:(now () -. t0)
            (Trace.Message
               (Printf.sprintf "%d root cuts in %d rounds" !total (!rounds - 1)))
      | Some _ | None -> ());
      (!model, Some inst)

(* Decide the orbit list and canonical warm start for a solve.  Caller
   orbits are trusted (they must already be verified, e.g. through
   [Symmetry.filter_verified]); with none supplied, auto-detection runs —
   [Symmetry.detect] bails out immediately on large models.  The warm
   start is mapped to its canonical symmetric image so it satisfies the
   lex rows; if the canonical image fails the model audit (a caller orbit
   that is not a true symmetry), the orbits are dropped rather than the
   warm start.  Returns the (possibly lex-augmented) model and patched
   options. *)
(* The historical [verbose] flag is now a convenience alias for a
   human-readable stderr trace: with no explicit sink installed it
   reroutes through {!Trace.stderr_human}, so an explicit [--trace FILE]
   captures the same events and leaves stderr clean (essential under
   [jobs > 1], where interleaved worker prints were unreadable). *)
let reroute_verbose (options : options) =
  if options.verbose && options.trace = None then
    { options with trace = Some (Trace.stderr_human ()) }
  else options

let prepare ~(options : options) model =
  let options = reroute_verbose options in
  let orbits =
    if not options.sym then []
    else if options.orbits <> [] then options.orbits
    else Symmetry.detect model
  in
  (* Overlapping orbits (e.g. register and module columns sharing wire
     variables): sorting one can disturb the other, so canonicalize to a
     fixpoint — the alternating sort converges for commuting column
     groups; a capped non-convergence just fails the check below and
     drops the orbits. *)
  let rec canon_fix orbits x fuel =
    if fuel = 0 then x
    else
      let x' = Symmetry.canonicalize orbits x in
      if x' = x then x else canon_fix orbits x' (fuel - 1)
  in
  let orbits, warm =
    match options.warm_start with
    | None -> (orbits, None)
    | Some x when orbits = [] -> ([], Some x)
    | Some x ->
        if Array.length x <> Model.n_vars model then (orbits, Some x)
        else
          let cx = canon_fix orbits x 50 in
          if Model.check model cx = Ok () then (orbits, Some cx)
          else if Model.check model x = Ok () then ([], Some x)
          else (orbits, Some x)
  in
  (* Lex ordering rows only on cold solves: with a (canonicalized) warm
     start the orbital-fixing propagator already enforces the canonical
     representative during search, and the extra rows only feed the
     conflict-activity branching heuristic noise — measured on tseng k=1,
     lex rows on a warm solve double the node count (49788 vs 25505). *)
  let model =
    if orbits = [] || warm <> None then model
    else fst (Symmetry.add_lex_rows model orbits)
  in
  (* The bound-only incumbent is canonicalized the same way (it must pass
     the audit against the possibly lex-augmented model), but dropped
     rather than costing us the orbits: it is an optional extra bound. *)
  let incumbent_start =
    match options.incumbent_start with
    | None -> None
    | Some x when orbits = [] -> Some x
    | Some x when Array.length x <> Model.n_vars model -> None
    | Some x -> Some (canon_fix orbits x 50)
  in
  (model, { options with warm_start = warm; incumbent_start; orbits })

(* Root cut loop under the solve's budget: cap cut generation at a quarter
   of any time limit so branching always gets the lion's share. *)
let cut_phase ?stats ~(options : options) ~started model =
  if options.lp = Lp_never then (model, None)
  else if options.cuts then
    let deadline =
      Option.map (fun tl -> started +. (0.25 *. tl)) options.time_limit
    in
    root_cut_loop ?deadline ?stats ~started ~options model
  else (model, Simplex.instance_of_model ~pricing:options.pricing model)

(* Build the full search state for [model]: normalized rows, occurrence
   lists, incremental activities, the warm LP engine, and the warm-start
   incumbent.  [model] must already carry its lex rows and cuts. *)
let build_search ?stats ~(options : options) ~started model warm_inst =
  let n = Model.n_vars model in
  let lb = Model.lower_bounds model and ub = Model.upper_bounds model in
  (* Normalize rows to Le, as (coefs, vars, rhs) triples in model order
     (Eq splits into the positive row then the negated one). *)
  let rev_rows = ref [] and n_rows = ref 0 in
  Array.iter
    (fun (c : Model.constr) ->
      let terms = Array.of_list (Linexpr.terms c.Model.expr) in
      let vars = Array.map snd terms in
      let pos () = (Array.map fst terms, vars, c.Model.rhs) in
      let neg () = (Array.map (fun (a, _) -> -a) terms, vars, -c.Model.rhs) in
      match c.Model.sense with
      | Model.Le ->
          rev_rows := pos () :: !rev_rows;
          incr n_rows
      | Model.Ge ->
          rev_rows := neg () :: !rev_rows;
          incr n_rows
      | Model.Eq ->
          rev_rows := neg () :: pos () :: !rev_rows;
          n_rows := !n_rows + 2)
    (Model.constraints model);
  let row_list = List.rev !rev_rows in
  let n_rows = !n_rows in
  let obj_terms = Array.of_list (Linexpr.terms (Model.objective model)) in
  let has_obj_row = Array.length obj_terms > 0 in
  (* Flatten the rows (objective cutoff row last) into one CSR block. *)
  let nnz =
    List.fold_left (fun acc (c, _, _) -> acc + Array.length c) 0 row_list
    + Array.length obj_terms
  in
  let row_start = Array.make (n_rows + 2) 0 in
  let row_coef = Array.make (max nnz 1) 0 in
  let row_var = Array.make (max nnz 1) 0 in
  let row_rhs = Array.make (n_rows + 1) 0 in
  let k = ref 0 in
  List.iteri
    (fun i (coefs, vars, rhs) ->
      row_start.(i) <- !k;
      row_rhs.(i) <- rhs;
      Array.iteri
        (fun t a ->
          row_coef.(!k) <- a;
          row_var.(!k) <- vars.(t);
          incr k)
        coefs)
    row_list;
  row_start.(n_rows) <- !k;
  row_rhs.(n_rows) <- max_int / 2;
  Array.iter
    (fun (a, v) ->
      row_coef.(!k) <- a;
      row_var.(!k) <- v;
      incr k)
    obj_terms;
  row_start.(n_rows + 1) <- !k;
  (* Occurrence lists over the ordinary rows, deduped and split by
     coefficient sign, flattened to CSR.  [occ_row] drives worklist
     enqueueing; the pos/neg pairs drive the incremental min-activity
     updates on lower/upper bound changes respectively. *)
  let occ_all = Array.make (max n 1) [] in
  for ri = n_rows - 1 downto 0 do
    for t = row_start.(ri + 1) - 1 downto row_start.(ri) do
      let v = row_var.(t) in
      occ_all.(v) <- (ri, row_coef.(t)) :: occ_all.(v)
    done
  done;
  let flatten_rows sel =
    let start = Array.make (n + 1) 0 in
    let total = ref 0 in
    for v = 0 to n - 1 do
      total := !total + List.length (sel occ_all.(v))
    done;
    let ri = Array.make (max !total 1) 0 in
    let aa = Array.make (max !total 1) 0 in
    let k = ref 0 in
    for v = 0 to n - 1 do
      start.(v) <- !k;
      List.iter
        (fun (r, a) ->
          ri.(!k) <- r;
          aa.(!k) <- a;
          incr k)
        (sel occ_all.(v))
    done;
    start.(n) <- !k;
    (start, ri, aa)
  in
  let occ_start, occ_row, _ =
    flatten_rows (fun l ->
        List.map (fun r -> (r, 0)) (List.sort_uniq compare (List.map fst l)))
  in
  let occ_pos_start, occ_pos_ri, occ_pos_a =
    flatten_rows (List.filter (fun (_, a) -> a > 0))
  in
  let occ_neg_start, occ_neg_ri, occ_neg_a =
    flatten_rows (List.filter (fun (_, a) -> a < 0))
  in
  let objc = Array.make (max n 1) 0 in
  Array.iter (fun (a, v) -> objc.(v) <- a) obj_terms;
  (* Orbits flattened for worklist enforcement: an array of descriptors
     plus a CSR var -> orbit-indices map driving dirty marking. *)
  let orbits_arr = Array.of_list options.orbits in
  let n_orb = Array.length orbits_arr in
  let iter_orbit_vars oi f =
    match orbits_arr.(oi) with
    | Symmetry.Scalar vs -> Array.iter f vs
    | Symmetry.Blocks cols -> Array.iter (fun col -> Array.iter f col) cols
  in
  let var_orbit_start = Array.make (n + 1) 0 in
  for oi = 0 to n_orb - 1 do
    iter_orbit_vars oi (fun v ->
        if v >= 0 && v < n then
          var_orbit_start.(v + 1) <- var_orbit_start.(v + 1) + 1)
  done;
  for v = 0 to n - 1 do
    var_orbit_start.(v + 1) <- var_orbit_start.(v + 1) + var_orbit_start.(v)
  done;
  let var_orbit_idx = Array.make (max 1 var_orbit_start.(n)) 0 in
  let fill = Array.copy var_orbit_start in
  for oi = 0 to n_orb - 1 do
    iter_orbit_vars oi (fun v ->
        if v >= 0 && v < n then begin
          var_orbit_idx.(fill.(v)) <- oi;
          fill.(v) <- fill.(v) + 1
        end)
  done;
  (* Initial min-activities from the root bounds; every later bound change
     updates them through the trail.  The loop covers the cutoff row too
     (its range is empty without an objective). *)
  let row_minact = Array.make (n_rows + 1) 0 in
  for ri = 0 to n_rows do
    let acc = ref 0 in
    for t = row_start.(ri) to row_start.(ri + 1) - 1 do
      let a = row_coef.(t) and v = row_var.(t) in
      acc := !acc + (if a > 0 then a * lb.(v) else a * ub.(v))
    done;
    row_minact.(ri) <- !acc
  done;
  let branch_seq =
    match options.branch_order with
    | None -> Array.init n (fun i -> i)
    | Some order ->
        let seen = Array.make n false in
        let pref = List.filter (fun v -> v >= 0 && v < n) order in
        List.iter (fun v -> seen.(v) <- true) pref;
        let rest = List.filter (fun v -> not seen.(v)) (List.init n Fun.id) in
        Array.of_list (pref @ rest)
  in
  let seq_pos = Array.make (max n 1) 0 in
  Array.iteri (fun i v -> seq_pos.(v) <- i) branch_seq;
  let warm =
    match options.warm_start with
    | Some x when Array.length x = n && Model.check model x = Ok () -> Some x
    | Some _ | None -> None
  in
  let queue_cap =
    let c = ref 1 in
    while !c < n_rows + 1 do
      c := !c * 2
    done;
    !c
  in
  let s =
    {
      model;
      n;
      lb;
      ub;
      n_rows;
      has_obj_row;
      row_start;
      row_coef;
      row_var;
      row_rhs;
      row_minact;
      row_stamp = Array.make (n_rows + 1) 1;
      occ_start;
      occ_row;
      occ_pos_start;
      occ_pos_ri;
      occ_pos_a;
      occ_neg_start;
      occ_neg_ri;
      occ_neg_a;
      obj_terms;
      objc;
      obj_dirty = true;
      orbits_arr;
      var_orbit_start;
      var_orbit_idx;
      orbit_dirty = Array.make (max 1 n_orb) true;
      orbit_stack = Array.init (max 1 n_orb) (fun i -> i);
      orbit_top = n_orb;
      trail_entry = Array.make 256 0;
      trail_old = Array.make 256 0;
      trail_len = 0;
      opts = options;
      started;
      incumbent = None;
      incumbent_obj = max_int;
      nodes = 0;
      ticks = 0;
      root_bound = min_int;
      lp_st =
        Option.map
          (fun inst ->
            {
              inst;
              root_basis = Simplex.save inst;
              fails = 0;
              last_obj = neg_infinity;
              at_optimum = false;
            })
          warm_inst;
      prop_queue = Array.make queue_cap 0;
      queue_mask = queue_cap - 1;
      q_head = 0;
      q_tail = 0;
      prop_queued = Array.make (n_rows + 1) 0;
      prop_gen = 0;
      probe_stamp = Array.make (max n 1) 0;
      change_gen = 1;
      no_stamp = false;
      probe_hit = false;
      probe_miss = 0;
      probe_skip = 0;
      (* A probing trial's propagation cost grows with the row count while
         the plain node cost barely moves, so the break-even shifts with
         model size: small models can afford shaving at every node, large
         ones only near subtree roots, where a successful prune discards
         the most work. *)
      probe_depth =
        (if Model.n_constraints model <= 512 then max_int else 8);
      branch_seq;
      seq_pos;
      branch_head = 0;
      act = Array.make (max n 1) 0.0;
      act_inc = 1.0;
      value_hint = options.warm_start;
      stats;
    }
  in
  let install x =
    let obj =
      Array.fold_left (fun acc (a, v) -> acc + (a * x.(v))) 0 obj_terms
    in
    if obj < s.incumbent_obj then begin
      s.incumbent <- Some (Array.copy x);
      s.incumbent_obj <- obj;
      if s.has_obj_row then s.row_rhs.(s.n_rows) <- obj - 1
    end
  in
  Option.iter install warm;
  (* The bound-only incumbent: audited against the final (possibly
     lex-augmented) model like the warm start, but installed without
     touching [value_hint] — it tightens the cutoff, never the
     trajectory. *)
  (match options.incumbent_start with
  | Some x when Array.length x = n && Model.check model x = Ok () -> install x
  | Some _ | None -> ());
  s

(* End-of-search stamping of the counters that are kept outside the hot
   path: propagation ticks live in the search record; the simplex pivot,
   iteration and refactorization totals in the warm instance. *)
let finalize_stats s =
  (match s.stats with
  | None -> ()
  | Some st -> (
      st.Stats.prop_ticks <- st.Stats.prop_ticks + s.ticks;
      match s.lp_st with
      | Some l ->
          st.Stats.lp_pivots <- st.Stats.lp_pivots + Simplex.pivots l.inst;
          st.Stats.lp_iters <- st.Stats.lp_iters + Simplex.iters l.inst;
          st.Stats.lp_refactors <-
            st.Stats.lp_refactors + Simplex.refactors l.inst
      | None -> ()));
  match (s.opts.trace, s.lp_st) with
  | Some tr, Some l ->
      Trace.emit tr ~time_s:(now () -. s.started)
        (Trace.Lp
           {
             pivots = Simplex.pivots l.inst;
             iters = Simplex.iters l.inst;
             refactors = Simplex.refactors l.inst;
           })
  | _ -> ()

(* Phase-boundary timer: [tick stats last set] charges the wall clock
   since [!last] to one stats field and advances the boundary.  Per-solve
   cost only (a handful of calls per solve), never per node. *)
let tick stats last set =
  match stats with
  | Some st ->
      let t = now () in
      set st (t -. !last);
      last := t
  | None -> ()

let solve ?(options = default) model =
  let started = now () in
  let stats = if options.stats then Some (Stats.create ()) else None in
  let last = ref started in
  let model, options = prepare ~options model in
  tick stats last (fun st d -> st.Stats.prepare_s <- d);
  let model, warm_inst = cut_phase ?stats ~options ~started model in
  tick stats last (fun st d -> st.Stats.cuts_s <- d);
  let s = build_search ?stats ~options ~started model warm_inst in
  tick stats last (fun st d -> st.Stats.build_s <- d);
  let root_mark = ref 0 in
  let complete =
    try
      let root_ok = propagate s None && probe_fixpoint s ~max_passes:4 in
      tick stats last (fun st d -> st.Stats.root_s <- d);
      root_mark := mark s;
      if root_ok then begin
        (* first point of the dual curve: the root-propagated trivial
           bound (depth-0 LP improvements emit further Bound events) *)
        (match s.opts.trace with
        | Some tr ->
            Trace.emit tr ~time_s:(now () -. s.started)
              (Trace.Bound
                 { bound = objective_min_activity s; nodes = s.nodes })
        | None -> ());
        dfs s 0 ~var:(-1) ~value:0
      end;
      true
    with Out_of_time -> false
  in
  (* On an in-root limit hit the root tick never ran; the search tick then
     absorbs the root phase too, keeping the phase account exhaustive. *)
  tick stats last (fun st d -> st.Stats.search_s <- d);
  finalize_stats s;
  (* A limit can fire mid-branch with the trail partially wound; rewind to
     the root-propagated state so the trivial bound below is a bound on the
     whole problem, not on the interrupted subtree. *)
  undo_to s !root_mark;
  let time_s = now () -. s.started in
  let trivial_bound = objective_min_activity s in
  let orbits = List.length options.orbits in
  match (s.incumbent, complete) with
  | Some x, true ->
      {
        status = Optimal;
        solution = Some x;
        objective = Some s.incumbent_obj;
        bound = s.incumbent_obj;
        nodes = s.nodes;
        time_s;
        orbits;
        stolen = 0;
        stats;
      }
  | Some x, false ->
      {
        status = Feasible;
        solution = Some x;
        objective = Some s.incumbent_obj;
        bound = max s.root_bound trivial_bound;
        nodes = s.nodes;
        time_s;
        orbits;
        stolen = 0;
        stats;
      }
  | None, true ->
      {
        status = Infeasible;
        solution = None;
        objective = None;
        bound = max_int;
        nodes = s.nodes;
        time_s;
        orbits;
        stolen = 0;
        stats;
      }
  | None, false ->
      {
        status = Unknown;
        solution = None;
        objective = None;
        bound = max s.root_bound trivial_bound;
        nodes = s.nodes;
        time_s;
        orbits;
        stolen = 0;
        stats;
      }

(* --- parallel subtree search --------------------------------------------

   One hard instance, several domains: the main domain runs the root phase
   (propagation, probing, cuts) once, expands the root breadth-first into a
   frontier of open subtrees — each a list of (var, lo, hi) bound
   restrictions — and distributes them round-robin over per-worker
   work-stealing deques.  Idle workers steal the oldest (largest) pending
   subtree from a victim's deque.

   Determinism is by subtree isolation.  Each subtree is solved from a
   per-subtree reset of the worker's search state (activities, probe
   state, row stamps, incumbent re-seeded from the deterministic root
   phase, the simplex engine restored to its root basis), so its result
   depends only on the subtree, never on the schedule.  The shared atomic
   incumbent is consulted exactly once per subtree, to skip it wholesale:
   an integer bound strictly above the shared objective proves the
   subtree's own optimum is strictly worse than the final best, so the
   skip can never discard a winner or even a tie.  The final solution is
   the minimum over all subtree results (and the root-phase incumbent)
   under the (objective, lexicographic solution) order — independent of
   which worker finished first, so [~jobs:1] and [~jobs:4] return
   identical outcomes. *)

(* Per-subtree reset: everything schedule- or history-dependent goes back
   to a canonical state derived from the deterministic root phase.  The
   trail must already be rewound to the worker's root mark. *)
let reset_for_subtree s ~seed =
  Array.fill s.act 0 (Array.length s.act) 0.0;
  s.act_inc <- 1.0;
  s.probe_hit <- false;
  s.probe_miss <- 0;
  s.probe_skip <- 0;
  Array.fill s.probe_stamp 0 (Array.length s.probe_stamp) 0;
  s.change_gen <- 1;
  Array.fill s.row_stamp 0 (Array.length s.row_stamp) 1;
  s.incumbent <- Option.map (fun (_, x) -> Array.copy x) seed;
  s.incumbent_obj <- (match seed with Some (o, _) -> o | None -> max_int);
  if s.has_obj_row then
    s.row_rhs.(s.n_rows) <-
      (match seed with Some (o, _) -> o - 1 | None -> max_int / 2);
  s.obj_dirty <- true;
  s.branch_head <- 0;
  enqueue_all_orbits s;
  match s.lp_st with
  | Some st ->
      ignore (Simplex.restore st.inst st.root_basis);
      st.fails <- 0;
      st.last_obj <- neg_infinity;
      st.at_optimum <- false
  | None -> ()

(* Child decisions of branching on [v], in exactly the order [branch]
   would explore them (warm-start hint first, then the preferred end). *)
let child_paths s v =
  let lo = s.lb.(v) and hi = s.ub.(v) in
  if hi - lo <= 8 then begin
    let all = List.init (hi - lo + 1) (fun i -> lo + i) in
    let all = if s.opts.prefer_high then List.rev all else all in
    let vals =
      match s.value_hint with
      | Some h when h.(v) >= lo && h.(v) <= hi ->
          h.(v) :: List.filter (fun x -> x <> h.(v)) all
      | Some _ | None -> all
    in
    List.map (fun value -> (v, value, value)) vals
  end
  else
    let mid = lo + ((hi - lo) / 2) in
    [ (v, lo, mid); (v, mid + 1, hi) ]

(* Deterministic breadth-first expansion of the (already propagated) root
   into at least [target] open subtrees, using the same branch-variable
   and value ordering as the sequential search, so the frontier partitions
   exactly the space [dfs] would explore.  Leaves reached during expansion
   become incumbents of [s]; closed nodes vanish.  Returns the frontier
   paths and whether a limit cut the expansion short. *)
let expand_frontier s ~target =
  let q = Queue.create () in
  Queue.add [] q;
  let expansions = ref 0 in
  let aborted = ref false in
  (try
     while
       (not (Queue.is_empty q))
       && Queue.length q < target
       && !expansions < 8 * target
     do
       incr expansions;
       let path = Queue.take q in
       let m = mark s in
       List.iter
         (fun (v, lo, hi) ->
           set_lb s v lo;
           set_ub s v hi)
         path;
       let seeds = List.map (fun (v, _, _) -> v) path in
       if path = [] || propagate s (Some seeds) then begin
         match pick_branch_var s with
         | None -> record_incumbent s
         | Some v ->
             List.iter (fun d -> Queue.add (path @ [ d ]) q) (child_paths s v)
       end;
       undo_to s m
     done
   with Out_of_time -> aborted := true);
  (List.of_seq (Queue.to_seq q), !aborted)

let rec publish a obj =
  let cur = Atomic.get a in
  if obj < cur && not (Atomic.compare_and_set a cur obj) then publish a obj

let solve_parallel ?(options = default) ~jobs model =
  let jobs = max 1 (min jobs 64) in
  let started = now () in
  let stats = if options.stats then Some (Stats.create ()) else None in
  let last = ref started in
  let model, options = prepare ~options model in
  (* Strip a warm start that fails the audit here, once, so the per-subtree
     reset can trust it unconditionally. *)
  let options =
    match options.warm_start with
    | Some x
      when Array.length x = Model.n_vars model && Model.check model x = Ok ()
      ->
        options
    | Some _ -> { options with warm_start = None }
    | None -> options
  in
  tick stats last (fun st d -> st.Stats.prepare_s <- d);
  let model, warm_inst = cut_phase ?stats ~options ~started model in
  tick stats last (fun st d -> st.Stats.cuts_s <- d);
  (* Force the model's lazy caches before it crosses domains. *)
  if Model.n_vars model > 0 then ignore (Model.bounds model 0);
  let orbit_count = List.length options.orbits in
  let finish ~complete ~stolen ~nodes ~bound ~stats best =
    let time_s = now () -. started in
    match (best, complete) with
    | Some (obj, x), true ->
        {
          status = Optimal;
          solution = Some x;
          objective = Some obj;
          bound = obj;
          nodes;
          time_s;
          orbits = orbit_count;
          stolen;
          stats;
        }
    | Some (obj, x), false ->
        {
          status = Feasible;
          solution = Some x;
          objective = Some obj;
          bound = min bound obj;
          nodes;
          time_s;
          orbits = orbit_count;
          stolen;
          stats;
        }
    | None, true ->
        {
          status = Infeasible;
          solution = None;
          objective = None;
          bound = max_int;
          nodes;
          time_s;
          orbits = orbit_count;
          stolen;
          stats;
        }
    | None, false ->
        {
          status = Unknown;
          solution = None;
          objective = None;
          bound;
          nodes;
          time_s;
          orbits = orbit_count;
          stolen;
          stats;
        }
  in
  let s0 = build_search ?stats ~options ~started model warm_inst in
  tick stats last (fun st d -> st.Stats.build_s <- d);
  let root_state =
    try
      if propagate s0 None && probe_fixpoint s0 ~max_passes:4 then `Open
      else `Closed
    with Out_of_time -> `Aborted
  in
  tick stats last (fun st d -> st.Stats.root_s <- d);
  match root_state with
  | `Closed | `Aborted ->
      let complete = root_state = `Closed in
      let best =
        Option.map (fun x -> (s0.incumbent_obj, x)) s0.incumbent
      in
      finalize_stats s0;
      finish ~complete ~stolen:0 ~nodes:s0.nodes
        ~bound:(objective_min_activity s0)
        ~stats best
  | `Open ->
      (* The subtree count must NOT depend on [jobs]: the frontier (and
         with it root_best, every per-subtree result and the final
         combine) is then identical for any worker count, which is what
         makes the returned solution — not just its objective —
         jobs-invariant even among equal-objective ties.  64 subtrees
         keep 16 workers fed with slack for uneven subtree sizes. *)
      let target = 64 in
      let frontier, expansion_aborted = expand_frontier s0 ~target in
      let root_best =
        Option.map (fun x -> (s0.incumbent_obj, x)) s0.incumbent
      in
      let root_bound = objective_min_activity s0 in
      (match options.trace with
      | Some tr ->
          Trace.emit tr
            ~time_s:(now () -. started)
            (Trace.Bound { bound = root_bound; nodes = s0.nodes })
      | None -> ());
      if frontier = [] || expansion_aborted then begin
        (* the whole tree closed during expansion, or a limit fired *)
        finalize_stats s0;
        tick stats last (fun st d -> st.Stats.search_s <- d);
        finish
          ~complete:((not expansion_aborted) && frontier = [])
          ~stolen:0 ~nodes:s0.nodes ~bound:root_bound ~stats root_best
      end
      else begin
        let frontier = Array.of_list frontier in
        let n_sub = Array.length frontier in
        (match options.trace with
        | Some tr ->
            Array.iteri
              (fun i path ->
                Trace.emit tr
                  ~time_s:(now () -. started)
                  (Trace.Subtree { id = i; depth = List.length path }))
              frontier
        | None -> ());
        let deques = Pool.Deques.create ~owners:jobs in
        Array.iteri
          (fun i path -> Pool.Deques.push deques ~owner:(i mod jobs) (i, path))
          frontier;
        let stolen = Atomic.make 0 in
        let incomplete = Atomic.make false in
        let results = Array.make n_sub None in
        (* Workers run with no shared incumbent: inside a subtree only the
           deterministic seed prunes, so every subtree's outcome — and with
           it the node count and depth histogram — is a pure function of
           the subtree, identical for any [jobs]. *)
        let worker_opts = { options with shared_incumbent = None } in
        let work idx =
          let winst =
            if options.lp = Lp_never then None
            else
              match Simplex.instance_of_model ~pricing:options.pricing model with
              | None -> None
              | Some inst ->
                  (* pay for the root LP once per worker so the saved root
                     basis each subtree restores is the optimal one *)
                  ignore (Simplex.resolve ~max_iters:20_000 inst);
                  Some inst
          in
          let wstats = if options.stats then Some (Stats.create ()) else None in
          let ws = build_search ?stats:wstats ~options:worker_opts ~started model winst in
          let total_nodes = ref 0 in
          (* Capture and zero the per-search node counter, so each subtree
             gets the full node budget.  A cumulative budget would make a
             limit-hit subtree's partial result depend on which subtrees
             this worker happened to process first — i.e. on the stealing
             schedule; per-subtree budgets keep every subtree's outcome a
             pure function of the subtree itself. *)
          let flush_nodes () =
            total_nodes := !total_nodes + ws.nodes;
            ws.nodes <- 0
          in
          (* The wall clock and the stop token, unlike the node budget,
             do not reset per subtree: once they fire, draining the rest
             of the queue is pointless. *)
          let hard_stop () =
            (match ws.opts.stop with
            | Some flag -> Atomic.get flag
            | None -> false)
            ||
            match ws.opts.time_limit with
            | Some tl -> now () -. ws.started > tl
            | None -> false
          in
          (* replicate the deterministic root phase of the main domain *)
          let root_ok =
            try propagate ws None && probe_fixpoint ws ~max_passes:4
            with Out_of_time ->
              Atomic.set incomplete true;
              false
          in
          if not root_ok then Atomic.set incomplete true
          else begin
            let process (i, path) =
              reset_for_subtree ws ~seed:root_best;
              flush_nodes ();
              let m = mark ws in
              (try
                 List.iter
                   (fun (v, lo, hi) ->
                     set_lb ws v lo;
                     set_ub ws v hi)
                   path;
                 let seeds = List.map (fun (v, _, _) -> v) path in
                 let open_ = propagate ws (Some seeds) in
                 if open_ then dfs ws 0 ~var:(-1) ~value:0
               with Out_of_time -> Atomic.set incomplete true);
              undo_to ws m;
              match ws.incumbent with
              | Some x
                when ws.incumbent_obj
                     < (match root_best with Some (o, _) -> o | None -> max_int)
                ->
                  results.(i) <- Some (ws.incumbent_obj, x)
              | Some _ | None -> ()
            in
            let rec loop () =
              if not (hard_stop ()) then
                match Pool.Deques.pop deques ~owner:idx with
                | Some item ->
                    process item;
                    loop ()
                | None -> (
                    match Pool.Deques.steal deques ~thief:idx with
                    | Some (item, victim) ->
                        Atomic.incr stolen;
                        (match ws.opts.trace with
                        | Some tr ->
                            Trace.emit tr
                              ~time_s:(now () -. ws.started)
                              (Trace.Steal { thief = idx; victim })
                        | None -> ());
                        process item;
                        loop ()
                    | None -> ())
              else if
                (* abandoning actual work is what makes the run incomplete;
                   a deadline passing after the queue drained is not *)
                Pool.Deques.pop deques ~owner:idx <> None
                || Pool.Deques.steal deques ~thief:idx <> None
              then Atomic.set incomplete true
            in
            loop ()
          end;
          flush_nodes ();
          finalize_stats ws;
          (!total_nodes, wstats)
        in
        let pool = Pool.create ~jobs in
        let tasks = List.init jobs (fun idx -> Pool.submit pool (fun () -> work idx)) in
        let settled = List.map Pool.await tasks in
        Pool.shutdown pool;
        let worker_nodes =
          List.fold_left
            (fun acc r ->
              match r with Ok (n, _) -> acc + n | Error e -> raise e)
            0 settled
        in
        let best = ref root_best in
        Array.iter
          (function
            | Some (obj, x) -> (
                match !best with
                | Some (bo, bx) when bo < obj || (bo = obj && compare bx x <= 0)
                  ->
                    ()
                | Some _ | None -> best := Some (obj, x))
            | None -> ())
          results;
        (match (options.shared_incumbent, !best) with
        | Some a, Some (obj, _) -> publish a obj
        | _ -> ());
        let complete = not (Atomic.get incomplete) in
        finalize_stats s0;
        let stats =
          match stats with
          | None -> None
          | Some st ->
              (* Phase timers live on the main record (workers only fill
                 CPU sub-timers like lp_s/probe_s), so the merged phases
                 still sum to the call's wall clock. *)
              st.Stats.search_s <- now () -. !last;
              let merged =
                List.fold_left
                  (fun acc r ->
                    match r with
                    | Ok (_, Some ws) -> Stats.merge acc ws
                    | Ok (_, None) | Error _ -> acc)
                  st settled
              in
              merged.Stats.subtrees <- n_sub;
              merged.Stats.steals <- Atomic.get stolen;
              merged.Stats.workers <- jobs;
              Some merged
        in
        finish ~complete
          ~stolen:(Atomic.get stolen)
          ~nodes:(s0.nodes + worker_nodes)
          ~bound:root_bound ~stats !best
      end

(* Shared cut generation for portfolio races: one cut loop, every member
   branches on the strengthened model (with its own private instance). *)
let with_root_cuts ?(options = default) model =
  if options.lp = Lp_never || not options.cuts then model
  else begin
    let options = reroute_verbose options in
    let deadline =
      Option.map (fun tl -> now () +. (0.25 *. tl)) options.time_limit
    in
    fst (root_cut_loop ?deadline ~options model)
  end

(* --- test + micro-benchmark hooks --------------------------------------- *)

(* A bare search state: no LP, no cuts, no symmetry — just the normalized
   rows and the incremental propagation machinery. *)
let bare_options =
  { default with lp = Lp_never; cuts = false; sym = false; orbits = [] }

let row_min_activities ?lower ?upper model =
  let s = build_search ~options:bare_options ~started:(now ()) model None in
  (match lower with
  | Some lbs -> Array.iteri (fun v b -> if b > s.lb.(v) then set_lb s v b) lbs
  | None -> ());
  (match upper with
  | Some ubs -> Array.iteri (fun v b -> if b < s.ub.(v) then set_ub s v b) ubs
  | None -> ());
  Array.sub s.row_minact 0 s.n_rows

let propagation_rate model ~sweeps =
  let s = build_search ~options:bare_options ~started:(now ()) model None in
  let t0 = now () in
  for _ = 1 to max 1 sweeps do
    let m = mark s in
    ignore (propagate s None);
    undo_to s m
  done;
  let dt = now () -. t0 in
  if dt > 0.0 then float_of_int (max 1 sweeps) /. dt else infinity
