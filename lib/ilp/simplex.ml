type result =
  | Optimal of { objective : float; primal : float array }
  | Infeasible
  | Unbounded
  | Iteration_limit

type problem = {
  n_vars : int;
  lower : float array;
  upper : float array;
  objective : float array;
  rows : (Model.sense * (int * float) list * float) list;
}

type status = Basic | At_lower | At_upper

let eps_cost = 1e-7
let eps_pivot = 1e-9
let eps_feas = 1e-7

(* Internal mutable state of the simplex.

   Columns: structurals [0 .. n-1], one slack per row [n .. n+m-1],
   artificials appended as needed.  Ge rows are negated to Le beforehand, so
   slacks have bounds [0, +inf) (Le) or [0, 0] (Eq).  The basis inverse is
   kept dense and updated by elementary row operations; it is refactorized
   from scratch periodically to contain numerical drift. *)
type state = {
  m : int;
  ncols : int;
  lo : float array;
  up : float array;
  cols : (int * float) array array;  (* sparse column entries (row, coef) *)
  rhs : float array;
  mutable cost : float array;
  status : status array;
  basis : int array;  (* row -> column *)
  binv : float array array;  (* m x m *)
  xb : float array;  (* values of basic variables by row *)
  work : float array;  (* scratch, length m *)
}

let nonbasic_value st j =
  match st.status.(j) with
  | At_lower -> st.lo.(j)
  | At_upper -> st.up.(j)
  | Basic -> assert false

(* x_B = Binv (b - sum over nonbasic columns of A_j x_j). *)
let recompute_xb st =
  let r = Array.make st.m 0.0 in
  Array.blit st.rhs 0 r 0 st.m;
  for j = 0 to st.ncols - 1 do
    if st.status.(j) <> Basic then begin
      let xj = nonbasic_value st j in
      if xj <> 0.0 then
        Array.iter (fun (i, a) -> r.(i) <- r.(i) -. (a *. xj)) st.cols.(j)
    end
  done;
  for i = 0 to st.m - 1 do
    let acc = ref 0.0 in
    let row = st.binv.(i) in
    for k = 0 to st.m - 1 do
      acc := !acc +. (row.(k) *. r.(k))
    done;
    st.xb.(i) <- !acc
  done

(* Gauss-Jordan inversion of the current basis matrix with partial
   pivoting. Returns false when the basis is numerically singular. *)
let refactorize st =
  let m = st.m in
  let a = Array.make_matrix m m 0.0 in
  for i = 0 to m - 1 do
    Array.iter (fun (r, c) -> a.(r).(i) <- c) st.cols.(st.basis.(i))
  done;
  let inv = Array.make_matrix m m 0.0 in
  for i = 0 to m - 1 do
    inv.(i).(i) <- 1.0
  done;
  let ok = ref true in
  (try
     for col = 0 to m - 1 do
       (* partial pivot *)
       let piv = ref col in
       for i = col + 1 to m - 1 do
         if Float.abs a.(i).(col) > Float.abs a.(!piv).(col) then piv := i
       done;
       if Float.abs a.(!piv).(col) < eps_pivot then begin
         ok := false;
         raise Exit
       end;
       if !piv <> col then begin
         let t = a.(col) in
         a.(col) <- a.(!piv);
         a.(!piv) <- t;
         let t = inv.(col) in
         inv.(col) <- inv.(!piv);
         inv.(!piv) <- t
       end;
       let d = a.(col).(col) in
       for k = 0 to m - 1 do
         a.(col).(k) <- a.(col).(k) /. d;
         inv.(col).(k) <- inv.(col).(k) /. d
       done;
       for i = 0 to m - 1 do
         if i <> col then begin
           let f = a.(i).(col) in
           if f <> 0.0 then
             for k = 0 to m - 1 do
               a.(i).(k) <- a.(i).(k) -. (f *. a.(col).(k));
               inv.(i).(k) <- inv.(i).(k) -. (f *. inv.(col).(k))
             done
         end
       done
     done
   with Exit -> ());
  if !ok then begin
    for i = 0 to m - 1 do
      Array.blit inv.(i) 0 st.binv.(i) 0 m
    done;
    recompute_xb st
  end;
  !ok

(* One simplex phase on the current cost vector.  Returns [`Optimal],
   [`Unbounded] or [`Iters]. *)
let run_phase st ~max_iters =
  let m = st.m in
  let y = Array.make m 0.0 in
  let iters = ref 0 in
  let since_progress = ref 0 in
  let last_obj = ref infinity in
  let rec loop () =
    if !iters >= max_iters then `Iters
    else begin
      incr iters;
      if !iters mod 128 = 0 then ignore (refactorize st);
      (* y = c_B Binv *)
      for k = 0 to m - 1 do
        let acc = ref 0.0 in
        for i = 0 to m - 1 do
          let cb = st.cost.(st.basis.(i)) in
          if cb <> 0.0 then acc := !acc +. (cb *. st.binv.(i).(k))
        done;
        y.(k) <- !acc
      done;
      (* Pricing: Dantzig normally, Bland when stalled. *)
      let bland = !since_progress > 2 * (m + 10) in
      let enter = ref (-1) and best = ref eps_cost and enter_dir = ref 1.0 in
      (try
         for j = 0 to st.ncols - 1 do
           match st.status.(j) with
           | Basic -> ()
           | At_lower | At_upper ->
               if st.up.(j) > st.lo.(j) then begin
                 let d =
                   Array.fold_left
                     (fun acc (i, a) -> acc -. (y.(i) *. a))
                     st.cost.(j) st.cols.(j)
                 in
                 let attractive, dir =
                   match st.status.(j) with
                   | At_lower -> (d < -.eps_cost, 1.0)
                   | At_upper -> (d > eps_cost, -1.0)
                   | Basic -> (false, 0.0)
                 in
                 if attractive then
                   if bland then begin
                     enter := j;
                     enter_dir := dir;
                     raise Exit
                   end
                   else if Float.abs d > !best then begin
                     best := Float.abs d;
                     enter := j;
                     enter_dir := dir
                   end
               end
         done
       with Exit -> ());
      if !enter < 0 then `Optimal
      else begin
        let j = !enter and dir = !enter_dir in
        (* w = Binv A_j *)
        let w = st.work in
        Array.fill w 0 m 0.0;
        Array.iter
          (fun (r, a) ->
            for i = 0 to m - 1 do
              w.(i) <- w.(i) +. (st.binv.(i).(r) *. a)
            done)
          st.cols.(j);
        (* ratio test *)
        let t_flip =
          if st.up.(j) = infinity then infinity else st.up.(j) -. st.lo.(j)
        in
        let t_min = ref t_flip and leave = ref (-1) and leave_to = ref At_lower in
        for i = 0 to m - 1 do
          let delta = dir *. w.(i) in
          let b = st.basis.(i) in
          if delta > eps_pivot then begin
            let t = (st.xb.(i) -. st.lo.(b)) /. delta in
            let t = if t < 0.0 then 0.0 else t in
            if
              t < !t_min -. 1e-12
              || (t <= !t_min +. 1e-12 && !leave >= 0
                  && Float.abs delta > Float.abs (dir *. st.work.(!leave)))
            then begin
              t_min := t;
              leave := i;
              leave_to := At_lower
            end
          end
          else if delta < -.eps_pivot && st.up.(b) < infinity then begin
            let t = (st.xb.(i) -. st.up.(b)) /. delta in
            let t = if t < 0.0 then 0.0 else t in
            if
              t < !t_min -. 1e-12
              || (t <= !t_min +. 1e-12 && !leave >= 0
                  && Float.abs delta > Float.abs (dir *. st.work.(!leave)))
            then begin
              t_min := t;
              leave := i;
              leave_to := At_upper
            end
          end
        done;
        if !t_min = infinity then `Unbounded
        else begin
          let t = !t_min in
          if !leave < 0 then begin
            (* bound flip *)
            for i = 0 to m - 1 do
              st.xb.(i) <- st.xb.(i) -. (t *. dir *. w.(i))
            done;
            st.status.(j) <-
              (match st.status.(j) with
              | At_lower -> At_upper
              | At_upper -> At_lower
              | Basic -> assert false);
            since_progress := 0;
            loop ()
          end
          else begin
            let r = !leave in
            let entering_value =
              match st.status.(j) with
              | At_lower -> st.lo.(j) +. t
              | At_upper -> st.up.(j) -. t
              | Basic -> assert false
            in
            for i = 0 to m - 1 do
              if i <> r then st.xb.(i) <- st.xb.(i) -. (t *. dir *. w.(i))
            done;
            let leaving = st.basis.(r) in
            st.status.(leaving) <- !leave_to;
            st.status.(j) <- Basic;
            st.basis.(r) <- j;
            st.xb.(r) <- entering_value;
            (* Binv update: row r scaled by 1/w_r, others eliminated. *)
            let wr = w.(r) in
            let rowr = st.binv.(r) in
            for k = 0 to m - 1 do
              rowr.(k) <- rowr.(k) /. wr
            done;
            for i = 0 to m - 1 do
              if i <> r && Float.abs w.(i) > 0.0 then begin
                let f = w.(i) in
                let rowi = st.binv.(i) in
                for k = 0 to m - 1 do
                  rowi.(k) <- rowi.(k) -. (f *. rowr.(k))
                done
              end
            done;
            (* progress tracking on the phase objective *)
            let obj = ref 0.0 in
            for i = 0 to m - 1 do
              let c = st.cost.(st.basis.(i)) in
              if c <> 0.0 then obj := !obj +. (c *. st.xb.(i))
            done;
            if !obj < !last_obj -. 1e-9 then begin
              last_obj := !obj;
              since_progress := 0
            end
            else incr since_progress;
            loop ()
          end
        end
      end
    end
  in
  loop ()

let solve ?(max_iters = 20_000) (p : problem) =
  let n = p.n_vars in
  (* Normalize rows: Ge becomes negated Le; collect (terms, rhs, is_eq). *)
  let rows =
    List.map
      (fun (sense, terms, rhs) ->
        match sense with
        | Model.Le -> (terms, rhs, false)
        | Model.Eq -> (terms, rhs, true)
        | Model.Ge ->
            (List.map (fun (v, c) -> (v, -.c)) terms, -.rhs, false))
      p.rows
  in
  let m = List.length rows in
  if m = 0 then begin
    (* Only bounds: each variable sits at the bound favoured by its cost. *)
    let primal =
      Array.init n (fun j ->
          if p.objective.(j) >= 0.0 then p.lower.(j) else p.upper.(j))
    in
    let unb = ref false and obj = ref 0.0 in
    Array.iteri
      (fun j x ->
        if Float.abs x = infinity && p.objective.(j) <> 0.0 then unb := true
        else obj := !obj +. (p.objective.(j) *. x))
      primal;
    if !unb then Unbounded else Optimal { objective = !obj; primal }
  end
  else begin
    let ncols_base = n + m in
    (* residuals with structurals at lower bound determine artificials *)
    let rhs = Array.make m 0.0 in
    let is_eq = Array.make m false in
    List.iteri
      (fun i (_, r, e) ->
        rhs.(i) <- r;
        is_eq.(i) <- e)
      rows;
    let resid = Array.make m 0.0 in
    List.iteri
      (fun i (terms, r, _) ->
        let acc = ref r in
        List.iter (fun (v, c) -> acc := !acc -. (c *. p.lower.(v))) terms;
        resid.(i) <- !acc)
      rows;
    let needs_art = Array.make m false in
    for i = 0 to m - 1 do
      if is_eq.(i) then needs_art.(i) <- Float.abs resid.(i) > eps_feas
      else needs_art.(i) <- resid.(i) < -.eps_feas
    done;
    let n_art = Array.fold_left (fun a b -> if b then a + 1 else a) 0 needs_art in
    let ncols = ncols_base + n_art in
    let lo = Array.make ncols 0.0 and up = Array.make ncols infinity in
    Array.blit p.lower 0 lo 0 n;
    Array.blit p.upper 0 up 0 n;
    for i = 0 to m - 1 do
      (* slack bounds *)
      if is_eq.(i) then up.(n + i) <- 0.0
    done;
    let cols = Array.make ncols [||] in
    let by_col = Array.make n [] in
    List.iteri
      (fun i (terms, _, _) ->
        List.iter (fun (v, c) -> by_col.(v) <- (i, c) :: by_col.(v)) terms)
      rows;
    for j = 0 to n - 1 do
      cols.(j) <- Array.of_list (List.rev by_col.(j))
    done;
    for i = 0 to m - 1 do
      cols.(n + i) <- [| (i, 1.0) |]
    done;
    let status = Array.make ncols At_lower in
    let basis = Array.make m (-1) in
    let next_art = ref ncols_base in
    for i = 0 to m - 1 do
      if needs_art.(i) then begin
        let j = !next_art in
        incr next_art;
        cols.(j) <- [| (i, if resid.(i) >= 0.0 then 1.0 else -1.0) |];
        basis.(i) <- j;
        status.(j) <- Basic
      end
      else begin
        basis.(i) <- n + i;
        status.(n + i) <- Basic
      end
    done;
    let binv = Array.make_matrix m m 0.0 in
    for i = 0 to m - 1 do
      binv.(i).(i) <- 1.0
    done;
    let st =
      {
        m;
        ncols;
        lo;
        up;
        cols;
        rhs;
        cost = Array.make ncols 0.0;
        status;
        basis;
        binv;
        xb = Array.make m 0.0;
        work = Array.make m 0.0;
      }
    in
    ignore (refactorize st);
    (* Phase I *)
    let phase2_only = n_art = 0 in
    let run_phase2 () =
      let cost2 = Array.make ncols 0.0 in
      Array.blit p.objective 0 cost2 0 n;
      (* artificials pinned to zero *)
      for j = ncols_base to ncols - 1 do
        up.(j) <- 0.0
      done;
      st.cost <- cost2;
      match run_phase st ~max_iters with
      | `Optimal ->
          ignore (refactorize st);
          let primal = Array.make n 0.0 in
          for j = 0 to n - 1 do
            match st.status.(j) with
            | At_lower -> primal.(j) <- lo.(j)
            | At_upper -> primal.(j) <- up.(j)
            | Basic -> ()
          done;
          for i = 0 to m - 1 do
            if st.basis.(i) < n then primal.(st.basis.(i)) <- st.xb.(i)
          done;
          let obj = ref 0.0 in
          for j = 0 to n - 1 do
            obj := !obj +. (p.objective.(j) *. primal.(j))
          done;
          Optimal { objective = !obj; primal }
      | `Unbounded -> Unbounded
      | `Iters -> Iteration_limit
    in
    if phase2_only then run_phase2 ()
    else begin
      let cost1 = Array.make ncols 0.0 in
      for j = ncols_base to ncols - 1 do
        cost1.(j) <- 1.0
      done;
      st.cost <- cost1;
      match run_phase st ~max_iters with
      | `Unbounded -> Infeasible (* cannot happen: phase I is bounded below *)
      | `Iters -> Iteration_limit
      | `Optimal ->
          let phase1_obj = ref 0.0 in
          for i = 0 to m - 1 do
            if st.basis.(i) >= ncols_base then
              phase1_obj := !phase1_obj +. st.xb.(i)
          done;
          if !phase1_obj > 1e-6 then Infeasible else run_phase2 ()
    end
  end

let problem_of_model ?lower ?upper (model : Model.t) =
  let n = Model.n_vars model in
  let lo = Array.make n 0.0 and up = Array.make n 0.0 in
  for v = 0 to n - 1 do
    let l, u = Model.bounds model v in
    lo.(v) <- float_of_int (match lower with Some a -> a.(v) | None -> l);
    up.(v) <- float_of_int (match upper with Some a -> a.(v) | None -> u)
  done;
  let objective = Array.make n 0.0 in
  Linexpr.iter
    (fun ~coef ~var -> objective.(var) <- float_of_int coef)
    (Model.objective model);
  let rows =
    Array.to_list (Model.constraints model)
    |> List.map (fun (c : Model.constr) ->
           ( c.Model.sense,
             List.map
               (fun (coef, v) -> (v, float_of_int coef))
               (Linexpr.terms c.Model.expr),
             float_of_int c.Model.rhs ))
  in
  { n_vars = n; lower = lo; upper = up; objective; rows }

let relax ?lower ?upper (model : Model.t) =
  solve (problem_of_model ?lower ?upper model)

(* --- persistent instances: warm-started dual simplex -------------------- *)

(* A persistent instance holds the constraint matrix with one slack per
   row (no artificials: with every structural bound finite, the all-slack
   basis with nonbasic structurals parked at their cost-favoured bound is
   always dual feasible, so the dual simplex can start — and restart after
   any bound change — without a phase I).  Reduced costs do not depend on
   variable bounds, so the basis left behind by the previous solve stays
   dual feasible when branch-and-bound tightens bounds; [resolve] then
   re-optimizes in a handful of dual pivots. *)
type instance = {
  inst_n : int;  (* structural variables *)
  mutable st : state;
  mutable pivots : int;  (* dual pivots since the last refactorization *)
  mutable total_pivots : int;  (* dual pivots over the instance's lifetime *)
  mutable d : float array;  (* reduced costs by column *)
  mutable alpha : float array;  (* pivot-row scratch by column *)
}

let eps_dual = 1e-6
let refactor_period = 512

let instance_of_problem (p : problem) =
  let n = p.n_vars in
  let finite = ref true in
  for j = 0 to n - 1 do
    if Float.abs p.lower.(j) = infinity || Float.abs p.upper.(j) = infinity
    then finite := false
  done;
  if not !finite then None
  else begin
    let rows =
      List.map
        (fun (sense, terms, rhs) ->
          match sense with
          | Model.Le -> (terms, rhs, false)
          | Model.Eq -> (terms, rhs, true)
          | Model.Ge -> (List.map (fun (v, c) -> (v, -.c)) terms, -.rhs, false))
        p.rows
    in
    let m = List.length rows in
    let ncols = n + m in
    let lo = Array.make ncols 0.0 and up = Array.make ncols infinity in
    Array.blit p.lower 0 lo 0 n;
    Array.blit p.upper 0 up 0 n;
    let rhs = Array.make m 0.0 in
    let cols = Array.make ncols [||] in
    let by_col = Array.make (max n 1) [] in
    List.iteri
      (fun i (terms, r, is_eq) ->
        rhs.(i) <- r;
        if is_eq then up.(n + i) <- 0.0;
        List.iter (fun (v, c) -> by_col.(v) <- (i, c) :: by_col.(v)) terms)
      rows;
    for j = 0 to n - 1 do
      cols.(j) <- Array.of_list (List.rev by_col.(j))
    done;
    for i = 0 to m - 1 do
      cols.(n + i) <- [| (i, 1.0) |]
    done;
    let cost = Array.make ncols 0.0 in
    Array.blit p.objective 0 cost 0 n;
    let status = Array.make ncols At_lower in
    for j = 0 to n - 1 do
      if cost.(j) < 0.0 then status.(j) <- At_upper
    done;
    let basis = Array.init m (fun i -> n + i) in
    for i = 0 to m - 1 do
      status.(n + i) <- Basic
    done;
    let binv = Array.make_matrix m m 0.0 in
    for i = 0 to m - 1 do
      binv.(i).(i) <- 1.0
    done;
    let st =
      {
        m;
        ncols;
        lo;
        up;
        cols;
        rhs;
        cost;
        status;
        basis;
        binv;
        xb = Array.make m 0.0;
        work = Array.make m 0.0;
      }
    in
    recompute_xb st;
    (* All-slack basis: y = 0, so the reduced costs are the costs
       themselves; [d] is maintained incrementally from here on. *)
    Some
      {
        inst_n = n;
        st;
        pivots = 0;
        total_pivots = 0;
        d = Array.copy cost;
        alpha = Array.make ncols 0.0;
      }
  end

let instance_of_model ?lower ?upper model =
  instance_of_problem (problem_of_model ?lower ?upper model)

let n_rows t = t.st.m
let pivots t = t.total_pivots

(* Bound changes never touch the basis or the reduced costs; only the
   resting value of a nonbasic column moves, which shifts the basic
   solution by -delta * Binv A_v — O(m * nnz_v), so a warm [resolve] pays
   nothing for the bounds that did not change. *)
let set_bounds t v ~lo ~up =
  let st = t.st in
  if st.lo.(v) <> lo || st.up.(v) <> up then begin
    match st.status.(v) with
    | Basic ->
        st.lo.(v) <- lo;
        st.up.(v) <- up
    | At_lower | At_upper ->
        let old_val = nonbasic_value st v in
        st.lo.(v) <- lo;
        st.up.(v) <- up;
        let delta = nonbasic_value st v -. old_val in
        if delta <> 0.0 then
          Array.iter
            (fun (i, a) ->
              let da = delta *. a in
              for k = 0 to st.m - 1 do
                st.xb.(k) <- st.xb.(k) -. (st.binv.(k).(i) *. da)
              done)
            st.cols.(v)
  end

(* Reduced costs of every column from scratch: d = c - c_B Binv A. *)
let compute_duals t =
  let st = t.st in
  let m = st.m in
  let y = Array.make m 0.0 in
  for k = 0 to m - 1 do
    let acc = ref 0.0 in
    for i = 0 to m - 1 do
      let cb = st.cost.(st.basis.(i)) in
      if cb <> 0.0 then acc := !acc +. (cb *. st.binv.(i).(k))
    done;
    y.(k) <- !acc
  done;
  for j = 0 to st.ncols - 1 do
    if st.status.(j) = Basic then t.d.(j) <- 0.0
    else
      t.d.(j) <-
        Array.fold_left
          (fun acc (i, a) -> acc -. (y.(i) *. a))
          st.cost.(j) st.cols.(j)
  done

(* Flip mis-signed nonbasics to their other (finite) bound.  Bound changes
   never break dual feasibility, so this only fires after numerical drift
   or a basis restore; returns false when a column with an infinite
   opposite bound blocks it.  Sets [flipped] when any status moved (the
   caller must then recompute x_B). *)
let repair_dual_feasibility ?flipped t =
  let st = t.st in
  let ok = ref true in
  let flip j status =
    st.status.(j) <- status;
    Option.iter (fun r -> r := true) flipped
  in
  for j = 0 to st.ncols - 1 do
    if st.lo.(j) < st.up.(j) then
      match st.status.(j) with
      | At_lower when t.d.(j) < -.eps_dual ->
          if st.up.(j) < infinity then flip j At_upper else ok := false
      | At_upper when t.d.(j) > eps_dual ->
          if st.lo.(j) > neg_infinity then flip j At_lower else ok := false
      | _ -> ()
  done;
  !ok

let dual_objective t =
  let st = t.st in
  let z = ref 0.0 in
  for i = 0 to st.m - 1 do
    let c = st.cost.(st.basis.(i)) in
    if c <> 0.0 then z := !z +. (c *. st.xb.(i))
  done;
  for j = 0 to st.ncols - 1 do
    if st.status.(j) <> Basic && st.cost.(j) <> 0.0 then
      z := !z +. (st.cost.(j) *. nonbasic_value st j)
  done;
  !z

(* Residual audit against the original matrix: catches basis-inverse drift
   that the in-basis bookkeeping cannot see.  O(nnz). *)
let primal_residual_ok t =
  let st = t.st in
  let m = st.m in
  let r = Array.copy st.rhs in
  let row_of = Array.make st.ncols (-1) in
  for i = 0 to m - 1 do
    row_of.(st.basis.(i)) <- i
  done;
  for j = 0 to st.ncols - 1 do
    let x =
      if st.status.(j) = Basic then st.xb.(row_of.(j)) else nonbasic_value st j
    in
    if x <> 0.0 then
      Array.iter (fun (i, a) -> r.(i) <- r.(i) -. (a *. x)) st.cols.(j)
  done;
  let ok = ref true in
  for i = 0 to m - 1 do
    if Float.abs r.(i) > 1e-5 *. (1.0 +. Float.abs st.rhs.(i)) then ok := false
  done;
  !ok

let extract_optimal t =
  let st = t.st in
  let primal = Array.make t.inst_n 0.0 in
  for j = 0 to t.inst_n - 1 do
    match st.status.(j) with
    | At_lower -> primal.(j) <- st.lo.(j)
    | At_upper -> primal.(j) <- st.up.(j)
    | Basic -> ()
  done;
  for i = 0 to st.m - 1 do
    if st.basis.(i) < t.inst_n then primal.(st.basis.(i)) <- st.xb.(i)
  done;
  let obj = ref 0.0 in
  for j = 0 to t.inst_n - 1 do
    if st.cost.(j) <> 0.0 then obj := !obj +. (st.cost.(j) *. primal.(j))
  done;
  Optimal { objective = !obj; primal }

(* Bounded-variable dual simplex from the current (dual-feasible) basis.
   Leaving: most-violated basic bound (Bland: smallest row) — entering:
   shortest dual ratio |d_j / alpha_j| among sign-eligible nonbasics,
   tie-broken by pivot magnitude (Bland: smallest column index). *)
let resolve ?(max_iters = 256) t =
  let st = t.st in
  let m = st.m in
  (* [d] and [xb] are maintained incrementally (across pivots by the loop,
     across bound changes by [set_bounds]), so a warm entry costs one
     O(ncols) dual-feasibility scan, not an O(m^2) rebuild. *)
  let flipped = ref false in
  let dual_ok =
    repair_dual_feasibility ~flipped t
    || (refactorize st
        &&
        (compute_duals t;
         flipped := true;
         repair_dual_feasibility t))
  in
  if not dual_ok then Iteration_limit
  else begin
    if !flipped then recompute_xb st;
    let iters = ref 0 in
    let since_progress = ref 0 in
    let last_dual = ref neg_infinity in
    let audited = ref false in
    let rec loop () =
      if !iters >= max_iters then Iteration_limit
      else begin
        incr iters;
        let bland = !since_progress > 2 * (m + 10) in
        (* leaving row *)
        let r = ref (-1) and viol = ref eps_feas and below = ref true in
        (try
           for i = 0 to m - 1 do
             let b = st.basis.(i) in
             let v1 = st.lo.(b) -. st.xb.(i) in
             let v2 = st.xb.(i) -. st.up.(b) in
             if v1 > !viol then begin
               r := i;
               viol := v1;
               below := true;
               if bland then raise Exit
             end
             else if v2 > !viol then begin
               r := i;
               viol := v2;
               below := false;
               if bland then raise Exit
             end
           done
         with Exit -> ());
        if !r < 0 then
          (* primal feasible: optimal, after a one-shot drift audit *)
          if !audited || primal_residual_ok t then extract_optimal t
          else begin
            audited := true;
            if refactorize st then begin
              compute_duals t;
              if repair_dual_feasibility t then begin
                recompute_xb st;
                loop ()
              end
              else Iteration_limit
            end
            else Iteration_limit
          end
        else begin
          let r = !r in
          let sign = if !below then 1.0 else -1.0 in
          let binvr = st.binv.(r) in
          for j = 0 to st.ncols - 1 do
            if st.status.(j) = Basic then t.alpha.(j) <- 0.0
            else
              t.alpha.(j) <-
                Array.fold_left
                  (fun acc (i, a) -> acc +. (binvr.(i) *. a))
                  0.0 st.cols.(j)
          done;
          let eligible j =
            st.status.(j) <> Basic
            && st.lo.(j) < st.up.(j)
            &&
            let a = sign *. t.alpha.(j) in
            match st.status.(j) with
            | At_lower -> a < -.eps_pivot
            | At_upper -> a > eps_pivot
            | Basic -> false
          in
          let minr = ref infinity in
          for j = 0 to st.ncols - 1 do
            if eligible j then begin
              let ratio = Float.abs t.d.(j) /. Float.abs t.alpha.(j) in
              if ratio < !minr then minr := ratio
            end
          done;
          if !minr = infinity then Infeasible (* dual unbounded *)
          else begin
            let enter = ref (-1) and ba = ref 0.0 in
            (try
               for j = 0 to st.ncols - 1 do
                 if eligible j then begin
                   let ratio = Float.abs t.d.(j) /. Float.abs t.alpha.(j) in
                   if ratio <= !minr +. 1e-9 then
                     if bland then begin
                       enter := j;
                       raise Exit
                     end
                     else if Float.abs t.alpha.(j) > Float.abs !ba then begin
                       enter := j;
                       ba := t.alpha.(j)
                     end
                 end
               done
             with Exit -> ());
            let j = !enter in
            let arj = t.alpha.(j) in
            let b = st.basis.(r) in
            let target = if !below then st.lo.(b) else st.up.(b) in
            let tj = (st.xb.(r) -. target) /. arj in
            (* w = Binv A_j *)
            let w = st.work in
            Array.fill w 0 m 0.0;
            Array.iter
              (fun (i, a) ->
                for k = 0 to m - 1 do
                  w.(k) <- w.(k) +. (st.binv.(k).(i) *. a)
                done)
              st.cols.(j);
            let entering_value = nonbasic_value st j +. tj in
            for i = 0 to m - 1 do
              if i <> r then st.xb.(i) <- st.xb.(i) -. (tj *. w.(i))
            done;
            st.status.(b) <- (if !below then At_lower else At_upper);
            st.status.(j) <- Basic;
            st.basis.(r) <- j;
            st.xb.(r) <- entering_value;
            let wr = w.(r) in
            let rowr = st.binv.(r) in
            for k = 0 to m - 1 do
              rowr.(k) <- rowr.(k) /. wr
            done;
            for i = 0 to m - 1 do
              if i <> r && Float.abs w.(i) > 0.0 then begin
                let f = w.(i) in
                let rowi = st.binv.(i) in
                for k = 0 to m - 1 do
                  rowi.(k) <- rowi.(k) -. (f *. rowr.(k))
                done
              end
            done;
            (* incremental reduced costs: d_k -= theta alpha_k *)
            let theta = t.d.(j) /. arj in
            if theta <> 0.0 then
              for k = 0 to st.ncols - 1 do
                if st.status.(k) <> Basic && t.alpha.(k) <> 0.0 then
                  t.d.(k) <- t.d.(k) -. (theta *. t.alpha.(k))
              done;
            t.d.(j) <- 0.0;
            t.d.(b) <- -.theta;
            t.pivots <- t.pivots + 1;
            t.total_pivots <- t.total_pivots + 1;
            (* periodic refresh of the incrementally-updated state; any
               drift-induced status flip invalidates x_B *)
            if t.pivots mod refactor_period = 0 || !iters mod 64 = 0 then begin
              if t.pivots mod refactor_period = 0 && not (refactorize st) then
                raise Exit;
              compute_duals t;
              let fl = ref false in
              ignore (repair_dual_feasibility ~flipped:fl t);
              if !fl then recompute_xb st
            end;
            let z = dual_objective t in
            if z > !last_dual +. 1e-9 then begin
              last_dual := z;
              since_progress := 0
            end
            else incr since_progress;
            loop ()
          end
        end
      end
    in
    try loop () with Exit -> Iteration_limit
  end

let add_row t terms rhs =
  let st = t.st in
  let n = t.inst_n and m = st.m in
  let m' = m + 1 and ncols' = st.ncols + 1 in
  let grow a x =
    let b = Array.make (Array.length a + 1) x in
    Array.blit a 0 b 0 (Array.length a);
    b
  in
  let coef = Array.make (max n 1) 0.0 in
  List.iter (fun (v, c) -> coef.(v) <- coef.(v) +. c) terms;
  let cols = Array.make ncols' [||] in
  for j = 0 to st.ncols - 1 do
    cols.(j) <-
      (if j < n && coef.(j) <> 0.0 then grow st.cols.(j) (m, coef.(j))
       else st.cols.(j))
  done;
  cols.(ncols' - 1) <- [| (m, 1.0) |];
  (* Binv of the bordered basis [[B 0] [a_B 1]]: old inverse extended with
     a zero column, plus a last row  -a_B Binv | 1. *)
  let binv = Array.make m' [||] in
  for i = 0 to m - 1 do
    binv.(i) <- grow st.binv.(i) 0.0
  done;
  let last = Array.make m' 0.0 in
  last.(m) <- 1.0;
  for i = 0 to m - 1 do
    let b = st.basis.(i) in
    let a = if b < n then coef.(b) else 0.0 in
    if a <> 0.0 then
      for k = 0 to m - 1 do
        last.(k) <- last.(k) -. (a *. st.binv.(i).(k))
      done
  done;
  binv.(m) <- last;
  let status = grow st.status Basic in
  let basis = grow st.basis (ncols' - 1) in
  t.st <-
    {
      m = m';
      ncols = ncols';
      lo = grow st.lo 0.0;
      up = grow st.up infinity;
      cols;
      rhs = grow st.rhs rhs;
      cost = grow st.cost 0.0;
      status;
      basis;
      binv;
      xb = Array.make m' 0.0;
      work = Array.make m' 0.0;
    };
  (* the appended basic slack has reduced cost 0 and leaves y unchanged
     (its cost is 0), so the existing reduced costs stay valid *)
  let d' = Array.make ncols' 0.0 in
  Array.blit t.d 0 d' 0 (ncols' - 1);
  t.d <- d';
  t.alpha <- Array.make ncols' 0.0;
  recompute_xb t.st

(* Reads the incrementally-maintained reduced costs — O(n), no fresh
   O(m^2) dual computation.  Meaningful right after an [Optimal] resolve. *)
let nonbasic_reduced_costs t =
  let st = t.st in
  let acc = ref [] in
  for j = t.inst_n - 1 downto 0 do
    if st.lo.(j) < st.up.(j) then
      match st.status.(j) with
      | Basic -> ()
      | At_lower -> if t.d.(j) > eps_dual then acc := (j, false, t.d.(j)) :: !acc
      | At_upper -> if t.d.(j) < -.eps_dual then acc := (j, true, t.d.(j)) :: !acc
  done;
  !acc

(* Weak duality: for the prices behind the current reduced costs, the
   Lagrangian bound L(y) = y b + sum_j min(d_j lo_j, d_j up_j) lower-bounds
   the LP optimum at ANY basis — primal feasible or not.  With every
   nonbasic resting at its reduced-cost-favoured bound L(y) is exactly the
   basic solution's objective; a mis-signed nonbasic (post-drift) costs a
   |d| * width correction.  This turns an iteration-capped [resolve] into
   a usable bound instead of a wasted solve.  [None] when a mis-signed
   column has infinite width (the correction would be -inf). *)
let dual_bound t =
  let st = t.st in
  let corr = ref 0.0 in
  let usable = ref true in
  for j = 0 to st.ncols - 1 do
    match st.status.(j) with
    | Basic -> ()
    | At_lower ->
        if t.d.(j) < 0.0 then begin
          let w = st.up.(j) -. st.lo.(j) in
          if w = infinity then usable := false
          else corr := !corr -. (t.d.(j) *. w)
        end
    | At_upper ->
        if t.d.(j) > 0.0 then begin
          let w = st.up.(j) -. st.lo.(j) in
          if w = infinity then usable := false
          else corr := !corr +. (t.d.(j) *. w)
        end
  done;
  if !usable then Some (dual_objective t -. !corr) else None

type snapshot = {
  snap_status : status array;
  snap_basis : int array;
  snap_ncols : int;
}

let save t =
  {
    snap_status = Array.copy t.st.status;
    snap_basis = Array.copy t.st.basis;
    snap_ncols = t.st.ncols;
  }

let restore t snap =
  if snap.snap_ncols <> t.st.ncols then false
  else begin
    Array.blit snap.snap_status 0 t.st.status 0 t.st.ncols;
    Array.blit snap.snap_basis 0 t.st.basis 0 t.st.m;
    t.pivots <- 0;
    let ok = refactorize t.st in
    if ok then compute_duals t;
    ok
  end
