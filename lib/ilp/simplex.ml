type result =
  | Optimal of { objective : float; primal : float array }
  | Infeasible
  | Unbounded
  | Iteration_limit

type problem = {
  n_vars : int;
  lower : float array;
  upper : float array;
  objective : float array;
  rows : (Model.sense * (int * float) list * float) list;
}

type status = Basic | At_lower | At_upper
type pricing = Dantzig | Devex

let eps_cost = 1e-7
let eps_pivot = 1e-9
let eps_feas = 1e-7

(* Flat unboxed storage.  Every float store the inner loops touch lives in
   a [Bigarray.Array1] of float64 (dense matrices row-major), and the
   sparse constraint columns in one CSC triplet (int offsets, int rows,
   float values).  All scratch is preallocated in the state, so a pivot,
   a ratio test, or a bound shift allocates nothing. *)
module A1 = Bigarray.Array1

type fa = (float, Bigarray.float64_elt, Bigarray.c_layout) A1.t

let fa_make n : fa =
  let a = A1.create Bigarray.float64 Bigarray.c_layout (max n 1) in
  A1.fill a 0.0;
  a

let fa_of_array (src : float array) : fa =
  let n = Array.length src in
  let a = fa_make n in
  for i = 0 to n - 1 do
    A1.unsafe_set a i src.(i)
  done;
  a

let[@inline] fget (a : fa) i = A1.unsafe_get a i
let[@inline] fset (a : fa) i v = A1.unsafe_set a i v

(* Blit the first [n] entries (the buffers may be over-allocated). *)
let fa_blit (src : fa) (dst : fa) n =
  if n > 0 then A1.blit (A1.sub src 0 n) (A1.sub dst 0 n)

(* Internal mutable state of the simplex.

   Columns: structurals [0 .. n-1], one slack per row [n .. n+m-1],
   artificials appended as needed.  Ge rows are negated to Le beforehand, so
   slacks have bounds [0, +inf) (Le) or [0, 0] (Eq).  The basis inverse is
   kept dense (flat row-major, [binv.{i*m+k}]) and updated by elementary
   row operations; it is refactorized from scratch periodically to contain
   numerical drift. *)
type state = {
  m : int;
  ncols : int;
  lo : fa;  (* ncols *)
  up : fa;  (* ncols *)
  col_ptr : int array;  (* ncols+1: CSC column offsets *)
  col_row : int array;  (* nnz: row index per entry *)
  col_val : fa;  (* nnz: coefficient per entry *)
  rhs : fa;  (* m *)
  cost : fa;  (* ncols; contents mutated between phases *)
  status : status array;
  basis : int array;  (* row -> column *)
  binv : fa;  (* m*m, row-major *)
  fac : fa;  (* m*m refactorization scratch: working copy of B *)
  finv : fa;  (* m*m refactorization scratch: inverse under construction *)
  xb : fa;  (* values of basic variables by row *)
  work : fa;  (* scratch, length m (pivot column w = Binv A_j) *)
  ywork : fa;  (* scratch, length m (duals y, rhs residuals) *)
  iwork : int array;  (* scratch, length ncols (column -> basis row) *)
}

let[@inline] nonbasic_value st j =
  match st.status.(j) with
  | At_lower -> fget st.lo j
  | At_upper -> fget st.up j
  | Basic -> assert false

(* Build a flat state from per-column sparse entries.  The basis inverse
   starts as the identity; callers refactorize or fill it themselves. *)
let make_state ~m ~ncols ~lo ~up ~cols ~rhs ~cost ~status ~basis =
  let nnz = Array.fold_left (fun acc c -> acc + Array.length c) 0 cols in
  let col_ptr = Array.make (ncols + 1) 0 in
  let col_row = Array.make (max nnz 1) 0 in
  let col_val = fa_make nnz in
  let k = ref 0 in
  for j = 0 to ncols - 1 do
    col_ptr.(j) <- !k;
    Array.iter
      (fun (i, a) ->
        col_row.(!k) <- i;
        fset col_val !k a;
        incr k)
      cols.(j)
  done;
  col_ptr.(ncols) <- !k;
  let binv = fa_make (m * m) in
  for i = 0 to m - 1 do
    fset binv ((i * m) + i) 1.0
  done;
  {
    m;
    ncols;
    lo = fa_of_array lo;
    up = fa_of_array up;
    col_ptr;
    col_row;
    col_val;
    rhs = fa_of_array rhs;
    cost = fa_of_array cost;
    status;
    basis;
    binv;
    fac = fa_make (m * m);
    finv = fa_make (m * m);
    xb = fa_make m;
    work = fa_make m;
    ywork = fa_make m;
    iwork = Array.make (max ncols 1) (-1);
  }

(* x_B = Binv (b - sum over nonbasic columns of A_j x_j). *)
let recompute_xb st =
  let m = st.m in
  let r = st.ywork in
  fa_blit st.rhs r m;
  for j = 0 to st.ncols - 1 do
    if st.status.(j) <> Basic then begin
      let xj = nonbasic_value st j in
      if xj <> 0.0 then
        for t = st.col_ptr.(j) to st.col_ptr.(j + 1) - 1 do
          let i = Array.unsafe_get st.col_row t in
          fset r i (fget r i -. (fget st.col_val t *. xj))
        done
    end
  done;
  for i = 0 to m - 1 do
    let base = i * m in
    let acc = ref 0.0 in
    for k = 0 to m - 1 do
      acc := !acc +. (fget st.binv (base + k) *. fget r k)
    done;
    fset st.xb i !acc
  done

(* Gauss-Jordan inversion of the current basis matrix with partial
   pivoting, built in the [fac]/[finv] scratch pair and committed to
   [binv] only on success, so a singular basis leaves the state intact.
   Returns false when the basis is numerically singular. *)
let refactorize st =
  let m = st.m in
  let a = st.fac and inv = st.finv in
  A1.fill a 0.0;
  A1.fill inv 0.0;
  for i = 0 to m - 1 do
    let j = st.basis.(i) in
    for t = st.col_ptr.(j) to st.col_ptr.(j + 1) - 1 do
      fset a ((Array.unsafe_get st.col_row t * m) + i) (fget st.col_val t)
    done;
    fset inv ((i * m) + i) 1.0
  done;
  let ok = ref true in
  (try
     for col = 0 to m - 1 do
       (* partial pivot *)
       let piv = ref col in
       for i = col + 1 to m - 1 do
         if Float.abs (fget a ((i * m) + col)) > Float.abs (fget a ((!piv * m) + col))
         then piv := i
       done;
       if Float.abs (fget a ((!piv * m) + col)) < eps_pivot then begin
         ok := false;
         raise Exit
       end;
       let bc = col * m in
       if !piv <> col then begin
         let bp = !piv * m in
         for k = 0 to m - 1 do
           let t1 = fget a (bc + k) in
           fset a (bc + k) (fget a (bp + k));
           fset a (bp + k) t1;
           let t2 = fget inv (bc + k) in
           fset inv (bc + k) (fget inv (bp + k));
           fset inv (bp + k) t2
         done
       end;
       let d = fget a (bc + col) in
       for k = 0 to m - 1 do
         fset a (bc + k) (fget a (bc + k) /. d);
         fset inv (bc + k) (fget inv (bc + k) /. d)
       done;
       for i = 0 to m - 1 do
         if i <> col then begin
           let bi = i * m in
           let f = fget a (bi + col) in
           if f <> 0.0 then
             for k = 0 to m - 1 do
               fset a (bi + k) (fget a (bi + k) -. (f *. fget a (bc + k)));
               fset inv (bi + k) (fget inv (bi + k) -. (f *. fget inv (bc + k)))
             done
         end
       done
     done
   with Exit -> ());
  if !ok then begin
    fa_blit inv st.binv (m * m);
    recompute_xb st
  end;
  !ok

(* One simplex phase on the current cost vector.  Returns [`Optimal],
   [`Unbounded] or [`Iters]. *)
let run_phase st ~max_iters =
  let m = st.m in
  let y = st.ywork in
  let iters = ref 0 in
  let since_progress = ref 0 in
  let last_obj = ref infinity in
  let rec loop () =
    if !iters >= max_iters then `Iters
    else begin
      incr iters;
      if !iters mod 128 = 0 then ignore (refactorize st);
      (* y = c_B Binv, accumulated row-wise over the basic costs *)
      A1.fill (A1.sub y 0 m) 0.0;
      for i = 0 to m - 1 do
        let cb = fget st.cost (Array.unsafe_get st.basis i) in
        if cb <> 0.0 then begin
          let base = i * m in
          for k = 0 to m - 1 do
            fset y k (fget y k +. (cb *. fget st.binv (base + k)))
          done
        end
      done;
      (* Pricing: Dantzig normally, Bland when stalled. *)
      let bland = !since_progress > 2 * (m + 10) in
      let enter = ref (-1) and best = ref eps_cost and enter_dir = ref 1.0 in
      (try
         for j = 0 to st.ncols - 1 do
           match st.status.(j) with
           | Basic -> ()
           | At_lower | At_upper ->
               if fget st.up j > fget st.lo j then begin
                 let d = ref (fget st.cost j) in
                 for t = st.col_ptr.(j) to st.col_ptr.(j + 1) - 1 do
                   d :=
                     !d
                     -. (fget y (Array.unsafe_get st.col_row t)
                        *. fget st.col_val t)
                 done;
                 let d = !d in
                 let attractive, dir =
                   match st.status.(j) with
                   | At_lower -> (d < -.eps_cost, 1.0)
                   | At_upper -> (d > eps_cost, -1.0)
                   | Basic -> (false, 0.0)
                 in
                 if attractive then
                   if bland then begin
                     enter := j;
                     enter_dir := dir;
                     raise Exit
                   end
                   else if Float.abs d > !best then begin
                     best := Float.abs d;
                     enter := j;
                     enter_dir := dir
                   end
               end
         done
       with Exit -> ());
      if !enter < 0 then `Optimal
      else begin
        let j = !enter and dir = !enter_dir in
        (* w = Binv A_j, accumulated row-wise over the sparse column *)
        let w = st.work in
        let p0 = st.col_ptr.(j) and p1 = st.col_ptr.(j + 1) in
        for i = 0 to m - 1 do
          let base = i * m in
          let acc = ref 0.0 in
          for t = p0 to p1 - 1 do
            acc :=
              !acc
              +. (fget st.binv (base + Array.unsafe_get st.col_row t)
                 *. fget st.col_val t)
          done;
          fset w i !acc
        done;
        (* ratio test *)
        let t_flip =
          if fget st.up j = infinity then infinity
          else fget st.up j -. fget st.lo j
        in
        let t_min = ref t_flip and leave = ref (-1) and leave_to = ref At_lower in
        for i = 0 to m - 1 do
          let delta = dir *. fget w i in
          let b = Array.unsafe_get st.basis i in
          if delta > eps_pivot then begin
            let t = (fget st.xb i -. fget st.lo b) /. delta in
            let t = if t < 0.0 then 0.0 else t in
            if
              t < !t_min -. 1e-12
              || (t <= !t_min +. 1e-12 && !leave >= 0
                  && Float.abs delta > Float.abs (dir *. fget w !leave))
            then begin
              t_min := t;
              leave := i;
              leave_to := At_lower
            end
          end
          else if delta < -.eps_pivot && fget st.up b < infinity then begin
            let t = (fget st.xb i -. fget st.up b) /. delta in
            let t = if t < 0.0 then 0.0 else t in
            if
              t < !t_min -. 1e-12
              || (t <= !t_min +. 1e-12 && !leave >= 0
                  && Float.abs delta > Float.abs (dir *. fget w !leave))
            then begin
              t_min := t;
              leave := i;
              leave_to := At_upper
            end
          end
        done;
        if !t_min = infinity then `Unbounded
        else begin
          let t = !t_min in
          if !leave < 0 then begin
            (* bound flip *)
            for i = 0 to m - 1 do
              fset st.xb i (fget st.xb i -. (t *. dir *. fget w i))
            done;
            st.status.(j) <-
              (match st.status.(j) with
              | At_lower -> At_upper
              | At_upper -> At_lower
              | Basic -> assert false);
            since_progress := 0;
            loop ()
          end
          else begin
            let r = !leave in
            let entering_value =
              match st.status.(j) with
              | At_lower -> fget st.lo j +. t
              | At_upper -> fget st.up j -. t
              | Basic -> assert false
            in
            for i = 0 to m - 1 do
              if i <> r then fset st.xb i (fget st.xb i -. (t *. dir *. fget w i))
            done;
            let leaving = st.basis.(r) in
            st.status.(leaving) <- !leave_to;
            st.status.(j) <- Basic;
            st.basis.(r) <- j;
            fset st.xb r entering_value;
            (* Binv update: row r scaled by 1/w_r, others eliminated. *)
            let wr = fget w r in
            let br = r * m in
            for k = 0 to m - 1 do
              fset st.binv (br + k) (fget st.binv (br + k) /. wr)
            done;
            for i = 0 to m - 1 do
              let f = fget w i in
              if i <> r && Float.abs f > 0.0 then begin
                let bi = i * m in
                for k = 0 to m - 1 do
                  fset st.binv (bi + k)
                    (fget st.binv (bi + k) -. (f *. fget st.binv (br + k)))
                done
              end
            done;
            (* progress tracking on the phase objective *)
            let obj = ref 0.0 in
            for i = 0 to m - 1 do
              let c = fget st.cost (Array.unsafe_get st.basis i) in
              if c <> 0.0 then obj := !obj +. (c *. fget st.xb i)
            done;
            if !obj < !last_obj -. 1e-9 then begin
              last_obj := !obj;
              since_progress := 0
            end
            else incr since_progress;
            loop ()
          end
        end
      end
    end
  in
  loop ()

let solve ?(max_iters = 20_000) (p : problem) =
  let n = p.n_vars in
  (* Normalize rows: Ge becomes negated Le; collect (terms, rhs, is_eq). *)
  let rows =
    List.map
      (fun (sense, terms, rhs) ->
        match sense with
        | Model.Le -> (terms, rhs, false)
        | Model.Eq -> (terms, rhs, true)
        | Model.Ge ->
            (List.map (fun (v, c) -> (v, -.c)) terms, -.rhs, false))
      p.rows
  in
  let m = List.length rows in
  if m = 0 then begin
    (* Only bounds: each variable sits at the bound favoured by its cost. *)
    let primal =
      Array.init n (fun j ->
          if p.objective.(j) >= 0.0 then p.lower.(j) else p.upper.(j))
    in
    let unb = ref false and obj = ref 0.0 in
    Array.iteri
      (fun j x ->
        if Float.abs x = infinity && p.objective.(j) <> 0.0 then unb := true
        else obj := !obj +. (p.objective.(j) *. x))
      primal;
    if !unb then Unbounded else Optimal { objective = !obj; primal }
  end
  else begin
    let ncols_base = n + m in
    (* residuals with structurals at lower bound determine artificials *)
    let rhs = Array.make m 0.0 in
    let is_eq = Array.make m false in
    List.iteri
      (fun i (_, r, e) ->
        rhs.(i) <- r;
        is_eq.(i) <- e)
      rows;
    let resid = Array.make m 0.0 in
    List.iteri
      (fun i (terms, r, _) ->
        let acc = ref r in
        List.iter (fun (v, c) -> acc := !acc -. (c *. p.lower.(v))) terms;
        resid.(i) <- !acc)
      rows;
    let needs_art = Array.make m false in
    for i = 0 to m - 1 do
      if is_eq.(i) then needs_art.(i) <- Float.abs resid.(i) > eps_feas
      else needs_art.(i) <- resid.(i) < -.eps_feas
    done;
    let n_art = Array.fold_left (fun a b -> if b then a + 1 else a) 0 needs_art in
    let ncols = ncols_base + n_art in
    let lo = Array.make ncols 0.0 and up = Array.make ncols infinity in
    Array.blit p.lower 0 lo 0 n;
    Array.blit p.upper 0 up 0 n;
    for i = 0 to m - 1 do
      (* slack bounds *)
      if is_eq.(i) then up.(n + i) <- 0.0
    done;
    let cols = Array.make ncols [||] in
    let by_col = Array.make n [] in
    List.iteri
      (fun i (terms, _, _) ->
        List.iter (fun (v, c) -> by_col.(v) <- (i, c) :: by_col.(v)) terms)
      rows;
    for j = 0 to n - 1 do
      cols.(j) <- Array.of_list (List.rev by_col.(j))
    done;
    for i = 0 to m - 1 do
      cols.(n + i) <- [| (i, 1.0) |]
    done;
    let status = Array.make ncols At_lower in
    let basis = Array.make m (-1) in
    let next_art = ref ncols_base in
    for i = 0 to m - 1 do
      if needs_art.(i) then begin
        let j = !next_art in
        incr next_art;
        cols.(j) <- [| (i, if resid.(i) >= 0.0 then 1.0 else -1.0) |];
        basis.(i) <- j;
        status.(j) <- Basic
      end
      else begin
        basis.(i) <- n + i;
        status.(n + i) <- Basic
      end
    done;
    let st =
      make_state ~m ~ncols ~lo ~up ~cols ~rhs
        ~cost:(Array.make ncols 0.0) ~status ~basis
    in
    ignore (refactorize st);
    (* Phase I *)
    let phase2_only = n_art = 0 in
    let run_phase2 () =
      A1.fill st.cost 0.0;
      for j = 0 to n - 1 do
        fset st.cost j p.objective.(j)
      done;
      (* artificials pinned to zero *)
      for j = ncols_base to ncols - 1 do
        fset st.up j 0.0
      done;
      match run_phase st ~max_iters with
      | `Optimal ->
          ignore (refactorize st);
          let primal = Array.make n 0.0 in
          for j = 0 to n - 1 do
            match st.status.(j) with
            | At_lower -> primal.(j) <- fget st.lo j
            | At_upper -> primal.(j) <- fget st.up j
            | Basic -> ()
          done;
          for i = 0 to m - 1 do
            if st.basis.(i) < n then primal.(st.basis.(i)) <- fget st.xb i
          done;
          let obj = ref 0.0 in
          for j = 0 to n - 1 do
            obj := !obj +. (p.objective.(j) *. primal.(j))
          done;
          Optimal { objective = !obj; primal }
      | `Unbounded -> Unbounded
      | `Iters -> Iteration_limit
    in
    if phase2_only then run_phase2 ()
    else begin
      A1.fill st.cost 0.0;
      for j = ncols_base to ncols - 1 do
        fset st.cost j 1.0
      done;
      match run_phase st ~max_iters with
      | `Unbounded -> Infeasible (* cannot happen: phase I is bounded below *)
      | `Iters -> Iteration_limit
      | `Optimal ->
          let phase1_obj = ref 0.0 in
          for i = 0 to m - 1 do
            if st.basis.(i) >= ncols_base then
              phase1_obj := !phase1_obj +. fget st.xb i
          done;
          if !phase1_obj > 1e-6 then Infeasible else run_phase2 ()
    end
  end

let problem_of_model ?lower ?upper (model : Model.t) =
  let n = Model.n_vars model in
  let lo = Array.make n 0.0 and up = Array.make n 0.0 in
  for v = 0 to n - 1 do
    let l, u = Model.bounds model v in
    lo.(v) <- float_of_int (match lower with Some a -> a.(v) | None -> l);
    up.(v) <- float_of_int (match upper with Some a -> a.(v) | None -> u)
  done;
  let objective = Array.make n 0.0 in
  Linexpr.iter
    (fun ~coef ~var -> objective.(var) <- float_of_int coef)
    (Model.objective model);
  let rows =
    Array.to_list (Model.constraints model)
    |> List.map (fun (c : Model.constr) ->
           ( c.Model.sense,
             List.map
               (fun (coef, v) -> (v, float_of_int coef))
               (Linexpr.terms c.Model.expr),
             float_of_int c.Model.rhs ))
  in
  { n_vars = n; lower = lo; upper = up; objective; rows }

let relax ?lower ?upper (model : Model.t) =
  solve (problem_of_model ?lower ?upper model)

(* --- persistent instances: warm-started dual simplex -------------------- *)

(* A persistent instance holds the constraint matrix with one slack per
   row (no artificials: with every structural bound finite, the all-slack
   basis with nonbasic structurals parked at their cost-favoured bound is
   always dual feasible, so the dual simplex can start — and restart after
   any bound change — without a phase I).  Reduced costs do not depend on
   variable bounds, so the basis left behind by the previous solve stays
   dual feasible when branch-and-bound tightens bounds; [resolve] then
   re-optimizes in a handful of dual pivots.

   [stashes] are full basis images (status, basis, inverse, x_B, duals,
   bounds, devex weights) indexed by slot; the solver stashes the parent
   factorization once per branch and unstashes it for every later sibling,
   replacing the per-child refactorization with a flat memcpy. *)
type stash = {
  sb_ncols : int;
  sb_m : int;
  sb_status : status array;
  sb_basis : int array;
  sb_binv : fa;
  sb_xb : fa;
  sb_d : fa;
  sb_dw : fa;
  sb_lo : fa;
  sb_up : fa;
  mutable sb_pivots : int;
}

type instance = {
  inst_n : int;  (* structural variables *)
  mutable st : state;
  mutable pricing : pricing;
  mutable pivots : int;  (* dual pivots since the last refactorization *)
  mutable total_pivots : int;  (* dual pivots over the instance's lifetime *)
  mutable total_iters : int;  (* dual simplex iterations (lifetime) *)
  mutable total_refactors : int;  (* basis refactorizations (lifetime) *)
  mutable d : fa;  (* reduced costs by column *)
  mutable alpha : fa;  (* pivot-row scratch by column *)
  mutable dw : fa;  (* devex reference weights by row *)
  (* Stall detection for the Dantzig/devex -> Bland switch.  Kept on the
     instance so the policy is explicit: [resolve] resets both fields on
     entry, so a stalled parent solve can never pin a child's warm
     re-solve to Bland. *)
  mutable stall : int;
  mutable stall_obj : float;
  mutable stashes : stash option array;
}

let eps_dual = 1e-6
let refactor_period = 512

let devex_reset t = A1.fill t.dw 1.0

(* All refactorizations on behalf of an instance go through here so the
   telemetry counter stays exact; a fresh factorization also invalidates
   the devex reference frame. *)
let inst_refactorize t =
  t.total_refactors <- t.total_refactors + 1;
  let ok = refactorize t.st in
  if ok then devex_reset t;
  ok

let instance_of_problem ?(pricing = Devex) (p : problem) =
  let n = p.n_vars in
  let finite = ref true in
  for j = 0 to n - 1 do
    if Float.abs p.lower.(j) = infinity || Float.abs p.upper.(j) = infinity
    then finite := false
  done;
  if not !finite then None
  else begin
    let rows =
      List.map
        (fun (sense, terms, rhs) ->
          match sense with
          | Model.Le -> (terms, rhs, false)
          | Model.Eq -> (terms, rhs, true)
          | Model.Ge -> (List.map (fun (v, c) -> (v, -.c)) terms, -.rhs, false))
        p.rows
    in
    let m = List.length rows in
    let ncols = n + m in
    let lo = Array.make ncols 0.0 and up = Array.make ncols infinity in
    Array.blit p.lower 0 lo 0 n;
    Array.blit p.upper 0 up 0 n;
    let rhs = Array.make m 0.0 in
    let cols = Array.make ncols [||] in
    let by_col = Array.make (max n 1) [] in
    List.iteri
      (fun i (terms, r, is_eq) ->
        rhs.(i) <- r;
        if is_eq then up.(n + i) <- 0.0;
        List.iter (fun (v, c) -> by_col.(v) <- (i, c) :: by_col.(v)) terms)
      rows;
    for j = 0 to n - 1 do
      cols.(j) <- Array.of_list (List.rev by_col.(j))
    done;
    for i = 0 to m - 1 do
      cols.(n + i) <- [| (i, 1.0) |]
    done;
    let cost = Array.make ncols 0.0 in
    Array.blit p.objective 0 cost 0 n;
    let status = Array.make ncols At_lower in
    for j = 0 to n - 1 do
      if cost.(j) < 0.0 then status.(j) <- At_upper
    done;
    let basis = Array.init m (fun i -> n + i) in
    for i = 0 to m - 1 do
      status.(n + i) <- Basic
    done;
    let st = make_state ~m ~ncols ~lo ~up ~cols ~rhs ~cost ~status ~basis in
    recompute_xb st;
    (* All-slack basis: y = 0, so the reduced costs are the costs
       themselves; [d] is maintained incrementally from here on. *)
    let dw = fa_make m in
    A1.fill dw 1.0;
    Some
      {
        inst_n = n;
        st;
        pricing;
        pivots = 0;
        total_pivots = 0;
        total_iters = 0;
        total_refactors = 0;
        d = fa_of_array cost;
        alpha = fa_make ncols;
        dw;
        stall = 0;
        stall_obj = neg_infinity;
        stashes = [||];
      }
  end

let instance_of_model ?pricing ?lower ?upper model =
  instance_of_problem ?pricing (problem_of_model ?lower ?upper model)

let n_rows t = t.st.m
let pivots t = t.total_pivots
let iters t = t.total_iters
let refactors t = t.total_refactors
let set_pricing t p = t.pricing <- p

(* Bound changes never touch the basis or the reduced costs; only the
   resting value of a nonbasic column moves, which shifts the basic
   solution by -delta * Binv A_v — O(m * nnz_v), so a warm [resolve] pays
   nothing for the bounds that did not change. *)
let set_bounds t v ~lo ~up =
  let st = t.st in
  if fget st.lo v <> lo || fget st.up v <> up then begin
    match st.status.(v) with
    | Basic ->
        fset st.lo v lo;
        fset st.up v up
    | At_lower | At_upper ->
        let old_val = nonbasic_value st v in
        fset st.lo v lo;
        fset st.up v up;
        let delta = nonbasic_value st v -. old_val in
        if delta <> 0.0 then begin
          let m = st.m in
          let p0 = st.col_ptr.(v) and p1 = st.col_ptr.(v + 1) in
          for k = 0 to m - 1 do
            let base = k * m in
            let acc = ref 0.0 in
            for t = p0 to p1 - 1 do
              acc :=
                !acc
                +. (fget st.binv (base + Array.unsafe_get st.col_row t)
                   *. fget st.col_val t)
            done;
            if !acc <> 0.0 then fset st.xb k (fget st.xb k -. (delta *. !acc))
          done
        end
  end

(* Reduced costs of every column from scratch: d = c - c_B Binv A. *)
let compute_duals t =
  let st = t.st in
  let m = st.m in
  let y = st.ywork in
  A1.fill (A1.sub y 0 m) 0.0;
  for i = 0 to m - 1 do
    let cb = fget st.cost (Array.unsafe_get st.basis i) in
    if cb <> 0.0 then begin
      let base = i * m in
      for k = 0 to m - 1 do
        fset y k (fget y k +. (cb *. fget st.binv (base + k)))
      done
    end
  done;
  for j = 0 to st.ncols - 1 do
    if st.status.(j) = Basic then fset t.d j 0.0
    else begin
      let acc = ref (fget st.cost j) in
      for tt = st.col_ptr.(j) to st.col_ptr.(j + 1) - 1 do
        acc :=
          !acc
          -. (fget y (Array.unsafe_get st.col_row tt) *. fget st.col_val tt)
      done;
      fset t.d j !acc
    end
  done

(* Flip mis-signed nonbasics to their other (finite) bound.  Bound changes
   never break dual feasibility, so this only fires after numerical drift
   or a basis restore; returns false when a column with an infinite
   opposite bound blocks it.  Sets [flipped] when any status moved (the
   caller must then recompute x_B). *)
let repair_dual_feasibility ?flipped t =
  let st = t.st in
  let ok = ref true in
  let flip j status =
    st.status.(j) <- status;
    Option.iter (fun r -> r := true) flipped
  in
  for j = 0 to st.ncols - 1 do
    if fget st.lo j < fget st.up j then
      match st.status.(j) with
      | At_lower when fget t.d j < -.eps_dual ->
          if fget st.up j < infinity then flip j At_upper else ok := false
      | At_upper when fget t.d j > eps_dual ->
          if fget st.lo j > neg_infinity then flip j At_lower else ok := false
      | _ -> ()
  done;
  !ok

let dual_objective t =
  let st = t.st in
  let z = ref 0.0 in
  for i = 0 to st.m - 1 do
    let c = fget st.cost (Array.unsafe_get st.basis i) in
    if c <> 0.0 then z := !z +. (c *. fget st.xb i)
  done;
  for j = 0 to st.ncols - 1 do
    if st.status.(j) <> Basic && fget st.cost j <> 0.0 then
      z := !z +. (fget st.cost j *. nonbasic_value st j)
  done;
  !z

(* Residual audit against the original matrix: catches basis-inverse drift
   that the in-basis bookkeeping cannot see.  O(nnz), allocation-free
   ([ywork] holds the residual, [iwork] the column -> row map; stale
   [iwork] entries are never read because only currently-basic columns are
   looked up). *)
let primal_residual_ok t =
  let st = t.st in
  let m = st.m in
  let r = st.ywork in
  fa_blit st.rhs r m;
  for i = 0 to m - 1 do
    st.iwork.(st.basis.(i)) <- i
  done;
  for j = 0 to st.ncols - 1 do
    let x =
      if st.status.(j) = Basic then fget st.xb st.iwork.(j)
      else nonbasic_value st j
    in
    if x <> 0.0 then
      for tt = st.col_ptr.(j) to st.col_ptr.(j + 1) - 1 do
        let i = Array.unsafe_get st.col_row tt in
        fset r i (fget r i -. (fget st.col_val tt *. x))
      done
  done;
  let ok = ref true in
  for i = 0 to m - 1 do
    if Float.abs (fget r i) > 1e-5 *. (1.0 +. Float.abs (fget st.rhs i)) then
      ok := false
  done;
  !ok

let extract_optimal t =
  let st = t.st in
  let primal = Array.make t.inst_n 0.0 in
  for j = 0 to t.inst_n - 1 do
    match st.status.(j) with
    | At_lower -> primal.(j) <- fget st.lo j
    | At_upper -> primal.(j) <- fget st.up j
    | Basic -> ()
  done;
  for i = 0 to st.m - 1 do
    if st.basis.(i) < t.inst_n then primal.(st.basis.(i)) <- fget st.xb i
  done;
  let obj = ref 0.0 in
  for j = 0 to t.inst_n - 1 do
    if fget st.cost j <> 0.0 then obj := !obj +. (fget st.cost j *. primal.(j))
  done;
  Optimal { objective = !obj; primal }

(* Bounded-variable dual simplex from the current (dual-feasible) basis.
   Leaving: devex reference-weight pricing (largest viol^2 / weight) by
   default, plain most-violated under Dantzig, smallest row under the
   Bland anti-cycling fallback — entering: shortest dual ratio
   |d_j / alpha_j| among sign-eligible nonbasics, tie-broken by pivot
   magnitude (Bland: smallest column index). *)
let resolve ?(max_iters = 256) t =
  let st = t.st in
  let m = st.m in
  (* [d] and [xb] are maintained incrementally (across pivots by the loop,
     across bound changes by [set_bounds]), so a warm entry costs one
     O(ncols) dual-feasibility scan, not an O(m^2) rebuild. *)
  t.stall <- 0;
  t.stall_obj <- neg_infinity;
  let flipped = ref false in
  let dual_ok =
    repair_dual_feasibility ~flipped t
    || (inst_refactorize t
        &&
        (compute_duals t;
         flipped := true;
         repair_dual_feasibility t))
  in
  if not dual_ok then Iteration_limit
  else begin
    if !flipped then recompute_xb st;
    let iters = ref 0 in
    let audited = ref false in
    let rec loop () =
      if !iters >= max_iters then Iteration_limit
      else begin
        incr iters;
        t.total_iters <- t.total_iters + 1;
        let bland = t.stall > 2 * (m + 10) in
        (* leaving row *)
        let r = ref (-1) and below = ref true in
        (try
           let best = ref 0.0 in
           for i = 0 to m - 1 do
             let b = Array.unsafe_get st.basis i in
             let xbi = fget st.xb i in
             let v1 = fget st.lo b -. xbi in
             let v2 = xbi -. fget st.up b in
             let viol, bel = if v1 >= v2 then (v1, true) else (v2, false) in
             if viol > eps_feas then
               if bland then begin
                 r := i;
                 below := bel;
                 raise Exit
               end
               else begin
                 let score =
                   match t.pricing with
                   | Dantzig -> viol
                   | Devex -> viol *. viol /. fget t.dw i
                 in
                 if score > !best then begin
                   best := score;
                   r := i;
                   below := bel
                 end
               end
           done
         with Exit -> ());
        if !r < 0 then
          (* primal feasible: optimal, after a one-shot drift audit *)
          if !audited || primal_residual_ok t then extract_optimal t
          else begin
            audited := true;
            if inst_refactorize t then begin
              compute_duals t;
              if repair_dual_feasibility t then begin
                recompute_xb st;
                loop ()
              end
              else Iteration_limit
            end
            else Iteration_limit
          end
        else begin
          let r = !r in
          let sign = if !below then 1.0 else -1.0 in
          let base_r = r * m in
          for j = 0 to st.ncols - 1 do
            if st.status.(j) = Basic then fset t.alpha j 0.0
            else begin
              let acc = ref 0.0 in
              for tt = st.col_ptr.(j) to st.col_ptr.(j + 1) - 1 do
                acc :=
                  !acc
                  +. (fget st.binv (base_r + Array.unsafe_get st.col_row tt)
                     *. fget st.col_val tt)
              done;
              fset t.alpha j !acc
            end
          done;
          let eligible j =
            st.status.(j) <> Basic
            && fget st.lo j < fget st.up j
            &&
            let a = sign *. fget t.alpha j in
            match st.status.(j) with
            | At_lower -> a < -.eps_pivot
            | At_upper -> a > eps_pivot
            | Basic -> false
          in
          let minr = ref infinity in
          for j = 0 to st.ncols - 1 do
            if eligible j then begin
              let ratio = Float.abs (fget t.d j) /. Float.abs (fget t.alpha j) in
              if ratio < !minr then minr := ratio
            end
          done;
          if !minr = infinity then Infeasible (* dual unbounded *)
          else begin
            let enter = ref (-1) and ba = ref 0.0 in
            (try
               for j = 0 to st.ncols - 1 do
                 if eligible j then begin
                   let ratio =
                     Float.abs (fget t.d j) /. Float.abs (fget t.alpha j)
                   in
                   if ratio <= !minr +. 1e-9 then
                     if bland then begin
                       enter := j;
                       raise Exit
                     end
                     else if Float.abs (fget t.alpha j) > Float.abs !ba then begin
                       enter := j;
                       ba := fget t.alpha j
                     end
                 end
               done
             with Exit -> ());
            let j = !enter in
            let arj = fget t.alpha j in
            let b = st.basis.(r) in
            let target = if !below then fget st.lo b else fget st.up b in
            let tj = (fget st.xb r -. target) /. arj in
            (* w = Binv A_j, accumulated row-wise over the sparse column *)
            let w = st.work in
            let p0 = st.col_ptr.(j) and p1 = st.col_ptr.(j + 1) in
            for i = 0 to m - 1 do
              let base = i * m in
              let acc = ref 0.0 in
              for tt = p0 to p1 - 1 do
                acc :=
                  !acc
                  +. (fget st.binv (base + Array.unsafe_get st.col_row tt)
                     *. fget st.col_val tt)
              done;
              fset w i !acc
            done;
            let entering_value = nonbasic_value st j +. tj in
            for i = 0 to m - 1 do
              if i <> r then fset st.xb i (fget st.xb i -. (tj *. fget w i))
            done;
            st.status.(b) <- (if !below then At_lower else At_upper);
            st.status.(j) <- Basic;
            st.basis.(r) <- j;
            fset st.xb r entering_value;
            let wr = fget w r in
            let br = r * m in
            for k = 0 to m - 1 do
              fset st.binv (br + k) (fget st.binv (br + k) /. wr)
            done;
            for i = 0 to m - 1 do
              let f = fget w i in
              if i <> r && Float.abs f > 0.0 then begin
                let bi = i * m in
                for k = 0 to m - 1 do
                  fset st.binv (bi + k)
                    (fget st.binv (bi + k) -. (f *. fget st.binv (br + k)))
                done
              end
            done;
            (* devex reference-weight update from the pivot column *)
            (match t.pricing with
            | Dantzig -> ()
            | Devex ->
                let wr2 = wr *. wr in
                if wr2 > 0.0 then begin
                  let dr = fget t.dw r in
                  for i = 0 to m - 1 do
                    if i <> r then begin
                      let wi = fget w i in
                      if wi <> 0.0 then begin
                        let cand = wi *. wi *. dr /. wr2 in
                        if cand > fget t.dw i then fset t.dw i cand
                      end
                    end
                  done;
                  let nr = dr /. wr2 in
                  fset t.dw r (if nr > 1.0 then nr else 1.0)
                end);
            (* incremental reduced costs: d_k -= theta alpha_k *)
            let theta = fget t.d j /. arj in
            if theta <> 0.0 then
              for k = 0 to st.ncols - 1 do
                if st.status.(k) <> Basic && fget t.alpha k <> 0.0 then
                  fset t.d k (fget t.d k -. (theta *. fget t.alpha k))
              done;
            fset t.d j 0.0;
            fset t.d b (-.theta);
            t.pivots <- t.pivots + 1;
            t.total_pivots <- t.total_pivots + 1;
            (* periodic refresh of the incrementally-updated state; any
               drift-induced status flip invalidates x_B *)
            if t.pivots mod refactor_period = 0 || !iters mod 64 = 0 then begin
              if t.pivots mod refactor_period = 0 && not (inst_refactorize t)
              then raise Exit;
              compute_duals t;
              let fl = ref false in
              ignore (repair_dual_feasibility ~flipped:fl t);
              if !fl then recompute_xb st;
              devex_reset t
            end;
            let z = dual_objective t in
            if z > t.stall_obj +. 1e-9 then begin
              t.stall_obj <- z;
              t.stall <- 0
            end
            else t.stall <- t.stall + 1;
            loop ()
          end
        end
      end
    in
    try loop () with Exit -> Iteration_limit
  end

(* Per-column sparse entries reconstructed from the CSC triplet — cold
   path, used only when a cut row forces a full state rebuild. *)
let cols_of_state st =
  Array.init st.ncols (fun j ->
      Array.init
        (st.col_ptr.(j + 1) - st.col_ptr.(j))
        (fun k ->
          let t = st.col_ptr.(j) + k in
          (st.col_row.(t), fget st.col_val t)))

let add_row t terms rhs =
  let st = t.st in
  let n = t.inst_n and m = st.m in
  let m' = m + 1 and ncols' = st.ncols + 1 in
  let coef = Array.make (max n 1) 0.0 in
  List.iter (fun (v, c) -> coef.(v) <- coef.(v) +. c) terms;
  let old_cols = cols_of_state st in
  let cols = Array.make ncols' [||] in
  for j = 0 to st.ncols - 1 do
    cols.(j) <-
      (if j < n && coef.(j) <> 0.0 then begin
         let c = old_cols.(j) in
         let c' = Array.make (Array.length c + 1) (m, coef.(j)) in
         Array.blit c 0 c' 0 (Array.length c);
         c'
       end
       else old_cols.(j))
  done;
  cols.(ncols' - 1) <- [| (m, 1.0) |];
  let arr_of fa_src len extra =
    Array.init (len + 1) (fun i -> if i < len then fget fa_src i else extra)
  in
  let lo = arr_of st.lo st.ncols 0.0 in
  let up = arr_of st.up st.ncols infinity in
  let cost = arr_of st.cost st.ncols 0.0 in
  let rhs_arr = arr_of st.rhs st.m rhs in
  let status = Array.make ncols' Basic in
  Array.blit st.status 0 status 0 st.ncols;
  let basis = Array.make m' (ncols' - 1) in
  Array.blit st.basis 0 basis 0 m;
  let st' =
    make_state ~m:m' ~ncols:ncols' ~lo ~up ~cols ~rhs:rhs_arr ~cost ~status
      ~basis
  in
  (* Binv of the bordered basis [[B 0] [a_B 1]]: old inverse extended with
     a zero column, plus a last row  -a_B Binv | 1. *)
  A1.fill st'.binv 0.0;
  for i = 0 to m - 1 do
    for k = 0 to m - 1 do
      fset st'.binv ((i * m') + k) (fget st.binv ((i * m) + k))
    done
  done;
  let lb = m * m' in
  fset st'.binv (lb + m) 1.0;
  for i = 0 to m - 1 do
    let b = st.basis.(i) in
    let a = if b < n then coef.(b) else 0.0 in
    if a <> 0.0 then
      for k = 0 to m - 1 do
        fset st'.binv (lb + k)
          (fget st'.binv (lb + k) -. (a *. fget st.binv ((i * m) + k)))
      done
  done;
  t.st <- st';
  (* the appended basic slack has reduced cost 0 and leaves y unchanged
     (its cost is 0), so the existing reduced costs stay valid *)
  let d' = fa_make ncols' in
  fa_blit t.d d' (ncols' - 1);
  t.d <- d';
  t.alpha <- fa_make ncols';
  t.dw <- fa_make m';
  A1.fill t.dw 1.0;
  (* stashed bases predate the new row; the dimension check in [unstash]
     rejects them from now on *)
  recompute_xb t.st

(* Reads the incrementally-maintained reduced costs — O(n), no fresh
   O(m^2) dual computation.  Meaningful right after an [Optimal] resolve. *)
let nonbasic_reduced_costs t =
  let st = t.st in
  let acc = ref [] in
  for j = t.inst_n - 1 downto 0 do
    if fget st.lo j < fget st.up j then
      match st.status.(j) with
      | Basic -> ()
      | At_lower ->
          if fget t.d j > eps_dual then acc := (j, false, fget t.d j) :: !acc
      | At_upper ->
          if fget t.d j < -.eps_dual then acc := (j, true, fget t.d j) :: !acc
  done;
  !acc

(* Weak duality: for the prices behind the current reduced costs, the
   Lagrangian bound L(y) = y b + sum_j min(d_j lo_j, d_j up_j) lower-bounds
   the LP optimum at ANY basis — primal feasible or not.  With every
   nonbasic resting at its reduced-cost-favoured bound L(y) is exactly the
   basic solution's objective; a mis-signed nonbasic (post-drift) costs a
   |d| * width correction.  This turns an iteration-capped [resolve] into
   a usable bound instead of a wasted solve.  [None] when a mis-signed
   column has infinite width (the correction would be -inf). *)
let dual_bound t =
  let st = t.st in
  let corr = ref 0.0 in
  let usable = ref true in
  for j = 0 to st.ncols - 1 do
    match st.status.(j) with
    | Basic -> ()
    | At_lower ->
        if fget t.d j < 0.0 then begin
          let w = fget st.up j -. fget st.lo j in
          if w = infinity then usable := false
          else corr := !corr -. (fget t.d j *. w)
        end
    | At_upper ->
        if fget t.d j > 0.0 then begin
          let w = fget st.up j -. fget st.lo j in
          if w = infinity then usable := false
          else corr := !corr +. (fget t.d j *. w)
        end
  done;
  if !usable then Some (dual_objective t -. !corr) else None

(* --- basis stash slots: shared parent factorization for sibling LPs ---- *)

(* A stash is a flat image of everything [resolve] warm-starts from.
   Restoring one replaces the refactorize-from-scratch a child LP would
   otherwise trigger after the search undoes and re-applies bounds, with
   O(m^2 + ncols) blits.  Slots are capped (and gated on problem size) so
   a deep search cannot hold unbounded basis copies alive. *)
let stash_max_slots = 32
let stash_max_m = 512

let stash t ~slot =
  let st = t.st in
  if slot < 0 || slot >= stash_max_slots || st.m = 0 || st.m > stash_max_m then
    false
  else begin
    if slot >= Array.length t.stashes then begin
      let len =
        min stash_max_slots (max (slot + 1) ((2 * Array.length t.stashes) + 4))
      in
      let a = Array.make len None in
      Array.blit t.stashes 0 a 0 (Array.length t.stashes);
      t.stashes <- a
    end;
    let sb =
      match t.stashes.(slot) with
      | Some sb when sb.sb_ncols = st.ncols && sb.sb_m = st.m -> sb
      | _ ->
          let sb =
            {
              sb_ncols = st.ncols;
              sb_m = st.m;
              sb_status = Array.make st.ncols At_lower;
              sb_basis = Array.make st.m 0;
              sb_binv = fa_make (st.m * st.m);
              sb_xb = fa_make st.m;
              sb_d = fa_make st.ncols;
              sb_dw = fa_make st.m;
              sb_lo = fa_make st.ncols;
              sb_up = fa_make st.ncols;
              sb_pivots = 0;
            }
          in
          t.stashes.(slot) <- Some sb;
          sb
    in
    Array.blit st.status 0 sb.sb_status 0 st.ncols;
    Array.blit st.basis 0 sb.sb_basis 0 st.m;
    fa_blit st.binv sb.sb_binv (st.m * st.m);
    fa_blit st.xb sb.sb_xb st.m;
    fa_blit t.d sb.sb_d st.ncols;
    fa_blit t.dw sb.sb_dw st.m;
    fa_blit st.lo sb.sb_lo st.ncols;
    fa_blit st.up sb.sb_up st.ncols;
    sb.sb_pivots <- t.pivots;
    true
  end

let unstash t ~slot =
  if slot < 0 || slot >= Array.length t.stashes then false
  else
    match t.stashes.(slot) with
    | None -> false
    | Some sb ->
        let st = t.st in
        if sb.sb_ncols <> st.ncols || sb.sb_m <> st.m then false
        else begin
          Array.blit sb.sb_status 0 st.status 0 st.ncols;
          Array.blit sb.sb_basis 0 st.basis 0 st.m;
          fa_blit sb.sb_binv st.binv (st.m * st.m);
          fa_blit sb.sb_xb st.xb st.m;
          fa_blit sb.sb_d t.d st.ncols;
          fa_blit sb.sb_dw t.dw st.m;
          fa_blit sb.sb_lo st.lo st.ncols;
          fa_blit sb.sb_up st.up st.ncols;
          t.pivots <- sb.sb_pivots;
          true
        end

type snapshot = {
  snap_status : status array;
  snap_basis : int array;
  snap_ncols : int;
}

let save t =
  {
    snap_status = Array.copy t.st.status;
    snap_basis = Array.copy t.st.basis;
    snap_ncols = t.st.ncols;
  }

let restore t snap =
  if snap.snap_ncols <> t.st.ncols then false
  else begin
    Array.blit snap.snap_status 0 t.st.status 0 t.st.ncols;
    Array.blit snap.snap_basis 0 t.st.basis 0 t.st.m;
    t.pivots <- 0;
    let ok = inst_refactorize t in
    if ok then compute_duals t;
    ok
  end
