type var = int
type sense = Le | Ge | Eq

type constr = { cname : string; expr : Linexpr.t; sense : sense; rhs : int }

type t = {
  mname : string;
  mutable vnames : string list;  (* reversed *)
  mutable lbs : int list;  (* reversed *)
  mutable ubs : int list;  (* reversed *)
  mutable count : int;
  mutable constrs : constr list;  (* reversed *)
  mutable n_constrs : int;
  mutable obj : Linexpr.t;
  (* Caches rebuilt on demand. *)
  mutable frozen : (string array * int array * int array) option;
}

let create ?(name = "model") () =
  {
    mname = name;
    vnames = [];
    lbs = [];
    ubs = [];
    count = 0;
    constrs = [];
    n_constrs = 0;
    obj = Linexpr.zero;
    frozen = None;
  }

let name m = m.mname

let int_var m ~lb ~ub vname =
  if lb > ub then
    invalid_arg (Printf.sprintf "Model.int_var %s: lb %d > ub %d" vname lb ub);
  let v = m.count in
  m.vnames <- vname :: m.vnames;
  m.lbs <- lb :: m.lbs;
  m.ubs <- ub :: m.ubs;
  m.count <- v + 1;
  m.frozen <- None;
  v

let bool_var m vname = int_var m ~lb:0 ~ub:1 vname
let n_vars m = m.count

let freeze m =
  match m.frozen with
  | Some f -> f
  | None ->
      let f =
        ( Array.of_list (List.rev m.vnames),
          Array.of_list (List.rev m.lbs),
          Array.of_list (List.rev m.ubs) )
      in
      m.frozen <- Some f;
      f

let var_name m v =
  let names, _, _ = freeze m in
  names.(v)

let bounds m v =
  let _, lbs, ubs = freeze m in
  (lbs.(v), ubs.(v))

let is_binary m v = bounds m v = (0, 1)

(* Whole-bound vectors as fresh arrays: callers (the solver's search
   state) mutate them as the branch-and-bound domain store. *)
let lower_bounds m =
  let _, lbs, _ = freeze m in
  Array.copy lbs

let upper_bounds m =
  let _, _, ubs = freeze m in
  Array.copy ubs

let add m ?name expr sense rhs =
  let cname =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "c%d" m.n_constrs
  in
  m.constrs <- { cname; expr; sense; rhs } :: m.constrs;
  m.n_constrs <- m.n_constrs + 1

let add_le m ?name expr rhs = add m ?name expr Le rhs
let add_ge m ?name expr rhs = add m ?name expr Ge rhs
let add_eq m ?name expr rhs = add m ?name expr Eq rhs
let n_constraints m = m.n_constrs
let constraints m = Array.of_list (List.rev m.constrs)
let set_objective m e = m.obj <- e
let objective m = m.obj

let copy m =
  {
    mname = m.mname;
    vnames = m.vnames;
    lbs = m.lbs;
    ubs = m.ubs;
    count = m.count;
    constrs = m.constrs;
    n_constrs = m.n_constrs;
    obj = m.obj;
    frozen = m.frozen;
  }

let eval_expr e x =
  Linexpr.fold (fun ~coef ~var acc -> acc + (coef * x.(var))) e 0

let check m x =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  if Array.length x <> m.count then
    err "assignment has %d values for %d variables" (Array.length x) m.count
  else begin
    for v = 0 to m.count - 1 do
      let lb, ub = bounds m v in
      if x.(v) < lb || x.(v) > ub then
        err "%s = %d outside [%d, %d]" (var_name m v) x.(v) lb ub
    done;
    List.iter
      (fun c ->
        let lhs = eval_expr c.expr x in
        let ok =
          match c.sense with
          | Le -> lhs <= c.rhs
          | Ge -> lhs >= c.rhs
          | Eq -> lhs = c.rhs
        in
        if not ok then
          err "%s violated: lhs = %d, rhs = %d" c.cname lhs c.rhs)
      m.constrs
  end;
  match !errs with [] -> Ok () | e -> Error (List.rev e)

let objective_value m x = eval_expr m.obj x

let stats m =
  let bin = ref 0 in
  for v = 0 to m.count - 1 do
    if is_binary m v then incr bin
  done;
  let nz =
    List.fold_left (fun acc c -> acc + Linexpr.n_terms c.expr) 0 m.constrs
  in
  Printf.sprintf "%s: %d vars (%d binary), %d constraints, %d non-zeros"
    m.mname m.count !bin m.n_constrs nz
