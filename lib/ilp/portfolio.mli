(** Portfolio solving: race solver configurations on one model.

    Two or three branch-and-bound configurations (different branching
    polarity, LP modes, …) attack the same model on a {!Pool} of domains.
    Every incumbent any of them finds is published through a shared
    [Atomic] bound, so one member's good solution immediately prunes the
    others' searches; the first member to *complete* (prove optimality or
    infeasibility under the shared cutoff) cancels the rest.

    Soundness of the combined verdict: the shared bound only ever carries
    objectives of audited feasible solutions, so a member that exhausts its
    search — even one that found nothing because the cutoff pruned
    everything — proves that no solution beats the best incumbent seen
    anywhere.  Hence [Optimal] is reported as soon as any member completes
    while any member holds a solution. *)

type result = {
  outcome : Solver.outcome;
      (** the combined verdict: best solution over all members, [nodes]
          summed, [time_s] = wall-clock of the whole call (shared cut
          loop included), [stats] = {!Stats.merge} over every member
          that collected any *)
  winner : int;  (** index into [configs] of the member whose solution (or
                     completion) decided the verdict *)
  outcomes : Solver.outcome list;  (** per-member outcomes, in config order *)
}

val default_configs : Solver.options -> Solver.options list
(** Three diverse configurations derived from a base: the base itself, the
    opposite branching polarity, and the opposite LP-bounding mode. *)

val solve :
  ?jobs:int -> configs:Solver.options list -> Model.t -> result
(** Race [configs] (must be non-empty) on [model] with [jobs] domains
    (default: one per configuration).  Any [stop] / [shared_incumbent]
    already present in a config is replaced by the race's own.  Root cuts
    are generated once ({!Solver.with_root_cuts}, on the first config's
    settings) and shared: members run on the strengthened model with
    their private cut loops disabled.  A single configuration degrades to
    a plain {!Solver.solve} call on the calling domain. *)
