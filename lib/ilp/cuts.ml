(* Cutting-plane separation over the model's 0-1 rows.

   Every <=-row whose unfixed variables are all binary is normalized into a
   complemented knapsack  sum_j a_j y_j <= cap  with a_j > 0, where y_j is
   either x_j or its complement 1-x_j (variables entering with a negative
   coefficient are complemented; fixed variables are substituted into the
   right-hand side).  Two families of valid inequalities are separated
   against a fractional LP point:

   - extended cover cuts: a cover C (sum_C a_j > cap) gives
     sum_{C u E} y_j <= |C| - 1 with E = { j : a_j >= max_C a_i }.  The
     extension keeps the cut valid for any cover: if |C| items of C u E
     were 1, exchanging each chosen E-item for a distinct unchosen C-item
     only lowers the weight, which still exceeds cap.
   - clique cuts: sorting a knapsack's items by weight descending, the top
     t items are pairwise conflicting while a_{t-1} + a_t > cap, giving
     sum y <= 1 over the prefix; prefix cliques from all rows are merged
     through a conflict graph to catch cliques spanning rows.

   Cuts are returned over the original variables (complements expanded), as
   integer <=-rows ready for Model.add_le / Simplex.add_row. *)

type cut = { terms : (int * int) list; rhs : int }

(* A literal is a variable or its complement, packed as 2v + (1 if
   complemented).  lv is the literal's value at the LP point. *)
let lit v comp = (2 * v) + if comp then 1 else 0
let lit_var l = l / 2
let lit_comp l = l land 1 = 1

type knapsack = {
  items : (int * int) array;  (* (weight a_j > 0, literal), any order *)
  cap : int;
}

let knapsacks_of_model (model : Model.t) =
  let n = Model.n_vars model in
  let fixed = Array.make n None in
  for v = 0 to n - 1 do
    let lb, ub = Model.bounds model v in
    if lb = ub then fixed.(v) <- Some lb
  done;
  let rows = ref [] in
  let consider terms rhs =
    (* terms: (coef, var) over the original row, <= rhs *)
    let cap = ref rhs in
    let items = ref [] in
    let ok = ref true in
    List.iter
      (fun (c, v) ->
        if c <> 0 then
          match fixed.(v) with
          | Some x -> cap := !cap - (c * x)
          | None ->
              if not (Model.is_binary model v) then ok := false
              else if c > 0 then items := (c, lit v false) :: !items
              else begin
                (* c x = -|c| x = |c| (1-x) - |c| *)
                cap := !cap + (-c);
                items := (-c, lit v true) :: !items
              end)
      terms;
    if !ok && List.compare_length_with !items 2 >= 0 then begin
      let items = Array.of_list !items in
      let total = Array.fold_left (fun acc (a, _) -> acc + a) 0 items in
      (* cap < 0 is an infeasible row (presolve's business, not ours);
         total <= cap is redundant *)
      if !cap >= 0 && total > !cap then
        rows := { items; cap = !cap } :: !rows
    end
  in
  Array.iter
    (fun (c : Model.constr) ->
      let terms = Linexpr.terms c.Model.expr in
      match c.Model.sense with
      | Model.Le -> consider terms c.Model.rhs
      | Model.Ge ->
          consider (List.map (fun (a, v) -> (-a, v)) terms) (-c.Model.rhs)
      | Model.Eq ->
          consider terms c.Model.rhs;
          consider (List.map (fun (a, v) -> (-a, v)) terms) (-c.Model.rhs))
    (Model.constraints model);
  !rows

let lit_value (x : float array) l =
  let v = x.(lit_var l) in
  if lit_comp l then 1.0 -. v else v

(* --- extended cover cuts ------------------------------------------------ *)

let cover_cut (x : float array) (k : knapsack) =
  (* Greedy cover: take items by (1 - lv)/a ascending (cheapest slack per
     unit weight first) until the weight exceeds cap, then minimalize. *)
  let scored =
    Array.map (fun (a, l) -> ((1.0 -. lit_value x l) /. float_of_int a, a, l))
      k.items
  in
  Array.sort (fun (s1, _, _) (s2, _, _) -> compare s1 s2) scored;
  let cover = ref [] and weight = ref 0 in
  (try
     Array.iter
       (fun (_, a, l) ->
         cover := (a, l) :: !cover;
         weight := !weight + a;
         if !weight > k.cap then raise Exit)
       scored
   with Exit -> ());
  if !weight <= k.cap then None
  else begin
    (* minimalize: drop any item whose removal keeps it a cover, lightest
       first, so the surviving max_C a_i stays small and E large *)
    let c =
      List.sort compare !cover
      |> List.filter (fun (a, _) ->
             if !weight - a > k.cap then begin
               weight := !weight - a;
               false
             end
             else true)
    in
    let size = List.length c in
    let amax = List.fold_left (fun acc (a, _) -> max acc a) 0 c in
    let in_c = Hashtbl.create 8 in
    List.iter (fun (_, l) -> Hashtbl.replace in_c l ()) c;
    let ext =
      Array.to_list k.items
      |> List.filter (fun (a, l) -> a >= amax && not (Hashtbl.mem in_c l))
    in
    let lits = List.map snd c @ List.map snd ext in
    let lhs =
      List.fold_left (fun acc l -> acc +. lit_value x l) 0.0 lits
    in
    let rhs = size - 1 in
    if lhs > float_of_int rhs +. 0.005 then
      Some (lits, rhs, lhs -. float_of_int rhs)
    else None
  end

(* --- clique cuts -------------------------------------------------------- *)

(* Conflict graph over literals: l1 -- l2 when y1 + y2 <= 1 is implied by
   some knapsack (the two heaviest of any prefix exceed cap together). *)
let clique_cuts (x : float array) rows max_cuts =
  let adj = Hashtbl.create 256 in
  let edge l1 l2 =
    if lit_var l1 <> lit_var l2 then begin
      let k = if l1 < l2 then (l1, l2) else (l2, l1) in
      Hashtbl.replace adj k ()
    end
  in
  let conflict l1 l2 =
    Hashtbl.mem adj (if l1 < l2 then (l1, l2) else (l2, l1))
  in
  let prefix_cliques = ref [] in
  List.iter
    (fun k ->
      let its = Array.copy k.items in
      Array.sort (fun (a1, _) (a2, _) -> compare a2 a1) its;
      let n = Array.length its in
      (* longest prefix that is pairwise conflicting: its two lightest
         members (the last two) must jointly exceed cap *)
      let t = ref n in
      while
        !t >= 2 && fst its.(!t - 2) + fst its.(!t - 1) <= k.cap
      do
        decr t
      done;
      let t = !t in
      if t >= 2 then begin
        prefix_cliques := Array.sub its 0 t :: !prefix_cliques;
        for i = 0 to t - 2 do
          for j = i + 1 to t - 1 do
            edge (snd its.(i)) (snd its.(j))
          done
        done;
        (* items past the prefix still conflict with heavy prefix items *)
        for j = t to n - 1 do
          let i = ref 0 in
          while !i < t && fst its.(!i) + fst its.(j) > k.cap do
            edge (snd its.(!i)) (snd its.(j));
            incr i
          done
        done
      end)
    rows;
  (* Grow cliques greedily from fractional literals, seeded by LP value. *)
  let cand =
    Hashtbl.fold (fun (l1, l2) () acc -> l1 :: l2 :: acc) adj []
    |> List.sort_uniq compare
    |> List.filter (fun l -> lit_value x l > 0.02)
    |> List.sort (fun l1 l2 -> compare (lit_value x l2) (lit_value x l1))
  in
  let cuts = ref [] and n_cuts = ref 0 in
  let used = Hashtbl.create 16 in
  List.iter
    (fun seed ->
      if !n_cuts < max_cuts && not (Hashtbl.mem used seed) then begin
        let clique = ref [ seed ] in
        let vars = Hashtbl.create 8 in
        Hashtbl.replace vars (lit_var seed) ();
        List.iter
          (fun l ->
            if
              (not (Hashtbl.mem vars (lit_var l)))
              && List.for_all (fun l' -> conflict l l') !clique
            then begin
              clique := l :: !clique;
              Hashtbl.replace vars (lit_var l) ()
            end)
          cand;
        let lhs =
          List.fold_left (fun acc l -> acc +. lit_value x l) 0.0 !clique
        in
        if List.compare_length_with !clique 2 >= 0 && lhs > 1.005 then begin
          List.iter (fun l -> Hashtbl.replace used l ()) !clique;
          cuts := (!clique, 1, lhs -. 1.0) :: !cuts;
          incr n_cuts
        end
      end)
    cand;
  !cuts

(* --- assembly ----------------------------------------------------------- *)

(* sum of literals <= rhs, complements expanded back to variables:
   (1 - x) contributes coefficient -1 and shifts rhs down by 1. *)
let cut_of_lits (lits, rhs, violation) =
  let rhs = ref rhs in
  let terms =
    List.map
      (fun l ->
        if lit_comp l then begin
          decr rhs;
          (-1, lit_var l)
        end
        else (1, lit_var l))
      lits
  in
  let terms = List.sort (fun (_, v1) (_, v2) -> compare v1 v2) terms in
  ({ terms; rhs = !rhs }, violation)

let separate model ~x ~max_cuts =
  if max_cuts <= 0 then []
  else begin
    let rows = knapsacks_of_model model in
    let covers = List.filter_map (cover_cut x) rows in
    let cliques = clique_cuts x rows max_cuts in
    let all = List.map cut_of_lits (covers @ cliques) in
    (* drop duplicates (same literal set can surface as both families, or
       repeatedly across Eq expansions) *)
    let seen = Hashtbl.create 32 in
    let all =
      List.filter
        (fun (c, _) ->
          if Hashtbl.mem seen c.terms then false
          else begin
            Hashtbl.replace seen c.terms ();
            true
          end)
        all
    in
    List.sort (fun (_, v1) (_, v2) -> compare v2 v1) all
    |> List.filteri (fun i _ -> i < max_cuts)
    |> List.map fst
  end
