(** Linear-programming relaxation solver: bounded-variable revised primal
    simplex with a two-phase start (artificial basis), Dantzig pricing with a
    Bland's-rule anti-cycling fallback, and periodic basis refactorization.

    All dense stores (basis inverse, bounds, costs, reduced costs, scratch
    vectors) live in flat unboxed [Bigarray.Array1] float64 buffers and the
    constraint matrix in a compressed sparse-column triplet, preallocated
    with the state, so the inner loops (pivot updates, ratio tests, dot
    products) are allocation-free and cache-linear.

    This is the LP oracle behind {!Solver}'s branch-and-bound bounding step
    and is usable on its own.  It works on floats; callers that need safe
    integer bounds should subtract a tolerance (see {!Solver}). *)

type result =
  | Optimal of { objective : float; primal : float array }
      (** [primal] has one entry per structural variable. *)
  | Infeasible
  | Unbounded
  | Iteration_limit

type problem = {
  n_vars : int;
  lower : float array;  (** per-variable lower bounds (finite) *)
  upper : float array;  (** per-variable upper bounds (may be [infinity]) *)
  objective : float array;  (** minimized *)
  rows : (Model.sense * (int * float) list * float) list;
      (** constraint sense, [(var, coef)] terms, right-hand side *)
}

val solve : ?max_iters:int -> problem -> result
(** [max_iters] defaults to [20_000]. *)

val relax :
  ?lower:int array -> ?upper:int array -> Model.t -> result
(** LP relaxation of an ILP model, optionally with tightened variable bounds
    (as maintained by branch-and-bound nodes). *)

val problem_of_model :
  ?lower:int array -> ?upper:int array -> Model.t -> problem
(** The LP relaxation as a {!problem}, without solving it. *)

(** {2 Persistent instances (warm-started dual simplex)}

    A persistent instance keeps the basis factorization alive across a
    branch-and-bound search.  Because reduced costs are independent of
    variable bounds, the optimal basis of a parent node stays dual feasible
    after any bound tightening, so {!resolve} re-optimizes child LPs in a
    handful of dual pivots instead of a two-phase solve from scratch. *)

type instance

type pricing =
  | Dantzig  (** most-violated basic bound leaves *)
  | Devex
      (** reference-weight pricing: largest violation^2 / weight leaves;
          weights grow with the pivot column and reset at refactorization.
          Cuts warm re-solve iteration counts on degenerate LPs. *)

val instance_of_problem : ?pricing:pricing -> problem -> instance option
(** [None] when some variable bound is infinite (the all-slack dual-feasible
    start needs every structural parked at a finite bound).  [pricing]
    defaults to [Devex]. *)

val instance_of_model :
  ?pricing:pricing ->
  ?lower:int array ->
  ?upper:int array ->
  Model.t ->
  instance option

val set_pricing : instance -> pricing -> unit
(** Switch the leaving-row rule for subsequent {!resolve} calls. *)

val set_bounds : instance -> int -> lo:float -> up:float -> unit
(** Update one structural variable's bounds.  Preserves dual feasibility. *)

val resolve : ?max_iters:int -> instance -> result
(** Dual-simplex re-optimization from the current basis ([max_iters]
    defaults to [256]).  Leaving row by the instance's {!pricing} rule with
    a Bland's-rule fallback once the dual objective stalls — the stall
    counter is reset on every call, so a stalled parent solve never pins a
    child's warm re-solve to Bland.  Refactorizes every 512 pivots and
    audits the primal residual before declaring optimality.  [Infeasible]
    means the (dual unbounded) LP has no primal solution under the current
    bounds; [Iteration_limit] leaves the instance usable. *)

val add_row : instance -> (int * float) list -> float -> unit
(** [add_row t terms rhs] appends the cut [terms <= rhs] ([(var, coef)]
    pairs over structural variables).  The basis inverse is extended in
    O(m^2) with the new slack basic, keeping the basis dual feasible.
    Stashed bases from before the call are invalidated. *)

val nonbasic_reduced_costs : instance -> (int * bool * float) list
(** After an [Optimal] {!resolve}: [(var, at_upper, d)] for each nonbasic
    structural with a significant reduced cost — the inputs to
    reduced-cost fixing.  [d > 0] at a lower bound, [d < 0] at an upper. *)

val dual_bound : instance -> float option
(** A weak-duality lower bound on the LP optimum from the current basis —
    valid even when {!resolve} stopped at its iteration cap with the basis
    still primal infeasible, so no capped solve is wasted.  [None] when no
    finite bound is available from the current prices. *)

val n_rows : instance -> int

val pivots : instance -> int
(** Cumulative dual pivots over the instance's lifetime (unaffected by
    refactorization and {!restore}). *)

val iters : instance -> int
(** Cumulative dual-simplex iterations over the instance's lifetime
    (pivots plus degenerate/repair iterations). *)

val refactors : instance -> int
(** Cumulative basis refactorizations over the instance's lifetime
    (periodic refreshes, drift audits, restores and cold restarts). *)

val stash : instance -> slot:int -> bool
(** [stash t ~slot] copies the full warm-start image (basis, inverse,
    primal values, reduced costs, bounds, devex weights) into a
    preallocated slot, so every later sibling LP at a branch can restart
    from the shared parent factorization instead of refactorizing.
    Returns [false] (and stashes nothing) when [slot] is out of range or
    the instance is too large for stashing to pay for itself. *)

val unstash : instance -> slot:int -> bool
(** [unstash t ~slot] restores the image saved by {!stash}.  O(m^2 + n)
    blits, no refactorization.  Returns [false] when the slot is empty or
    the instance's dimensions changed (e.g. {!add_row}) since the stash. *)

type snapshot
(** A saved basis (status + basic set), restorable after bound changes. *)

val save : instance -> snapshot

val restore : instance -> snapshot -> bool
(** Refactorizes from the snapshot's basis; [false] (instance unchanged in
    the singular case) if the snapshot predates an {!add_row} or the basis
    matrix has become singular. *)
