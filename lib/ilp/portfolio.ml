type result = {
  outcome : Solver.outcome;
  winner : int;
  outcomes : Solver.outcome list;
}

let default_configs (base : Solver.options) =
  [
    base;
    { base with Solver.prefer_high = not base.Solver.prefer_high };
    {
      base with
      Solver.lp =
        (match base.Solver.lp with
        | Solver.Lp_never -> Solver.Lp_root
        | Solver.Lp_root | Solver.Lp_depth _ -> Solver.Lp_never);
    };
  ]

let is_complete (o : Solver.outcome) =
  match o.Solver.status with
  | Solver.Optimal | Solver.Infeasible -> true
  | Solver.Feasible | Solver.Unknown -> false

(* Combine member outcomes into one sound verdict (see the .mli). *)
let combine ~shared_final outcomes =
  let total_nodes =
    List.fold_left (fun acc o -> acc + o.Solver.nodes) 0 outcomes
  in
  let wall =
    List.fold_left (fun acc o -> Float.max acc o.Solver.time_s) 0.0 outcomes
  in
  let any_complete = List.exists is_complete outcomes in
  (* best solution across members; ties keep the earliest config *)
  let best = ref None in
  List.iteri
    (fun i o ->
      match (o.Solver.solution, o.Solver.objective) with
      | Some _, Some obj -> (
          match !best with
          | Some (_, _, bobj) when bobj <= obj -> ()
          | Some _ | None -> best := Some (i, o, obj))
      | _ -> ())
    outcomes;
  (* Each member's bound is valid for its cutoff-restricted subproblem;
     min with the final shared incumbent value makes it globally valid. *)
  let member_bound =
    List.fold_left (fun acc o -> max acc o.Solver.bound) min_int outcomes
  in
  let orbits =
    List.fold_left
      (fun acc (o : Solver.outcome) -> max acc o.Solver.orbits)
      0 outcomes
  in
  let stolen =
    List.fold_left
      (fun acc (o : Solver.outcome) -> acc + o.Solver.stolen)
      0 outcomes
  in
  (* One merged record over every member, not just the winner's: the race
     spends all members' work, so the telemetry should account for it. *)
  let stats =
    match List.filter_map (fun (o : Solver.outcome) -> o.Solver.stats) outcomes with
    | [] -> None
    | s :: rest -> Some (List.fold_left Stats.merge s rest)
  in
  match !best with
  | Some (i, o, obj) ->
      if any_complete then
        ( {
            o with
            Solver.status = Solver.Optimal;
            bound = obj;
            nodes = total_nodes;
            time_s = wall;
            orbits;
            stolen;
            stats;
          },
          i )
      else
        ( {
            o with
            Solver.status = Solver.Feasible;
            bound = min shared_final member_bound;
            nodes = total_nodes;
            time_s = wall;
            orbits;
            stolen;
            stats;
          },
          i )
  | None ->
      let winner =
        let rec first i = function
          | [] -> 0
          | o :: rest -> if is_complete o then i else first (i + 1) rest
        in
        first 0 outcomes
      in
      if any_complete then
        ( {
            Solver.status = Solver.Infeasible;
            solution = None;
            objective = None;
            bound = max_int;
            nodes = total_nodes;
            time_s = wall;
            orbits;
            stolen;
            stats;
          },
          winner )
      else
        ( {
            Solver.status = Solver.Unknown;
            solution = None;
            objective = None;
            bound = min shared_final member_bound;
            nodes = total_nodes;
            time_s = wall;
            orbits;
            stolen;
            stats;
          },
          winner )

let solve ?jobs ~configs model =
  let started = Unix.gettimeofday () in
  match configs with
  | [] -> invalid_arg "Ilp.Portfolio.solve: empty configuration list"
  | [ o ] ->
      let outcome = Solver.solve ~options:o model in
      { outcome; winner = 0; outcomes = [ outcome ] }
  | _ ->
      (* Generate root cuts once, up front, on the first config's settings;
         every member then branches on the same strengthened model with its
         private cut loop disabled. *)
      let base = List.hd configs in
      let model = Solver.with_root_cuts ~options:base model in
      let configs =
        List.map (fun o -> { o with Solver.cuts = false }) configs
      in
      (* Pre-build the model's lazy caches so the worker domains only ever
         read it (the solver itself never mutates a model). *)
      if Model.n_vars model > 0 then ignore (Model.bounds model 0);
      let shared = Atomic.make max_int in
      let members = List.map (fun o -> (o, Atomic.make false)) configs in
      let n = List.length configs in
      let jobs = match jobs with Some j -> max 1 (min j n) | None -> n in
      let pool = Pool.create ~jobs in
      let tasks =
        List.map
          (fun (o, stop) ->
            Pool.submit ~cancel:stop pool (fun () ->
                let o =
                  {
                    o with
                    Solver.stop = Some stop;
                    shared_incumbent = Some shared;
                  }
                in
                let r = Solver.solve ~options:o model in
                (* first complete member cancels the rest of the race *)
                if is_complete r then
                  List.iter (fun (_, st) -> Atomic.set st true) members;
                r))
          members
      in
      let results = List.map Pool.await tasks in
      Pool.shutdown pool;
      let outcomes =
        List.map (function Ok r -> r | Error e -> raise e) results
      in
      let outcome, winner =
        combine ~shared_final:(Atomic.get shared) outcomes
      in
      (* [time_s] is the wall clock of the whole call (shared cut loop
         included), matching the contract of the solver entry points —
         not the slowest member's own clock. *)
      let outcome =
        { outcome with Solver.time_s = Unix.gettimeofday () -. started }
      in
      { outcome; winner; outcomes }
