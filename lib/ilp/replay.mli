(** Trace replay and search post-mortems.

    {!Trace} writes what happened; this module explains it.  The parser
    is the exact inverse of {!Trace.jsonl_line} (integers are parsed as
    integers — a pruned-empty node's [bound = max_int] round-trips
    bit-exactly), and {!analyze} turns the event stream into
    attribution: which pruning machinery closed the tree and what it
    cost, which branching variables (and symmetry orbits) earned their
    keep, how much of the search an oracle incumbent would have skipped,
    and how the primal/dual gap closed over time.

    The wasted-work metric: a node is {e wasted} when the entry bound of
    its parent was already at or above the {e final} incumbent
    objective — with that incumbent known up front, the cutoff test
    would have pruned the parent and the node would never have been
    opened.  [waste_pct] is wasted nodes over opened nodes; it bounds
    the head-room of a better initial incumbent (the ROADMAP's
    heuristic-incumbent item).  The tree shape is replayed from a
    bound-per-depth stack, exact for sequential traces; parallel
    subtree streams interleave through one sink, so there the metric is
    an approximation. *)

val event_of_line : string -> (float * Trace.event, string) result
(** Parse one JSONL trace line; inverse of {!Trace.jsonl_line}. *)

val of_string : string -> ((float * Trace.event) list, string) result
(** Parse a whole JSONL trace; blank lines are skipped, the first
    malformed line fails the parse with its line number. *)

val of_file : string -> ((float * Trace.event) list, string) result
(** {!of_string} on the contents of [path]. *)

type prune_row = {
  reason : Trace.prune_reason;
  count : int;  (** nodes closed for this reason *)
  time_s : float;
      (** wall time attributed to this reason: the sum of inter-event
          gaps that ended in one of its prune events *)
}

type var_row = {
  var : int;  (** variable index — or orbit index in [orbit_rows] *)
  branched : int;  (** children created by branching on it *)
  immediate : int;
      (** of those, closed childless at the very next event — high
          [immediate/branched] means the variable's children die on
          entry: cheap refutations, little search below *)
}

type depth_row = { depth : int; opened : int; cut : int }

type report = {
  events : int;
  duration_s : float;  (** timestamp of the last event *)
  nodes : int;  (** nodes opened ([Node] events) *)
  prunes : prune_row list;  (** descending count; zero-count reasons omitted *)
  pruned_total : int;
  waste_nodes : int;
  waste_pct : float;  (** 100 · waste_nodes / nodes *)
  final_incumbent : int option;
  final_bound : int option;  (** last [Bound] event's value *)
  primal : (float * int) list;  (** incumbent objective over time *)
  dual : (float * int) list;  (** dual bound over time *)
  vars : var_row list;  (** descending [branched] *)
  orbit_rows : var_row list option;
      (** [vars] aggregated over the supplied orbits ([var] = orbit
          index); [None] when {!analyze} was given no orbits *)
  depths : depth_row list;  (** per-depth expansion/prune profile *)
  subtrees : int;
  steals : int;
  cut_rounds : int;
  cuts : int;
  lp_pivots : int;
  lp_iters : int;
  lp_refactors : int;  (** summed over workers' [Lp] events *)
}

val analyze :
  ?orbits:Symmetry.orbit list -> (float * Trace.event) list -> report
(** Replay the event stream and compute the attribution above.
    [orbits] (e.g. {!Encoding}'s verified orbits) additionally
    aggregates branching efficacy per orbit; variables outside every
    orbit are dropped from that view. *)

val prune_shares : report -> (string * float) list
(** [(reason wire name, percent of all pruned nodes)] per non-zero
    reason, descending — sums to 100 when anything was pruned.  This is
    the [prune_shares] field of bench schema v5 rows, which {!Bench}'s
    diff uses to localize node-count regressions. *)

val render_report : Format.formatter -> report -> unit
(** The [ilp_cli explain] / [advbist_cli --explain] terminal report. *)

val chrome_of_events :
  ?phases:(string * float) list -> (float * Trace.event) list -> string
(** Chrome trace-event JSON (load in [chrome://tracing] or Perfetto):
    [phases] (name, seconds — e.g. {!Stats.phases}) become stacked "X"
    spans; search events become instants and counter tracks (node
    count sampled every 64 nodes, incumbent and dual bound on every
    change; steals on per-thief rows). *)
