(** Structured search traces.

    An optional event sink the solver writes typed events to when
    {!Solver.options.trace} is set.  The disabled path costs one branch
    per emission site (the event payload is only allocated when a sink
    is installed).  All sinks are domain-safe: writes are serialized
    with a mutex, so the parallel workers of
    {!Solver.solve_parallel} can share one sink. *)

type prune_reason =
  | Cutoff  (** objective min-activity reached the incumbent cutoff *)
  | Probed  (** probing refuted the node against the cutoff *)
  | Lp_infeasible  (** the node LP was infeasible *)
  | Lp_bound  (** the node LP bound reached the cutoff *)

type event =
  | Node of { depth : int; nodes : int }  (** a search node was opened *)
  | Prune of { depth : int; reason : prune_reason }
  | Incumbent of { objective : int; nodes : int }
  | Cut_round of { round : int; cuts : int }
      (** one root cut-loop round that separated [cuts] cuts *)
  | Subtree of { id : int; depth : int }
      (** a frontier subtree was spawned ([depth] = path length) *)
  | Steal of { thief : int; victim : int }
  | Lp of { pivots : int; iters : int; refactors : int }
      (** end-of-search totals of the warm LP engine (per worker in
          parallel solves): cumulative dual pivots, dual-simplex
          iterations and basis refactorizations *)
  | Message of string  (** free-form progress line *)

type sink

val file : string -> sink
(** JSONL sink writing one [{"t":seconds,"ev":kind,...}] object per
    line to a fresh file; {!close} closes it. *)

val channel : out_channel -> sink
(** JSONL sink on an existing channel; {!close} flushes but does not
    close it. *)

val stderr_human : unit -> sink
(** Human-readable sink reproducing the solver's historical [verbose]
    stderr lines: prints {!Incumbent} and {!Message} events only. *)

val ring : int -> sink
(** In-memory ring keeping the last [capacity] events (for tests). *)

val emit : sink -> time_s:float -> event -> unit
(** Record [event] at [time_s] seconds since the solve started. *)

val events : sink -> (float * event) list
(** Contents of a {!ring} sink, oldest first; [[]] for other sinks. *)

val close : sink -> unit
(** Flush (and for {!file} sinks close) the underlying channel. *)
