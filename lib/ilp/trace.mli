(** Structured search traces.

    An optional event sink the solver writes typed events to when
    {!Solver.options.trace} is set.  The disabled path costs one branch
    per emission site (the event payload is only allocated when a sink
    is installed).  All sinks are domain-safe: writes are serialized
    with a mutex, so the parallel workers of
    {!Solver.solve_parallel} can share one sink.

    JSONL traces carry enough structure to reconstruct the search tree
    after the fact: {!Replay} parses them back ({!jsonl_line} and
    {!Replay.event_of_line} are inverses) and computes prune/waste
    attribution. *)

type prune_reason =
  | Cutoff  (** objective min-activity reached the incumbent cutoff *)
  | Probed  (** probing refuted the node against the cutoff *)
  | Lp_infeasible  (** the node LP was infeasible *)
  | Lp_bound  (** the node LP bound reached the cutoff *)

type event =
  | Node of { depth : int; nodes : int; var : int; value : int; bound : int }
      (** a search node was opened: [var]/[value] are the branching
          decision that created it ([var = -1] at a subtree root), and
          [bound] is the node's objective min-activity on entry — the
          cheapest certificate of its dual bound, recorded so replay can
          charge children against it *)
  | Prune of { depth : int; reason : prune_reason; bound : int; nodes : int }
      (** the node was cut off: [bound] is the dual bound that fired
          ([max_int] when the node was proven empty rather than
          dominated: {!Probed} and {!Lp_infeasible}), [nodes] the node
          count at emission *)
  | Bound of { bound : int; nodes : int }
      (** the global dual bound improved to [bound] (root propagation,
          root cut loop, or a depth-0 LP re-solve) — together with
          {!Incumbent} this gives replay both gap-closure curves *)
  | Incumbent of { objective : int; nodes : int }
  | Cut_round of { round : int; cuts : int }
      (** one root cut-loop round that separated [cuts] cuts *)
  | Subtree of { id : int; depth : int }
      (** a frontier subtree was spawned ([depth] = path length) *)
  | Steal of { thief : int; victim : int }
  | Lp of { pivots : int; iters : int; refactors : int }
      (** end-of-search totals of the warm LP engine (per worker in
          parallel solves): cumulative dual pivots, dual-simplex
          iterations and basis refactorizations *)
  | Message of string  (** free-form progress line *)

type sink

val file : string -> sink
(** JSONL sink writing one [{"t":seconds,"ev":kind,...}] object per
    line to a fresh file; {!close} closes it. *)

val channel : out_channel -> sink
(** JSONL sink on an existing channel; {!close} flushes but does not
    close it. *)

val stderr_human : unit -> sink
(** Human-readable sink reproducing the solver's historical [verbose]
    stderr lines: prints {!Incumbent} and {!Message} events only. *)

val ring : int -> sink
(** In-memory ring keeping the last [capacity] events (for tests). *)

val emit : sink -> time_s:float -> event -> unit
(** Record [event] at [time_s] seconds since the solve started. *)

val events : sink -> (float * event) list
(** Contents of a {!ring} sink, oldest first.

    @raise Invalid_argument on {!file}, {!channel} and {!stderr_human}
    sinks — their events are gone once written; parse a JSONL trace
    back with {!Replay.of_file}. *)

val jsonl_line : time_s:float -> event -> string
(** The one-line JSON object a {!file}/{!channel} sink writes for
    [event] (no trailing newline).  {!Replay.event_of_line} is its
    inverse. *)

val reason_name : prune_reason -> string
(** Stable lower-case wire name ([cutoff], [probed], [lp_infeasible],
    [lp_bound]) — the [reason] field of a JSONL prune line and the key
    of {!Replay}'s per-reason attribution. *)

val json_escape : string -> string
(** JSON string-body escaping used by the JSONL renderer (quotes,
    backslashes, control characters); shared with {!Replay}'s Chrome
    trace exporter. *)

val close : sink -> unit
(** Flush (and for {!file} sinks close) the underlying channel. *)
