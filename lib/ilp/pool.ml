(* Fixed-size domain pool.  One mutex/condition pair guards the queue; a
   second condition broadcasts task completions so [await] can sleep.  All
   task state transitions happen under the pool lock, so workers and the
   submitting domain never race on a task record. *)

type 'a state = Pending | Done of 'a | Failed of exn

type packed = Job : 'a task -> packed

and 'a task = {
  pool : t;
  thunk : unit -> 'a;
  token : bool Atomic.t;
  mutable state : 'a state;
}

and t = {
  lock : Mutex.t;
  work_cv : Condition.t;  (* queue non-empty, or shutting down *)
  done_cv : Condition.t;  (* some task settled *)
  queue : packed Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  n_jobs : int;
}

let jobs t = t.n_jobs

let run_job (Job task) =
  let result = try Done (task.thunk ()) with e -> Failed e in
  Mutex.lock task.pool.lock;
  task.state <- result;
  Condition.broadcast task.pool.done_cv;
  Mutex.unlock task.pool.lock

let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work_cv t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock (* stopping: exit *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.lock;
    run_job job;
    worker_loop t
  end

let create ~jobs =
  let n_jobs = max 1 (min jobs 64) in
  let t =
    {
      lock = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
      n_jobs;
    }
  in
  t.workers <- List.init n_jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit ?cancel t thunk =
  let token = match cancel with Some a -> a | None -> Atomic.make false in
  let task = { pool = t; thunk; token; state = Pending } in
  Mutex.lock t.lock;
  if t.stopping then begin
    Mutex.unlock t.lock;
    invalid_arg "Ilp.Pool.submit: pool is shut down"
  end;
  Queue.push (Job task) t.queue;
  Condition.signal t.work_cv;
  Mutex.unlock t.lock;
  task

let cancel task = Atomic.set task.token true
let cancel_token task = task.token

let await task =
  let t = task.pool in
  Mutex.lock t.lock;
  while (match task.state with Pending -> true | Done _ | Failed _ -> false) do
    Condition.wait t.done_cv t.lock
  done;
  let r = task.state in
  Mutex.unlock t.lock;
  match r with
  | Done v -> Ok v
  | Failed e -> Error e
  | Pending -> assert false

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.lock;
  let ws = t.workers in
  t.workers <- [];
  List.iter Domain.join ws

let map ~jobs f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs <= 1 -> List.map f xs
  | _ ->
      let pool = create ~jobs:(min jobs (List.length xs)) in
      let tasks = List.map (fun x -> submit pool (fun () -> f x)) xs in
      let results = List.map await tasks in
      shutdown pool;
      List.map (function Ok v -> v | Error e -> raise e) results

(* Work-stealing deques: one LIFO deque per owner, each guarded by its own
   mutex.  Owners push and pop at the front (newest first — depth-first
   locality); thieves take from the back (oldest first — the largest
   unexplored subtrees, minimizing steal traffic).  Deques here hold a few
   dozen subtree descriptors, so the O(length) back-removal of the list
   representation is irrelevant next to the mutex handshake. *)
module Deques = struct
  type 'a t = {
    locks : Mutex.t array;
    items : 'a list ref array;  (* front = newest *)
    owners : int;
  }

  let create ~owners =
    let owners = max 1 owners in
    {
      locks = Array.init owners (fun _ -> Mutex.create ());
      items = Array.init owners (fun _ -> ref []);
      owners;
    }

  let owners t = t.owners

  let push t ~owner x =
    Mutex.lock t.locks.(owner);
    t.items.(owner) := x :: !(t.items.(owner));
    Mutex.unlock t.locks.(owner)

  let pop t ~owner =
    Mutex.lock t.locks.(owner);
    let r =
      match !(t.items.(owner)) with
      | [] -> None
      | x :: rest ->
          t.items.(owner) := rest;
          Some x
    in
    Mutex.unlock t.locks.(owner);
    r

  (* Remove the back (oldest) element of one victim's deque. *)
  let steal_from t victim =
    Mutex.lock t.locks.(victim);
    let r =
      match !(t.items.(victim)) with
      | [] -> None
      | [ x ] ->
          t.items.(victim) := [];
          Some x
      | items ->
          let rec split acc = function
            | [ last ] -> (List.rev acc, last)
            | x :: rest -> split (x :: acc) rest
            | [] -> assert false
          in
          let front, last = split [] items in
          t.items.(victim) := front;
          Some last
    in
    Mutex.unlock t.locks.(victim);
    r

  let steal t ~thief =
    let rec scan i =
      if i >= t.owners then None
      else
        let victim = (thief + 1 + i) mod t.owners in
        if victim = thief then scan (i + 1)
        else
          match steal_from t victim with
          | Some x -> Some (x, victim)
          | None -> scan (i + 1)
    in
    scan 0
end

let env_jobs () =
  match Sys.getenv_opt "ADVBIST_JOBS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (min n 64)
      | Some _ | None -> None)
  | None -> None

let default_jobs () = match env_jobs () with Some n -> n | None -> 1

let recommended_jobs () =
  match env_jobs () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)
