(* Structured search-event sink.  The solver emits typed events behind a
   [Trace.sink option] stored in its options: the disabled path is one
   branch per site, and the event payload is only allocated inside the
   [Some] arm.  Sinks serialize their writes with a mutex so parallel
   workers can share one sink (JSONL lines stay whole, the ring stays
   consistent). *)

type prune_reason = Cutoff | Probed | Lp_infeasible | Lp_bound

type event =
  | Node of { depth : int; nodes : int; var : int; value : int; bound : int }
  | Prune of { depth : int; reason : prune_reason; bound : int; nodes : int }
  | Bound of { bound : int; nodes : int }
  | Incumbent of { objective : int; nodes : int }
  | Cut_round of { round : int; cuts : int }
  | Subtree of { id : int; depth : int }
  | Steal of { thief : int; victim : int }
  | Lp of { pivots : int; iters : int; refactors : int }
  | Message of string

type impl =
  | Jsonl of { oc : out_channel; owned : bool }
  | Human of out_channel
  | Ring of { cap : int; q : (float * event) Queue.t }

type sink = { lock : Mutex.t; impl : impl }

let make impl = { lock = Mutex.create (); impl }
let channel oc = make (Jsonl { oc; owned = false })
let file path = make (Jsonl { oc = open_out path; owned = true })
let stderr_human () = make (Human stderr)
let ring cap = make (Ring { cap = max 1 cap; q = Queue.create () })

let reason_name = function
  | Cutoff -> "cutoff"
  | Probed -> "probed"
  | Lp_infeasible -> "lp_infeasible"
  | Lp_bound -> "lp_bound"

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One event, one line: {"t":<seconds>,"ev":"<kind>",...}.  Bounds are
   printed as exact integers (a pruned-empty node carries [max_int],
   which no float path could round-trip); {!Replay.event_of_line} is the
   inverse of this renderer. *)
let jsonl_line ~time_s ev =
  match ev with
  | Node { depth; nodes; var; value; bound } ->
      Printf.sprintf
        "{\"t\":%.6f,\"ev\":\"node\",\"depth\":%d,\"nodes\":%d,\"var\":%d,\"value\":%d,\"bound\":%d}"
        time_s depth nodes var value bound
  | Prune { depth; reason; bound; nodes } ->
      Printf.sprintf
        "{\"t\":%.6f,\"ev\":\"prune\",\"depth\":%d,\"reason\":\"%s\",\"bound\":%d,\"nodes\":%d}"
        time_s depth (reason_name reason) bound nodes
  | Bound { bound; nodes } ->
      Printf.sprintf "{\"t\":%.6f,\"ev\":\"bound\",\"bound\":%d,\"nodes\":%d}"
        time_s bound nodes
  | Incumbent { objective; nodes } ->
      Printf.sprintf
        "{\"t\":%.6f,\"ev\":\"incumbent\",\"objective\":%d,\"nodes\":%d}"
        time_s objective nodes
  | Cut_round { round; cuts } ->
      Printf.sprintf "{\"t\":%.6f,\"ev\":\"cut_round\",\"round\":%d,\"cuts\":%d}"
        time_s round cuts
  | Subtree { id; depth } ->
      Printf.sprintf "{\"t\":%.6f,\"ev\":\"subtree\",\"id\":%d,\"depth\":%d}"
        time_s id depth
  | Steal { thief; victim } ->
      Printf.sprintf "{\"t\":%.6f,\"ev\":\"steal\",\"thief\":%d,\"victim\":%d}"
        time_s thief victim
  | Lp { pivots; iters; refactors } ->
      Printf.sprintf
        "{\"t\":%.6f,\"ev\":\"lp\",\"pivots\":%d,\"iters\":%d,\"refactors\":%d}"
        time_s pivots iters refactors
  | Message m ->
      Printf.sprintf "{\"t\":%.6f,\"ev\":\"message\",\"text\":\"%s\"}" time_s
        (json_escape m)

let write_jsonl oc time_s ev =
  output_string oc (jsonl_line ~time_s ev);
  output_char oc '\n'

(* The human sink reproduces the solver's historical [verbose] stderr
   lines: incumbents and summary messages only — node/prune streams
   belong in a JSONL trace, not on a terminal. *)
let write_human oc time_s ev =
  match ev with
  | Incumbent { objective; nodes } ->
      Printf.fprintf oc "[ilp] incumbent %d after %d nodes (%.2fs)\n%!"
        objective nodes time_s
  | Message m -> Printf.fprintf oc "[ilp] %s\n%!" m
  | Node _ | Prune _ | Bound _ | Cut_round _ | Subtree _ | Steal _ | Lp _ ->
      ()

let emit sink ~time_s ev =
  Mutex.lock sink.lock;
  (match sink.impl with
  | Jsonl { oc; _ } -> write_jsonl oc time_s ev
  | Human oc -> write_human oc time_s ev
  | Ring { cap; q } ->
      Queue.add (time_s, ev) q;
      while Queue.length q > cap do
        ignore (Queue.take q)
      done);
  Mutex.unlock sink.lock

let events sink =
  Mutex.lock sink.lock;
  let evs =
    match sink.impl with
    | Ring { q; _ } -> List.of_seq (Queue.to_seq q)
    | Jsonl _ | Human _ ->
        Mutex.unlock sink.lock;
        invalid_arg
          "Trace.events: not a ring sink (replay a JSONL trace with \
           Replay.of_file instead)"
  in
  Mutex.unlock sink.lock;
  evs

let close sink =
  Mutex.lock sink.lock;
  (match sink.impl with
  | Jsonl { oc; owned } -> if owned then close_out oc else flush oc
  | Human oc -> flush oc
  | Ring _ -> ());
  Mutex.unlock sink.lock
