type orbit =
  | Scalar of int array
  | Blocks of int array array

let size = function
  | Scalar vs -> Array.length vs
  | Blocks cols -> Array.length cols

let vars = function
  | Scalar vs -> Array.to_list vs
  | Blocks cols ->
      Array.fold_left (fun acc col -> acc @ Array.to_list col) [] cols

(* Preprocessed view: every constraint as (sense, rhs, terms sorted by
   variable), an occurrence list per variable, and a canonical string key
   per row so row multisets compare as sorted key lists. *)
type ctx = {
  n : int;
  objc : int array;
  lbs : int array;
  ubs : int array;
  rows : (int * int * (int * int) array) array;  (* sense, rhs, (var, coef) *)
  occ : int list array;  (* var -> row indices, ascending *)
}

let sense_code = function Model.Le -> 0 | Model.Ge -> 1 | Model.Eq -> 2

(* Sort terms by variable and merge duplicates (a Linexpr may in principle
   carry a variable twice; the canonical form must not). *)
let canon_terms terms =
  let a = Array.of_list terms in
  Array.sort (fun (v1, _) (v2, _) -> compare v1 v2) a;
  let out = ref [] in
  Array.iter
    (fun (v, c) ->
      match !out with
      | (v', c') :: rest when v' = v -> out := (v, c + c') :: rest
      | _ -> out := (v, c) :: !out)
    a;
  Array.of_list (List.rev (List.filter (fun (_, c) -> c <> 0) !out))

let make_ctx model =
  let n = Model.n_vars model in
  let objc = Array.make (max n 1) 0 in
  List.iter (fun (a, v) -> objc.(v) <- a) (Linexpr.terms (Model.objective model));
  let lbs = Array.make (max n 1) 0 and ubs = Array.make (max n 1) 0 in
  for v = 0 to n - 1 do
    let l, u = Model.bounds model v in
    lbs.(v) <- l;
    ubs.(v) <- u
  done;
  let rows =
    Array.map
      (fun (c : Model.constr) ->
        ( sense_code c.Model.sense,
          c.Model.rhs,
          canon_terms
            (List.map (fun (a, v) -> (v, a)) (Linexpr.terms c.Model.expr)) ))
      (Model.constraints model)
  in
  let occ = Array.make (max n 1) [] in
  Array.iteri
    (fun i (_, _, terms) ->
      Array.iter (fun (v, _) -> occ.(v) <- i :: occ.(v)) terms)
    rows;
  Array.iteri (fun v l -> occ.(v) <- List.rev l) occ;
  { n; objc; lbs; ubs; rows; occ }

let row_key (sense, rhs, terms) =
  let b = Buffer.create (16 + (Array.length terms * 8)) in
  Buffer.add_string b (string_of_int sense);
  Buffer.add_char b '|';
  Buffer.add_string b (string_of_int rhs);
  Array.iter
    (fun (v, c) ->
      Buffer.add_char b ';';
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int c))
    terms;
  Buffer.contents b

let transposition_ok ctx pairs =
  let pairs = List.filter (fun (u, v) -> u <> v) pairs in
  let valid =
    List.for_all
      (fun (u, v) ->
        u >= 0 && v >= 0 && u < ctx.n && v < ctx.n
        && ctx.objc.(u) = ctx.objc.(v)
        && ctx.lbs.(u) = ctx.lbs.(v)
        && ctx.ubs.(u) = ctx.ubs.(v))
      pairs
  in
  if not valid then false
  else begin
    let map = Hashtbl.create (2 * List.length pairs) in
    (* The swaps must form an involution on distinct variables. *)
    let clash = ref false in
    List.iter
      (fun (u, v) ->
        if Hashtbl.mem map u || Hashtbl.mem map v then clash := true
        else begin
          Hashtbl.replace map u v;
          Hashtbl.replace map v u
        end)
      pairs;
    if !clash then false
    else begin
      let image v = match Hashtbl.find_opt map v with Some w -> w | None -> v in
      let affected =
        List.sort_uniq compare
          (Hashtbl.fold (fun v _ acc -> ctx.occ.(v) @ acc) map [])
      in
      (* The permutation fixes every unaffected row, so invariance of the
         whole constraint multiset reduces to: the multiset of affected-row
         keys equals the multiset of their images. *)
      let originals =
        List.map (fun i -> row_key ctx.rows.(i)) affected
      in
      let images =
        List.map
          (fun i ->
            let sense, rhs, terms = ctx.rows.(i) in
            let terms' =
              Array.map (fun (v, c) -> (image v, c)) terms
            in
            Array.sort (fun (v1, _) (v2, _) -> compare v1 v2) terms';
            row_key (sense, rhs, terms'))
          affected
      in
      List.sort compare originals = List.sort compare images
    end
  end

let verify ctx = function
  | Scalar vs ->
      Array.length vs >= 2
      && (let ok = ref true in
          for i = 0 to Array.length vs - 2 do
            if !ok then ok := transposition_ok ctx [ (vs.(i), vs.(i + 1)) ]
          done;
          !ok)
  | Blocks cols ->
      Array.length cols >= 2
      && Array.for_all
           (fun col -> Array.length col = Array.length cols.(0))
           cols
      && (let ok = ref true in
          for j = 0 to Array.length cols - 2 do
            if !ok then
              ok :=
                transposition_ok ctx
                  (Array.to_list
                     (Array.map2
                        (fun u v -> (u, v))
                        cols.(j)
                        cols.(j + 1)))
          done;
          !ok)

let filter_verified model orbits =
  match List.filter (fun o -> size o >= 2) orbits with
  | [] -> []
  | candidates ->
      let ctx = make_ctx model in
      List.filter (verify ctx) candidates

(* --- automatic scalar-orbit detection ---------------------------------- *)

(* Interning: map structural signatures to small integer colours. *)
let intern table next key =
  match Hashtbl.find_opt table key with
  | Some c -> c
  | None ->
      let c = !next in
      incr next;
      Hashtbl.replace table key c;
      c

let detect ?(max_vars = 4000) ?(max_nnz = 100_000) model =
  let n = Model.n_vars model in
  if n < 2 || n > max_vars then []
  else begin
    let ctx = make_ctx model in
    let nnz =
      Array.fold_left (fun acc (_, _, t) -> acc + Array.length t) 0 ctx.rows
    in
    if nnz > max_nnz then []
    else begin
      (* Iterative colour refinement: a variable's colour is refined by the
         multiset of (coefficient, row colour) over its occurrences; a
         row's colour by its sense/rhs and the multiset of (coefficient,
         variable colour).  This only ever proposes candidates — exactness
         comes from the transposition verification below. *)
      let table = Hashtbl.create 97 and next = ref 0 in
      let vcolor =
        Array.init n (fun v ->
            intern table next
              (Printf.sprintf "v%d,%d,%d" ctx.lbs.(v) ctx.ubs.(v) ctx.objc.(v)))
      in
      let rcolor = Array.make (Array.length ctx.rows) 0 in
      let stable = ref false and passes = ref 0 in
      while (not !stable) && !passes < 8 do
        incr passes;
        Array.iteri
          (fun i (sense, rhs, terms) ->
            let sig_ =
              List.sort compare
                (Array.to_list
                   (Array.map (fun (v, c) -> (c, vcolor.(v))) terms))
            in
            rcolor.(i) <-
              intern table next
                (Printf.sprintf "r%d,%d,%s" sense rhs
                   (String.concat ";"
                      (List.map (fun (c, k) -> Printf.sprintf "%d:%d" c k) sig_))))
          ctx.rows;
        stable := true;
        Array.iteri
          (fun v old ->
            let sig_ =
              List.sort compare
                (List.concat_map
                   (fun i ->
                     let _, _, terms = ctx.rows.(i) in
                     List.filter_map
                       (fun (v', c) ->
                         if v' = v then Some (c, rcolor.(i)) else None)
                       (Array.to_list terms))
                   ctx.occ.(v))
            in
            let c =
              intern table next
                (Printf.sprintf "w%d,%s" old
                   (String.concat ";"
                      (List.map (fun (c, k) -> Printf.sprintf "%d:%d" c k) sig_)))
            in
            if c <> vcolor.(v) then begin
              vcolor.(v) <- c;
              stable := false
            end)
          vcolor
      done;
      (* Group by final colour, then split each class into maximal runs of
         verified adjacent transpositions (adjacent transpositions generate
         the full symmetric group on the run). *)
      let classes = Hashtbl.create 17 in
      for v = n - 1 downto 0 do
        Hashtbl.replace classes vcolor.(v)
          (v
          ::
          (match Hashtbl.find_opt classes vcolor.(v) with
          | Some l -> l
          | None -> []))
      done;
      let orbits = ref [] in
      Hashtbl.iter
        (fun _ members ->
          match members with
          | [] | [ _ ] -> ()
          | first :: rest ->
              let flush run =
                if List.length run >= 2 then
                  orbits := Scalar (Array.of_list (List.rev run)) :: !orbits
              in
              let run = ref [ first ] in
              List.iter
                (fun v ->
                  match !run with
                  | last :: _ when transposition_ok ctx [ (last, v) ] ->
                      run := v :: !run
                  | _ ->
                      flush !run;
                      run := [ v ])
                rest;
              flush !run)
        classes;
      (* Deterministic output order: by smallest member. *)
      List.sort
        (fun a b ->
          compare (List.hd (vars a)) (List.hd (vars b)))
        !orbits
    end
  end

(* --- lexicographic ordering rows ---------------------------------------- *)

let add_lex_rows model orbits =
  if orbits = [] then (model, 0)
  else begin
    let m = Model.copy model in
    let count = ref 0 in
    let add name terms rhs =
      Model.add_le m ~name (Linexpr.of_list terms) rhs;
      incr count
    in
    List.iteri
      (fun oi orbit ->
        match orbit with
        | Scalar vs ->
            for i = 0 to Array.length vs - 2 do
              add
                (Printf.sprintf "sym%d_s%d" oi i)
                [ (1, vs.(i + 1)); (-1, vs.(i)) ]
                0
            done
        | Blocks cols ->
            let len = if Array.length cols = 0 then 0 else Array.length cols.(0) in
            let binary =
              Array.for_all
                (fun col ->
                  Array.for_all
                    (fun v ->
                      let l, u = Model.bounds model v in
                      l >= 0 && u <= 1)
                    col)
                cols
            in
            for j = 0 to Array.length cols - 2 do
              let a = cols.(j) and b = cols.(j + 1) in
              if binary && len >= 1 && len <= 30 then
                (* exact lex as one weighted row: value(b) <= value(a) when
                   columns are read as big-endian binary numbers *)
                add
                  (Printf.sprintf "sym%d_b%d" oi j)
                  (List.concat
                     (List.init len (fun i ->
                          let w = 1 lsl (len - 1 - i) in
                          [ (w, b.(i)); (-w, a.(i)) ])))
                  0
              else if len >= 1 then
                (* implied first-component ordering only *)
                add
                  (Printf.sprintf "sym%d_b%d" oi j)
                  [ (1, b.(0)); (-1, a.(0)) ]
                  0
            done)
      orbits;
    (m, !count)
  end

(* --- canonical representative ------------------------------------------ *)

let canonicalize orbits x =
  let x = Array.copy x in
  List.iter
    (fun orbit ->
      match orbit with
      | Scalar vs ->
          let values = Array.map (fun v -> x.(v)) vs in
          Array.sort (fun a b -> compare b a) values;
          Array.iteri (fun i v -> x.(v) <- values.(i)) vs
      | Blocks cols ->
          let values = Array.map (Array.map (fun v -> x.(v))) cols in
          let idx = Array.init (Array.length cols) Fun.id in
          (* lexicographically non-increasing columns; stable on ties *)
          let idx = Array.to_list idx in
          let idx =
            List.stable_sort (fun i j -> compare values.(j) values.(i)) idx
          in
          List.iteri
            (fun j orig ->
              Array.iteri (fun i v -> x.(v) <- values.(orig).(i)) cols.(j))
            idx)
    orbits;
  x
