(* Per-solve counters and phase timers.  One record per search (and per
   parallel worker); merged at combine so the hot path never touches an
   atomic and jobs-deterministic fields stay deterministic.  All fields
   are plain mutables: the solver bumps them behind a single
   [match stats with Some st -> ... | None -> ()] branch, so a disabled
   run costs one word-compare per instrumented site and allocates
   nothing. *)

type t = {
  (* Wall-clock phase timers (seconds).  The top-level phases are disjoint
     segments of the solve call measured on the calling domain, so their
     sum accounts for (almost all of) [outcome.time_s]. *)
  mutable presolve_s : float;  (* caller-side Presolve.strengthen, if any *)
  mutable prepare_s : float;  (* symmetry detection + canonicalization *)
  mutable cuts_s : float;  (* root cut loop (incl. its LP resolves) *)
  mutable build_s : float;  (* search-state construction + warm start *)
  mutable root_s : float;  (* root propagation + shaving fixpoint *)
  mutable search_s : float;  (* tree search (all nodes, all workers) *)
  (* Sub-timers: CPU time summed across workers, attributed inside
     [search_s] / [root_s]; not part of the disjoint phase account. *)
  mutable lp_s : float;  (* node LP bounding *)
  mutable probe_s : float;  (* in-tree probing *)
  (* Root cut loop. *)
  mutable cut_rounds : int;
  mutable cuts_generated : int;  (* separated by Cuts.separate *)
  mutable cuts_kept : int;  (* appended to the model *)
  (* Propagation. *)
  mutable prop_fixpoints : int;  (* worklist fixpoints run *)
  mutable prop_ticks : int;  (* row propagations + orbit passes *)
  mutable prop_conflicts : int;  (* fixpoints ending in a conflict *)
  (* Probing (in-tree shaving + root shaving trials). *)
  mutable probe_calls : int;  (* probing steps actually run at a node *)
  mutable probe_skips : int;  (* nodes skipped by the backoff gate *)
  mutable probe_trials : int;  (* tentative endpoint propagations *)
  mutable probe_hits : int;  (* probing steps that landed a fixing *)
  mutable probe_backoffs : int;  (* times the skip gap widened *)
  (* Node LP bounding. *)
  mutable lp_resolves : int;  (* all node LP calls *)
  mutable lp_warm : int;  (* warm re-solves reaching optimality *)
  mutable lp_fallbacks : int;  (* capped re-solves rescued by weak duality *)
  mutable lp_infeasible : int;  (* LP-infeasible verdicts *)
  mutable lp_cold : int;  (* cold two-phase solves (no warm engine) *)
  mutable lp_pivots : int;  (* cumulative dual pivots of the warm engine *)
  mutable lp_iters : int;  (* cumulative dual-simplex iterations *)
  mutable lp_refactors : int;  (* basis refactorizations of the warm engine *)
  mutable lp_batched : int;  (* sibling re-solves from a stashed parent basis *)
  mutable rc_fixings : int;  (* variables fixed by reduced cost *)
  mutable orbit_fixings : int;  (* bound changes by the orbital propagator *)
  (* Primal progress: every incumbent improvement as
     (seconds since solve start, nodes so far, objective), newest first. *)
  mutable incumbents : (float * int * int) list;
  (* Per-depth node histogram; grows on demand.  Its sum equals the
     outcome's node count in both entry points (parallel subtrees count
     depth below their subtree root). *)
  mutable depth_hist : int array;
  (* Parallel search. *)
  mutable subtrees : int;  (* frontier size (0 for sequential solves) *)
  mutable steals : int;  (* subtrees stolen across domains *)
  mutable workers : int;  (* worker domains (0 for sequential solves) *)
}

let create () =
  {
    presolve_s = 0.0;
    prepare_s = 0.0;
    cuts_s = 0.0;
    build_s = 0.0;
    root_s = 0.0;
    search_s = 0.0;
    lp_s = 0.0;
    probe_s = 0.0;
    cut_rounds = 0;
    cuts_generated = 0;
    cuts_kept = 0;
    prop_fixpoints = 0;
    prop_ticks = 0;
    prop_conflicts = 0;
    probe_calls = 0;
    probe_skips = 0;
    probe_trials = 0;
    probe_hits = 0;
    probe_backoffs = 0;
    lp_resolves = 0;
    lp_warm = 0;
    lp_fallbacks = 0;
    lp_infeasible = 0;
    lp_cold = 0;
    lp_pivots = 0;
    lp_iters = 0;
    lp_refactors = 0;
    lp_batched = 0;
    rc_fixings = 0;
    orbit_fixings = 0;
    incumbents = [];
    depth_hist = [||];
    subtrees = 0;
    steals = 0;
    workers = 0;
  }

let node t ~depth =
  let n = Array.length t.depth_hist in
  if depth >= n then begin
    let h = Array.make (max (depth + 1) ((2 * n) + 8)) 0 in
    Array.blit t.depth_hist 0 h 0 n;
    t.depth_hist <- h
  end;
  t.depth_hist.(depth) <- t.depth_hist.(depth) + 1

let incumbent t ~time_s ~nodes ~objective =
  t.incumbents <- (time_s, nodes, objective) :: t.incumbents

let total_nodes t = Array.fold_left ( + ) 0 t.depth_hist

let max_depth t =
  let d = ref 0 in
  Array.iteri (fun i n -> if n > 0 then d := i) t.depth_hist;
  !d

let primal_progress t =
  (* oldest first; the reverse-chronological push order is not trusted
     because [merge] interleaves several histories *)
  List.sort compare t.incumbents

(* Disjoint top-level phases, in pipeline order; their sum is the share of
   the solve's wall clock the telemetry accounts for. *)
let phases t =
  [
    ("presolve", t.presolve_s);
    ("prepare", t.prepare_s);
    ("cuts", t.cuts_s);
    ("build", t.build_s);
    ("root", t.root_s);
    ("search", t.search_s);
  ]

let accounted_s t = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 (phases t)

(* Merge is commutative and associative (up to float-addition rounding):
   counters and timers add, histograms add element-wise, the incumbent
   histories union under a canonical sort. *)
let merge a b =
  let ha = a.depth_hist and hb = b.depth_hist in
  let n = max (Array.length ha) (Array.length hb) in
  let hist =
    Array.init n (fun i ->
        (if i < Array.length ha then ha.(i) else 0)
        + if i < Array.length hb then hb.(i) else 0)
  in
  {
    presolve_s = a.presolve_s +. b.presolve_s;
    prepare_s = a.prepare_s +. b.prepare_s;
    cuts_s = a.cuts_s +. b.cuts_s;
    build_s = a.build_s +. b.build_s;
    root_s = a.root_s +. b.root_s;
    search_s = a.search_s +. b.search_s;
    lp_s = a.lp_s +. b.lp_s;
    probe_s = a.probe_s +. b.probe_s;
    cut_rounds = a.cut_rounds + b.cut_rounds;
    cuts_generated = a.cuts_generated + b.cuts_generated;
    cuts_kept = a.cuts_kept + b.cuts_kept;
    prop_fixpoints = a.prop_fixpoints + b.prop_fixpoints;
    prop_ticks = a.prop_ticks + b.prop_ticks;
    prop_conflicts = a.prop_conflicts + b.prop_conflicts;
    probe_calls = a.probe_calls + b.probe_calls;
    probe_skips = a.probe_skips + b.probe_skips;
    probe_trials = a.probe_trials + b.probe_trials;
    probe_hits = a.probe_hits + b.probe_hits;
    probe_backoffs = a.probe_backoffs + b.probe_backoffs;
    lp_resolves = a.lp_resolves + b.lp_resolves;
    lp_warm = a.lp_warm + b.lp_warm;
    lp_fallbacks = a.lp_fallbacks + b.lp_fallbacks;
    lp_infeasible = a.lp_infeasible + b.lp_infeasible;
    lp_cold = a.lp_cold + b.lp_cold;
    lp_pivots = a.lp_pivots + b.lp_pivots;
    lp_iters = a.lp_iters + b.lp_iters;
    lp_refactors = a.lp_refactors + b.lp_refactors;
    lp_batched = a.lp_batched + b.lp_batched;
    rc_fixings = a.rc_fixings + b.rc_fixings;
    orbit_fixings = a.orbit_fixings + b.orbit_fixings;
    incumbents = List.sort (fun x y -> compare y x) (a.incumbents @ b.incumbents);
    depth_hist = hist;
    subtrees = a.subtrees + b.subtrees;
    steals = a.steals + b.steals;
    workers = a.workers + b.workers;
  }

let pp ?time_s ppf t =
  let open Format in
  let total = accounted_s t in
  let denom =
    match time_s with Some w when w > 0.0 -> w | Some _ | None -> 0.0
  in
  let pct s = if denom > 0.0 then 100.0 *. s /. denom else 0.0 in
  fprintf ppf "@[<v>phase            seconds";
  if denom > 0.0 then fprintf ppf "      %%";
  List.iter
    (fun (name, s) ->
      fprintf ppf "@,  %-12s %9.4f" name s;
      if denom > 0.0 then fprintf ppf "  %5.1f" (pct s))
    (phases t);
  fprintf ppf "@,  %-12s %9.4f" "accounted" total;
  (match time_s with
  | Some w when w > 0.0 -> fprintf ppf "  %5.1f  of %.4fs wall" (pct total) w
  | Some _ | None -> ());
  fprintf ppf "@,  %-12s %9.4f  %-12s %9.4f" "lp" t.lp_s "probe" t.probe_s;
  fprintf ppf "@,cuts: %d kept / %d generated in %d rounds" t.cuts_kept
    t.cuts_generated t.cut_rounds;
  fprintf ppf "@,propagation: %d fixpoints, %d ticks, %d conflicts"
    t.prop_fixpoints t.prop_ticks t.prop_conflicts;
  fprintf ppf
    "@,probing: %d calls (%d hits, %d trials), %d skipped, %d backoffs"
    t.probe_calls t.probe_hits t.probe_trials t.probe_skips t.probe_backoffs;
  fprintf ppf
    "@,lp: %d resolves (%d warm-optimal, %d weak-duality, %d infeasible, %d \
     cold), %d pivots"
    t.lp_resolves t.lp_warm t.lp_fallbacks t.lp_infeasible t.lp_cold
    t.lp_pivots;
  (* The engine counters only mean something relative to the resolve
     count: iters/resolve is the warm-start quality, batched share the
     fraction of siblings that reused a stashed parent basis. *)
  let per_resolve n =
    if t.lp_resolves > 0 then float_of_int n /. float_of_int t.lp_resolves
    else 0.0
  in
  fprintf ppf
    "@,lp engine: %d iters (%.1f/resolve), %d refactors, %d batched siblings \
     (%.0f%% of resolves)"
    t.lp_iters (per_resolve t.lp_iters) t.lp_refactors t.lp_batched
    (100.0 *. per_resolve t.lp_batched);
  fprintf ppf "@,fixings: %d reduced-cost, %d orbital" t.rc_fixings
    t.orbit_fixings;
  fprintf ppf "@,nodes: %d (max depth %d)" (total_nodes t) (max_depth t);
  (match primal_progress t with
  | [] -> ()
  | curve ->
      fprintf ppf "@,primal progress:";
      List.iter
        (fun (ts, nodes, obj) ->
          fprintf ppf "@,  %9.4fs %10d nodes  obj %d" ts nodes obj)
        curve);
  if t.workers > 0 then
    fprintf ppf "@,parallel: %d workers, %d subtrees, %d stolen" t.workers
      t.subtrees t.steals;
  fprintf ppf "@]"
