(** Variable-interchangeability orbits: detection, exact verification, and
    lexicographic symmetry breaking.

    A model is {e symmetric} under a variable permutation when applying the
    permutation maps the constraint multiset onto itself and leaves bounds
    and objective coefficients unchanged — every feasible solution then maps
    to an equally-good feasible solution.  The branch-and-bound tree
    re-explores each symmetric image of a subtree unless told otherwise, so
    permutation-saturated models (the ADVBIST encodings are, per Section 3
    of the paper: interchangeable registers, interchangeable module
    instances, interchangeable sub-test sessions) pay an exponential tax.

    This module represents symmetry as {e orbits}:

    - a {!Scalar} orbit is a set of single variables on which the full
      symmetric group acts (any permutation of their values within a
      solution is again a solution);
    - a {!Blocks} orbit is a set of aligned variable {e columns} — swapping
      two whole columns component-wise is a model automorphism (e.g. all
      variables indexed by register [r] against those indexed by [r']).

    The canonical representative chosen is {e sorted-decreasing}: scalar
    orbit members satisfy [v_1 >= v_2 >= ...], block columns are
    lexicographically non-increasing.  {!add_lex_rows} materializes (a
    linear relaxation of) that ordering as root rows; the solver's orbit
    propagation pass enforces it exactly during search (orbital fixing).

    Every orbit handed to the solver must be a {e true} symmetry: orbits
    produced by {!detect} and those surviving {!filter_verified} are proven
    exactly (each adjacent transposition is checked to be a model
    automorphism; adjacent transpositions generate the full symmetric
    group, so sorting permutations are always automorphisms). *)

type orbit =
  | Scalar of int array
      (** interchangeable single variables, ascending variable index *)
  | Blocks of int array array
      (** interchangeable aligned columns: [cols.(j).(i)] is component [i]
          of column [j]; all columns have the same length, and component
          [i] of one column maps to component [i] of any other *)

val size : orbit -> int
(** Number of interchangeable objects (variables, or columns). *)

val vars : orbit -> int list
(** Every variable mentioned by the orbit. *)

type ctx
(** Preprocessed model view for repeated automorphism checks. *)

val make_ctx : Model.t -> ctx

val transposition_ok : ctx -> (int * int) list -> bool
(** [transposition_ok ctx pairs] — is the involution swapping each
    [(u, v)] of [pairs] a model automorphism?  Exact: bounds and objective
    coefficients must match pairwise and the constraint multiset must be
    invariant. *)

val verify : ctx -> orbit -> bool
(** Exact check that the orbit is a true symmetry: every adjacent
    transposition (of variables, or of whole columns component-wise) is an
    automorphism. *)

val filter_verified : Model.t -> orbit list -> orbit list
(** Keep only orbits that {!verify} accepts (and have at least two
    members).  Use on candidate orbits proposed from structural knowledge
    (e.g. {!Encoding}) before handing them to the solver. *)

val detect : ?max_vars:int -> ?max_nnz:int -> Model.t -> orbit list
(** Automatic scalar-orbit detection: iterative colour refinement over the
    variable/constraint incidence structure proposes candidate classes,
    which are then split into maximal runs of exactly-verified adjacent
    transpositions.  Only orbits of size >= 2 are returned.  Returns [[]]
    immediately on models larger than [max_vars] variables (default 4000)
    or [max_nnz] constraint non-zeros (default 100_000) — detection is for
    small and mid-size models; large structured models should pass their
    known orbits explicitly. *)

val add_lex_rows : Model.t -> orbit list -> Model.t * int
(** A copy of the model with lexicographic ordering rows appended, and how
    many rows were added: [v_i >= v_{i+1}] for scalar orbits; for block
    orbits the exact binary-weighted lex row per adjacent column pair when
    the columns are all-binary and short enough, else the implied
    first-component ordering.  Returns the model unchanged (no copy) when
    [orbits] is empty.  Sound only when every orbit is a true symmetry. *)

val canonicalize : orbit list -> int array -> int array
(** Map a solution vector to its canonical symmetric image: scalar orbit
    values sorted decreasing, block columns sorted lexicographically
    non-increasing.  The result is feasible with the same objective
    whenever the orbits are true symmetries, and satisfies the
    {!add_lex_rows} ordering. *)
