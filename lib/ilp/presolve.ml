type stats = {
  infeasible : bool;
  fixed_vars : int;
  tightened_bounds : int;
  dropped_rows : int;
  strengthened_coefs : int;
}

(* Internal rows are one flat CSR block of normalized [sum coef*var <= rhs]
   rows, the same layout as the solver's propagation kernel: row [i]'s
   terms live in [row_coef]/[row_var] between [row_start.(i)] and
   [row_start.(i + 1)], its right-hand side in [row_rhs.(i)].  The
   presolve passes below are plain array sweeps over this block — no
   per-row boxing, no allocation in the fixpoint loop. *)
type rows = {
  row_start : int array;  (* n_rows + 1 entries *)
  row_coef : int array;
  row_var : int array;
  row_rhs : int array;  (* mutated by coefficient strengthening *)
  n_rows : int;
}

let rows_of_model m =
  let cs = Model.constraints m in
  let n_rows = ref 0 and nnz = ref 0 in
  Array.iter
    (fun (c : Model.constr) ->
      let len = List.length (Linexpr.terms c.Model.expr) in
      match c.Model.sense with
      | Model.Le | Model.Ge ->
          incr n_rows;
          nnz := !nnz + len
      | Model.Eq ->
          n_rows := !n_rows + 2;
          nnz := !nnz + (2 * len))
    cs;
  let n_rows = !n_rows in
  let row_start = Array.make (n_rows + 1) 0 in
  let row_coef = Array.make (max 1 !nnz) 0 in
  let row_var = Array.make (max 1 !nnz) 0 in
  let row_rhs = Array.make (max 1 n_rows) 0 in
  let r = ref 0 and p = ref 0 in
  let emit sign terms rhs =
    row_rhs.(!r) <- rhs;
    List.iter
      (fun (a, v) ->
        row_coef.(!p) <- sign * a;
        row_var.(!p) <- v;
        incr p)
      terms;
    incr r;
    row_start.(!r) <- !p
  in
  Array.iter
    (fun (c : Model.constr) ->
      let terms = Linexpr.terms c.Model.expr in
      match c.Model.sense with
      | Model.Le -> emit 1 terms c.Model.rhs
      | Model.Ge -> emit (-1) terms (-c.Model.rhs)
      | Model.Eq ->
          emit 1 terms c.Model.rhs;
          emit (-1) terms (-c.Model.rhs))
    cs;
  { row_start; row_coef; row_var; row_rhs; n_rows }

let min_activity lb ub t i =
  let acc = ref 0 in
  for p = t.row_start.(i) to t.row_start.(i + 1) - 1 do
    let a = t.row_coef.(p) and v = t.row_var.(p) in
    acc := !acc + if a > 0 then a * lb.(v) else a * ub.(v)
  done;
  !acc

let max_activity lb ub t i =
  let acc = ref 0 in
  for p = t.row_start.(i) to t.row_start.(i + 1) - 1 do
    let a = t.row_coef.(p) and v = t.row_var.(p) in
    acc := !acc + if a > 0 then a * ub.(v) else a * lb.(v)
  done;
  !acc

(* Bound tightening to fixpoint; returns false on proven infeasibility. *)
let tighten lb ub t =
  let changed = ref true in
  let feasible = ref true in
  while !changed && !feasible do
    changed := false;
    for i = 0 to t.n_rows - 1 do
      let minact = min_activity lb ub t i in
      if minact > t.row_rhs.(i) then feasible := false
      else begin
        let slack = t.row_rhs.(i) - minact in
        for p = t.row_start.(i) to t.row_start.(i + 1) - 1 do
          let a = t.row_coef.(p) and v = t.row_var.(p) in
          if a > 0 then begin
            let max_x = lb.(v) + (slack / a) in
            if max_x < ub.(v) then begin
              ub.(v) <- max_x;
              changed := true;
              if ub.(v) < lb.(v) then feasible := false
            end
          end
          else begin
            let na = -a in
            let min_x = ub.(v) - (slack / na) in
            if min_x > lb.(v) then begin
              lb.(v) <- min_x;
              changed := true;
              if ub.(v) < lb.(v) then feasible := false
            end
          end
        done
      end
    done
  done;
  !feasible

let run m =
  let n = Model.n_vars m in
  let lb = Array.make n 0 and ub = Array.make n 0 in
  for v = 0 to n - 1 do
    let l, u = Model.bounds m v in
    lb.(v) <- l;
    ub.(v) <- u
  done;
  let lb0 = Array.copy lb and ub0 = Array.copy ub in
  let t = rows_of_model m in
  let feasible = tighten lb ub t in
  let fixed = ref 0 and tightened = ref 0 in
  if feasible then
    for v = 0 to n - 1 do
      if lb.(v) = ub.(v) && lb0.(v) <> ub0.(v) then incr fixed
      else if lb.(v) > lb0.(v) || ub.(v) < ub0.(v) then incr tightened
    done;
  (* redundant rows and coefficient strengthening under tightened bounds *)
  let dropped = ref 0 and strengthened = ref 0 in
  let keep = Array.make (max 1 t.n_rows) false in
  if feasible then
    for i = 0 to t.n_rows - 1 do
      let maxact = max_activity lb ub t i in
      if maxact <= t.row_rhs.(i) then incr dropped
      else begin
        keep.(i) <- true;
        (* Coefficient strengthening (one application per row; running
           presolve again applies more).  For a <= row with binary x_j,
           coefficient a_j > 0 and d = maxact - rhs > 0: shifting both
           a_j and rhs down by delta keeps the x_j = 1 points identical,
           and keeps the x_j = 0 points identical as long as
           maxact - a_j <= rhs - delta, i.e. delta <= a_j - d.  The
           maximal valid reduction is therefore delta = a_j - d (needs
           a_j > d), which shrinks the coefficient exactly to d. *)
        let d = maxact - t.row_rhs.(i) in
        let p = ref t.row_start.(i) in
        let stop = t.row_start.(i + 1) in
        let hit = ref false in
        while (not !hit) && !p < stop do
          let a = t.row_coef.(!p) and v = t.row_var.(!p) in
          if lb.(v) = 0 && ub.(v) = 1 && a > d then begin
            t.row_coef.(!p) <- d;
            t.row_rhs.(i) <- t.row_rhs.(i) - (a - d);
            incr strengthened;
            hit := true
          end;
          incr p
        done
      end
    done;
  let stats =
    {
      infeasible = not feasible;
      fixed_vars = !fixed;
      tightened_bounds = !tightened;
      dropped_rows = !dropped;
      strengthened_coefs = !strengthened;
    }
  in
  (stats, lb, ub, t, keep)

let analyze m =
  let stats, _, _, _, _ = run m in
  stats

let strengthen m =
  let stats, lb, ub, t, keep = run m in
  let m' = Model.create ~name:(Model.name m ^ "-presolved") () in
  let n = Model.n_vars m in
  for v = 0 to n - 1 do
    let l, u =
      if stats.infeasible then Model.bounds m v else (lb.(v), ub.(v))
    in
    ignore (Model.int_var m' ~lb:l ~ub:u (Model.var_name m v))
  done;
  if stats.infeasible then
    (* explicit contradiction: 0 <= -1 *)
    Model.add_le m' ~name:"infeasible" Linexpr.zero (-1)
  else
    for i = 0 to t.n_rows - 1 do
      if keep.(i) then begin
        let terms = ref [] in
        for p = t.row_start.(i + 1) - 1 downto t.row_start.(i) do
          terms := (t.row_coef.(p), t.row_var.(p)) :: !terms
        done;
        Model.add_le m' (Linexpr.of_list !terms) t.row_rhs.(i)
      end
    done;
  Model.set_objective m' (Model.objective m);
  (m', stats)

let pp_stats ppf s =
  Format.fprintf ppf
    "presolve: %s, %d fixed, %d tightened, %d rows dropped, %d coefficients \
     strengthened"
    (if s.infeasible then "INFEASIBLE" else "feasible")
    s.fixed_vars s.tightened_bounds s.dropped_rows s.strengthened_coefs
