(** Fixed-size domain pool with a work queue and per-task cancellation.

    The solve farm behind parallel k-sweeps and solver portfolios: a small
    set of OCaml 5 domains pulls closures off a shared queue.  Tasks are
    plain [unit -> 'a] thunks; each carries a cancellation token (a
    [bool Atomic.t]) that cooperative workloads — notably
    {!Solver.options.stop} — poll to abandon work early.

    Results are retrieved with {!await}, which re-raises nothing: worker
    exceptions are captured and returned as [Error].  Await only from the
    submitting domain (typically the main one); workers must not await
    tasks of their own pool. *)

type t
(** A pool of worker domains.  Create once, submit many, {!shutdown}. *)

val create : jobs:int -> t
(** [create ~jobs] spawns [max 1 jobs] worker domains (clamped to 64). *)

val jobs : t -> int
(** Number of worker domains actually spawned. *)

type 'a task

val submit : ?cancel:bool Atomic.t -> t -> (unit -> 'a) -> 'a task
(** Enqueue a thunk.  [cancel] (fresh by default) is the task's
    cancellation token; {!cancel} sets it, and the thunk — if it polls the
    token — is expected to return early.  The pool itself never kills a
    running thunk. *)

val cancel : 'a task -> unit
(** Set the task's cancellation token.  Cooperative: a thunk that ignores
    its token runs to completion regardless. *)

val cancel_token : 'a task -> bool Atomic.t

val await : 'a task -> ('a, exn) result
(** Block until the task's thunk has returned (or raised). *)

val shutdown : t -> unit
(** Wait for queued tasks to drain, then join all workers.  Idempotent. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element on a transient pool of
    [jobs] workers and returns results in input order.  [jobs <= 1] (or a
    singleton list) degrades to plain [List.map] — byte-identical to the
    sequential path.  The first worker exception, if any, is re-raised
    after all tasks settle. *)

(** Work-stealing deques for splitting one workload across the pool's
    workers: one LIFO deque per owner.  Owners push and pop at the front
    (depth-first locality); {!Deques.steal} removes from the back of
    another owner's deque (the oldest — and for tree search the largest —
    pending item).  Used by {!Solver.solve_parallel} to spread open
    subtrees of a single hard instance across idle domains. *)
module Deques : sig
  type 'a t

  val create : owners:int -> 'a t
  (** [owners] deques (at least 1). *)

  val owners : 'a t -> int

  val push : 'a t -> owner:int -> 'a -> unit

  val pop : 'a t -> owner:int -> 'a option
  (** Newest element of the owner's own deque. *)

  val steal : 'a t -> thief:int -> ('a * int) option
  (** Oldest element of some other owner's non-empty deque (scanned
      round-robin from [thief + 1]), with the victim's index.  [None] when
      every other deque is empty. *)
end

val default_jobs : unit -> int
(** Parallelism from the environment: [ADVBIST_JOBS] when set and positive,
    else 1 (sequential — the conservative default for reproducibility). *)

val recommended_jobs : unit -> int
(** [ADVBIST_JOBS] when set, else the runtime's recommended domain count
    minus one (at least 1) — for benchmark harnesses that want the
    hardware's parallelism without an explicit flag. *)
