(** Integer linear programming model builder.

    Variables are bounded integers (binaries are the [0,1] special case);
    constraints are linear with integer coefficients; the objective is
    minimized.  The builder is imperative: create, add variables and
    constraints, then hand the model to {!Solver} (or export with
    {!Lp_format}). *)

type t
type var = int

type sense = Le | Ge | Eq

type constr = {
  cname : string;
  expr : Linexpr.t;
  sense : sense;
  rhs : int;
}

val create : ?name:string -> unit -> t
val name : t -> string

val copy : t -> t
(** An independent model: constraints/objective added to either side later
    are not visible from the other.  O(1) — the shared tails are
    persistent. *)

(** {1 Variables} *)

val bool_var : t -> string -> var
val int_var : t -> lb:int -> ub:int -> string -> var
(** Requires [lb <= ub]; raises [Invalid_argument] otherwise. *)

val n_vars : t -> int
val var_name : t -> var -> string
val bounds : t -> var -> int * int
val is_binary : t -> var -> bool

val lower_bounds : t -> int array
val upper_bounds : t -> int array
(** The whole bound vectors as fresh arrays (one entry per variable, index
    order).  Callers may mutate them freely — {!Solver} uses them directly
    as its branch-and-bound domain store. *)

(** {1 Constraints} *)

val add : t -> ?name:string -> Linexpr.t -> sense -> int -> unit
val add_le : t -> ?name:string -> Linexpr.t -> int -> unit
val add_ge : t -> ?name:string -> Linexpr.t -> int -> unit
val add_eq : t -> ?name:string -> Linexpr.t -> int -> unit

val n_constraints : t -> int
val constraints : t -> constr array
(** In insertion order. The array is fresh; mutation is harmless. *)

(** {1 Objective} *)

val set_objective : t -> Linexpr.t -> unit
(** Minimization objective. Replaces any previous objective. *)

val objective : t -> Linexpr.t

(** {1 Evaluation} *)

val eval_expr : Linexpr.t -> int array -> int
val check : t -> int array -> (unit, string list) result
(** Verifies a full assignment against bounds and all constraints; the error
    list names each violation.  This is the independent audit used by the
    test-suite on every solver result. *)

val objective_value : t -> int array -> int

val stats : t -> string
(** One-line summary: variables (binary/integer), constraints, non-zeros. *)
