(* Trace replay and search post-mortems.

   [event_of_line] is the exact inverse of [Trace.jsonl_line]: a scanner
   over the one-object-per-line JSON the file/channel sinks write.  It
   parses integers with [int_of_string] — never through a float — so a
   pruned-empty node's [bound = max_int] round-trips bit-exactly.  On
   top of the parsed stream, [analyze] replays the tree shape (a
   bound-per-depth stack) and computes the attribution the raw trace
   only implies: nodes and wall time per prune reason, per-variable and
   per-orbit branching efficacy, wasted work against the final
   incumbent, gap-closure curves and per-depth profiles. *)

(* --- line parser -------------------------------------------------------- *)

let index_of_sub s sub =
  let n = String.length s and m = String.length sub in
  let i = ref 0 and found = ref (-1) in
  while !found < 0 && !i + m <= n do
    if String.sub s !i m = sub then found := !i else incr i
  done;
  if !found < 0 then None else Some (!found + m)

(* Position just past ["key":] — keys never appear inside other values
   (the only free-form string is [message.text], and its quotes are
   escaped), so a plain substring search is exact on renderer output. *)
let value_pos line key = index_of_sub line ("\"" ^ key ^ "\":")

let scan_number line p =
  let n = String.length line in
  let q = ref p in
  while
    !q < n
    &&
    match line.[!q] with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  do
    incr q
  done;
  if !q = p then None else Some (String.sub line p (!q - p))

let scan_string line p =
  let n = String.length line in
  if p >= n || line.[p] <> '"' then None
  else begin
    let buf = Buffer.create 16 in
    let q = ref (p + 1) in
    let closed = ref false and bad = ref false in
    while (not !closed) && (not !bad) && !q < n do
      (match line.[!q] with
      | '"' -> closed := true
      | '\\' ->
          if !q + 1 >= n then bad := true
          else begin
            (match line.[!q + 1] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'u' ->
                if !q + 5 >= n then bad := true
                else begin
                  (match
                     int_of_string_opt
                       ("0x" ^ String.sub line (!q + 2) 4)
                   with
                  | Some c when c < 0x100 ->
                      Buffer.add_char buf (Char.chr c)
                  | Some _ | None -> bad := true);
                  q := !q + 4
                end
            | _ -> bad := true);
            incr q
          end
      | c -> Buffer.add_char buf c);
      incr q
    done;
    if !bad || not !closed then None else Some (Buffer.contents buf)
  end

let int_field line key =
  match value_pos line key with
  | None -> Error (Printf.sprintf "missing field %S" key)
  | Some p -> (
      match scan_number line p with
      | None -> Error (Printf.sprintf "field %S is not a number" key)
      | Some raw -> (
          match int_of_string_opt raw with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "field %S is not an integer" key)))

let float_field line key =
  match value_pos line key with
  | None -> Error (Printf.sprintf "missing field %S" key)
  | Some p -> (
      match scan_number line p with
      | None -> Error (Printf.sprintf "field %S is not a number" key)
      | Some raw -> (
          match float_of_string_opt raw with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "field %S is not a float" key)))

let string_field line key =
  match value_pos line key with
  | None -> Error (Printf.sprintf "missing field %S" key)
  | Some p -> (
      match scan_string line p with
      | None -> Error (Printf.sprintf "field %S is not a string" key)
      | Some s -> Ok s)

let reason_of_name = function
  | "cutoff" -> Ok Trace.Cutoff
  | "probed" -> Ok Trace.Probed
  | "lp_infeasible" -> Ok Trace.Lp_infeasible
  | "lp_bound" -> Ok Trace.Lp_bound
  | r -> Error (Printf.sprintf "unknown prune reason %S" r)

let ( let* ) = Result.bind

let event_of_line line =
  let* t = float_field line "t" in
  let* ev = string_field line "ev" in
  let* event =
    match ev with
    | "node" ->
        let* depth = int_field line "depth" in
        let* nodes = int_field line "nodes" in
        let* var = int_field line "var" in
        let* value = int_field line "value" in
        let* bound = int_field line "bound" in
        Ok (Trace.Node { depth; nodes; var; value; bound })
    | "prune" ->
        let* depth = int_field line "depth" in
        let* reason = Result.bind (string_field line "reason") reason_of_name in
        let* bound = int_field line "bound" in
        let* nodes = int_field line "nodes" in
        Ok (Trace.Prune { depth; reason; bound; nodes })
    | "bound" ->
        let* bound = int_field line "bound" in
        let* nodes = int_field line "nodes" in
        Ok (Trace.Bound { bound; nodes })
    | "incumbent" ->
        let* objective = int_field line "objective" in
        let* nodes = int_field line "nodes" in
        Ok (Trace.Incumbent { objective; nodes })
    | "cut_round" ->
        let* round = int_field line "round" in
        let* cuts = int_field line "cuts" in
        Ok (Trace.Cut_round { round; cuts })
    | "subtree" ->
        let* id = int_field line "id" in
        let* depth = int_field line "depth" in
        Ok (Trace.Subtree { id; depth })
    | "steal" ->
        let* thief = int_field line "thief" in
        let* victim = int_field line "victim" in
        Ok (Trace.Steal { thief; victim })
    | "lp" ->
        let* pivots = int_field line "pivots" in
        let* iters = int_field line "iters" in
        let* refactors = int_field line "refactors" in
        Ok (Trace.Lp { pivots; iters; refactors })
    | "message" ->
        let* text = string_field line "text" in
        Ok (Trace.Message text)
    | other -> Error (Printf.sprintf "unknown event kind %S" other)
  in
  Ok (t, event)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | l :: rest ->
        if String.trim l = "" then go acc (lineno + 1) rest
        else (
          match event_of_line l with
          | Ok te -> go (te :: acc) (lineno + 1) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1 lines

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_string contents
  | exception Sys_error e -> Error e

(* --- analytics ---------------------------------------------------------- *)

type prune_row = {
  reason : Trace.prune_reason;
  count : int;
  time_s : float;  (** wall time of the inter-event gaps ending in this
                       reason's prune events *)
}

type var_row = { var : int; branched : int; immediate : int }
type depth_row = { depth : int; opened : int; cut : int }

type report = {
  events : int;
  duration_s : float;
  nodes : int;
  prunes : prune_row list;  (** descending count; reasons with 0 omitted *)
  pruned_total : int;
  waste_nodes : int;
  waste_pct : float;
  final_incumbent : int option;
  final_bound : int option;
  primal : (float * int) list;
  dual : (float * int) list;
  vars : var_row list;  (** descending [branched] *)
  orbit_rows : var_row list option;
      (** [vars] aggregated over the supplied orbits; [var] is the orbit
          index, variables outside every orbit are dropped *)
  depths : depth_row list;
  subtrees : int;
  steals : int;
  cut_rounds : int;
  cuts : int;
  lp_pivots : int;
  lp_iters : int;
  lp_refactors : int;
}

let grow a n default =
  let len = Array.length !a in
  if n >= len then begin
    let b = Array.make (max (n + 1) (2 * len)) default in
    Array.blit !a 0 b 0 len;
    a := b
  end

let analyze ?orbits events =
  let n_events = List.length events in
  let duration_s =
    List.fold_left (fun acc (t, _) -> max acc t) 0.0 events
  in
  let final_incumbent =
    List.fold_left
      (fun acc (_, ev) ->
        match ev with
        | Trace.Incumbent { objective; _ } -> Some objective
        | _ -> acc)
      None events
  in
  let nodes = ref 0 and pruned_total = ref 0 in
  let reason_count = Array.make 4 0 and reason_time = Array.make 4 0.0 in
  let reason_ix = function
    | Trace.Cutoff -> 0
    | Trace.Probed -> 1
    | Trace.Lp_infeasible -> 2
    | Trace.Lp_bound -> 3
  in
  (* Tree replay: [bound_at.(d)] is the entry bound of the most recently
     opened node at depth [d] — under the emission order of one worker's
     depth-first search, the parent of a depth-d node.  Exact for
     sequential traces; parallel subtree streams interleave through one
     sink, so waste is a (slight) approximation there. *)
  let bound_at = ref (Array.make 64 max_int) in
  let var_at = ref (Array.make 64 (-1)) in
  let waste = ref 0 in
  let branched = Hashtbl.create 64 and immediate = Hashtbl.create 64 in
  let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  let opened_at = ref (Array.make 64 0) and cut_at = ref (Array.make 64 0) in
  let primal = ref [] and dual = ref [] in
  let last_t = ref 0.0 in
  let last_node_depth = ref (-1) in
  let subtrees = ref 0 and steals = ref 0 in
  let cut_rounds = ref 0 and cuts = ref 0 in
  let lp_pivots = ref 0 and lp_iters = ref 0 and lp_refactors = ref 0 in
  List.iter
    (fun (t, ev) ->
      let dt = max 0.0 (t -. !last_t) in
      last_t := t;
      (match ev with
      | Trace.Node { depth; var; bound; _ } ->
          incr nodes;
          grow opened_at depth 0;
          !opened_at.(depth) <- !opened_at.(depth) + 1;
          grow bound_at depth max_int;
          grow var_at depth (-1);
          !bound_at.(depth) <- bound;
          !var_at.(depth) <- var;
          if var >= 0 then bump branched var;
          (match final_incumbent with
          | Some obj
            when depth > 0
                 && !bound_at.(depth - 1) < max_int
                 && !bound_at.(depth - 1) >= obj ->
              incr waste
          | Some _ | None -> ());
          last_node_depth := depth
      | Trace.Prune { depth; reason; _ } ->
          incr pruned_total;
          let i = reason_ix reason in
          reason_count.(i) <- reason_count.(i) + 1;
          reason_time.(i) <- reason_time.(i) +. dt;
          grow cut_at depth 0;
          !cut_at.(depth) <- !cut_at.(depth) + 1;
          (* a prune at the depth of the last opened node closes that
             node childless: charge its branching variable *)
          if
            depth = !last_node_depth
            && depth < Array.length !var_at
            && !var_at.(depth) >= 0
          then bump immediate !var_at.(depth);
          last_node_depth := -1
      | Trace.Bound { bound; _ } -> dual := (t, bound) :: !dual
      | Trace.Incumbent { objective; _ } -> primal := (t, objective) :: !primal
      | Trace.Cut_round { cuts = n; _ } ->
          incr cut_rounds;
          cuts := !cuts + n
      | Trace.Subtree _ -> incr subtrees
      | Trace.Steal _ -> incr steals
      | Trace.Lp { pivots; iters; refactors } ->
          lp_pivots := !lp_pivots + pivots;
          lp_iters := !lp_iters + iters;
          lp_refactors := !lp_refactors + refactors
      | Trace.Message _ -> ()))
    events;
  let prunes =
    List.filter
      (fun r -> r.count > 0)
      (List.map
         (fun reason ->
           let i = reason_ix reason in
           { reason; count = reason_count.(i); time_s = reason_time.(i) })
         [ Trace.Cutoff; Trace.Probed; Trace.Lp_infeasible; Trace.Lp_bound ])
  in
  let prunes =
    List.sort (fun a b -> compare (b.count, a.reason) (a.count, b.reason)) prunes
  in
  let rows_of tbl_b tbl_i =
    Hashtbl.fold
      (fun var branched acc ->
        {
          var;
          branched;
          immediate = Option.value ~default:0 (Hashtbl.find_opt tbl_i var);
        }
        :: acc)
      tbl_b []
  in
  let by_branched a b = compare (b.branched, a.var) (a.branched, b.var) in
  let vars = List.sort by_branched (rows_of branched immediate) in
  let orbit_rows =
    match orbits with
    | None -> None
    | Some orbits ->
        let of_var = Hashtbl.create 64 in
        List.iteri
          (fun i orb ->
            let vs =
              match orb with
              | Symmetry.Scalar vs -> vs
              | Symmetry.Blocks cols ->
                  Array.concat (Array.to_list cols)
            in
            Array.iter (fun v -> Hashtbl.replace of_var v i) vs)
          orbits;
        let b = Hashtbl.create 16 and im = Hashtbl.create 16 in
        let add dst tbl =
          Hashtbl.iter
            (fun v n ->
              match Hashtbl.find_opt of_var v with
              | Some o ->
                  Hashtbl.replace dst o
                    (n + Option.value ~default:0 (Hashtbl.find_opt dst o))
              | None -> ())
            tbl
        in
        add b branched;
        add im immediate;
        Some (List.sort by_branched (rows_of b im))
  in
  let depths =
    let n = max (Array.length !opened_at) (Array.length !cut_at) in
    let get a d = if d < Array.length !a then !a.(d) else 0 in
    List.filter
      (fun r -> r.opened > 0 || r.cut > 0)
      (List.init n (fun depth ->
           { depth; opened = get opened_at depth; cut = get cut_at depth }))
  in
  {
    events = n_events;
    duration_s;
    nodes = !nodes;
    prunes;
    pruned_total = !pruned_total;
    waste_nodes = !waste;
    waste_pct =
      (if !nodes = 0 then 0.0
       else 100.0 *. float_of_int !waste /. float_of_int !nodes);
    final_incumbent;
    final_bound =
      (match !dual with [] -> None | (_, b) :: _ -> Some b);
    primal = List.rev !primal;
    dual = List.rev !dual;
    vars;
    orbit_rows;
    depths;
    subtrees = !subtrees;
    steals = !steals;
    cut_rounds = !cut_rounds;
    cuts = !cuts;
    lp_pivots = !lp_pivots;
    lp_iters = !lp_iters;
    lp_refactors = !lp_refactors;
  }

let prune_shares r =
  List.map
    (fun row ->
      ( Trace.reason_name row.reason,
        if r.pruned_total = 0 then 0.0
        else 100.0 *. float_of_int row.count /. float_of_int r.pruned_total ))
    r.prunes

(* --- terminal report ---------------------------------------------------- *)

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let render_report ppf r =
  let open Format in
  fprintf ppf "search post-mortem: %d events over %.3f s@." r.events
    r.duration_s;
  fprintf ppf "  nodes opened   %d@." r.nodes;
  fprintf ppf "  nodes pruned   %d (%.1f%% of opened)@." r.pruned_total
    (pct r.pruned_total r.nodes);
  List.iter
    (fun row ->
      fprintf ppf "    %-14s %8d  %5.1f%%  %8.3f s@."
        (Trace.reason_name row.reason)
        row.count
        (pct row.count r.pruned_total)
        row.time_s)
    r.prunes;
  fprintf ppf
    "  wasted work    %d nodes (%.1f%%) opened under a parent bound at or \
     above the final incumbent@."
    r.waste_nodes r.waste_pct;
  (match (r.primal, List.rev r.primal) with
  | (t0, o0) :: _, (t1, o1) :: _ ->
      fprintf ppf
        "  primal curve   %d incumbents: %d @@ %.3f s -> %d @@ %.3f s@."
        (List.length r.primal) o0 t0 o1 t1
  | _ -> fprintf ppf "  primal curve   no incumbent@.");
  (match (r.dual, List.rev r.dual) with
  | (t0, b0) :: _, (t1, b1) :: _ ->
      fprintf ppf
        "  dual curve     %d bound events: %d @@ %.3f s -> %d @@ %.3f s@."
        (List.length r.dual) b0 t0 b1 t1
  | _ -> fprintf ppf "  dual curve     no bound events@.");
  (match (r.final_incumbent, List.rev r.dual) with
  | Some obj, (_, b) :: _ when obj <> 0 ->
      fprintf ppf "  final gap      %.1f%% (incumbent %d vs dual bound %d)@."
        (100.0 *. float_of_int (obj - b) /. float_of_int (abs obj))
        obj b
  | _ -> ());
  if r.depths <> [] then begin
    fprintf ppf "  depth profile  (depth: opened/pruned)@.";
    fprintf ppf "   ";
    List.iter
      (fun d -> fprintf ppf " %d:%d/%d" d.depth d.opened d.cut)
      r.depths;
    fprintf ppf "@."
  end;
  let show_rows label rows =
    if rows <> [] then begin
      fprintf ppf "  %s (branched, childless):@." label;
      List.iteri
        (fun i row ->
          if i < 8 then
            fprintf ppf "    #%-10d %8d %8d@." row.var row.branched
              row.immediate)
        rows
    end
  in
  show_rows "branching efficacy, top variables" r.vars;
  (match r.orbit_rows with
  | Some rows -> show_rows "branching efficacy, per orbit" rows
  | None -> ());
  if r.subtrees > 0 || r.steals > 0 then
    fprintf ppf "  parallel       %d subtrees spawned, %d steals@." r.subtrees
      r.steals;
  if r.cut_rounds > 0 then
    fprintf ppf "  root cuts      %d cuts in %d rounds@." r.cuts r.cut_rounds;
  if r.lp_iters > 0 || r.lp_pivots > 0 then
    fprintf ppf "  lp engine      %d pivots, %d iters, %d refactors@."
      r.lp_pivots r.lp_iters r.lp_refactors

(* --- Chrome trace-event export ------------------------------------------ *)

(* The chrome://tracing / Perfetto JSON array format: "X" complete spans
   for the solve phases, instants for the discrete search events,
   counter tracks for the primal/dual bounds and the node count.  Times
   are microseconds. *)
let chrome_of_events ?(phases = []) events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first = ref true in
  let obj fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string buf ",\n";
        Buffer.add_string buf s)
      fmt
  in
  let us t = t *. 1e6 in
  (* phase timers as stacked spans on their own track *)
  let t0 = ref 0.0 in
  List.iter
    (fun (name, dur_s) ->
      if dur_s > 0.0 then begin
        obj
          "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":%.1f,\"dur\":%.1f}"
          (Trace.json_escape name) (us !t0) (us dur_s);
        t0 := !t0 +. dur_s
      end)
    phases;
  let nodes = ref 0 in
  List.iter
    (fun (t, ev) ->
      match ev with
      | Trace.Node _ ->
          incr nodes;
          (* sampled counter: every 64th node keeps big traces loadable *)
          if !nodes land 63 = 0 then
            obj
              "{\"name\":\"nodes\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%.1f,\"args\":{\"nodes\":%d}}"
              (us t) !nodes
      | Trace.Prune { reason; depth; _ } ->
          if !nodes land 63 = 0 then
            obj
              "{\"name\":\"prune %s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":0,\"ts\":%.1f,\"args\":{\"depth\":%d}}"
              (Trace.reason_name reason) (us t) depth
      | Trace.Bound { bound; _ } ->
          obj
            "{\"name\":\"dual bound\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%.1f,\"args\":{\"bound\":%d}}"
            (us t) bound
      | Trace.Incumbent { objective; _ } ->
          obj
            "{\"name\":\"incumbent\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%.1f,\"args\":{\"objective\":%d}}"
            (us t) objective
      | Trace.Cut_round { round; cuts } ->
          obj
            "{\"name\":\"cut round %d\",\"ph\":\"i\",\"s\":\"p\",\"pid\":1,\"tid\":0,\"ts\":%.1f,\"args\":{\"cuts\":%d}}"
            round (us t) cuts
      | Trace.Subtree { id; depth } ->
          obj
            "{\"name\":\"subtree %d\",\"ph\":\"i\",\"s\":\"p\",\"pid\":1,\"tid\":1,\"ts\":%.1f,\"args\":{\"depth\":%d}}"
            id (us t) depth
      | Trace.Steal { thief; victim } ->
          obj
            "{\"name\":\"steal\",\"ph\":\"i\",\"s\":\"p\",\"pid\":1,\"tid\":%d,\"ts\":%.1f,\"args\":{\"victim\":%d}}"
            (2 + thief) (us t) victim
      | Trace.Lp { pivots; iters; refactors } ->
          obj
            "{\"name\":\"lp totals\",\"ph\":\"i\",\"s\":\"p\",\"pid\":1,\"tid\":0,\"ts\":%.1f,\"args\":{\"pivots\":%d,\"iters\":%d,\"refactors\":%d}}"
            (us t) pivots iters refactors
      | Trace.Message m ->
          obj
            "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,\"ts\":%.1f}"
            (Trace.json_escape m) (us t))
    events;
  Buffer.add_string buf "]\n";
  Buffer.contents buf
