(** Per-solve search telemetry: phase timers and counters.

    A [t] is a plain mutable record the solver fills in when
    {!Solver.options.stats} is set; it is surfaced as
    {!Solver.outcome.stats}.  Parallel solves give each worker its own
    record and {!merge} them at combine time, so the search hot path
    never touches an atomic and jobs-deterministic fields (node counts,
    per-depth histogram, cut counts) stay identical for any worker
    count.  With stats disabled every instrumented site costs a single
    branch and allocates nothing.

    The six top-level phase timers ([presolve_s] .. [search_s]) are
    disjoint wall-clock segments of the solve call measured on the
    calling domain: their sum accounts for the outcome's [time_s].
    [lp_s] and [probe_s] are sub-timers summed across workers (CPU time
    inside [root_s]/[search_s], not additional wall clock). *)

type t = {
  mutable presolve_s : float;
      (** caller-side {!Presolve.strengthen} time, stamped by callers
          that presolve before handing the model to the solver *)
  mutable prepare_s : float;  (** symmetry detection + canonicalization *)
  mutable cuts_s : float;  (** root cut loop, including its LP resolves *)
  mutable build_s : float;  (** search-state construction + warm start *)
  mutable root_s : float;  (** root propagation + shaving fixpoint *)
  mutable search_s : float;  (** tree search (all nodes, all workers) *)
  mutable lp_s : float;  (** node LP bounding (summed across workers) *)
  mutable probe_s : float;  (** in-tree probing (summed across workers) *)
  mutable cut_rounds : int;
  mutable cuts_generated : int;
  mutable cuts_kept : int;
  mutable prop_fixpoints : int;
  mutable prop_ticks : int;  (** row propagations + orbit passes *)
  mutable prop_conflicts : int;
  mutable probe_calls : int;
  mutable probe_skips : int;  (** nodes skipped by the backoff gate *)
  mutable probe_trials : int;  (** tentative endpoint propagations *)
  mutable probe_hits : int;
  mutable probe_backoffs : int;
  mutable lp_resolves : int;
  mutable lp_warm : int;  (** warm re-solves reaching optimality *)
  mutable lp_fallbacks : int;  (** capped re-solves kept by weak duality *)
  mutable lp_infeasible : int;
  mutable lp_cold : int;  (** cold two-phase solves *)
  mutable lp_pivots : int;  (** cumulative dual pivots *)
  mutable lp_iters : int;
      (** cumulative dual-simplex iterations (pivots plus degenerate and
          repair iterations) of the warm engine *)
  mutable lp_refactors : int;
      (** basis refactorizations (periodic refreshes, drift audits,
          restores) of the warm engine *)
  mutable lp_batched : int;
      (** sibling node LPs re-solved from a stashed parent factorization
          instead of the previous sibling's drifted basis *)
  mutable rc_fixings : int;  (** variables fixed by reduced cost *)
  mutable orbit_fixings : int;  (** bound changes by orbital fixing *)
  mutable incumbents : (float * int * int) list;
      (** primal-progress curve: (seconds, nodes, objective) per
          incumbent improvement, newest first *)
  mutable depth_hist : int array;
      (** nodes per depth; the sum equals the outcome's node count *)
  mutable subtrees : int;  (** parallel frontier size; 0 sequentially *)
  mutable steals : int;
  mutable workers : int;  (** worker domains; 0 sequentially *)
}

val create : unit -> t
(** A zeroed record. *)

val node : t -> depth:int -> unit
(** Count one search node at [depth] (grows the histogram on demand). *)

val incumbent : t -> time_s:float -> nodes:int -> objective:int -> unit
(** Append one point to the primal-progress curve. *)

val merge : t -> t -> t
(** Element-wise sum (histograms element-wise, incumbent histories
    unioned under a canonical sort); commutative and associative up to
    float-addition rounding.  Returns a fresh record. *)

val total_nodes : t -> int
(** Sum of the depth histogram. *)

val max_depth : t -> int
(** Deepest level with at least one node (0 when empty). *)

val primal_progress : t -> (float * int * int) list
(** The incumbent curve sorted oldest first. *)

val phases : t -> (string * float) list
(** The six disjoint top-level phase timers, in pipeline order. *)

val accounted_s : t -> float
(** Sum of {!phases} — the share of the wall clock the telemetry
    attributes to a named phase. *)

val pp : ?time_s:float -> Format.formatter -> t -> unit
(** Human-readable table.  With [time_s] (the outcome's wall clock),
    each phase also shows its percentage of the whole call. *)
