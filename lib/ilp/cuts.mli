(** Cutting-plane separation for 0-1 rows: extended cover cuts from
    knapsack-style constraints and clique cuts from the pairwise conflict
    structure (register/interconnect exclusivity in the ADVBIST models).

    Separation is heuristic but every returned cut is a valid inequality
    for the model's integer feasible set — {!Solver} relies on this when it
    appends cuts before branching, and the incumbent audit
    ({!Model.check}) would reject any solution a bad cut displaced. *)

type cut = {
  terms : (int * int) list;  (** [(coef, var)], sorted by variable *)
  rhs : int;  (** the cut is [terms <= rhs] *)
}

val separate : Model.t -> x:float array -> max_cuts:int -> cut list
(** Cuts violated by the fractional point [x] (one entry per model
    variable), most violated first, at most [max_cuts].  Rows containing
    unfixed non-binary variables are skipped. *)
