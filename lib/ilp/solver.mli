(** Branch-and-bound solver for integer linear programs.

    Depth-first search over variable domains with:
    - bound-tightening (pseudo-boolean) propagation at every node,
    - an objective cutoff row updated whenever the incumbent improves,
    - optional LP-relaxation bounding via {!Simplex} (root and/or periodic),
    - a caller-supplied branching order and warm-start solution,
    - wall-clock time limit with best-found-so-far reporting, mirroring the
      24-hour CPU cap the paper applied to CPLEX.

    Solutions returned are always re-audited against the model with
    {!Model.check}; a violation indicates a solver bug and raises. *)

type status =
  | Optimal  (** search exhausted: the solution is proven optimal *)
  | Feasible  (** a solution was found but limits stopped the proof *)
  | Infeasible  (** proven: no solution exists *)
  | Unknown  (** limits hit before any solution was found *)

type outcome = {
  status : status;
  solution : int array option;
  objective : int option;
  bound : int;  (** proven lower bound on the optimum *)
  nodes : int;
  time_s : float;  (** wall-clock seconds spent *)
}

type lp_mode =
  | Lp_never
  | Lp_root  (** LP bound at the root node only *)
  | Lp_depth of int  (** LP bound at nodes of depth <= the given value *)

type options = {
  time_limit : float option;  (** seconds *)
  node_limit : int option;
  lp : lp_mode;
  cuts : bool;
      (** run the root cutting-plane loop ({!Cuts}: extended cover +
          clique cuts) before branching, when [lp] is not [Lp_never].
          Cut generation is capped at a quarter of [time_limit]. *)
  branch_order : int list option;
      (** variables branched first, highest priority first; remaining
          variables follow in index order.  Branching is dynamic
          (most-constrained domain, then conflict activity), with this
          order as the final tie-break — so it fully decides the first
          descents, before any conflicts are recorded. *)
  prefer_high : bool;  (** try the upper bound value first when branching *)
  warm_start : int array option;
      (** a (claimed) feasible assignment used as initial incumbent; it is
          checked and silently discarded if infeasible *)
  verbose : bool;
  branch_window : int;
      (** dynamic-branching lookahead: the branched variable is the
          most-constrained (smallest domain, then highest conflict
          activity) among the first [branch_window] unfixed variables of
          the branch order.  [1] = purely static order; larger windows
          let conflict activity reorder locally.  Default 16. *)
  stop : bool Atomic.t option;
      (** cooperative cancellation: when the flag turns true the search
          stops at the next limit check and reports best-found-so-far,
          exactly like a time limit.  Used by {!Pool} tasks. *)
  shared_incumbent : int Atomic.t option;
      (** cross-solver objective bound for portfolio races: every new
          incumbent's objective is published here (monotonically
          decreasing), and values published by other solvers tighten this
          search's cutoff.  Only ever written with true solution
          objectives, so pruning against it preserves completeness. *)
}

val default : options
(** No limits, [Lp_root], cuts on, no order, prefer 1, no warm start,
    quiet, no cancellation token, no shared incumbent. *)

val solve : ?options:options -> Model.t -> outcome

val with_root_cuts : ?options:options -> Model.t -> Model.t
(** The model strengthened by one root cutting-plane loop, for callers
    that share cuts across several solves ({!Portfolio} runs this once
    and hands every member the same strengthened model with
    [cuts = false]).  Returns the model unchanged when [options] disables
    cuts or LP bounding. *)
