(** Branch-and-bound solver for integer linear programs.

    Depth-first search over variable domains with:
    - bound-tightening (pseudo-boolean) propagation at every node,
    - an objective cutoff row updated whenever the incumbent improves,
    - optional LP-relaxation bounding via {!Simplex} (root and/or periodic),
    - a caller-supplied branching order and warm-start solution,
    - wall-clock time limit with best-found-so-far reporting, mirroring the
      24-hour CPU cap the paper applied to CPLEX.

    Solutions returned are always re-audited against the model with
    {!Model.check}; a violation indicates a solver bug and raises. *)

type status =
  | Optimal  (** search exhausted: the solution is proven optimal *)
  | Feasible  (** a solution was found but limits stopped the proof *)
  | Infeasible  (** proven: no solution exists *)
  | Unknown  (** limits hit before any solution was found *)

type outcome = {
  status : status;
  solution : int array option;
  objective : int option;
  bound : int;  (** proven lower bound on the optimum *)
  nodes : int;
  time_s : float;
      (** wall-clock seconds of the whole call, measured from entry to
          return of {!solve} / {!solve_parallel} — it covers presolve
          done by the entry point, symmetry detection, cut generation,
          search-state construction and the search itself, so it is the
          number a caller's own stopwatch around the call would read. *)
  orbits : int;
      (** symmetry orbits broken during this solve (supplied or detected) *)
  stolen : int;
      (** subtrees executed by a worker other than their home worker;
          always 0 for the sequential {!solve} *)
  stats : Stats.t option;
      (** per-phase timers and search counters, present iff
          [options.stats] was set.  For {!solve_parallel} this is the
          merge of the main domain's record with every worker's (see
          {!Stats.merge}); deterministic counters (nodes, depth
          histogram, orbit fixings, cut counts) are identical for any
          [jobs]. *)
}

type lp_mode =
  | Lp_never
  | Lp_root  (** LP bound at the root node only *)
  | Lp_depth of int  (** LP bound at nodes of depth <= the given value *)

type options = {
  time_limit : float option;  (** seconds *)
  node_limit : int option;
  lp : lp_mode;
  pricing : Simplex.pricing;
      (** leaving-row pricing rule for every warm LP engine this solve
          creates (root cut loop, node bounding, parallel workers):
          [Devex] (default) reference-weight pricing, or [Dantzig]
          most-violated.  Both fall back to Bland's rule on stalls. *)
  cuts : bool;
      (** run the root cutting-plane loop ({!Cuts}: extended cover +
          clique cuts) before branching, when [lp] is not [Lp_never].
          Cut generation is capped at a quarter of [time_limit]. *)
  branch_order : int list option;
      (** variables branched first, highest priority first; remaining
          variables follow in index order.  Branching is dynamic
          (most-constrained domain, then conflict activity), with this
          order as the final tie-break — so it fully decides the first
          descents, before any conflicts are recorded. *)
  prefer_high : bool;  (** try the upper bound value first when branching *)
  warm_start : int array option;
      (** a (claimed) feasible assignment used as initial incumbent; it is
          checked and silently discarded if infeasible.  Also the source
          of the search's value hints: branching tries the hinted value
          first and probing trials target the endpoint the hint
          disfavours, so the warm start steers the whole trajectory. *)
  incumbent_start : int array option;
      (** a (claimed) feasible assignment installed as the initial
          incumbent when its objective beats [warm_start]'s — bound only:
          it contributes no value hints and never steers branching or
          probing.  Use it for a solution that should tighten the initial
          cutoff without derailing a trajectory tuned to the warm start
          (e.g. a cross-instance seed next to a same-instance heuristic).
          Checked and silently discarded if infeasible. *)
  verbose : bool;
      (** progress lines on stderr (incumbents, cut totals).  Implemented
          as a {!Trace.stderr_human} sink installed when [trace] is
          [None]; an explicit [trace] sink takes precedence and receives
          the same events (plus the full node/prune stream). *)
  branch_window : int;
      (** dynamic-branching lookahead: the branched variable is the
          most-constrained (smallest domain, then highest conflict
          activity) among the first [branch_window] unfixed variables of
          the branch order.  [1] = purely static order; larger windows
          let conflict activity reorder locally.  Default 16. *)
  stop : bool Atomic.t option;
      (** cooperative cancellation: when the flag turns true the search
          stops at the next limit check and reports best-found-so-far,
          exactly like a time limit.  Used by {!Pool} tasks. *)
  shared_incumbent : int Atomic.t option;
      (** cross-solver objective bound for portfolio races: every new
          incumbent's objective is published here (monotonically
          decreasing), and values published by other solvers tighten this
          search's cutoff.  Only ever written with true solution
          objectives, so pruning against it preserves completeness. *)
  sym : bool;
      (** master switch for symmetry breaking (default true): when off,
          [orbits] is ignored and no detection runs *)
  orbits : Symmetry.orbit list;
      (** variable-interchangeability orbits to break.  Every orbit MUST
          be a true model symmetry (use {!Symmetry.filter_verified} on
          structural candidates); lex ordering rows are added at the root
          and orbital fixing joins the propagation fixpoint during search.
          When empty (and [sym] is on), {!Symmetry.detect} runs — it bails
          out immediately on large models.  A warm start is replaced by
          its canonical symmetric image; if that image fails the model
          audit the orbits are dropped, never the warm start. *)
  stats : bool;
      (** collect {!Stats} for this solve (default false).  The
          instrumentation is allocation-free and branch-only when off;
          when on it adds counter bumps and a few clock reads per solve
          phase, never a syscall per node. *)
  trace : Trace.sink option;
      (** structured event sink (default [None]).  Receives the full
          typed event stream: nodes, prunes with reasons, incumbents,
          cut rounds, subtree spawns and steals.  The sink is shared by
          all parallel workers (writes are serialized); the caller owns
          it and should {!Trace.close} it after the solve. *)
}

val default : options
(** No limits, [Lp_root], devex pricing, cuts on, no order, prefer 1, no
    warm start, quiet, no cancellation token, no shared incumbent,
    symmetry breaking on with auto-detected orbits, no stats, no
    trace. *)

val solve : ?options:options -> Model.t -> outcome

val solve_parallel : ?options:options -> jobs:int -> Model.t -> outcome
(** One instance, [jobs] domains: the root phase (cuts, propagation,
    probing) runs once, the root is expanded breadth-first into open
    subtrees using the sequential branching order, and the subtrees are
    spread over per-worker work-stealing deques ({!Pool.Deques}) — idle
    workers steal the oldest pending subtree of a busy one.  Workers do
    not exchange incumbents: each subtree starts from a canonical
    root-derived state seeded with the root incumbent, so every
    subtree's result — including its node count and depth histogram —
    is a pure function of the subtree, independent of the stealing
    schedule.  The returned solution is the minimum over all subtree
    results under (objective, lexicographic solution) —
    [solve_parallel ~jobs:1] and [~jobs:4] return identical status,
    objective, solution, node count and deterministic stats.
    [outcome.stolen] counts subtrees that ran away from their home
    worker; node counts are summed across workers.

    [options.node_limit] applies to the root phase and then to each open
    subtree separately (not cumulatively per worker), so a limit-hit
    subtree's partial result is a pure function of the subtree, not of
    the stealing schedule: even node-limited runs return the same
    objective and solution for any [jobs].  Only the completion flag
    (Optimal vs Feasible) and the node/stolen counters may vary across
    [jobs], and only when a limit actually fires. *)

val with_root_cuts : ?options:options -> Model.t -> Model.t
(** The model strengthened by one root cutting-plane loop, for callers
    that share cuts across several solves ({!Portfolio} runs this once
    and hands every member the same strengthened model with
    [cuts = false]).  Returns the model unchanged when [options] disables
    cuts or LP bounding. *)

(** {2 Test and micro-benchmark hooks}

    Thin windows into the propagation kernel, for property tests and the
    [bench perf] micro-benchmark.  Both build a bare search state (no LP,
    no cuts, no symmetry) over the model's normalized Le rows: Ge rows
    negated, Eq rows split into a Le pair in model order. *)

val row_min_activities :
  ?lower:int array -> ?upper:int array -> Model.t -> int array
(** Per-row minimal activities (sum of [coef * lb] over positive
    coefficients plus [coef * ub] over negative ones) of the normalized
    rows under the model bounds, optionally tightened by [lower]/[upper]
    — tightenings are applied through the solver's incremental update
    path, so this exercises exactly the machinery the search trusts. *)

val propagation_rate : Model.t -> sweeps:int -> float
(** Full propagation-fixpoint sweeps per second over [sweeps] repeats
    (each sweep seeds every row, runs to fixpoint, and unwinds the
    trail). *)
