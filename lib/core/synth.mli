(** ADVBIST: the paper's synthesis method, end to end.

    For a problem instance and a session count [k], build the full
    concurrent ILP (register assignment + BIST register assignment +
    interconnection assignment, Section 3), warm-start it from the
    constructive heuristic, solve under an optional time limit (the paper
    capped CPLEX at 24 CPU hours and marked timed-out entries with [*]),
    decode and audit the design.

    The reference (non-BIST, area-optimal) circuit of Section 4.1 comes from
    the same machinery with [k = 0] ({!reference}). *)

type outcome = {
  plan : Bist.Plan.t;
  optimal : bool;  (** proven optimal (no limit hit) *)
  area : int;
  solve_time : float;
  nodes : int;
  gap_pct : float;
      (** incumbent-vs-bound optimality gap, in percent of the incumbent
          design area: [0] when proven optimal.  The dual bound is the
          better of the solver's search bound and the structural bound
          {!Encoding.objective_lower_bound}, lifted to the area scale by
          {!Encoding.base_area} *)
  orbits : int;  (** symmetry orbits the solver broke (orbital fixing) *)
  stolen : int;  (** subtrees stolen across domains ([jobs >= 2] only) *)
  stats : Ilp.Stats.t option;
      (** solver telemetry, present iff the solve ran with [stats];
          [presolve_s] covers the {!Ilp.Presolve} pass this module runs
          before handing the model to the solver *)
  explain : Ilp.Replay.report option;
      (** search post-mortem, present iff the solve ran with [explain]:
          the solve's trace replayed through {!Ilp.Replay.analyze}
          against the encoding's orbits — prune attribution, wasted
          work, gap-closure curves *)
}

type reference = {
  ref_netlist : Datapath.Netlist.t;
  ref_area : int;
  ref_optimal : bool;
  ref_time : float;
  ref_stats : Ilp.Stats.t option;  (** as [outcome.stats] *)
}

val reference :
  ?time_limit:float -> ?node_limit:int -> ?symmetry:bool ->
  ?portfolio:bool -> ?jobs:int -> ?sym:bool -> ?steal:bool ->
  ?stats:bool -> ?trace:Ilp.Trace.sink -> ?pricing:Ilp.Simplex.pricing ->
  Dfg.Problem.t ->
  (reference, string) result
(** Area-optimal non-BIST data path (registers all plain + minimal mux
    area), warm-started from left-edge + greedy binding.  [portfolio]
    races diverse solver configurations on a domain pool
    ({!Ilp.Portfolio}); default false.  [sym] (default true) passes the
    encoding's verified orbits to the solver for lex rows and orbital
    fixing.  [jobs >= 2] with [steal] (default true) runs the
    work-stealing parallel tree search ({!Ilp.Solver.solve_parallel})
    unless [portfolio] is set.  [pricing] selects the warm LP engine's
    leaving-row rule (default {!Ilp.Simplex.Devex}). *)

val synthesize :
  ?time_limit:float -> ?node_limit:int -> ?symmetry:bool ->
  ?portfolio:bool -> ?jobs:int -> ?sym:bool -> ?steal:bool ->
  ?stats:bool -> ?trace:Ilp.Trace.sink -> ?explain:bool ->
  ?pricing:Ilp.Simplex.pricing ->
  ?seed:Datapath.Netlist.t -> Dfg.Problem.t -> k:int ->
  (outcome, string) result
(** [portfolio] races diverse solver configurations with a shared
    incumbent bound instead of one branch-and-bound run; same optima,
    often less wall-clock on hard instances.  Default false.

    [stats] (default false) collects solver telemetry into
    [outcome.stats]; [trace] installs a structured event sink
    ({!Ilp.Trace}) for the solve.  [explain] (default false) captures
    the solve's trace internally and replays it into
    [outcome.explain] — a caller-supplied [trace] sink still receives
    every event, replayed after the solve rather than live.

    [sym], [jobs] and [steal] as in {!reference}.  [seed] is an
    already-synthesized data path (typically the previous k's design, or
    the reference circuit) whose session assignment is repaired for this
    [k] by {!Session_opt}.  The constructive heuristic's design remains
    the solver's warm start — it carries the value hints the search
    trajectory is tuned to — while the repaired seed is passed as a
    bound-only initial incumbent ({!Ilp.Solver.options.incumbent_start}):
    it tightens the starting cutoff whenever it is the cheaper design
    without steering branching.  Either way the solve starts with a
    finite primal bound whenever a candidate lifts to a feasible
    vector. *)

type sweep_row = {
  k : int;
  outcome : outcome;
  overhead_pct : float;  (** vs the reference area *)
}

val sweep :
  ?time_limit:float -> ?node_limit:int -> ?symmetry:bool -> ?jobs:int ->
  ?sym:bool -> ?steal:bool -> ?stats:bool -> ?trace:Ilp.Trace.sink ->
  ?explain:bool -> ?pricing:Ilp.Simplex.pricing ->
  Dfg.Problem.t ->
  (reference * sweep_row list, string) result
(** One design per k-test session, k = 1 .. N (N = number of modules) —
    Table 2 of the paper.  [time_limit] and [node_limit] apply per k;
    node-limited runs are deterministic even under parallel load, where
    wall-clock limits are not.

    The rows are solved in k order so each instance is seeded with the
    previous row's data path (k = 1 with the reference circuit), repaired
    for its session count by the exact session optimizer — every row
    starts from a finite incumbent.  [jobs] (default 1) therefore no
    longer farms rows out; it parallelizes each individual solve's tree
    search with work stealing ({!Ilp.Solver.solve_parallel}), which keeps
    the node-limited results deterministic: any [jobs] returns the same
    status, objective and solution.

    [stats] and [trace] apply to every solve of the sweep (reference
    included); [explain] to every BIST row (each row's post-mortem
    lands in its [outcome.explain]).  Aggregate the rows with
    {!sweep_stats}. *)

val sweep_stats : ?reference:reference -> sweep_row list -> Ilp.Stats.t option
(** {!Ilp.Stats.merge} over every row's stats record (plus the reference
    solve's when given); [None] when no solve collected stats. *)
