(** ADVBIST: the paper's synthesis method, end to end.

    For a problem instance and a session count [k], build the full
    concurrent ILP (register assignment + BIST register assignment +
    interconnection assignment, Section 3), warm-start it from the
    constructive heuristic, solve under an optional time limit (the paper
    capped CPLEX at 24 CPU hours and marked timed-out entries with [*]),
    decode and audit the design.

    The reference (non-BIST, area-optimal) circuit of Section 4.1 comes from
    the same machinery with [k = 0] ({!reference}). *)

type outcome = {
  plan : Bist.Plan.t;
  optimal : bool;  (** proven optimal (no limit hit) *)
  area : int;
  solve_time : float;
  nodes : int;
  gap_pct : float;
      (** incumbent-vs-bound optimality gap, in percent of the incumbent
          objective: [0] when proven optimal, [100] when the search
          produced no useful lower bound *)
}

type reference = {
  ref_netlist : Datapath.Netlist.t;
  ref_area : int;
  ref_optimal : bool;
  ref_time : float;
}

val reference :
  ?time_limit:float -> ?node_limit:int -> ?symmetry:bool ->
  ?portfolio:bool -> Dfg.Problem.t ->
  (reference, string) result
(** Area-optimal non-BIST data path (registers all plain + minimal mux
    area), warm-started from left-edge + greedy binding.  [portfolio]
    races diverse solver configurations on a domain pool
    ({!Ilp.Portfolio}); default false. *)

val synthesize :
  ?time_limit:float -> ?node_limit:int -> ?symmetry:bool ->
  ?portfolio:bool -> Dfg.Problem.t -> k:int ->
  (outcome, string) result
(** [portfolio] races diverse solver configurations with a shared
    incumbent bound instead of one branch-and-bound run; same optima,
    often less wall-clock on hard instances.  Default false. *)

type sweep_row = {
  k : int;
  outcome : outcome;
  overhead_pct : float;  (** vs the reference area *)
}

val sweep :
  ?time_limit:float -> ?node_limit:int -> ?symmetry:bool -> ?jobs:int ->
  Dfg.Problem.t ->
  (reference * sweep_row list, string) result
(** One design per k-test session, k = 1 .. N (N = number of modules) —
    Table 2 of the paper.  [time_limit] and [node_limit] apply per k;
    node-limited runs are deterministic even under parallel load, where
    wall-clock limits are not.  [jobs] (default 1)
    farms the independent per-k ILPs out to that many domains
    ({!Ilp.Pool}); the per-k results are identical to the sequential
    path's whenever every solve finishes within its own budget, since
    each task runs the very same single-threaded solver on its own
    state. *)
