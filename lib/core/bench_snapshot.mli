(** Solver bench snapshots: the on-disk JSON schema behind
    [BENCH_solver.json], and regression diffing between two snapshots.

    The writer emits schema version 5 ([advbist-solver-bench/5]), which
    extends version 4 (per-row [nodes_per_sec] throughput over version
    3's optional per-row [phase_s] phase timings, as reported by
    {!Ilp.Stats.phases}) with the per-row search post-mortem of
    {!Ilp.Replay}: an optional [waste_pct] (share of nodes an oracle
    incumbent would have skipped) and a [prune_shares] object mapping
    each prune reason to its percentage of the closed nodes.  The
    parser reads versions 2 through 5; rows from older versions parse
    with the newer fields empty/absent ([phase_s] = [[]],
    [nodes_per_sec] derived as [nodes / time_s], [waste_pct] = [None],
    [prune_shares] = [[]]).  Parsing is restricted to the subset of
    JSON these snapshots use — it is a file format, not a general JSON
    library. *)

type row = {
  k : int;
  time_s : float;
  nodes : int;
  optimal : bool;
  area : int;
  overhead_pct : float;
  gap_pct : float;
  nodes_per_sec : float;
      (** node throughput; derived as [nodes / time_s] when the snapshot
          predates v4 (0 when [time_s] is 0) *)
  phase_s : (string * float) list;
      (** per-phase seconds, in emission order; [[]] when absent (v2) *)
  waste_pct : float option;
      (** {!Ilp.Replay.report.waste_pct} for this row's solve: percent
          of opened nodes whose parent bound already met the final
          incumbent; [None] before v5 or when the bench ran without
          explain capture *)
  prune_shares : (string * float) list;
      (** per-reason percentage of all pruned nodes
          ({!Ilp.Replay.prune_shares}); [[]] before v5 *)
}

type circuit = {
  circuit : string;
  reference_area : int;
  reference_optimal : bool;
  wall_s : float;
  rows : row list;
}

type config = { portfolio : bool; cuts : bool; lp : string }

type t = {
  version : int;  (** schema version this snapshot was parsed from *)
  commit : string;
  budget_s : float;
  jobs : int;
  config : config;
  circuits : circuit list;
  total_wall_s : float;
}

val of_string : string -> (t, string) result
val of_file : string -> (t, string) result

val to_string : t -> string
(** Rendered as schema version 5, regardless of [version]; parsing the
    result back and rendering again is a fixpoint. *)

(** {2 Regression diffing} *)

type severity = Fail | Warn

type finding = {
  severity : severity;
  circuit : string;
  k : int option;  (** [None] for circuit-level findings *)
  what : string;
}

val diff : baseline:t -> current:t -> finding list
(** Row-by-row comparison, keyed on (circuit, k).

    [Fail]: a row's design area increased, a row lost proven optimality
    (optimal [true] -> [false]), or a baseline circuit/row is missing
    from [current].

    [Warn]: node count moved more than 20% in either direction (only on
    rows both snapshots prove optimal — on a budget-limited row the
    count is machine throughput, not tree size; when both rows carry v5
    [prune_shares] the finding names the prune reason whose share of
    the closed nodes moved most, localizing the regression to the
    pruning machinery responsible), wasted work ([waste_pct]) grew by
    more than 10 points of the node count, the
    optimality gap grew by more than 2 points, a row's solve time grew
    by more than 20% (and at least 0.1 s), node throughput
    ([nodes_per_sec]) dropped by more than 20% (only when both rows ran
    at least 0.05 s and the baseline measured a nonzero rate), a phase's
    share of the solve time shifted by more than 10 points (when both
    snapshots carry phase timings), or [current] has rows the baseline
    lacks.

    Findings are ordered circuit-by-circuit with failures first. *)

val has_failures : finding list -> bool

val render_report : baseline:t -> current:t -> finding list -> string
(** Human-readable report: header with both snapshots' commit/budget,
    one line per finding, and a PASS/FAIL summary line. *)
