(** Solver bench snapshots: the on-disk JSON schema behind
    [BENCH_solver.json], and regression diffing between two snapshots.

    The writer emits schema version 4 ([advbist-solver-bench/4]), which
    extends version 3 (optional per-row [phase_s] object of solver phase
    timings, as reported by {!Ilp.Stats.phases}) with a derived per-row
    [nodes_per_sec] throughput.  The parser reads versions 2, 3 and 4;
    version-2 rows parse with an empty [phase_s], and rows without a
    [nodes_per_sec] field derive it as [nodes / time_s].  Parsing is
    restricted to the subset of JSON these snapshots use — it is a file
    format, not a general JSON library. *)

type row = {
  k : int;
  time_s : float;
  nodes : int;
  optimal : bool;
  area : int;
  overhead_pct : float;
  gap_pct : float;
  nodes_per_sec : float;
      (** node throughput; derived as [nodes / time_s] when the snapshot
          predates v4 (0 when [time_s] is 0) *)
  phase_s : (string * float) list;
      (** per-phase seconds, in emission order; [[]] when absent (v2) *)
}

type circuit = {
  circuit : string;
  reference_area : int;
  reference_optimal : bool;
  wall_s : float;
  rows : row list;
}

type config = { portfolio : bool; cuts : bool; lp : string }

type t = {
  version : int;  (** schema version this snapshot was parsed from *)
  commit : string;
  budget_s : float;
  jobs : int;
  config : config;
  circuits : circuit list;
  total_wall_s : float;
}

val of_string : string -> (t, string) result
val of_file : string -> (t, string) result

val to_string : t -> string
(** Rendered as schema version 4, regardless of [version]; parsing the
    result back and rendering again is a fixpoint. *)

(** {2 Regression diffing} *)

type severity = Fail | Warn

type finding = {
  severity : severity;
  circuit : string;
  k : int option;  (** [None] for circuit-level findings *)
  what : string;
}

val diff : baseline:t -> current:t -> finding list
(** Row-by-row comparison, keyed on (circuit, k).

    [Fail]: a row's design area increased, a row lost proven optimality
    (optimal [true] -> [false]), or a baseline circuit/row is missing
    from [current].

    [Warn]: node count moved more than 20% in either direction (only on
    rows both snapshots prove optimal — on a budget-limited row the
    count is machine throughput, not tree size), the
    optimality gap grew by more than 2 points, a row's solve time grew
    by more than 20% (and at least 0.1 s), node throughput
    ([nodes_per_sec]) dropped by more than 20% (only when both rows ran
    at least 0.05 s and the baseline measured a nonzero rate), a phase's
    share of the solve time shifted by more than 10 points (when both
    snapshots carry phase timings), or [current] has rows the baseline
    lacks.

    Findings are ordered circuit-by-circuit with failures first. *)

val has_failures : finding list -> bool

val render_report : baseline:t -> current:t -> finding list -> string
(** Human-readable report: header with both snapshots' commit/budget,
    one line per finding, and a PASS/FAIL summary line. *)
