type outcome = {
  plan : Bist.Plan.t;
  optimal : bool;
  area : int;
  solve_time : float;
  nodes : int;
  gap_pct : float;
}

type reference = {
  ref_netlist : Datapath.Netlist.t;
  ref_area : int;
  ref_optimal : bool;
  ref_time : float;
}

let ( let* ) r f = Result.bind r f

(* Incumbent-vs-bound gap in percent of the incumbent objective; 0 for a
   proven optimum, 100 when the search never produced a usable bound. *)
let gap_pct (r : Ilp.Solver.outcome) =
  match (r.Ilp.Solver.status, r.Ilp.Solver.objective) with
  | Ilp.Solver.Optimal, _ -> 0.0
  | _, Some obj when r.Ilp.Solver.bound > min_int ->
      let gap = float_of_int (obj - r.Ilp.Solver.bound) in
      Float.max 0.0 (100.0 *. gap /. float_of_int (max 1 (abs obj)))
  | _ -> 100.0

(* Permute a netlist's register names so that the encoding's symmetry
   pre-fixing (max clique member i in register i) is satisfied; without
   this, heuristic warm starts would be rejected under symmetry. *)
let align_to_clique (p : Dfg.Problem.t) (d : Datapath.Netlist.t) =
  let lt = Dfg.Lifetime.compute p.Dfg.Problem.dfg in
  let clique = Dfg.Lifetime.max_clique lt in
  let n = d.Datapath.Netlist.n_registers in
  let perm = Array.make n (-1) in
  List.iteri
    (fun slot v ->
      let r = d.Datapath.Netlist.reg_of_var.(v) in
      if r < n then perm.(r) <- slot)
    clique;
  let used = Array.make n false in
  Array.iter (fun slot -> if slot >= 0 then used.(slot) <- true) perm;
  let next = ref 0 in
  for r = 0 to n - 1 do
    if perm.(r) < 0 then begin
      while !next < n && used.(!next) do
        incr next
      done;
      perm.(r) <- !next;
      used.(!next) <- true
    end
  done;
  let reg_of_var = Array.map (fun r -> perm.(r)) d.Datapath.Netlist.reg_of_var in
  Datapath.Netlist.make ~swapped:d.Datapath.Netlist.swapped p ~reg_of_var
    ~module_of_op:d.Datapath.Netlist.module_of_op

(* LP bounding pays off only while the basis inverse stays manageable. *)
let lp_mode model =
  if Ilp.Model.n_constraints model <= 1500 then Ilp.Solver.Lp_root
  else Ilp.Solver.Lp_never

let solver_options ?time_limit ?node_limit encoding warm =
  {
    Ilp.Solver.default with
    Ilp.Solver.time_limit;
    node_limit;
    lp = lp_mode encoding.Encoding.model;
    (* The BIST encodings' LP relaxation is far weaker than cutoff-driven
       propagation (the integer rounding in the bound tightening does the
       heavy lifting), so at interactive budgets the root cut loop costs
       more wall clock than its pruning returns.  Probing-based proving
       (Solver's shaving pass) is what closes these instances; leave the
       cut loop to the portfolio and CLI paths where callers opt in. *)
    cuts = false;
    branch_order = Some (Encoding.branch_order encoding);
    warm_start = warm;
    prefer_high = false;
  }

(* One ILP solve, optionally as a portfolio race of diverse configurations
   sharing an incumbent bound (first prover cancels the rest). *)
let run_solver ~portfolio options model =
  if portfolio then
    (Ilp.Portfolio.solve ~configs:(Ilp.Portfolio.default_configs options)
       model)
      .Ilp.Portfolio.outcome
  else Ilp.Solver.solve ~options model

let reference ?time_limit ?node_limit ?symmetry ?(portfolio = false)
    (p : Dfg.Problem.t) =
  let n_regs = Dfg.Problem.min_registers p in
  let e = Encoding.build_reference ?symmetry p ~n_regs in
  let* d0 = Heuristic.netlist p in
  let* d0 = align_to_clique p d0 in
  let warm = Result.to_option (Encoding.vector_of_netlist e d0) in
  let options = solver_options ?time_limit ?node_limit e warm in
  (* presolve keeps variable indices, so decoding solutions still works *)
  let model, _stats = Ilp.Presolve.strengthen e.Encoding.model in
  let r = run_solver ~portfolio options model in
  match r.Ilp.Solver.solution with
  | None -> Error "reference synthesis found no data path"
  | Some x ->
      let* netlist, _plan = Encoding.decode e x in
      Ok
        {
          ref_netlist = netlist;
          ref_area = Datapath.Netlist.reference_area netlist;
          ref_optimal = r.Ilp.Solver.status = Ilp.Solver.Optimal;
          ref_time = r.Ilp.Solver.time_s;
        }

let synthesize ?time_limit ?node_limit ?symmetry ?(portfolio = false)
    (p : Dfg.Problem.t) ~k =
  let n_regs = Dfg.Problem.min_registers p in
  let e = Encoding.build ?symmetry p ~n_regs ~k in
  let warm =
    match Heuristic.netlist p with
    | Error _ -> None
    | Ok d0 -> (
        match align_to_clique p d0 with
        | Error _ -> None
        | Ok d0 -> (
            match Session_opt.solve d0 ~k with
            | Error _ -> None
            | Ok { Session_opt.plan; _ } ->
                Result.to_option (Encoding.vector_of_plan e plan)))
  in
  let options = solver_options ?time_limit ?node_limit e warm in
  (* presolve keeps variable indices, so decoding solutions still works *)
  let model, _stats = Ilp.Presolve.strengthen e.Encoding.model in
  let r = run_solver ~portfolio options model in
  match r.Ilp.Solver.solution with
  | None ->
      Error
        (Printf.sprintf "no feasible BIST design for k = %d (%s)" k
           (match r.Ilp.Solver.status with
           | Ilp.Solver.Infeasible -> "proven infeasible"
           | Ilp.Solver.Unknown | Ilp.Solver.Optimal | Ilp.Solver.Feasible ->
               "search limit reached"))
  | Some x -> (
      let* netlist, plan = Encoding.decode e x in
      match plan with
      | None -> Error "internal: BIST encoding decoded without a plan"
      | Some plan ->
          let optimal = r.Ilp.Solver.status = Ilp.Solver.Optimal in
          (* When the time limit cut the search short, the incumbent's
             session assignment may still be improvable on its own data
             path: run the exact session optimizer as a post-pass. *)
          let plan =
            if optimal then plan
            else
              match Session_opt.solve netlist ~k with
              | Ok { Session_opt.plan = plan'; optimal = true; _ }
                when Bist.Plan.objective_cost plan'
                     < Bist.Plan.objective_cost plan ->
                  plan'
              | Ok _ | Error _ -> plan
          in
          Ok
            {
              plan;
              optimal;
              area = Bist.Plan.area plan;
              solve_time = r.Ilp.Solver.time_s;
              nodes = r.Ilp.Solver.nodes;
              gap_pct = gap_pct r;
            })

type sweep_row = { k : int; outcome : outcome; overhead_pct : float }

let sweep ?time_limit ?node_limit ?symmetry ?(jobs = 1) p =
  let* reference = reference ?time_limit ?node_limit ?symmetry p in
  let n = Dfg.Problem.n_modules p in
  let ks = List.init n (fun i -> i + 1) in
  (* The per-k ILPs are independent (each task builds its own encoding,
     model and solver state), so the sweep farms them out to a domain
     pool.  [jobs <= 1] is plain sequential iteration; results are
     collected in k order either way, and the first error — in k order —
     wins, matching the sequential short-circuit behaviour. *)
  let solve_one k = synthesize ?time_limit ?node_limit ?symmetry p ~k in
  let results =
    if jobs <= 1 then List.map solve_one ks
    else Ilp.Pool.map ~jobs solve_one ks
  in
  let rec collect ks results acc =
    match (ks, results) with
    | [], [] -> Ok (List.rev acc)
    | k :: ks, r :: results ->
        let* outcome = r in
        let overhead_pct =
          Bist.Plan.overhead_pct outcome.plan ~reference:reference.ref_area
        in
        collect ks results ({ k; outcome; overhead_pct } :: acc)
    | _ -> assert false
  in
  let* rows = collect ks results [] in
  Ok (reference, rows)
