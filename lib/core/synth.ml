type outcome = {
  plan : Bist.Plan.t;
  optimal : bool;
  area : int;
  solve_time : float;
  nodes : int;
  gap_pct : float;
  orbits : int;
  stolen : int;
  stats : Ilp.Stats.t option;
  explain : Ilp.Replay.report option;
}

type reference = {
  ref_netlist : Datapath.Netlist.t;
  ref_area : int;
  ref_optimal : bool;
  ref_time : float;
  ref_stats : Ilp.Stats.t option;
}

let ( let* ) r f = Result.bind r f

(* Incumbent-vs-bound gap in percent of the incumbent design area; 0 for a
   proven optimum, 100 when no usable bound exists.  The dual bound is the
   better of the solver's search bound and the encoding's structural bound
   ({!Encoding.objective_lower_bound}), both lifted to the design-area
   scale by [base_area] — the provably-constant plain-register part of
   every design's area, which belongs in an area-gap on both sides. *)
let gap_pct ~lower_bound ~base_area ~area (r : Ilp.Solver.outcome) =
  match r.Ilp.Solver.status with
  | Ilp.Solver.Optimal -> 0.0
  | _ ->
      let bound =
        if r.Ilp.Solver.bound > min_int then max r.Ilp.Solver.bound lower_bound
        else lower_bound
      in
      let bound_area = bound + base_area in
      if area <= 0 || bound_area <= 0 then 100.0
      else
        Float.min 100.0
          (Float.max 0.0
             (100.0 *. float_of_int (area - bound_area) /. float_of_int area))

(* Permute a netlist's register names so that the encoding's symmetry
   pre-fixing (max clique member i in register i) is satisfied; without
   this, heuristic warm starts would be rejected under symmetry. *)
let align_to_clique (p : Dfg.Problem.t) (d : Datapath.Netlist.t) =
  let lt = Dfg.Lifetime.compute p.Dfg.Problem.dfg in
  let clique = Dfg.Lifetime.max_clique lt in
  let n = d.Datapath.Netlist.n_registers in
  let perm = Array.make n (-1) in
  List.iteri
    (fun slot v ->
      let r = d.Datapath.Netlist.reg_of_var.(v) in
      if r < n then perm.(r) <- slot)
    clique;
  let used = Array.make n false in
  Array.iter (fun slot -> if slot >= 0 then used.(slot) <- true) perm;
  let next = ref 0 in
  for r = 0 to n - 1 do
    if perm.(r) < 0 then begin
      while !next < n && used.(!next) do
        incr next
      done;
      perm.(r) <- !next;
      used.(!next) <- true
    end
  done;
  let reg_of_var = Array.map (fun r -> perm.(r)) d.Datapath.Netlist.reg_of_var in
  Datapath.Netlist.make ~swapped:d.Datapath.Netlist.swapped p ~reg_of_var
    ~module_of_op:d.Datapath.Netlist.module_of_op

(* LP bounding pays off only while the basis inverse stays manageable. *)
let lp_mode model =
  if Ilp.Model.n_constraints model <= 1500 then Ilp.Solver.Lp_root
  else Ilp.Solver.Lp_never

let solver_options ?time_limit ?node_limit ?(stats = false) ?trace
    ?(pricing = Ilp.Simplex.Devex) ~sym encoding warm =
  {
    Ilp.Solver.default with
    Ilp.Solver.time_limit;
    node_limit;
    stats;
    trace;
    pricing;
    lp = lp_mode encoding.Encoding.model;
    (* The BIST encodings' LP relaxation is far weaker than cutoff-driven
       propagation (the integer rounding in the bound tightening does the
       heavy lifting), so at interactive budgets the root cut loop costs
       more wall clock than its pruning returns.  Probing-based proving
       (Solver's shaving pass) is what closes these instances; leave the
       cut loop to the portfolio and CLI paths where callers opt in. *)
    cuts = false;
    branch_order = Some (Encoding.branch_order encoding);
    warm_start = warm;
    prefer_high = false;
    sym;
    (* structural orbits the in-model reductions left unbroken; verified
       exactly, so the solver takes them as-is (auto-detection then only
       runs on models small enough for it) *)
    orbits = (if sym then Encoding.orbits encoding else []);
  }

(* One ILP solve: a portfolio race of diverse configurations sharing an
   incumbent bound, a work-stealing parallel subtree search, or the plain
   sequential branch-and-bound. *)
let run_solver ~portfolio ~jobs ~steal options model =
  if portfolio then
    (Ilp.Portfolio.solve ~configs:(Ilp.Portfolio.default_configs options)
       model)
      .Ilp.Portfolio.outcome
  else if jobs >= 2 && steal then
    Ilp.Solver.solve_parallel ~options ~jobs model
  else Ilp.Solver.solve ~options model

(* Post-mortem capture: when [explain] is set the solve's trace is
   routed to a private temp JSONL file, parsed back with {!Ilp.Replay}
   and analyzed against the encoding's orbits.  A caller-supplied sink
   still sees every event — the captured stream is replayed into it
   after the solve (content-identical, just not live). *)
let with_explain ~explain ?trace ~orbits run =
  if not explain then (run trace, None)
  else begin
    let path = Filename.temp_file "advbist_trace" ".jsonl" in
    let sink = Ilp.Trace.file path in
    let r =
      match run (Some sink) with
      | r -> r
      | exception e ->
          Ilp.Trace.close sink;
          (try Sys.remove path with Sys_error _ -> ());
          raise e
    in
    Ilp.Trace.close sink;
    let report =
      match Ilp.Replay.of_file path with
      | Ok events ->
          (match trace with
          | Some s ->
              List.iter (fun (t, ev) -> Ilp.Trace.emit s ~time_s:t ev) events
          | None -> ());
          Some (Ilp.Replay.analyze ~orbits events)
      | Error _ -> None
    in
    (try Sys.remove path with Sys_error _ -> ());
    (r, report)
  end

(* Presolve runs here, outside the solver entry points, so its wall clock
   is stamped into the solve's stats record after the fact — the phase
   table then accounts for the whole pipeline, not just the search. *)
let stamp_presolve (r : Ilp.Solver.outcome) presolve_s =
  match r.Ilp.Solver.stats with
  | Some st -> st.Ilp.Stats.presolve_s <- st.Ilp.Stats.presolve_s +. presolve_s
  | None -> ()

let reference ?time_limit ?node_limit ?symmetry ?(portfolio = false)
    ?(jobs = 1) ?(sym = true) ?(steal = true) ?stats ?trace ?pricing
    (p : Dfg.Problem.t) =
  let n_regs = Dfg.Problem.min_registers p in
  let e = Encoding.build_reference ?symmetry p ~n_regs in
  let* d0 = Heuristic.netlist p in
  let* d0 = align_to_clique p d0 in
  let warm = Result.to_option (Encoding.vector_of_netlist e d0) in
  let options =
    solver_options ?time_limit ?node_limit ?stats ?trace ?pricing ~sym e warm
  in
  (* presolve keeps variable indices, so decoding solutions still works *)
  let t_pre = Unix.gettimeofday () in
  let model, _pstats = Ilp.Presolve.strengthen e.Encoding.model in
  let presolve_s = Unix.gettimeofday () -. t_pre in
  (* LP bounding is sized on the model the solver actually sees: presolve
     typically halves the row count, pulling mid-size encodings under the
     basis-inverse budget. *)
  let options = { options with Ilp.Solver.lp = lp_mode model } in
  let r = run_solver ~portfolio ~jobs ~steal options model in
  stamp_presolve r presolve_s;
  match r.Ilp.Solver.solution with
  | None -> Error "reference synthesis found no data path"
  | Some x ->
      let* netlist, _plan = Encoding.decode e x in
      Ok
        {
          ref_netlist = netlist;
          ref_area = Datapath.Netlist.reference_area netlist;
          ref_optimal = r.Ilp.Solver.status = Ilp.Solver.Optimal;
          ref_time = r.Ilp.Solver.time_s;
          ref_stats = r.Ilp.Solver.stats;
        }

let synthesize ?time_limit ?node_limit ?symmetry ?(portfolio = false)
    ?(jobs = 1) ?(sym = true) ?(steal = true) ?stats ?trace
    ?(explain = false) ?pricing ?seed (p : Dfg.Problem.t) ~k =
  let n_regs = Dfg.Problem.min_registers p in
  let e = Encoding.build ?symmetry p ~n_regs ~k in
  (* Two warm-start candidates: the constructive heuristic's data path,
     and the cross-k seed (the previous instance's data path, repaired
     for this k by the exact session optimizer).  The heuristic becomes
     the solver's warm start — it carries the value hints that steer
     branching and probing, and the search trajectory is tuned to it —
     while the seed rides along as a bound-only initial incumbent
     ([incumbent_start]): it tightens the starting cutoff whenever it is
     the cheaper design without derailing the trajectory (measured at
     the 2 s bench budget, hinting from the seed costs more area on some
     rows than its tighter bound recovers).  Either way every instance
     starts with a finite primal bound whenever either path succeeds. *)
  let plan_on netlist =
    match align_to_clique p netlist with
    | Error _ -> None
    | Ok d -> (
        match Session_opt.solve d ~k with
        | Error _ -> None
        | Ok { Session_opt.plan; _ } -> Some plan)
  in
  let lift plan =
    Option.bind plan (fun plan ->
        Result.to_option (Encoding.vector_of_plan e plan))
  in
  let heuristic =
    lift
      (match Heuristic.netlist p with
      | Error _ -> None
      | Ok d0 -> plan_on d0)
  in
  let seed = lift (Option.bind seed plan_on) in
  let warm, incumbent =
    match (heuristic, seed) with
    | Some h, s -> (Some h, s)
    | None, s -> (s, None)
  in
  let options =
    solver_options ?time_limit ?node_limit ?stats ?pricing ~sym e warm
  in
  let options = { options with Ilp.Solver.incumbent_start = incumbent } in
  (* presolve keeps variable indices, so decoding solutions still works *)
  let t_pre = Unix.gettimeofday () in
  let model, _pstats = Ilp.Presolve.strengthen e.Encoding.model in
  let presolve_s = Unix.gettimeofday () -. t_pre in
  (* LP bounding is sized on the model the solver actually sees: presolve
     typically halves the row count, pulling mid-size encodings under the
     basis-inverse budget. *)
  let options = { options with Ilp.Solver.lp = lp_mode model } in
  let r, report =
    with_explain ~explain ?trace ~orbits:(Encoding.orbits e) (fun tr ->
        let options = { options with Ilp.Solver.trace = tr } in
        let r = run_solver ~portfolio ~jobs ~steal options model in
        stamp_presolve r presolve_s;
        r)
  in
  match r.Ilp.Solver.solution with
  | None ->
      Error
        (Printf.sprintf "no feasible BIST design for k = %d (%s)" k
           (match r.Ilp.Solver.status with
           | Ilp.Solver.Infeasible -> "proven infeasible"
           | Ilp.Solver.Unknown | Ilp.Solver.Optimal | Ilp.Solver.Feasible ->
               "search limit reached"))
  | Some x -> (
      let* netlist, plan = Encoding.decode e x in
      match plan with
      | None -> Error "internal: BIST encoding decoded without a plan"
      | Some plan ->
          let optimal = r.Ilp.Solver.status = Ilp.Solver.Optimal in
          (* When the time limit cut the search short, the incumbent's
             session assignment may still be improvable on its own data
             path: run the exact session optimizer as a post-pass. *)
          let plan =
            if optimal then plan
            else
              match Session_opt.solve netlist ~k with
              | Ok { Session_opt.plan = plan'; optimal = true; _ }
                when Bist.Plan.objective_cost plan'
                     < Bist.Plan.objective_cost plan ->
                  plan'
              | Ok _ | Error _ -> plan
          in
          let area = Bist.Plan.area plan in
          Ok
            {
              plan;
              optimal;
              area;
              solve_time = r.Ilp.Solver.time_s;
              nodes = r.Ilp.Solver.nodes;
              gap_pct =
                gap_pct
                  ~lower_bound:(Encoding.objective_lower_bound e)
                  ~base_area:e.Encoding.base_area ~area r;
              orbits = r.Ilp.Solver.orbits;
              stolen = r.Ilp.Solver.stolen;
              stats = r.Ilp.Solver.stats;
              explain = report;
            })

type sweep_row = { k : int; outcome : outcome; overhead_pct : float }

let sweep ?time_limit ?node_limit ?symmetry ?(jobs = 1) ?(sym = true)
    ?(steal = true) ?stats ?trace ?explain ?pricing p =
  let* reference =
    reference ?time_limit ?node_limit ?symmetry ~jobs ~sym ~steal ?stats
      ?trace ?pricing p
  in
  let n = Dfg.Problem.n_modules p in
  (* The sweep is sequential in k so each instance can be seeded with the
     previous row's data path (repaired for k+1 sessions by the exact
     session optimizer inside [synthesize]); the k = 1 row is seeded with
     the area-optimal reference data path.  [jobs] domains instead
     parallelize each individual solve's tree search. *)
  let rec loop k seed acc =
    if k > n then Ok (List.rev acc)
    else
      let* outcome =
        synthesize ?time_limit ?node_limit ?symmetry ~jobs ~sym ~steal
          ?stats ?trace ?explain ?pricing ~seed p ~k
      in
      let overhead_pct =
        Bist.Plan.overhead_pct outcome.plan ~reference:reference.ref_area
      in
      loop (k + 1) outcome.plan.Bist.Plan.netlist
        ({ k; outcome; overhead_pct } :: acc)
  in
  let* rows = loop 1 reference.ref_netlist [] in
  Ok (reference, rows)

(* Aggregate telemetry over a whole sweep: the merge of every row's stats
   record, plus the reference solve's when supplied. *)
let sweep_stats ?reference rows =
  let all =
    Option.to_list (Option.bind reference (fun r -> r.ref_stats))
    @ List.filter_map (fun row -> row.outcome.stats) rows
  in
  match all with
  | [] -> None
  | s :: rest -> Some (List.fold_left Ilp.Stats.merge s rest)
