type t = {
  problem : Dfg.Problem.t;
  n_regs : int;
  k : int;
  model : Ilp.Model.t;
  x_vr : int array array;
  x_om : int array array;
  swap : int array;
  z : int array array array;
  z_out : int array array;
  cz : (int * int * int * int) list;
  tc : int array array;
  a : int array array;
  s_mrp : int array array array;
  t_rmlp : int array array array array;
  t_reg : int array;
  s_reg : int array;
  b_reg : int array;
  c_reg : int array;
  t_rp : int array array;
  s_rp : int array array;
  c_rp : int array array;
  mux_thresholds : (Ilp.Linexpr.t * (int * int) list) list;
  aux : (int * (int * int) list) list;
      (** support variables: var, and the (variable, required value) pairs
          under which it must be 1 in a canonical solution vector *)
  inp : int array;  (** external-input indicator per register; -1 if none *)
  base_area : int;
}

let lx = Ilp.Linexpr.of_list

(* A named binary variable. *)
let bin m fmt = Format.kasprintf (fun s -> Ilp.Model.bool_var m s) fmt

let fixed m value fmt =
  Format.kasprintf (fun s -> Ilp.Model.int_var m ~lb:value ~ub:value s) fmt

let n_ports (p : Dfg.Problem.t) m = Dfg.Fu_kind.n_ports p.Dfg.Problem.modules.(m)

(* Operations pre-assignable to identical modules for symmetry reduction:
   for each group of identical modules, find a step at which that group is
   saturated and pin its operations in order. *)
let module_symmetry_fixing (p : Dfg.Problem.t) =
  let g = p.Dfg.Problem.dfg in
  let groups = Hashtbl.create 7 in
  Array.iteri
    (fun m fu ->
      let key = fu.Dfg.Fu_kind.fu_name in
      Hashtbl.replace groups key
        (match Hashtbl.find_opt groups key with
        | Some ms -> ms @ [ m ]
        | None -> [ m ]))
    p.Dfg.Problem.modules;
  let fixing = ref [] in
  Hashtbl.iter
    (fun _key ms ->
      match ms with
      | [] | [ _ ] -> ()
      | _ ->
          let size = List.length ms in
          (* ops whose candidate set is exactly this group *)
          let of_step s =
            List.filter
              (fun o -> Dfg.Problem.candidates p o = ms)
              (Dfg.Graph.ops_at_step g s)
          in
          let rec find s =
            if s >= g.Dfg.Graph.n_steps then None
            else begin
              let ops = of_step s in
              if List.length ops = size then Some ops else find (s + 1)
            end
          in
          (match find 0 with
          | Some ops -> List.iteri (fun i o -> fixing := (o, List.nth ms i) :: !fixing) ops
          | None -> ()))
    groups;
  !fixing

let build_internal ?(symmetry = true) (p : Dfg.Problem.t) ~n_regs ~k =
  let g = p.Dfg.Problem.dfg in
  let lt = Dfg.Lifetime.compute g in
  let min_regs = Dfg.Lifetime.min_registers lt in
  if n_regs < min_regs then
    invalid_arg
      (Printf.sprintf "Encoding.build: %d registers < minimum %d" n_regs
         min_regs);
  let nv = Dfg.Graph.n_vars g and no = Dfg.Graph.n_ops g in
  let n_mod = Dfg.Problem.n_modules p in
  let m = Ilp.Model.create ~name:(Printf.sprintf "%s-k%d" g.Dfg.Graph.name k) () in

  (* ---- system register assignment --------------------------------- *)
  let clique = if symmetry then Dfg.Lifetime.max_clique lt else [] in
  let clique_slot = Hashtbl.create 7 in
  List.iteri (fun i v -> Hashtbl.replace clique_slot v i) clique;
  let x_vr =
    Array.init nv (fun v ->
        Array.init n_regs (fun r ->
            match Hashtbl.find_opt clique_slot v with
            | Some slot ->
                fixed m (if slot = r then 1 else 0) "x_v%d_r%d" v r
            | None -> bin m "x_v%d_r%d" v r))
  in
  for v = 0 to nv - 1 do
    Ilp.Model.add_eq m
      ~name:(Printf.sprintf "assign_v%d" v)
      (lx (List.init n_regs (fun r -> (1, x_vr.(v).(r)))))
      1
  done;
  List.iter
    (fun clique_vars ->
      for r = 0 to n_regs - 1 do
        Ilp.Model.add_le m
          (lx (List.map (fun v -> (1, x_vr.(v).(r))) clique_vars))
          1
      done)
    (Dfg.Lifetime.conflict_cliques lt);

  (* ---- module binding ---------------------------------------------- *)
  let mod_fix = if symmetry then module_symmetry_fixing p else [] in
  let x_om =
    Array.init no (fun o ->
        let cands = Dfg.Problem.candidates p o in
        Array.init n_mod (fun md ->
            if not (List.mem md cands) then -1
            else
              match List.assoc_opt o mod_fix with
              | Some md' -> fixed m (if md = md' then 1 else 0) "x_o%d_m%d" o md
              | None -> bin m "x_o%d_m%d" o md))
  in
  for o = 0 to no - 1 do
    Ilp.Model.add_eq m
      ~name:(Printf.sprintf "bind_o%d" o)
      (lx
         (List.filter_map
            (fun md -> if x_om.(o).(md) >= 0 then Some (1, x_om.(o).(md)) else None)
            (List.init n_mod Fun.id)))
      1
  done;
  for s = 0 to g.Dfg.Graph.n_steps - 1 do
    let ops = Dfg.Graph.ops_at_step g s in
    for md = 0 to n_mod - 1 do
      let terms =
        List.filter_map
          (fun o -> if x_om.(o).(md) >= 0 then Some (1, x_om.(o).(md)) else None)
          ops
      in
      if List.length terms > 1 then Ilp.Model.add_le m (lx terms) 1
    done
  done;

  (* ---- commutative port swaps -------------------------------------- *)
  let swap =
    Array.init no (fun o ->
        if Dfg.Op_kind.commutative (Dfg.Graph.operation g o).Dfg.Graph.kind
        then bin m "swap_o%d" o
        else -1)
  in

  (* ---- interconnections -------------------------------------------- *)
  let z =
    Array.init n_regs (fun r ->
        Array.init n_mod (fun md ->
            Array.init (n_ports p md) (fun l -> bin m "z_r%d_m%d_l%d" r md l)))
  in
  let z_out =
    Array.init n_mod (fun md ->
        Array.init n_regs (fun r -> bin m "zo_m%d_r%d" md r))
  in
  (* support lists for the no-adverse-path upper bounds *)
  let aux = ref [] in
  let def_aux var requires = aux := (var, requires) :: !aux in
  let support = Hashtbl.create 97 in
  let add_support key var =
    Hashtbl.replace support key
      (var :: (match Hashtbl.find_opt support key with Some l -> l | None -> []))
  in
  (* variable input edges *)
  List.iter
    (fun (v, o, l_star) ->
      List.iter
        (fun md ->
          let xm = x_om.(o).(md) in
          for r = 0 to n_regs - 1 do
            let xv = x_vr.(v).(r) in
            if swap.(o) < 0 then begin
              (* needed path: z >= x_vr + x_om - 1 *)
              Ilp.Model.add_ge m
                (lx [ (1, z.(r).(md).(l_star)); (-1, xv); (-1, xm) ])
                (-1);
              (* support: y <= x_vr, y <= x_om *)
              let y = bin m "y_e%d_%d_%d_r%d_m%d" v o l_star r md in
              Ilp.Model.add_le m (lx [ (1, y); (-1, xv) ]) 0;
              Ilp.Model.add_le m (lx [ (1, y); (-1, xm) ]) 0;
              def_aux y [ (xv, 1); (xm, 1) ];
              add_support (`Port (r, md, l_star)) y
            end
            else begin
              let sw = swap.(o) in
              (* identity case feeds port l_star: z >= x + x - swap - 1 *)
              Ilp.Model.add_ge m
                (lx [ (1, z.(r).(md).(l_star)); (-1, xv); (-1, xm); (1, sw) ])
                (-1);
              (* swapped case feeds port 1 - l_star *)
              Ilp.Model.add_ge m
                (lx
                   [ (1, z.(r).(md).(1 - l_star)); (-1, xv); (-1, xm); (-1, sw) ])
                (-2);
              let y0 = bin m "y0_e%d_%d_%d_r%d_m%d" v o l_star r md in
              Ilp.Model.add_le m (lx [ (1, y0); (-1, xv) ]) 0;
              Ilp.Model.add_le m (lx [ (1, y0); (-1, xm) ]) 0;
              Ilp.Model.add_le m (lx [ (1, y0); (1, sw) ]) 1;
              def_aux y0 [ (xv, 1); (xm, 1); (sw, 0) ];
              add_support (`Port (r, md, l_star)) y0;
              let y1 = bin m "y1_e%d_%d_%d_r%d_m%d" v o l_star r md in
              Ilp.Model.add_le m (lx [ (1, y1); (-1, xv) ]) 0;
              Ilp.Model.add_le m (lx [ (1, y1); (-1, xm) ]) 0;
              Ilp.Model.add_le m (lx [ (1, y1); (-1, sw) ]) 0;
              def_aux y1 [ (xv, 1); (xm, 1); (sw, 1) ];
              add_support (`Port (r, md, 1 - l_star)) y1
            end
          done)
        (Dfg.Problem.candidates p o))
    (Dfg.Graph.e_i g);
  (* output edges *)
  List.iter
    (fun (o, v) ->
      List.iter
        (fun md ->
          let xm = x_om.(o).(md) in
          for r = 0 to n_regs - 1 do
            let xv = x_vr.(v).(r) in
            Ilp.Model.add_ge m
              (lx [ (1, z_out.(md).(r)); (-1, xv); (-1, xm) ])
              (-1);
            let w = bin m "w_o%d_v%d_m%d_r%d" o v md r in
            Ilp.Model.add_le m (lx [ (1, w); (-1, xv) ]) 0;
            Ilp.Model.add_le m (lx [ (1, w); (-1, xm) ]) 0;
            def_aux w [ (xv, 1); (xm, 1) ];
            add_support (`Out (md, r)) w
          done)
        (Dfg.Problem.candidates p o))
    (Dfg.Graph.e_o g);
  (* constant edges *)
  let cz_tbl = Hashtbl.create 17 in
  let cz_var c md l =
    match Hashtbl.find_opt cz_tbl (c, md, l) with
    | Some var -> var
    | None ->
        let var = bin m "cz_%d_m%d_l%d" c md l in
        Hashtbl.replace cz_tbl (c, md, l) var;
        var
  in
  List.iter
    (fun (c, o, l_star) ->
      List.iter
        (fun md ->
          let xm = x_om.(o).(md) in
          if swap.(o) < 0 then begin
            let czv = cz_var c md l_star in
            Ilp.Model.add_ge m (lx [ (1, czv); (-1, xm) ]) 0;
            add_support (`Const (c, md, l_star)) xm
          end
          else begin
            let sw = swap.(o) in
            let cz0 = cz_var c md l_star in
            Ilp.Model.add_ge m (lx [ (1, cz0); (-1, xm); (1, sw) ]) 0;
            let cz1 = cz_var c md (1 - l_star) in
            Ilp.Model.add_ge m (lx [ (1, cz1); (-1, xm); (-1, sw) ]) (-1);
            let y0 = bin m "yc0_%d_o%d_m%d" c o md in
            Ilp.Model.add_le m (lx [ (1, y0); (-1, xm) ]) 0;
            Ilp.Model.add_le m (lx [ (1, y0); (1, sw) ]) 1;
            def_aux y0 [ (xm, 1); (sw, 0) ];
            add_support (`Const (c, md, l_star)) y0;
            let y1 = bin m "yc1_%d_o%d_m%d" c o md in
            Ilp.Model.add_le m (lx [ (1, y1); (-1, xm) ]) 0;
            Ilp.Model.add_le m (lx [ (1, y1); (-1, sw) ]) 0;
            def_aux y1 [ (xm, 1); (sw, 1) ];
            add_support (`Const (c, md, 1 - l_star)) y1
          end)
        (Dfg.Problem.candidates p o))
    (Dfg.Graph.const_edges g);
  (* upper bounds from support (Eqs. (1)-(3)): a wire may exist only if some
     assigned edge realizes it. *)
  for r = 0 to n_regs - 1 do
    for md = 0 to n_mod - 1 do
      for l = 0 to n_ports p md - 1 do
        let sup =
          match Hashtbl.find_opt support (`Port (r, md, l)) with
          | Some vars -> vars
          | None -> []
        in
        Ilp.Model.add_le m
          ~name:(Printf.sprintf "adverse_r%d_m%d_l%d" r md l)
          (lx ((1, z.(r).(md).(l)) :: List.map (fun y -> (-1, y)) sup))
          0
      done
    done
  done;
  for md = 0 to n_mod - 1 do
    for r = 0 to n_regs - 1 do
      let sup =
        match Hashtbl.find_opt support (`Out (md, r)) with
        | Some vars -> vars
        | None -> []
      in
      Ilp.Model.add_le m
        (lx ((1, z_out.(md).(r)) :: List.map (fun y -> (-1, y)) sup))
        0
    done
  done;
  Hashtbl.iter
    (fun (c, md, l) czv ->
      let sup =
        match Hashtbl.find_opt support (`Const (c, md, l)) with
        | Some vars -> vars
        | None -> []
      in
      Ilp.Model.add_le m
        (lx ((1, czv) :: List.map (fun y -> (-1, y)) sup))
        0)
    cz_tbl;

  (* ---- external input wires and multiplexer thresholds -------------- *)
  let primary = Dfg.Graph.primary_inputs g in
  let inp =
    Array.init n_regs (fun r ->
        if primary = [] then -1 else bin m "inp_r%d" r)
  in
  if primary <> [] then
    for r = 0 to n_regs - 1 do
      List.iter
        (fun v ->
          Ilp.Model.add_ge m (lx [ (1, inp.(r)); (-1, x_vr.(v).(r)) ]) 0)
        primary;
      Ilp.Model.add_le m
        (lx ((1, inp.(r)) :: List.map (fun v -> (-1, x_vr.(v).(r))) primary))
        0
    done;
  let objective = ref Ilp.Linexpr.zero in
  let mux_thresholds = ref [] in
  let add_mux_site fanin_terms max_fanin site_name =
    let f = lx fanin_terms in
    let thresholds = ref [] in
    for n = 2 to max_fanin do
      let u = bin m "u_%s_%d" site_name n in
      (* F - (n - 1) <= (max - (n - 1)) * u *)
      Ilp.Model.add_le m
        (Ilp.Linexpr.sub f (Ilp.Linexpr.term (max_fanin - (n - 1)) u))
        (n - 1);
      let increment = Datapath.Area.mux n - Datapath.Area.mux (n - 1) in
      objective := Ilp.Linexpr.add !objective (Ilp.Linexpr.term increment u);
      thresholds := (n, u) :: !thresholds
    done;
    mux_thresholds := (f, List.rev !thresholds) :: !mux_thresholds
  in
  for md = 0 to n_mod - 1 do
    for l = 0 to n_ports p md - 1 do
      let consts_here =
        Hashtbl.fold
          (fun (c, md', l') var acc ->
            if md' = md && l' = l then (c, var) :: acc else acc)
          cz_tbl []
      in
      let terms =
        List.init n_regs (fun r -> (1, z.(r).(md).(l)))
        @ List.map (fun (_, var) -> (1, var)) consts_here
      in
      add_mux_site terms
        (n_regs + List.length consts_here)
        (Printf.sprintf "m%dl%d" md l)
    done
  done;
  for r = 0 to n_regs - 1 do
    let terms =
      List.init n_mod (fun md -> (1, z_out.(md).(r)))
      @ (if inp.(r) >= 0 then [ (1, inp.(r)) ] else [])
    in
    add_mux_site terms
      (n_mod + if inp.(r) >= 0 then 1 else 0)
      (Printf.sprintf "r%d" r)
  done;

  (* ---- BIST register assignment (k = 0 builds the reference model) -- *)
  let a = Array.init n_mod (fun md -> Array.init k (fun s -> bin m "a_m%d_p%d" md s)) in
  let s_mrp =
    Array.init n_mod (fun md ->
        Array.init n_regs (fun r ->
            Array.init k (fun s -> bin m "s_m%d_r%d_p%d" md r s)))
  in
  let t_rmlp =
    Array.init n_regs (fun r ->
        Array.init n_mod (fun md ->
            Array.init (n_ports p md) (fun l ->
                Array.init k (fun s -> bin m "t_r%d_m%d_l%d_p%d" r md l s))))
  in
  (* ports that can ever receive a constant get a tc variable *)
  let tc =
    Array.init n_mod (fun md ->
        Array.init (n_ports p md) (fun l ->
            if k > 0 && Hashtbl.fold
                 (fun (_, md', l') _ acc -> acc || (md' = md && l' = l))
                 cz_tbl false
            then bin m "tc_m%d_l%d" md l
            else -1))
  in
  let t_reg = Array.init n_regs (fun r -> if k > 0 then bin m "T_r%d" r else -1) in
  let s_reg = Array.init n_regs (fun r -> if k > 0 then bin m "S_r%d" r else -1) in
  let b_reg = Array.init n_regs (fun r -> if k > 0 then bin m "B_r%d" r else -1) in
  let c_reg = Array.init n_regs (fun r -> if k > 0 then bin m "C_r%d" r else -1) in
  let t_rp = Array.init n_regs (fun r -> Array.init k (fun s -> bin m "Tp_r%d_p%d" r s)) in
  let s_rp = Array.init n_regs (fun r -> Array.init k (fun s -> bin m "Sp_r%d_p%d" r s)) in
  let c_rp = Array.init n_regs (fun r -> Array.init k (fun s -> bin m "Cp_r%d_p%d" r s)) in
  if k > 0 then begin
    (* Sub-test sessions are interchangeable labels; canonicalize (module 0
       in session 0, a session opens only after its predecessor) as part of
       the Section 3.5 search-space reduction. *)
    if symmetry then
      for md = 0 to n_mod - 1 do
        for s = md + 1 to k - 1 do
          Ilp.Model.add_eq m (lx [ (1, a.(md).(s)) ]) 0
        done;
        for s = 1 to min md (k - 1) do
          Ilp.Model.add_le m
            (lx
               ((1, a.(md).(s))
               :: List.filter_map
                    (fun md' ->
                      if md' < md && s - 1 <= md' then
                        Some (-1, a.(md').(s - 1))
                      else None)
                    (List.init n_mod Fun.id)))
            0
        done
      done;
    for md = 0 to n_mod - 1 do
      (* each module tested in exactly one sub-test session (Eq. 7) *)
      Ilp.Model.add_eq m
        ~name:(Printf.sprintf "session_m%d" md)
        (lx (List.init k (fun s -> (1, a.(md).(s)))))
        1;
      for s = 0 to k - 1 do
        (* the SR is active exactly in the module's session (Eqs. 7, 12) *)
        Ilp.Model.add_eq m
          (lx
             ((-1, a.(md).(s))
             :: List.init n_regs (fun r -> (1, s_mrp.(md).(r).(s)))))
          0
      done;
      for r = 0 to n_regs - 1 do
        (* Eq. 6: SR only behind an existing module-to-register wire *)
        Ilp.Model.add_le m
          (lx
             ((-1, z_out.(md).(r))
             :: List.init k (fun s -> (1, s_mrp.(md).(r).(s)))))
          0
      done;
      for l = 0 to n_ports p md - 1 do
        (* Eq. 10 (+ §3.3.4): exactly one TPG across the k-test session,
           possibly the dedicated constant generator *)
        let tc_term = if tc.(md).(l) >= 0 then [ (1, tc.(md).(l)) ] else [] in
        Ilp.Model.add_eq m
          ~name:(Printf.sprintf "tpg_m%d_l%d" md l)
          (lx
             (tc_term
             @ List.concat
                 (List.init n_regs (fun r ->
                      List.init k (fun s -> (1, t_rmlp.(r).(md).(l).(s)))))))
          1;
        for s = 0 to k - 1 do
          (* Eqs. 11-12: TPGs only in the module's own session *)
          Ilp.Model.add_le m
            (lx
               ((-1, a.(md).(s))
               :: List.init n_regs (fun r -> (1, t_rmlp.(r).(md).(l).(s)))))
            0
        done;
        for r = 0 to n_regs - 1 do
          (* Eq. 9: TPG only behind an existing wire *)
          Ilp.Model.add_le m
            (lx
               ((-1, z.(r).(md).(l))
               :: List.init k (fun s -> (1, t_rmlp.(r).(md).(l).(s)))))
            0;
          (* a dedicated generator is only for constant-only ports *)
          if tc.(md).(l) >= 0 then
            Ilp.Model.add_le m
              (lx [ (1, tc.(md).(l)); (1, z.(r).(md).(l)) ])
              1
        done
      done;
      (* Eq. 13: one register cannot drive both ports of a module *)
      if n_ports p md = 2 then
        for r = 0 to n_regs - 1 do
          for s = 0 to k - 1 do
            Ilp.Model.add_le m
              (lx [ (1, t_rmlp.(r).(md).(0).(s)); (1, t_rmlp.(r).(md).(1).(s)) ])
              1
          done
        done
    done;
    (* Eq. 8: an SR serves one module per session *)
    for r = 0 to n_regs - 1 do
      for s = 0 to k - 1 do
        Ilp.Model.add_le m
          (lx (List.init n_mod (fun md -> (1, s_mrp.(md).(r).(s)))))
          1
      done
    done;
    (* Eqs. 14-23: register reconfiguration roles, as per-element bounds *)
    for r = 0 to n_regs - 1 do
      for md = 0 to n_mod - 1 do
        for l = 0 to n_ports p md - 1 do
          for s = 0 to k - 1 do
            Ilp.Model.add_ge m
              (lx [ (1, t_reg.(r)); (-1, t_rmlp.(r).(md).(l).(s)) ])
              0;
            Ilp.Model.add_ge m
              (lx [ (1, t_rp.(r).(s)); (-1, t_rmlp.(r).(md).(l).(s)) ])
              0
          done
        done;
        for s = 0 to k - 1 do
          Ilp.Model.add_ge m
            (lx [ (1, s_reg.(r)); (-1, s_mrp.(md).(r).(s)) ])
            0;
          Ilp.Model.add_ge m
            (lx [ (1, s_rp.(r).(s)); (-1, s_mrp.(md).(r).(s)) ])
            0
        done
      done;
      (* Eq. 17: BILBO (or CBILBO) when both roles occur *)
      Ilp.Model.add_ge m
        (lx [ (1, b_reg.(r)); (-1, t_reg.(r)); (-1, s_reg.(r)) ])
        (-1);
      for s = 0 to k - 1 do
        (* Eq. 21: CBILBO when both roles occur in the same session *)
        Ilp.Model.add_ge m
          (lx [ (1, c_rp.(r).(s)); (-1, t_rp.(r).(s)); (-1, s_rp.(r).(s)) ])
          (-1);
        (* Eq. 23 *)
        Ilp.Model.add_ge m (lx [ (1, c_reg.(r)); (-1, c_rp.(r).(s)) ]) 0
      done
    done;
    (* objective: register reconfiguration costs (208 base per register is
       the constant base_area) + dedicated constant generators *)
    for r = 0 to n_regs - 1 do
      objective :=
        Ilp.Linexpr.add !objective
          (lx
             [
               (Datapath.Area.register Datapath.Area.Tpg
                - Datapath.Area.register Datapath.Area.Plain, t_reg.(r));
               (Datapath.Area.register Datapath.Area.Sr
                - Datapath.Area.register Datapath.Area.Plain, s_reg.(r));
               ( Datapath.Area.register Datapath.Area.Bilbo
                 - Datapath.Area.register Datapath.Area.Tpg
                 - Datapath.Area.register Datapath.Area.Sr
                 + Datapath.Area.register Datapath.Area.Plain, b_reg.(r) );
               ( Datapath.Area.register Datapath.Area.Cbilbo
                 - Datapath.Area.register Datapath.Area.Bilbo, c_reg.(r) );
             ])
    done;
    Array.iter
      (Array.iter (fun tcv ->
           if tcv >= 0 then
             objective :=
               Ilp.Linexpr.add !objective
                 (Ilp.Linexpr.term Datapath.Area.constant_tpg_weight tcv)))
      tc
  end;
  Ilp.Model.set_objective m !objective;
  {
    problem = p;
    n_regs;
    k;
    model = m;
    x_vr;
    x_om;
    swap;
    z;
    z_out;
    cz = Hashtbl.fold (fun (c, md, l) var acc -> (c, md, l, var) :: acc) cz_tbl [];
    tc;
    a;
    s_mrp;
    t_rmlp;
    t_reg;
    s_reg;
    b_reg;
    c_reg;
    t_rp;
    s_rp;
    c_rp;
    mux_thresholds = List.rev !mux_thresholds;
    aux = !aux;
    inp;
    base_area = n_regs * Datapath.Area.register Datapath.Area.Plain;
  }

let build ?symmetry p ~n_regs ~k =
  if k < 1 then invalid_arg "Encoding.build: k must be >= 1";
  build_internal ?symmetry p ~n_regs ~k

let build_reference ?symmetry p ~n_regs =
  build_internal ?symmetry p ~n_regs ~k:0

let branch_order e =
  let order = ref [] in
  let push v = if v >= 0 then order := v :: !order in
  Array.iter (fun row -> Array.iter push row) e.x_vr;
  Array.iter (fun row -> Array.iter push row) e.x_om;
  Array.iter push e.swap;
  Array.iter (fun row -> Array.iter push row) e.a;
  Array.iter
    (fun rows -> Array.iter (fun row -> Array.iter push row) rows)
    e.s_mrp;
  Array.iter
    (fun a3 ->
      Array.iter (fun a2 -> Array.iter (fun row -> Array.iter push row) a2) a3)
    e.t_rmlp;
  List.rev !order

(* --- symmetry orbits ----------------------------------------------------

   Structural interchangeability candidates, each proven exact by
   {!Ilp.Symmetry.filter_verified} before use:

   - registers not pinned by the clique pre-assignment (every variable
     family is register-saturated, so unpinned register indices are pure
     labels);
   - identical-kind module groups that [module_symmetry_fixing] could not
     pin (no saturated step existed).  At k >= 2 the session
     canonicalization rows couple module indices and the verifier rejects
     these — the win is the reference and k = 1 models;
   - sub-test sessions when k >= 2 (only survive verification when the
     encoding was built with [~symmetry:false], since the Section 3.5
     canonicalization rows break this symmetry already).

   Columns are collected by index token in the variable names ("_r<i>",
   "_m<i>", "_p<i>"), which covers every register/module/session-indexed
   family including the auxiliary support and mux-threshold variables; a
   mis-grouped column cannot produce a wrong orbit, only a rejected one. *)

let token_index ~prefix name =
  let n = String.length name and pl = String.length prefix in
  let is_digit c = c >= '0' && c <= '9' in
  let rec find i =
    if i + pl >= n then None
    else if String.sub name i pl = prefix && is_digit name.[i + pl] then begin
      let j = ref (i + pl) in
      while !j < n && is_digit name.[!j] do
        incr j
      done;
      let idx = int_of_string (String.sub name (i + pl) (!j - i - pl)) in
      let masked =
        String.sub name 0 (i + pl) ^ "#" ^ String.sub name !j (n - !j)
      in
      Some (idx, masked)
    end
    else find (i + 1)
  in
  find 0

(* One Blocks candidate from the variables carrying [prefix]-indexed names,
   restricted to [members]; columns are aligned by masked name and must
   align exactly or the candidate is discarded. *)
let block_candidate model ~prefix members =
  if List.length members < 2 then []
  else begin
    let tbl = Hashtbl.create 97 in
    let n = Ilp.Model.n_vars model in
    for v = 0 to n - 1 do
      match token_index ~prefix (Ilp.Model.var_name model v) with
      | Some (idx, masked) when List.mem idx members ->
          Hashtbl.replace tbl idx
            ((masked, v)
            ::
            (match Hashtbl.find_opt tbl idx with Some l -> l | None -> []))
      | Some _ | None -> ()
    done;
    let cols =
      List.map
        (fun idx ->
          List.sort compare
            (match Hashtbl.find_opt tbl idx with Some l -> l | None -> []))
        members
    in
    match cols with
    | first :: rest when first <> [] ->
        let keys c = List.map fst c in
        let k0 = keys first in
        if List.for_all (fun c -> keys c = k0) rest then
          [
            Ilp.Symmetry.Blocks
              (Array.of_list
                 (List.map
                    (fun c -> Array.of_list (List.map snd c))
                    cols));
          ]
        else []
    | _ -> []
  end

let orbits e =
  let m = e.model in
  let pinned_to_one v =
    let lb, _ = Ilp.Model.bounds m v in
    lb >= 1
  in
  (* registers not pinned by the clique pre-assignment *)
  let free_regs =
    List.filter
      (fun r -> not (Array.exists (fun row -> pinned_to_one row.(r)) e.x_vr))
      (List.init e.n_regs Fun.id)
  in
  let reg_cands = block_candidate m ~prefix:"_r" free_regs in
  (* identical-kind module groups not pinned by module_symmetry_fixing *)
  let groups = Hashtbl.create 7 in
  Array.iteri
    (fun md fu ->
      let key = fu.Dfg.Fu_kind.fu_name in
      Hashtbl.replace groups key
        (match Hashtbl.find_opt groups key with
        | Some ms -> ms @ [ md ]
        | None -> [ md ]))
    e.problem.Dfg.Problem.modules;
  let mod_cands =
    Hashtbl.fold
      (fun _ ms acc ->
        let free =
          List.filter
            (fun md ->
              not
                (Array.exists
                   (fun row -> row.(md) >= 0 && pinned_to_one row.(md))
                   e.x_om))
            ms
        in
        block_candidate m ~prefix:"_m" free @ acc)
      groups []
  in
  (* sub-test sessions (rejected by the verifier unless symmetry rows
     were disabled at build time) *)
  let ses_cands =
    if e.k >= 2 then block_candidate m ~prefix:"_p" (List.init e.k Fun.id)
    else []
  in
  Ilp.Symmetry.filter_verified m (reg_cands @ mod_cands @ ses_cands)

(* --- structural dual bound -----------------------------------------------

   A combinatorial lower bound on the ILP objective, independent of the
   LP relaxation (which is near-trivial on these encodings: the fractional
   optimum spreads mux thresholds and register upgrades to almost zero).
   Three additive components, each over disjoint objective terms:

   1. Register upgrades.  Every module is tested in exactly one of the k
      sub-test sessions (Eq. 7) and an SR serves one module per session
      (Eq. 8), so at least ceil(n_mod / k) registers carry the SR upgrade.
      Every input port needs a TPG (Eq. 10) and one register cannot drive
      both ports of a module (Eq. 13), so at least max-port-count
      registers carry the TPG upgrade; a register holding both roles
      needs the CBILBO upgrade when the roles meet in one session (Eq. 21
      — forced at k = 1) or at least the BILBO upgrade otherwise
      (Eq. 17), both of which cost more than the two roles separately.

   2. Module-port muxes.  Operand variables of the operations bound to a
      module cluster that are simultaneously alive must sit in distinct
      registers, each a distinct wire into the cluster's input ports
      (Eq. 13 keeps the two ports of one module register-disjoint, so
      counting over both ports jointly stays valid under commutative
      operand swapping); every distinct constant value adds a dedicated
      generator wire (cz).  Each port also needs at least one wire for
      its TPG (Eq. 9) — a port with no register wire pays the dedicated
      constant generator instead, which costs more than any mux step.
      The cheapest spread of those forced wires over the cluster's port
      sites is an exact small DP over the concave-ish mux cost table.

   3. Register-input muxes.  Each module needs at least one result wire
      into a register (Eq. 6: its SR sits behind such a wire), results of
      one cluster that are simultaneously alive need distinct registers,
      and registers holding primary inputs carry the input wire.  The
      cheapest spread of those wires over the n_regs register-input sites
      bounds the z_out/inp mux cost.

   Sound by construction: every count is forced in any feasible solution,
   and the DP picks the cheapest arrangement consistent with the counts. *)

(* Cheapest total mux cost of [slots] mux sites absorbing at least [total]
   wires, each site taking at least [lo]. *)
let mux_spread_min ?(lo = 1) ~slots total =
  if slots <= 0 then 0
  else begin
    let total = max total (lo * slots) in
    let dp = Array.make_matrix (slots + 1) (total + 1) max_int in
    dp.(0).(0) <- 0;
    for i = 1 to slots do
      for n = 0 to total do
        for take = lo to n do
          if dp.(i - 1).(n - take) < max_int then
            dp.(i).(n) <-
              min dp.(i).(n) (dp.(i - 1).(n - take) + Datapath.Area.mux take)
        done
      done
    done;
    dp.(slots).(total)
  end

let objective_lower_bound e =
  let p = e.problem in
  let g = p.Dfg.Problem.dfg in
  let lt = Dfg.Lifetime.compute g in
  let n_mod = Dfg.Problem.n_modules p in
  let n_regs = e.n_regs in
  let nb = Dfg.Graph.n_boundaries g in
  (* exact max clique of the (closed-interval) lifetime conflict graph
     restricted to [vs]: the peak number simultaneously alive *)
  let clique vs =
    let best = ref 0 in
    for t = 0 to nb - 1 do
      let c =
        List.fold_left
          (fun acc v -> if Dfg.Lifetime.alive_at lt v t then acc + 1 else acc)
          0 vs
      in
      if c > !best then best := c
    done;
    !best
  in
  (* modules sharing any operation candidate merge into one cluster, so no
     port site is ever counted for two operation groups *)
  let parent = Array.init n_mod Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  let n_ops = Dfg.Graph.n_ops g in
  for o = 0 to n_ops - 1 do
    match Dfg.Problem.candidates p o with
    | [] -> ()
    | m0 :: rest -> List.iter (fun md -> union m0 md) rest
  done;
  let cluster_mods = Hashtbl.create 7 in
  for md = 0 to n_mod - 1 do
    let r = find md in
    Hashtbl.replace cluster_mods r
      (md
      :: (match Hashtbl.find_opt cluster_mods r with Some l -> l | None -> []))
  done;
  let cluster_ops = Hashtbl.create 7 in
  for o = 0 to n_ops - 1 do
    match Dfg.Problem.candidates p o with
    | [] -> ()
    | m0 :: _ ->
        let r = find m0 in
        Hashtbl.replace cluster_ops r
          (o
          :: (match Hashtbl.find_opt cluster_ops r with
             | Some l -> l
             | None -> []))
  done;
  let max_ports = ref 1 in
  let port_mux = ref 0 and result_wires = ref 0 in
  Hashtbl.iter
    (fun root mods ->
      let ops =
        match Hashtbl.find_opt cluster_ops root with Some l -> l | None -> []
      in
      let operand_vars = ref [] and consts = ref [] and results = ref [] in
      let ports = ref 1 in
      List.iter
        (fun o ->
          let op = Dfg.Graph.operation g o in
          let ar = Array.length op.Dfg.Graph.inputs in
          if ar > !ports then ports := ar;
          results := op.Dfg.Graph.output :: !results;
          Array.iter
            (function
              | Dfg.Graph.Var v ->
                  if not (List.mem v !operand_vars) then
                    operand_vars := v :: !operand_vars
              | Dfg.Graph.Const c ->
                  if not (List.mem c !consts) then consts := c :: !consts)
            op.Dfg.Graph.inputs)
        ops;
      if !ports > !max_ports then max_ports := !ports;
      let c = List.length mods in
      let forced = clique !operand_vars + List.length !consts in
      port_mux := !port_mux + mux_spread_min ~slots:(!ports * c) forced;
      result_wires := !result_wires + max c (clique !results))
    cluster_mods;
  (* register-input sites: module result wires plus primary-input loads *)
  let pi_regs = clique (Dfg.Graph.primary_inputs g) in
  let reg_mux = mux_spread_min ~lo:0 ~slots:n_regs (!result_wires + pi_regs) in
  (* BIST register upgrades *)
  let plain = Datapath.Area.register Datapath.Area.Plain in
  let d_tpg = Datapath.Area.register Datapath.Area.Tpg - plain in
  let d_sr = Datapath.Area.register Datapath.Area.Sr - plain in
  let d_bilbo = Datapath.Area.register Datapath.Area.Bilbo - plain in
  let d_cbilbo = Datapath.Area.register Datapath.Area.Cbilbo - plain in
  let srs = (n_mod + e.k - 1) / e.k in
  let tpgs = !max_ports in
  let merged = max 0 (min (min srs tpgs) (srs + tpgs - n_regs)) in
  let d_merge = if e.k = 1 then d_cbilbo else d_bilbo in
  let upgrades =
    (srs * d_sr) + (tpgs * d_tpg) + (merged * (d_merge - d_sr - d_tpg))
  in
  upgrades + !port_mux + reg_mux

let decode e x =
  let p = e.problem in
  let g = p.Dfg.Problem.dfg in
  let nv = Dfg.Graph.n_vars g and no = Dfg.Graph.n_ops g in
  let n_mod = Dfg.Problem.n_modules p in
  let ( let* ) r f = Result.bind r f in
  let reg_of_var = Array.make nv (-1) in
  for v = 0 to nv - 1 do
    for r = 0 to e.n_regs - 1 do
      if x.(e.x_vr.(v).(r)) = 1 then reg_of_var.(v) <- r
    done
  done;
  let module_of_op = Array.make no (-1) in
  for o = 0 to no - 1 do
    for md = 0 to n_mod - 1 do
      if e.x_om.(o).(md) >= 0 && x.(e.x_om.(o).(md)) = 1 then
        module_of_op.(o) <- md
    done
  done;
  let swapped =
    Array.init no (fun o -> e.swap.(o) >= 0 && x.(e.swap.(o)) = 1)
  in
  let* netlist =
    Datapath.Netlist.make ~swapped p ~reg_of_var ~module_of_op
  in
  if e.k = 0 then Ok (netlist, None)
  else begin
    let session_of_module = Array.make n_mod (-1) in
    let sr_of_module = Array.make n_mod (-1) in
    for md = 0 to n_mod - 1 do
      for s = 0 to e.k - 1 do
        if x.(e.a.(md).(s)) = 1 then session_of_module.(md) <- s;
        for r = 0 to e.n_regs - 1 do
          if x.(e.s_mrp.(md).(r).(s)) = 1 then sr_of_module.(md) <- r
        done
      done
    done;
    let tpg_of_port =
      Array.init n_mod (fun md ->
          Array.init (n_ports p md) (fun l ->
              let found = ref (-1) in
              for r = 0 to e.n_regs - 1 do
                for s = 0 to e.k - 1 do
                  if x.(e.t_rmlp.(r).(md).(l).(s)) = 1 then found := r
                done
              done;
              !found))
    in
    let* plan =
      Bist.Plan.make netlist ~k:e.k ~session_of_module ~sr_of_module
        ~tpg_of_port
    in
    (* The model must never undercount the real design cost. *)
    let model_cost = Ilp.Model.objective_value e.model x + e.base_area in
    let plan_cost = Bist.Plan.objective_cost plan in
    if plan_cost > model_cost then
      Error
        (Printf.sprintf
           "encoding bug: plan costs %d but the model claims %d" plan_cost
           model_cost)
    else Ok (netlist, Some plan)
  end

(* Fill the data-path part of a solution vector (x, z, cz, support aux,
   input wires, mux thresholds) from a netlist. *)
let fill_datapath e (netlist : Datapath.Netlist.t) x =
  let p = e.problem in
  let g = p.Dfg.Problem.dfg in
  let nv = Dfg.Graph.n_vars g and no = Dfg.Graph.n_ops g in
    for v = 0 to nv - 1 do
      x.(e.x_vr.(v).(netlist.Datapath.Netlist.reg_of_var.(v))) <- 1
    done;
    for o = 0 to no - 1 do
      let md = netlist.Datapath.Netlist.module_of_op.(o) in
      x.(e.x_om.(o).(md)) <- 1;
      if e.swap.(o) >= 0 && netlist.Datapath.Netlist.swapped.(o) then
        x.(e.swap.(o)) <- 1
    done;
    List.iter
      (fun (r, md, l) -> x.(e.z.(r).(md).(l)) <- 1)
      netlist.Datapath.Netlist.reg_to_port;
    List.iter
      (fun (md, r) -> x.(e.z_out.(md).(r)) <- 1)
      netlist.Datapath.Netlist.module_to_reg;
    List.iter
      (fun (c, md, l, var) ->
        if List.mem (c, md, l) netlist.Datapath.Netlist.const_to_port then
          x.(var) <- 1)
      e.cz;
    (* auxiliary support variables: 1 exactly when all defining variables
       hold their required values *)
    List.iter
      (fun (var, requires) ->
        if List.for_all (fun (dep, value) -> x.(dep) = value) requires then
          x.(var) <- 1)
      e.aux;
    (* external input wires *)
    Array.iteri
      (fun r loads -> if loads && e.inp.(r) >= 0 then x.(e.inp.(r)) <- 1)
      netlist.Datapath.Netlist.reg_loads_input;
    (* mux thresholds: u = 1 iff fan-in >= n *)
    List.iter
      (fun (fanin_expr, thresholds) ->
        let f = Ilp.Model.eval_expr fanin_expr x in
        List.iter (fun (n, u) -> if f >= n then x.(u) <- 1) thresholds)
      e.mux_thresholds;
    ()

let vector_of_netlist e (netlist : Datapath.Netlist.t) =
  if netlist.Datapath.Netlist.problem != e.problem then
    Error "vector_of_netlist: netlist belongs to a different problem"
  else if netlist.Datapath.Netlist.n_registers > e.n_regs then
    Error "vector_of_netlist: more registers than the encoding"
  else begin
    let x = Array.make (Ilp.Model.n_vars e.model) 0 in
    fill_datapath e netlist x;
    if e.k = 0 then
      match Ilp.Model.check e.model x with
      | Ok () -> Ok x
      | Error errs ->
          Error
            ("vector_of_netlist produced an infeasible vector: "
            ^ String.concat "; " errs)
    else Error "vector_of_netlist: encoding has BIST variables; use vector_of_plan"
  end

let vector_of_plan e (plan : Bist.Plan.t) =
  let netlist = plan.Bist.Plan.netlist in
  let p = e.problem in
  if netlist.Datapath.Netlist.problem != p then
    Error "vector_of_plan: plan belongs to a different problem"
  else if plan.Bist.Plan.k <> e.k then Error "vector_of_plan: k mismatch"
  else if netlist.Datapath.Netlist.n_registers > e.n_regs then
    Error "vector_of_plan: plan uses more registers than the encoding"
  else begin
    let x = Array.make (Ilp.Model.n_vars e.model) 0 in
    let n_mod = Dfg.Problem.n_modules p in
    fill_datapath e netlist x;
    (* sessions and test registers *)
    for md = 0 to n_mod - 1 do
      let s = plan.Bist.Plan.session_of_module.(md) in
      x.(e.a.(md).(s)) <- 1;
      x.(e.s_mrp.(md).(plan.Bist.Plan.sr_of_module.(md)).(s)) <- 1;
      Array.iteri
        (fun l r ->
          if r >= 0 then x.(e.t_rmlp.(r).(md).(l).(s)) <- 1
          else if e.tc.(md).(l) >= 0 then x.(e.tc.(md).(l)) <- 1)
        plan.Bist.Plan.tpg_of_port.(md)
    done;
    (* roles *)
    for r = 0 to e.n_regs - 1 do
      for s = 0 to e.k - 1 do
        let tpg_here = ref false and sr_here = ref false in
        for md = 0 to n_mod - 1 do
          for l = 0 to n_ports p md - 1 do
            if x.(e.t_rmlp.(r).(md).(l).(s)) = 1 then tpg_here := true
          done;
          if x.(e.s_mrp.(md).(r).(s)) = 1 then sr_here := true
        done;
        if !tpg_here then x.(e.t_rp.(r).(s)) <- 1;
        if !sr_here then x.(e.s_rp.(r).(s)) <- 1;
        if !tpg_here && !sr_here then x.(e.c_rp.(r).(s)) <- 1
      done;
      let any arr = Array.exists (fun v -> x.(v) = 1) arr in
      if any e.t_rp.(r) then x.(e.t_reg.(r)) <- 1;
      if any e.s_rp.(r) then x.(e.s_reg.(r)) <- 1;
      if x.(e.t_reg.(r)) = 1 && x.(e.s_reg.(r)) = 1 then x.(e.b_reg.(r)) <- 1;
      if any e.c_rp.(r) then x.(e.c_reg.(r)) <- 1
    done;
    match Ilp.Model.check e.model x with
    | Ok () -> Ok x
    | Error errs ->
        Error
          ("vector_of_plan produced an infeasible vector: "
          ^ String.concat "; " errs)
  end
