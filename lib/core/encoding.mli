(** The paper's ILP formulation (Section 3), built on {!Ilp.Model}.

    One encoding covers a problem instance, a register count and a k-test
    session.  Decision variables:

    - [x_vr], [x_om] — system register assignment and module binding;
    - [swap_o] — the pseudo-input-port permutation of a commutative
      operation (the [s_{l*,l,o}] of Eq. (3), specialized to binary
      operations: [swap = 0] is the identity);
    - [z r m l], [z_out m r], [cz c m l] — interconnections, tied to the
      assignment from below (needed paths) and from above through the
      auxiliary AND variables of Eqs. (1)-(3) (no adverse paths);
    - [s m r p], [t r m l p], [a m p] — SR/TPG/sub-test-session assignment
      (Eqs. (6)-(13), with Eq. (7)/(11)/(12) folded through [a m p]);
    - [tc m l] — dedicated generator of a constant-only port (§3.3.4),
      charged [Datapath.Area.constant_tpg_weight] in the objective;
    - [t_r], [s_r], [b_r], [c_r] and per-session [t_rp], [s_rp], [c_rp] —
      register reconfiguration roles (Eqs. (14)-(23));
    - [u site n] — multiplexer-size thresholds linearizing Table 1(b).

    The objective (§3.4) omits the constant term [208 * R] (plain register
    base cost), exposed as {!base_area}.

    Section 3.5's search-space reduction (pre-assigning a maximum clique of
    incompatible variables to distinct registers, and one max-concurrency
    step's operations to the identical modules of each class) is applied
    when [symmetry] is [true]. *)

type t = private {
  problem : Dfg.Problem.t;
  n_regs : int;
  k : int;
  model : Ilp.Model.t;
  x_vr : int array array;  (** [v].[r] *)
  x_om : int array array;  (** [o].[m]; [-1] when [m] cannot run [o] *)
  swap : int array;  (** [o]; [-1] for non-commutative operations *)
  z : int array array array;  (** [r].[m].[l] *)
  z_out : int array array;  (** [m].[r] *)
  cz : (int * int * int * int) list;  (** (c, m, l, var) *)
  tc : int array array;  (** [m].[l]; [-1] when the port can never see a constant *)
  a : int array array;  (** [m].[p] *)
  s_mrp : int array array array;  (** [m].[r].[p] *)
  t_rmlp : int array array array array;  (** [r].[m].[l].[p] *)
  t_reg : int array;
  s_reg : int array;
  b_reg : int array;
  c_reg : int array;
  t_rp : int array array;
  s_rp : int array array;
  c_rp : int array array;
  mux_thresholds : (Ilp.Linexpr.t * (int * int) list) list;
      (** per mux site: fan-in expression and [(n, u-var)] thresholds *)
  aux : (int * (int * int) list) list;
      (** support (AND) variables with their defining conditions *)
  inp : int array;  (** external-input indicator per register; -1 if none *)
  base_area : int;  (** [208 * n_regs]: add to the model objective value *)
}

val build : ?symmetry:bool -> Dfg.Problem.t -> n_regs:int -> k:int -> t
(** [symmetry] defaults to [true].
    @raise Invalid_argument when [n_regs] is below the minimum register
    count or [k < 1]. *)

val build_reference : ?symmetry:bool -> Dfg.Problem.t -> n_regs:int -> t
(** The non-BIST data-path model ([k = 0]): register assignment, binding and
    interconnect with a multiplexer-area objective.  Solving it yields the
    paper's area-optimal reference circuits (Section 4.1). *)

val branch_order : t -> int list
(** Decision variables in a good branching order: register assignment,
    module binding, swaps, then session structure. *)

val orbits : t -> Ilp.Symmetry.orbit list
(** Exactly-verified variable-interchangeability orbits of the model, for
    {!Ilp.Solver.options.orbits}: registers left unpinned by the clique
    pre-assignment, identical-kind module groups the saturated-step fixing
    could not pin, and (when the Section 3.5 canonicalization rows were
    disabled) interchangeable sub-test sessions.  Every candidate passes
    {!Ilp.Symmetry.filter_verified}, so the list is safe to hand to the
    solver as-is; it is empty whenever the existing in-model symmetry
    reductions already pinned everything. *)

val objective_lower_bound : t -> int
(** A structural (combinatorial) lower bound on the model objective, on the
    same scale as {!Ilp.Model.objective_value} (add {!base_area} for the
    design-area scale).  Valid for every feasible solution of the encoding;
    computed from counts the formulation forces outright — SR registers
    (Eqs. 7-8: at least [ceil n_mod/k]), TPG registers (Eqs. 10 and 13: at
    least the maximum port count), BILBO/CBILBO upgrades when those roles
    must share registers (Eqs. 17/21), mux wires forced by
    simultaneously-alive operand/result variables and by distinct constant
    values, and the input wires of primary-input registers — combined with
    an exact DP for the cheapest spread of forced wires over mux sites.
    The LP relaxation of these encodings is near-trivial (it spreads
    thresholds fractionally), so this bound is what makes the reported
    optimality gap meaningful on instances the search cannot close. *)

val decode :
  t -> int array ->
  (Datapath.Netlist.t * Bist.Plan.t option, string) result
(** Rebuilds the data path and BIST plan ([None] for a reference encoding)
    from a solution vector; runs the
    full independent audits ({!Datapath.Netlist.make}, {!Bist.Plan.make})
    and cross-checks that the plan's objective cost equals the model
    objective plus {!base_area} — any mismatch reveals an encoding bug. *)

val vector_of_netlist : t -> Datapath.Netlist.t -> (int array, string) result
(** Solution vector for a reference ([k = 0]) encoding given a concrete data
    path; used to warm-start the reference ILP from a left-edge design. *)

val vector_of_plan : t -> Bist.Plan.t -> (int array, string) result
(** The exact solution vector representing a given plan (used to warm-start
    the solver from a heuristic design).  Fails if the plan does not match
    the encoding's problem, register count or k. *)
