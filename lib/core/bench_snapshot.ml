(* Bench snapshot file format (read v2..v5, write v5) and regression
   diffing.  The JSON parser below covers exactly the subset the
   snapshots use (objects, arrays, strings, numbers, booleans, null) —
   enough to round-trip our own files without a JSON dependency. *)

type row = {
  k : int;
  time_s : float;
  nodes : int;
  optimal : bool;
  area : int;
  overhead_pct : float;
  gap_pct : float;
  nodes_per_sec : float;
  phase_s : (string * float) list;
  waste_pct : float option;
  prune_shares : (string * float) list;
}

type circuit = {
  circuit : string;
  reference_area : int;
  reference_optimal : bool;
  wall_s : float;
  rows : row list;
}

type config = { portfolio : bool; cuts : bool; lp : string }

type t = {
  version : int;
  commit : string;
  budget_s : float;
  jobs : int;
  config : config;
  circuits : circuit list;
  total_wall_s : float;
}

(* ---------- JSON ---------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected '%s'" lit)
  in
  let pstring () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 't' -> Buffer.add_char buf '\t'
               | 'r' -> Buffer.add_char buf '\r'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape"
                   else begin
                     let code =
                       int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                     in
                     (* snapshots are ASCII; clamp the rest *)
                     Buffer.add_char buf
                       (if code < 128 then Char.chr code else '?');
                     pos := !pos + 4
                   end
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let pnumber () =
    let start = !pos in
    if !pos < n && s.[!pos] = '-' then incr pos;
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec pvalue () =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input"
    else
      match s.[!pos] with
      | '{' -> pobj ()
      | '[' -> parr ()
      | '"' -> Str (pstring ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | '-' | '0' .. '9' -> pnumber ()
      | c -> fail (Printf.sprintf "unexpected '%c'" c)
  and pobj () =
    expect '{';
    skip_ws ();
    if !pos < n && s.[!pos] = '}' then begin
      incr pos;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws ();
        let key = pstring () in
        expect ':';
        let v = pvalue () in
        fields := (key, v) :: !fields;
        skip_ws ();
        if !pos < n && s.[!pos] = ',' then begin
          incr pos;
          go ()
        end
        else expect '}'
      in
      go ();
      Obj (List.rev !fields)
    end
  and parr () =
    expect '[';
    skip_ws ();
    if !pos < n && s.[!pos] = ']' then begin
      incr pos;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec go () =
        let v = pvalue () in
        items := v :: !items;
        skip_ws ();
        if !pos < n && s.[!pos] = ',' then begin
          incr pos;
          go ()
        end
        else expect ']'
      in
      go ();
      Arr (List.rev !items)
    end
  in
  let v = pvalue () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

(* ---------- extraction ---------- *)

let field name = function
  | Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> raise (Parse_error (Printf.sprintf "missing field %S" name)))
  | _ -> raise (Parse_error (Printf.sprintf "expected object for %S" name))

let field_opt name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let as_num name = function
  | Num f -> f
  | _ -> raise (Parse_error (Printf.sprintf "field %S: expected number" name))

let as_int name v = int_of_float (as_num name v)

let as_str name = function
  | Str s -> s
  | _ -> raise (Parse_error (Printf.sprintf "field %S: expected string" name))

let as_bool name = function
  | Bool b -> b
  | _ -> raise (Parse_error (Printf.sprintf "field %S: expected bool" name))

let as_arr name = function
  | Arr l -> l
  | _ -> raise (Parse_error (Printf.sprintf "field %S: expected array" name))

let schema_version = function
  | "advbist-solver-bench/2" -> 2
  | "advbist-solver-bench/3" -> 3
  | "advbist-solver-bench/4" -> 4
  | "advbist-solver-bench/5" -> 5
  | s -> raise (Parse_error (Printf.sprintf "unknown schema %S" s))

let derive_nodes_per_sec ~nodes ~time_s =
  if time_s > 0.0 then float_of_int nodes /. time_s else 0.0

let row_of_json j =
  let time_s = as_num "time_s" (field "time_s" j) in
  let nodes = as_int "nodes" (field "nodes" j) in
  {
    k = as_int "k" (field "k" j);
    time_s;
    nodes;
    optimal = as_bool "optimal" (field "optimal" j);
    area = as_int "area" (field "area" j);
    overhead_pct = as_num "overhead_pct" (field "overhead_pct" j);
    gap_pct = as_num "gap_pct" (field "gap_pct" j);
    (* pre-v4 snapshots carry no throughput field; derive it so diffs
       against old baselines still compare like with like *)
    nodes_per_sec =
      (match field_opt "nodes_per_sec" j with
      | Some v -> as_num "nodes_per_sec" v
      | None -> derive_nodes_per_sec ~nodes ~time_s);
    phase_s =
      (match field_opt "phase_s" j with
      | Some (Obj fields) ->
          List.map (fun (name, v) -> (name, as_num name v)) fields
      | Some _ -> raise (Parse_error "phase_s: expected object")
      | None -> []);
    (* v5 post-mortem fields; pre-v5 snapshots simply lack them *)
    waste_pct =
      (match field_opt "waste_pct" j with
      | Some v -> Some (as_num "waste_pct" v)
      | None -> None);
    prune_shares =
      (match field_opt "prune_shares" j with
      | Some (Obj fields) ->
          List.map (fun (name, v) -> (name, as_num name v)) fields
      | Some _ -> raise (Parse_error "prune_shares: expected object")
      | None -> []);
  }

let circuit_of_json j =
  {
    circuit = as_str "circuit" (field "circuit" j);
    reference_area = as_int "reference_area" (field "reference_area" j);
    reference_optimal = as_bool "reference_optimal" (field "reference_optimal" j);
    wall_s = as_num "wall_s" (field "wall_s" j);
    rows = List.map row_of_json (as_arr "rows" (field "rows" j));
  }

let config_of_json j =
  {
    portfolio = as_bool "portfolio" (field "portfolio" j);
    cuts = as_bool "cuts" (field "cuts" j);
    lp = as_str "lp" (field "lp" j);
  }

let of_string s =
  try
    let j = parse_json s in
    Ok
      {
        version = schema_version (as_str "schema" (field "schema" j));
        commit = as_str "commit" (field "commit" j);
        budget_s = as_num "budget_s" (field "budget_s" j);
        jobs = as_int "jobs" (field "jobs" j);
        config = config_of_json (field "config" j);
        circuits = List.map circuit_of_json (as_arr "circuits" (field "circuits" j));
        total_wall_s = as_num "total_wall_s" (field "total_wall_s" j);
      }
  with
  | Parse_error msg -> Error msg
  | Failure msg -> Error msg

let of_file path =
  match
    In_channel.with_open_text path (fun ic -> In_channel.input_all ic)
  with
  | contents -> of_string contents
  | exception Sys_error msg -> Error msg

(* ---------- rendering (always v5) ---------- *)

let to_string t =
  let buf = Buffer.create 4096 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n";
  bpf "  \"schema\": \"advbist-solver-bench/5\",\n";
  bpf "  \"commit\": %S,\n" t.commit;
  bpf "  \"budget_s\": %g,\n" t.budget_s;
  bpf "  \"jobs\": %d,\n" t.jobs;
  bpf "  \"config\": { \"portfolio\": %b, \"cuts\": %b, \"lp\": %S },\n"
    t.config.portfolio t.config.cuts t.config.lp;
  bpf "  \"circuits\": [\n";
  List.iteri
    (fun ci c ->
      bpf
        "    { \"circuit\": %S, \"reference_area\": %d, \
         \"reference_optimal\": %b, \"wall_s\": %.3f,\n"
        c.circuit c.reference_area c.reference_optimal c.wall_s;
      bpf "      \"rows\": [\n";
      List.iteri
        (fun ri r ->
          bpf
            "        { \"k\": %d, \"time_s\": %.3f, \"nodes\": %d, \
             \"optimal\": %b, \"area\": %d, \"overhead_pct\": %.2f, \
             \"gap_pct\": %.2f, \"nodes_per_sec\": %.1f"
            r.k r.time_s r.nodes r.optimal r.area r.overhead_pct r.gap_pct
            r.nodes_per_sec;
          (match r.phase_s with
          | [] -> ()
          | phases ->
              bpf ",\n          \"phase_s\": { %s }"
                (String.concat ", "
                   (List.map
                      (fun (name, v) -> Printf.sprintf "%S: %.3f" name v)
                      phases)));
          (match r.waste_pct with
          | Some w -> bpf ",\n          \"waste_pct\": %.2f" w
          | None -> ());
          (match r.prune_shares with
          | [] -> ()
          | shares ->
              bpf ",\n          \"prune_shares\": { %s }"
                (String.concat ", "
                   (List.map
                      (fun (name, v) -> Printf.sprintf "%S: %.2f" name v)
                      shares)));
          bpf " }%s\n" (if ri < List.length c.rows - 1 then "," else " ]"))
        c.rows;
      bpf "    }%s\n" (if ci < List.length t.circuits - 1 then "," else ""))
    t.circuits;
  bpf "  ],\n";
  bpf "  \"total_wall_s\": %.3f\n" t.total_wall_s;
  bpf "}\n";
  Buffer.contents buf

(* ---------- diffing ---------- *)

type severity = Fail | Warn

type finding = {
  severity : severity;
  circuit : string;
  k : int option;
  what : string;
}

let pct_change ~from ~to_ =
  if from = 0.0 then if to_ = 0.0 then 0.0 else infinity
  else 100.0 *. (to_ -. from) /. from

(* Phase timings as shares of their own sum, so the comparison is about
   where the time went, not how much there was (absolute time already
   has its own check). *)
let phase_shares phases =
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 phases in
  if total <= 0.0 then []
  else List.map (fun (name, v) -> (name, 100.0 *. v /. total)) phases

let diff_row ~circuit (b : row) (c : row) =
  let findings = ref [] in
  let add severity what = findings := { severity; circuit; k = Some b.k; what } :: !findings in
  if c.area > b.area then
    add Fail (Printf.sprintf "area regression: %d -> %d" b.area c.area);
  if b.optimal && not c.optimal then
    add Fail
      (Printf.sprintf "lost optimality (was proven optimal at area %d)" b.area);
  (* Node counts are only comparable between finished searches: on a
     budget-limited row the count is machine throughput, not tree size. *)
  let node_pct = pct_change ~from:(float_of_int b.nodes) ~to_:(float_of_int c.nodes) in
  if b.optimal && c.optimal && Float.abs node_pct > 20.0 then begin
    (* Localize the tree-size move to the pruning machinery whose share
       of the closed nodes shifted most (v5 snapshots only): a smaller
       lp_bound share with a bigger cutoff share says the LP got weaker,
       not that propagation broke. *)
    let attribution =
      match (b.prune_shares, c.prune_shares) with
      | [], _ | _, [] -> ""
      | bs, cs ->
          let reasons =
            List.sort_uniq compare (List.map fst bs @ List.map fst cs)
          in
          let share l r = Option.value ~default:0.0 (List.assoc_opt r l) in
          let best =
            List.fold_left
              (fun acc r ->
                let d = share cs r -. share bs r in
                match acc with
                | Some (_, d') when Float.abs d' >= Float.abs d -> acc
                | _ -> Some (r, d))
              None reasons
          in
          (match best with
          | Some (r, d) when Float.abs d > 1.0 ->
              Printf.sprintf "; %s share %.0f%% -> %.0f%%" r (share bs r)
                (share cs r)
          | Some _ | None -> "")
    in
    add Warn
      (Printf.sprintf "node count moved %+.0f%% (%d -> %d)%s" node_pct b.nodes
         c.nodes attribution)
  end;
  (* Wasted work (v5): more of the tree opened above the final incumbent
     means the warm start / early incumbents got worse. *)
  (match (b.waste_pct, c.waste_pct) with
  | Some bw, Some cw when cw -. bw > 10.0 ->
      add Warn
        (Printf.sprintf "wasted work grew %.1f%% -> %.1f%% of nodes" bw cw)
  | _ -> ());
  if c.gap_pct -. b.gap_pct > 2.0 then
    add Warn
      (Printf.sprintf "gap grew %.2f -> %.2f points" b.gap_pct c.gap_pct);
  if
    c.time_s -. b.time_s > 0.1
    && pct_change ~from:b.time_s ~to_:c.time_s > 20.0
  then
    add Warn (Printf.sprintf "solve time %.3fs -> %.3fs" b.time_s c.time_s);
  (* Node throughput: the machine-speed check that complements the
     tree-size check above.  Only meaningful when both rows ran long
     enough for the rate to be a rate, and the baseline measured one. *)
  if
    b.time_s >= 0.05 && c.time_s >= 0.05 && b.nodes_per_sec > 0.0
    && pct_change ~from:b.nodes_per_sec ~to_:c.nodes_per_sec < -20.0
  then
    add Warn
      (Printf.sprintf "node throughput %.0f -> %.0f nodes/s (%+.0f%%)"
         b.nodes_per_sec c.nodes_per_sec
         (pct_change ~from:b.nodes_per_sec ~to_:c.nodes_per_sec));
  (match (phase_shares b.phase_s, phase_shares c.phase_s) with
  | [], _ | _, [] -> ()
  | bs, cs ->
      List.iter
        (fun (name, bshare) ->
          match List.assoc_opt name cs with
          | Some cshare when Float.abs (cshare -. bshare) > 10.0 ->
              add Warn
                (Printf.sprintf "phase %s share %.0f%% -> %.0f%%" name bshare
                   cshare)
          | Some _ | None -> ())
        bs);
  List.rev !findings

let diff_circuit (b : circuit) (c : circuit) =
  let findings = ref [] in
  let add severity k what =
    findings := { severity; circuit = b.circuit; k; what } :: !findings
  in
  if c.reference_area > b.reference_area then
    add Fail None
      (Printf.sprintf "reference area regression: %d -> %d" b.reference_area
         c.reference_area);
  if b.reference_optimal && not c.reference_optimal then
    add Fail None "reference lost optimality";
  List.iter
    (fun (br : row) ->
      match List.find_opt (fun (cr : row) -> cr.k = br.k) c.rows with
      | None -> add Fail (Some br.k) "row missing from current snapshot"
      | Some cr -> findings := List.rev_append (diff_row ~circuit:b.circuit br cr) !findings)
    b.rows;
  List.iter
    (fun (cr : row) ->
      if not (List.exists (fun (br : row) -> br.k = cr.k) b.rows) then
        add Warn (Some cr.k) "row not present in baseline")
    c.rows;
  List.rev !findings

let diff ~baseline ~current =
  let findings = ref [] in
  List.iter
    (fun (b : circuit) ->
      match
        List.find_opt
          (fun (c : circuit) -> c.circuit = b.circuit)
          current.circuits
      with
      | None ->
          findings :=
            {
              severity = Fail;
              circuit = b.circuit;
              k = None;
              what = "circuit missing from current snapshot";
            }
            :: !findings
      | Some c -> findings := List.rev_append (diff_circuit b c) !findings)
    baseline.circuits;
  List.iter
    (fun (c : circuit) ->
      if
        not
          (List.exists
             (fun (b : circuit) -> b.circuit = c.circuit)
             baseline.circuits)
      then
        findings :=
          {
            severity = Warn;
            circuit = c.circuit;
            k = None;
            what = "circuit not present in baseline";
          }
          :: !findings)
    current.circuits;
  let ordered = List.rev !findings in
  List.stable_sort
    (fun a b ->
      compare
        (match a.severity with Fail -> 0 | Warn -> 1)
        (match b.severity with Fail -> 0 | Warn -> 1))
    ordered

let has_failures findings =
  List.exists (fun f -> f.severity = Fail) findings

let render_report ~baseline ~current findings =
  let buf = Buffer.create 1024 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "bench diff: baseline %s (budget %gs) vs current %s (budget %gs)\n"
    baseline.commit baseline.budget_s current.commit current.budget_s;
  if baseline.budget_s <> current.budget_s then
    bpf "  note: budgets differ; time and node comparisons are not meaningful\n";
  let fails = List.filter (fun f -> f.severity = Fail) findings in
  let warns = List.filter (fun f -> f.severity = Warn) findings in
  List.iter
    (fun f ->
      bpf "  %s %s%s: %s\n"
        (match f.severity with Fail -> "FAIL" | Warn -> "warn")
        f.circuit
        (match f.k with Some k -> Printf.sprintf " k=%d" k | None -> "")
        f.what)
    findings;
  bpf "%s: %d failure%s, %d warning%s\n"
    (if fails = [] then "PASS" else "FAIL")
    (List.length fails)
    (if List.length fails = 1 then "" else "s")
    (List.length warns)
    (if List.length warns = 1 then "" else "s");
  Buffer.contents buf
