(* Benchmark harness: regenerates every table of the paper's evaluation
   (Section 4) and times the core kernels with Bechamel.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- tables       -- only the table regeneration
     dune exec bench/main.exe -- micro        -- only the Bechamel benches
     dune exec bench/main.exe -- json         -- solver perf -> BENCH_solver.json
     dune exec bench/main.exe -- smoke        -- CI gate vs the committed snapshot
     dune exec bench/main.exe -- diff A B     -- regression diff of two snapshots
     dune exec bench/main.exe -- perf         -- kernel micro-rates (non-gating)

   The ILP budget per instance defaults to 10 s (the paper allowed 24 CPU
   hours per instance on CPLEX 6.0); override with ADVBIST_BENCH_BUDGET
   (seconds).  ADVBIST_JOBS > 1 runs each solve's tree search on that many
   work-stealing domains (the k-sweep itself is sequential so each row can
   seed the next).  Timed-out entries are marked with '*', exactly like
   the paper's Table 2.

   Snapshot plumbing (see Advbist.Bench_snapshot for the schema):
     ADVBIST_BENCH_JSON      -- json: output path (default BENCH_solver.json)
     ADVBIST_BENCH_JSON_OUT  -- smoke: also write the freshly measured
                                sweep as a snapshot here
     ADVBIST_BENCH_DIFF_OUT  -- diff: also write the report here *)

let budget =
  match Sys.getenv_opt "ADVBIST_BENCH_BUDGET" with
  | Some s -> (try float_of_string s with Failure _ -> 10.0)
  | None -> 10.0

let jobs = Ilp.Pool.default_jobs ()

let line = String.make 78 '-'

(* ---------------------------------------------------------------- Table 1 *)

let table1 () =
  Printf.printf "%s\nTable 1: transistor counts of 8-bit test registers and muxes\n%s\n"
    line line;
  Printf.printf "register kinds (paper = this repo by construction):\n";
  List.iter
    (fun kind ->
      Printf.printf "  %-7s %4d\n"
        (Datapath.Area.reg_kind_name kind)
        (Datapath.Area.register kind))
    Datapath.Area.[ Plain; Tpg; Sr; Bilbo; Cbilbo ];
  Printf.printf "multiplexers (#inputs -> transistors):\n ";
  List.iter (fun n -> Printf.printf " %d:%d" n (Datapath.Area.mux n)) [ 2; 3; 4; 5; 6; 7 ];
  Printf.printf "\n  (>7 inputs: linear extrapolation at 54/input)\n\n"

(* ---------------------------------------------------------------- Table 2 *)

type t2_measured = {
  mutable m_rows : (string * (float * float * bool) option array) list;
}

let table2 () =
  Printf.printf "%s\nTable 2: ADVBIST area overhead (%%) and solve time per k-test session\n" line;
  Printf.printf "budget: %.0fs per ILP (paper: 24 CPU hours on CPLEX 6.0); '*' = limit hit\n%s\n" budget line;
  Printf.printf "%-9s %-4s | %-18s | %-18s\n" "circuit" "k" "paper (OH%, time)" "this repo (OH%, time)";
  let acc = { m_rows = [] } in
  List.iter
    (fun (row : Paper_data.table2_row) ->
      match Circuits.Suite.find row.Paper_data.t2_circuit with
      | None -> ()
      | Some p ->
          let reference =
            match Advbist.Synth.reference ~time_limit:budget p with
            | Ok r -> r
            | Error msg -> failwith msg
          in
          let n = Dfg.Problem.n_modules p in
          let measured = Array.make 4 None in
          for k = 1 to min n 4 do
            match Advbist.Synth.synthesize ~time_limit:budget p ~k with
            | Error msg ->
                Printf.printf "%-9s k=%d  ERROR %s\n" row.Paper_data.t2_circuit
                  k msg
            | Ok o ->
                let oh =
                  Bist.Plan.overhead_pct o.Advbist.Synth.plan
                    ~reference:reference.Advbist.Synth.ref_area
                in
                measured.(k - 1) <-
                  Some (oh, o.Advbist.Synth.solve_time, o.Advbist.Synth.optimal);
                let paper =
                  match row.Paper_data.overheads.(k - 1) with
                  | Some v ->
                      Printf.sprintf "%5.1f%s %8s" v
                        (if row.Paper_data.starred then "*" else " ")
                        row.Paper_data.times.(k - 1)
                  | None -> "      -"
                in
                Printf.printf "%-9s k=%d  | %-18s | %5.1f%s %6.1fs\n"
                  row.Paper_data.t2_circuit k paper oh
                  (if o.Advbist.Synth.optimal then " " else "*")
                  o.Advbist.Synth.solve_time
          done;
          acc.m_rows <- (row.Paper_data.t2_circuit, measured) :: acc.m_rows)
    Paper_data.table2;
  (* shape check: overhead weakly decreasing in k for proven-optimal runs *)
  Printf.printf "\nshape: overhead non-increasing with k (optimal entries)\n";
  List.iter
    (fun (name, measured) ->
      let ok = ref true in
      for k = 1 to 2 do
        match (measured.(k - 1), measured.(k)) with
        | Some (o1, _, true), Some (o2, _, true) ->
            if o2 > o1 +. 1e-9 then ok := false
        | _, _ -> ()
      done;
      Printf.printf "  %-9s %s\n" name (if !ok then "holds" else "VIOLATED"))
    (List.rev acc.m_rows);
  Printf.printf "\n"

(* ---------------------------------------------------------------- Table 3 *)

let table3 () =
  Printf.printf "%s\nTable 3: high-level BIST synthesis systems at maximal k\n%s\n" line line;
  Printf.printf "%-9s %-8s | %-30s | %-34s\n" "circuit" "method"
    "paper R T S B C  M  area  OH%" "this repo R T S B C  M  area  OH%";
  let dominance_ok = ref true in
  List.iter
    (fun (row : Paper_data.table3_row) ->
      match Circuits.Suite.find row.Paper_data.t3_circuit with
      | None -> ()
      | Some p ->
          let k = Dfg.Problem.n_modules p in
          let reference =
            match Advbist.Synth.reference ~time_limit:budget p with
            | Ok r -> r
            | Error msg -> failwith msg
          in
          Printf.printf "%-9s %-8s | %d            %2d  %4d        | %d            %2d  %4d\n"
            row.Paper_data.t3_circuit "Ref." row.Paper_data.ref_r
            row.Paper_data.ref_m row.Paper_data.ref_area
            reference.Advbist.Synth.ref_netlist.Datapath.Netlist.n_registers
            (Datapath.Netlist.total_mux_inputs
               reference.Advbist.Synth.ref_netlist)
            reference.Advbist.Synth.ref_area;
          let advbist_area = ref max_int in
          List.iter
            (fun (pm : Paper_data.table3_method) ->
              let result =
                match pm.Paper_data.m_name with
                | "ADVBIST" ->
                    Result.map
                      (fun (o : Advbist.Synth.outcome) -> o.Advbist.Synth.plan)
                      (Advbist.Synth.synthesize ~time_limit:budget p ~k)
                | "ADVAN" -> Baselines.Advan.synthesize p ~k
                | "RALLOC" -> Baselines.Ralloc.synthesize p ~k
                | "BITS" -> Baselines.Bits.synthesize p ~k
                | other -> Error ("unknown method " ^ other)
              in
              match result with
              | Error msg ->
                  Printf.printf "%-9s %-8s | (paper: area %4d) | ERROR %s\n"
                    "" pm.Paper_data.m_name pm.Paper_data.area msg
              | Ok plan ->
                  let tp, sr, bi, cb = Bist.Plan.kind_counts plan in
                  let area = Bist.Plan.area plan in
                  if pm.Paper_data.m_name = "ADVBIST" then advbist_area := area
                  else if area < !advbist_area then dominance_ok := false;
                  Printf.printf
                    "%-9s %-8s | %d %d %d %d %d %2d  %4d  %4.1f | %d %d %d %d %d %2d  %4d  %4.1f\n"
                    "" pm.Paper_data.m_name pm.Paper_data.r pm.Paper_data.t
                    pm.Paper_data.s pm.Paper_data.b pm.Paper_data.c
                    pm.Paper_data.mux_inputs pm.Paper_data.area pm.Paper_data.oh
                    plan.Bist.Plan.netlist.Datapath.Netlist.n_registers tp sr
                    bi cb
                    (Datapath.Netlist.total_mux_inputs plan.Bist.Plan.netlist)
                    area
                    (Bist.Plan.overhead_pct plan
                       ~reference:reference.Advbist.Synth.ref_area))
            row.Paper_data.rows)
    Paper_data.table3;
  Printf.printf "\nshape: ADVBIST dominates every baseline on every circuit: %s\n\n"
    (if !dominance_ok then "holds" else "VIOLATED")

(* ------------------------------------------------------------- Ablations *)

let ablation_symmetry () =
  Printf.printf "%s\nAblation (Sec. 3.5): search-space reduction by symmetry pre-assignment\n%s\n" line line;
  Printf.printf "%-9s %-4s | %12s %9s | %14s %9s\n" "circuit" "k"
    "with: nodes" "time" "without: nodes" "time";
  List.iter
    (fun name ->
      match Circuits.Suite.find name with
      | None -> ()
      | Some p ->
          List.iter
            (fun k ->
              let run symmetry =
                match
                  Advbist.Synth.synthesize ~time_limit:budget ~symmetry p ~k
                with
                | Ok o ->
                    ( o.Advbist.Synth.nodes,
                      o.Advbist.Synth.solve_time,
                      o.Advbist.Synth.optimal )
                | Error _ -> (0, nan, false)
              in
              let n1, t1, o1 = run true in
              let n2, t2, o2 = run false in
              Printf.printf "%-9s k=%d  | %12d %7.2fs%s | %14d %7.2fs%s\n" name
                k n1 t1
                (if o1 then "" else "*")
                n2 t2
                (if o2 then "" else "*"))
            [ 1 ])
    [ "tseng"; "paulin" ];
  Printf.printf "\n"

let ablation_breakdown () =
  Printf.printf "%s\nAblation: where ADVBIST's advantage comes from (Sec. 4.2:\n\"largely due to less multiplexer area\")\n%s\n" line line;
  Printf.printf "%-9s %-8s %8s %8s %8s\n" "circuit" "method" "reg-area"
    "mux-area" "total";
  List.iter
    (fun (name, p) ->
      let k = Dfg.Problem.n_modules p in
      let show mname (plan : Bist.Plan.t) =
        let mux = Datapath.Netlist.mux_area plan.Bist.Plan.netlist in
        let area = Bist.Plan.area plan in
        Printf.printf "%-9s %-8s %8d %8d %8d\n" name mname (area - mux) mux
          area
      in
      (match Advbist.Synth.synthesize ~time_limit:budget p ~k with
      | Ok o -> show "ADVBIST" o.Advbist.Synth.plan
      | Error _ -> ());
      List.iter
        (fun (mname, f) ->
          match f p ~k with Ok plan -> show mname plan | Error _ -> ())
        [
          ("ADVAN", Baselines.Advan.synthesize);
          ("RALLOC", Baselines.Ralloc.synthesize);
          ("BITS", Baselines.Bits.synthesize);
        ])
    Circuits.Suite.all;
  Printf.printf "\n"

let ablation_concurrent_vs_sequential () =
  Printf.printf "%s\nAblation: concurrent ILP vs decoupled synthesis (left-edge data path +\noptimal sessions) - the paper's core claim is that concurrency wins\n%s\n" line line;
  Printf.printf "%-9s %-4s %10s %12s %8s\n" "circuit" "k" "decoupled"
    "concurrent" "saved";
  List.iter
    (fun (name, p) ->
      let k = Dfg.Problem.n_modules p in
      match
        ( Advbist.Heuristic.synthesize p ~k,
          Advbist.Synth.synthesize ~time_limit:budget p ~k )
      with
      | Ok h, Ok o ->
          let ha = Bist.Plan.area h.Advbist.Session_opt.plan in
          Printf.printf "%-9s k=%d  %10d %12d %7.1f%%\n" name k ha
            o.Advbist.Synth.area
            (100.0 *. float_of_int (ha - o.Advbist.Synth.area) /. float_of_int ha)
      | Error msg, _ | _, Error msg -> Printf.printf "%-9s %s\n" name msg)
    Circuits.Suite.all;
  Printf.printf "\n"

let scalability () =
  Printf.printf "%s\nScalability: beyond the paper's circuits (5th-order elliptic wave filter)\n%s\n" line line;
  let p = Circuits.Suite.ewf in
  let g = p.Dfg.Problem.dfg in
  Printf.printf "ewf: %d ops, %d steps, %d registers, %d modules\n"
    (Dfg.Graph.n_ops g) g.Dfg.Graph.n_steps
    (Dfg.Problem.min_registers p) (Dfg.Problem.n_modules p);
  (match Advbist.Heuristic.synthesize p ~k:4 with
  | Ok o ->
      Printf.printf "  decoupled heuristic: area %d (%.2fs)\n"
        (Bist.Plan.area o.Advbist.Session_opt.plan) o.Advbist.Session_opt.time_s
  | Error msg -> Printf.printf "  decoupled heuristic: %s\n" msg);
  List.iter
    (fun k ->
      match Advbist.Synth.synthesize ~time_limit:budget p ~k with
      | Ok o ->
          Printf.printf "  concurrent ILP k=%d: area %d%s (%.1fs, %d nodes)\n" k
            o.Advbist.Synth.area
            (if o.Advbist.Synth.optimal then "" else " *")
            o.Advbist.Synth.solve_time o.Advbist.Synth.nodes
      | Error msg -> Printf.printf "  concurrent ILP k=%d: %s\n" k msg)
    [ 1; 4 ];
  Printf.printf "\n"

(* ------------------------------------------------------ Bechamel microbench *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let fig1 = Dfg.Benchmarks.fig1 in
  let tests =
    [
      (* one Test.make per paper table, timing its core computational unit *)
      Test.make ~name:"table1:area-model"
        (Staged.stage (fun () ->
             List.iter
               (fun n -> ignore (Datapath.Area.mux n))
               [ 2; 3; 4; 5; 6; 7; 8 ]));
      Test.make ~name:"table2:advbist-fig1-k2"
        (Staged.stage (fun () ->
             ignore (Advbist.Synth.synthesize ~time_limit:5.0 fig1 ~k:2)));
      Test.make ~name:"table3:baseline-advan-tseng"
        (Staged.stage (fun () ->
             ignore
               (Baselines.Advan.synthesize Dfg.Benchmarks.tseng
                  ~k:3)));
      (* supporting kernels *)
      Test.make ~name:"encoding:build-tseng-k3"
        (Staged.stage (fun () ->
             ignore
               (Advbist.Encoding.build Dfg.Benchmarks.tseng ~n_regs:5 ~k:3)));
      Test.make ~name:"session-opt:tseng-k3"
        (Staged.stage
           (let d =
              match Advbist.Heuristic.netlist Dfg.Benchmarks.tseng with
              | Ok d -> d
              | Error msg -> failwith msg
            in
            fun () -> ignore (Advbist.Session_opt.solve d ~k:3)));
      Test.make ~name:"lfsr:255-patterns"
        (Staged.stage (fun () ->
             let l = Bist.Lfsr.create ~width:8 () in
             for _ = 1 to 255 do
               ignore (Bist.Lfsr.step l)
             done));
      Test.make ~name:"fault-sim:adder-64-patterns"
        (Staged.stage
           (let c = Bist.Gates.build Dfg.Op_kind.Add ~width:8 in
            fun () ->
              ignore (Bist.Fault_sim.random_pattern_coverage c ~n_patterns:64 ())));
      Test.make ~name:"left-edge:wavelet6"
        (Staged.stage (fun () ->
             ignore
               (Hls.Regalloc.allocate
                  (Option.get (Circuits.Suite.find "wavelet6")).Dfg.Problem.dfg)));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances test
  in
  Printf.printf "%s\nBechamel micro-benchmarks (monotonic clock per run)\n%s\n" line line;
  List.iter
    (fun test ->
      let results = benchmark test in
      let results_ols =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                       ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Printf.printf "  %-32s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-32s (no estimate)\n" name)
        results_ols)
    tests;
  Printf.printf "\n"

(* ------------------------------------------------- solver perf tracking *)

(* Machine-readable solver performance: one full k-sweep per circuit at
   the current budget, recorded as BENCH_solver.json (wall time, node
   count and optimality per circuit per k) so the perf trajectory is
   tracked across PRs.  Hand-rolled JSON — no external dependency. *)
(* The commit the numbers were measured at, so a snapshot diff is
   attributable to a change rather than to a stale working tree. *)
let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with Unix.Unix_error _ | Sys_error _ -> "unknown"

(* Working-tree entries from `git status --porcelain`, minus the snapshot
   file itself (regenerating it is the whole point of the run). *)
let dirty_entries ~ignore_path =
  try
    let ic = Unix.open_process_in "git status --porcelain 2>/dev/null" in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> ());
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 ->
        List.rev
          (List.filter
             (fun line ->
               String.length line > 3
               &&
               let path = String.sub line 3 (String.length line - 3) in
               path <> ignore_path)
             !lines)
    | _ -> []
  with Unix.Unix_error _ | Sys_error _ -> []

(* One full k-sweep per circuit, with solver stats on, assembled into a
   schema-v5 snapshot (Advbist.Bench_snapshot) — the shared measurement
   core of the [json] and [smoke] arms.  The v5 post-mortem fields come
   from a second, separately-traced sweep: tracing costs per-node time,
   so on budget-limited rows it would degrade the headline areas the
   gate compares — the measured pass stays untraced and only the
   attribution percentages are read off the traced twin (joined by k;
   roughly doubles the run). *)
let run_snapshot ~tag () =
  let started = Unix.gettimeofday () in
  let circuits =
    List.filter_map
      (fun (name, p) ->
        Printf.printf "%s: sweeping %s (k = 1..%d, %d jobs)...\n%!" tag name
          (Dfg.Problem.n_modules p)
          jobs;
        let t0 = Unix.gettimeofday () in
        match Advbist.Synth.sweep ~time_limit:budget ~jobs ~stats:true p with
        | Error msg ->
            Printf.printf "%s: %s: %s\n" tag name msg;
            None
        | Ok (reference, rows) ->
            let wall = Unix.gettimeofday () -. t0 in
            let explain_by_k =
              match Advbist.Synth.sweep ~time_limit:budget ~jobs ~explain:true p with
              | Ok (_, erows) ->
                  List.filter_map
                    (fun (er : Advbist.Synth.sweep_row) ->
                      Option.map
                        (fun rep -> (er.Advbist.Synth.k, rep))
                        er.Advbist.Synth.outcome.Advbist.Synth.explain)
                    erows
              | Error _ -> []
            in
            Some
              {
                Advbist.Bench_snapshot.circuit = name;
                reference_area = reference.Advbist.Synth.ref_area;
                reference_optimal = reference.Advbist.Synth.ref_optimal;
                wall_s = wall;
                rows =
                  List.map
                    (fun (row : Advbist.Synth.sweep_row) ->
                      let o = row.Advbist.Synth.outcome in
                      {
                        Advbist.Bench_snapshot.k = row.Advbist.Synth.k;
                        time_s = o.Advbist.Synth.solve_time;
                        nodes = o.Advbist.Synth.nodes;
                        optimal = o.Advbist.Synth.optimal;
                        area = o.Advbist.Synth.area;
                        overhead_pct = row.Advbist.Synth.overhead_pct;
                        gap_pct = o.Advbist.Synth.gap_pct;
                        nodes_per_sec =
                          (if o.Advbist.Synth.solve_time > 0.0 then
                             float_of_int o.Advbist.Synth.nodes
                             /. o.Advbist.Synth.solve_time
                           else 0.0);
                        phase_s =
                          (match o.Advbist.Synth.stats with
                          | Some st -> Ilp.Stats.phases st
                          | None -> []);
                        waste_pct =
                          Option.map
                            (fun (r : Ilp.Replay.report) ->
                              r.Ilp.Replay.waste_pct)
                            (List.assoc_opt row.Advbist.Synth.k explain_by_k);
                        prune_shares =
                          (match List.assoc_opt row.Advbist.Synth.k explain_by_k with
                          | Some r -> Ilp.Replay.prune_shares r
                          | None -> []);
                      })
                    rows;
              })
      Circuits.Suite.all
  in
  {
    Advbist.Bench_snapshot.version = 5;
    commit = git_commit ();
    budget_s = budget;
    jobs;
    (* what Synth.solver_options actually runs the sweep with *)
    config =
      { Advbist.Bench_snapshot.portfolio = false; cuts = false; lp = "root<=1500" };
    circuits;
    total_wall_s = Unix.gettimeofday () -. started;
  }

let write_snapshot snapshot path =
  let oc = open_out path in
  output_string oc (Advbist.Bench_snapshot.to_string snapshot);
  close_out oc

let bench_json () =
  let path =
    Option.value (Sys.getenv_opt "ADVBIST_BENCH_JSON")
      ~default:"BENCH_solver.json"
  in
  (* The snapshot stamps HEAD as the commit its numbers belong to; on a
     dirty tree that attribution would be a lie, so refuse to run unless
     explicitly overridden. *)
  let snapshot_rel = Filename.basename path in
  (match dirty_entries ~ignore_path:snapshot_rel with
  | [] -> ()
  | entries when Sys.getenv_opt "ADVBIST_BENCH_ALLOW_DIRTY" = Some "1" ->
      Printf.eprintf
        "json: WARNING: dirty tree (%d entries); commit stamp %s is not \
         trustworthy\n%!"
        (List.length entries) (git_commit ())
  | entries ->
      Printf.eprintf
        "json: refusing to run on a dirty tree — the snapshot would stamp \
         commit %s for results it was not produced by.\n\
         Uncommitted changes:\n"
        (git_commit ());
      List.iter (fun l -> Printf.eprintf "  %s\n" l) entries;
      Printf.eprintf
        "Commit (or stash) first, or set ADVBIST_BENCH_ALLOW_DIRTY=1 to \
         override.\n%!";
      exit 1);
  write_snapshot (run_snapshot ~tag:"json" ()) path;
  Printf.printf "json: wrote %s\n" path

(* CI smoke: the canonical provable instance (tseng k=1) must still prove
   optimality inside the budget, and no (circuit, k) row may produce a
   worse design area than the committed BENCH_solver.json snapshot.  Exit
   status 1 on any regression, so a bounding-strength or warm-start
   regression fails `make ci` fast.  With ADVBIST_BENCH_JSON_OUT set the
   freshly measured sweep is also written as a snapshot — `make
   bench-diff` feeds that to the [diff] arm for the full comparison.
   With ADVBIST_BENCH_TRACE_OUT / ADVBIST_BENCH_EXPLAIN_OUT set, the
   tseng k=1 run additionally leaves its JSONL search trace and the
   Ilp.Replay post-mortem report behind as CI artifacts. *)
let smoke () =
  let failures = ref 0 in
  (match Circuits.Suite.find "tseng" with
  | None ->
      prerr_endline "smoke: tseng circuit missing";
      exit 1
  | Some p -> (
      let trace_out = Sys.getenv_opt "ADVBIST_BENCH_TRACE_OUT" in
      let explain_out = Sys.getenv_opt "ADVBIST_BENCH_EXPLAIN_OUT" in
      let trace = Option.map Ilp.Trace.file trace_out in
      let explain = explain_out <> None in
      match Advbist.Synth.synthesize ~time_limit:budget ?trace ~explain p ~k:1 with
      | Error msg ->
          Printf.eprintf "smoke: tseng k=1 failed: %s\n" msg;
          exit 1
      | Ok o ->
          Option.iter Ilp.Trace.close trace;
          Option.iter
            (fun path -> Printf.printf "smoke: wrote %s\n" path)
            trace_out;
          (match (explain_out, o.Advbist.Synth.explain) with
          | Some path, Some report ->
              let oc = open_out path in
              let ppf = Format.formatter_of_out_channel oc in
              Format.fprintf ppf "%a@?" Ilp.Replay.render_report report;
              close_out oc;
              Printf.printf "smoke: wrote %s\n" path
          | Some path, None ->
              Printf.eprintf "smoke: no explain report captured for %s\n" path
          | None, _ -> ());
          Printf.printf
            "smoke: tseng k=1 area=%d optimal=%b nodes=%d time=%.3fs\n"
            o.Advbist.Synth.area o.Advbist.Synth.optimal o.Advbist.Synth.nodes
            o.Advbist.Synth.solve_time;
          if not o.Advbist.Synth.optimal then begin
            prerr_endline "smoke: FAILED - optimality not proven within budget";
            incr failures
          end));
  (* per-row area regression gate vs the committed snapshot *)
  let snapshot_path = "BENCH_solver.json" in
  let json_out = Sys.getenv_opt "ADVBIST_BENCH_JSON_OUT" in
  let have_baseline = Sys.file_exists snapshot_path in
  if not have_baseline && json_out = None then
    Printf.printf "smoke: no %s; skipping area-regression gate\n" snapshot_path
  else begin
    let current = run_snapshot ~tag:"smoke" () in
    (match json_out with
    | Some path ->
        write_snapshot current path;
        Printf.printf "smoke: wrote %s\n" path
    | None -> ());
    if have_baseline then
      match Advbist.Bench_snapshot.of_file snapshot_path with
      | Error msg ->
          Printf.eprintf "smoke: cannot parse %s: %s\n" snapshot_path msg;
          incr failures
      | Ok baseline ->
          List.iter
            (fun (bc : Advbist.Bench_snapshot.circuit) ->
              match
                List.find_opt
                  (fun (cc : Advbist.Bench_snapshot.circuit) ->
                    cc.Advbist.Bench_snapshot.circuit
                    = bc.Advbist.Bench_snapshot.circuit)
                  current.Advbist.Bench_snapshot.circuits
              with
              | None ->
                  Printf.eprintf "smoke: %s sweep failed or disappeared\n"
                    bc.Advbist.Bench_snapshot.circuit;
                  incr failures
              | Some cc ->
                  List.iter
                    (fun (br : Advbist.Bench_snapshot.row) ->
                      match
                        List.find_opt
                          (fun (cr : Advbist.Bench_snapshot.row) ->
                            cr.Advbist.Bench_snapshot.k
                            = br.Advbist.Bench_snapshot.k)
                          cc.Advbist.Bench_snapshot.rows
                      with
                      | None ->
                          Printf.eprintf "smoke: %s k=%d row disappeared\n"
                            bc.Advbist.Bench_snapshot.circuit
                            br.Advbist.Bench_snapshot.k;
                          incr failures
                      | Some cr ->
                          if
                            cr.Advbist.Bench_snapshot.area
                            > br.Advbist.Bench_snapshot.area
                          then begin
                            Printf.eprintf
                              "smoke: AREA REGRESSION %s k=%d: %d > committed \
                               %d\n"
                              bc.Advbist.Bench_snapshot.circuit
                              br.Advbist.Bench_snapshot.k
                              cr.Advbist.Bench_snapshot.area
                              br.Advbist.Bench_snapshot.area;
                            incr failures
                          end)
                    bc.Advbist.Bench_snapshot.rows;
                  Printf.printf "smoke: %s areas no worse than snapshot\n%!"
                    bc.Advbist.Bench_snapshot.circuit)
            baseline.Advbist.Bench_snapshot.circuits
  end;
  if !failures > 0 then begin
    Printf.eprintf "smoke: FAILED (%d regression(s))\n" !failures;
    exit 1
  end

(* ------------------------------------------------- kernel micro-benchmark *)

(* `perf` arm: allocation-free kernel rates on a fixed instance (tseng
   k=1), for the CI artifact next to bench_diff.txt.  Two numbers:

   - simplex re-solve iterations/s: the warm dual-simplex engine is
     driven through a deterministic cycle of bound tightenings and
     re-solves (the node-LP access pattern, minus the search around it);
   - propagation sweeps/s: full worklist fixpoints over the presolved
     model's rows via Ilp.Solver.propagation_rate.

   Non-gating by design: rates are machine-dependent, so the artifact is
   for eyeballing trends across CI runs, not a pass/fail check. *)
let perf () =
  let p =
    match Circuits.Suite.find "tseng" with
    | Some p -> p
    | None ->
        prerr_endline "perf: tseng circuit missing";
        exit 1
  in
  let e = Advbist.Encoding.build p ~n_regs:(Dfg.Problem.min_registers p) ~k:1 in
  let model, _ = Ilp.Presolve.strengthen e.Advbist.Encoding.model in
  Printf.printf "perf: %s\n" (Ilp.Model.stats model);
  (* simplex: warm re-solves under a rolling window of 0/1 bound fixes *)
  (match Ilp.Simplex.instance_of_model model with
  | None -> Printf.printf "perf: simplex engine unavailable (unbounded vars)\n"
  | Some inst ->
      ignore (Ilp.Simplex.resolve ~max_iters:20_000 inst);
      let n = Ilp.Model.n_vars model in
      let lb = Ilp.Model.lower_bounds model
      and ub = Ilp.Model.upper_bounds model in
      let resolves = 2_000 in
      let iters0 = Ilp.Simplex.iters inst in
      let t0 = Unix.gettimeofday () in
      for r = 0 to resolves - 1 do
        (* fix a sliding pair of binaries, re-solve, release them — a
           deterministic stand-in for dive-and-backtrack bound traffic *)
        let v1 = r mod n and v2 = (7 * r + 3) mod n in
        Ilp.Simplex.set_bounds inst v1 ~lo:(float_of_int ub.(v1))
          ~up:(float_of_int ub.(v1));
        Ilp.Simplex.set_bounds inst v2 ~lo:(float_of_int lb.(v2))
          ~up:(float_of_int lb.(v2));
        ignore (Ilp.Simplex.resolve ~max_iters:40 inst);
        Ilp.Simplex.set_bounds inst v1 ~lo:(float_of_int lb.(v1))
          ~up:(float_of_int ub.(v1));
        Ilp.Simplex.set_bounds inst v2 ~lo:(float_of_int lb.(v2))
          ~up:(float_of_int ub.(v2))
      done;
      let dt = Unix.gettimeofday () -. t0 in
      let iters = Ilp.Simplex.iters inst - iters0 in
      Printf.printf
        "perf: simplex %d re-solves, %d iters in %.3fs = %.0f resolves/s, \
         %.0f iters/s\n"
        resolves iters dt
        (float_of_int resolves /. dt)
        (float_of_int iters /. dt));
  (* propagation: full fixpoint sweeps on the same model *)
  let sweeps = 2_000 in
  let rate = Ilp.Solver.propagation_rate model ~sweeps in
  Printf.printf "perf: propagation %d sweeps = %.0f sweeps/s\n" sweeps rate

(* Snapshot regression diff: FAIL on area/optimality/coverage losses,
   warn on node-count, gap, time and phase-share drift. *)
let diff_cmd () =
  if Array.length Sys.argv < 4 then begin
    prerr_endline "usage: main.exe diff BASELINE.json CURRENT.json";
    exit 2
  end;
  let load path =
    match Advbist.Bench_snapshot.of_file path with
    | Ok t -> t
    | Error msg ->
        Printf.eprintf "diff: %s: %s\n" path msg;
        exit 2
  in
  let baseline = load Sys.argv.(2) in
  let current = load Sys.argv.(3) in
  let findings = Advbist.Bench_snapshot.diff ~baseline ~current in
  let report =
    Advbist.Bench_snapshot.render_report ~baseline ~current findings
  in
  print_string report;
  (match Sys.getenv_opt "ADVBIST_BENCH_DIFF_OUT" with
  | Some path ->
      let oc = open_out path in
      output_string oc report;
      close_out oc
  | None -> ());
  if Advbist.Bench_snapshot.has_failures findings then exit 1

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  if what = "smoke" then smoke ();
  if what = "json" then bench_json ();
  if what = "diff" then diff_cmd ();
  if what = "perf" then perf ();
  if what = "all" || what = "tables" then begin
    table1 ();
    table2 ();
    table3 ();
    ablation_symmetry ();
    ablation_breakdown ();
    ablation_concurrent_vs_sequential ();
    scalability ()
  end;
  if what = "all" || what = "micro" then micro ()
