(* ilp_cli — standalone driver for the ILP substrate: solve CPLEX-LP files
   with the branch & bound solver or just their LP relaxation.

     dune exec bin/ilp_cli.exe -- solve model.lp [-t SECONDS]
     dune exec bin/ilp_cli.exe -- relax model.lp
     dune exec bin/ilp_cli.exe -- stats model.lp *)

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Model in CPLEX LP format.")

let time_limit_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "t"; "time-limit" ] ~docv:"SECONDS" ~doc:"Solver time limit.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log incumbents.")

let portfolio_arg =
  Arg.(
    value & flag
    & info [ "portfolio" ]
        ~doc:
          "Race three diverse solver configurations on a domain pool with \
           a shared incumbent bound; the first completed proof wins.")

let cuts_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "cuts" ] ~docv:"on|off"
        ~doc:
          "Root cut loop (lifted cover + clique cuts appended before \
           branching).  Default: on.")

let pricing_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("dantzig", Ilp.Simplex.Dantzig); ("devex", Ilp.Simplex.Devex) ])
        Ilp.Simplex.Devex
    & info [ "pricing" ] ~docv:"dantzig|devex"
        ~doc:
          "Leaving-row pricing rule of the warm dual-simplex engine: \
           $(b,devex) (default) reference-weight pricing, or $(b,dantzig) \
           most-violated.  Both fall back to Bland's rule on stalls.")

let sym_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "sym" ] ~docv:"on|off"
        ~doc:
          "Symmetry breaking: detect interchangeable-variable orbits, add \
           lexicographic ordering rows at the root and fix orbits during \
           search.  Default: on.")

let steal_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "steal" ] ~docv:"on|off"
        ~doc:
          "With -j >= 2, split the tree into open subtrees and solve them \
           on a work-stealing domain pool (deterministic: any -j returns \
           the same objective and solution).  Default: on.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains for the parallel tree search (with --steal on).")

let stats_flag_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Collect solver telemetry (per-phase timers, propagation/LP/\
           probing counters, incumbent curve, depth histogram) and print \
           the table to stderr after the solve.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the structured search trace (nodes, prunes, incumbents, \
           cut rounds, subtree spawns/steals) to $(docv) as JSON lines.")

let load path =
  match Ilp.Lp_parse.of_file path with
  | Ok p -> p
  | Error msg ->
      Printf.eprintf "ilp: %s\n" msg;
      exit 1

let solve_cmd =
  let run path time_limit verbose portfolio cuts pricing sym steal jobs stats
      trace_file =
    let { Ilp.Lp_parse.model; negated } = load path in
    Printf.printf "%s\n" (Ilp.Model.stats model);
    let trace = Option.map Ilp.Trace.file trace_file in
    let options =
      {
        Ilp.Solver.default with
        Ilp.Solver.time_limit;
        verbose;
        cuts;
        pricing;
        sym;
        stats;
        trace;
      }
    in
    let r =
      if portfolio then begin
        let { Ilp.Portfolio.outcome; winner; _ } =
          Ilp.Portfolio.solve
            ~configs:(Ilp.Portfolio.default_configs options)
            model
        in
        Printf.printf "portfolio: config %d decided the race\n" winner;
        outcome
      end
      else if jobs >= 2 && steal then
        Ilp.Solver.solve_parallel ~options ~jobs model
      else Ilp.Solver.solve ~options model
    in
    Option.iter Ilp.Trace.close trace;
    (match r.Ilp.Solver.stats with
    | Some st ->
        Format.eprintf "%a@."
          (Ilp.Stats.pp ~time_s:r.Ilp.Solver.time_s)
          st
    | None -> ());
    let sign v = if negated then -v else v in
    let limit_detail () =
      (* On a limit hit, report how much structure the search exploited. *)
      Printf.printf "orbits: %d\nstolen: %d\n" r.Ilp.Solver.orbits
        r.Ilp.Solver.stolen
    in
    (match r.Ilp.Solver.status with
    | Ilp.Solver.Optimal ->
        Printf.printf "status: optimal\nobjective: %d\n"
          (sign (Option.get r.Ilp.Solver.objective))
    | Ilp.Solver.Feasible ->
        (* On a limit hit the proof state is the interesting part: how far
           the best bound still is from the incumbent. *)
        let obj = Option.get r.Ilp.Solver.objective in
        Printf.printf "status: feasible (limit hit)\nobjective: %d\nbound: %d\n"
          (sign obj) (sign r.Ilp.Solver.bound);
        if r.Ilp.Solver.bound > min_int then
          Printf.printf "gap: %.2f%%\n"
            (100.0
            *. float_of_int (obj - r.Ilp.Solver.bound)
            /. float_of_int (max 1 (abs obj)));
        limit_detail ()
    | Ilp.Solver.Infeasible -> Printf.printf "status: infeasible\n"
    | Ilp.Solver.Unknown ->
        Printf.printf "status: unknown (limit hit)\n";
        if r.Ilp.Solver.bound > min_int then
          Printf.printf "bound: %d\n" (sign r.Ilp.Solver.bound);
        limit_detail ());
    Printf.printf "nodes: %d\ntime: %.3fs\n" r.Ilp.Solver.nodes
      r.Ilp.Solver.time_s;
    match r.Ilp.Solver.solution with
    | None -> ()
    | Some x ->
        for v = 0 to Ilp.Model.n_vars model - 1 do
          if x.(v) <> 0 then
            Printf.printf "  %s = %d\n" (Ilp.Model.var_name model v) x.(v)
        done
  in
  Cmd.v (Cmd.info "solve" ~doc:"Solve an integer program to optimality.")
    Term.(
      const run $ file_arg $ time_limit_arg $ verbose_arg $ portfolio_arg
      $ cuts_arg $ pricing_arg $ sym_arg $ steal_arg $ jobs_arg
      $ stats_flag_arg $ trace_arg)

let relax_cmd =
  let run path =
    let { Ilp.Lp_parse.model; negated } = load path in
    match Ilp.Simplex.relax model with
    | Ilp.Simplex.Optimal { objective; _ } ->
        Printf.printf "lp relaxation: %.6f\n"
          (if negated then -.objective else objective)
    | Ilp.Simplex.Infeasible -> Printf.printf "lp relaxation: infeasible\n"
    | Ilp.Simplex.Unbounded -> Printf.printf "lp relaxation: unbounded\n"
    | Ilp.Simplex.Iteration_limit ->
        Printf.printf "lp relaxation: iteration limit\n"
  in
  Cmd.v (Cmd.info "relax" ~doc:"Solve only the LP relaxation (simplex).")
    Term.(const run $ file_arg)

let stats_cmd =
  let run path =
    let { Ilp.Lp_parse.model; _ } = load path in
    Printf.printf "%s\n" (Ilp.Model.stats model)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Print model dimensions.")
    Term.(const run $ file_arg)

let explain_cmd =
  let trace_pos =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"JSONL search trace (from --trace).")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Additionally export the trace as Chrome trace-event JSON \
             (load in chrome://tracing or Perfetto).")
  in
  let run trace_file chrome =
    match Ilp.Replay.of_file trace_file with
    | Error msg ->
        Printf.eprintf "ilp: %s: %s\n" trace_file msg;
        exit 1
    | Ok events ->
        let report = Ilp.Replay.analyze events in
        Format.printf "%a@?" Ilp.Replay.render_report report;
        Option.iter
          (fun path ->
            Out_channel.with_open_text path (fun oc ->
                output_string oc (Ilp.Replay.chrome_of_events events));
            Printf.printf "chrome trace written to %s\n" path)
          chrome
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Post-mortem of a recorded search trace: prune-reason \
          attribution, wasted work against the final incumbent, \
          primal/dual gap closure, per-depth and per-variable profiles.")
    Term.(const run $ trace_pos $ chrome_arg)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "ilp" ~version:"1.0.0"
             ~doc:"Standalone 0-1/integer linear programming solver")
          [ solve_cmd; relax_cmd; stats_cmd; explain_cmd ]))
