(* advbist — command-line front end.

   Subcommands:
     list                         available built-in circuits
     show    -c NAME | -f FILE    print the DFG, resources, dot export
     ref     -c NAME | -f FILE    optimal non-BIST reference data path
     synth   -c NAME | -f FILE    BIST synthesis (ADVBIST or a baseline)
     sweep   -c NAME | -f FILE    one ADVBIST design per k = 1..N
     compare -c NAME | -f FILE    all four methods at maximal k *)

open Cmdliner

let default_modules g =
  (* a generic allocation for user-supplied DFGs: one unit kind per class
     of operations present, doubled for multipliers when two are needed *)
  let kinds = Dfg.Graph.op_kinds g in
  let wanted =
    List.sort_uniq compare
      (List.map
         (fun k ->
           match k with
           | Dfg.Op_kind.Mul -> Dfg.Fu_kind.multiplier
           | Dfg.Op_kind.Add | Dfg.Op_kind.Sub | Dfg.Op_kind.Lt ->
               Dfg.Fu_kind.alu
           | Dfg.Op_kind.And | Dfg.Op_kind.Or | Dfg.Op_kind.Xor ->
               Dfg.Fu_kind.logic
           | Dfg.Op_kind.Shl | Dfg.Op_kind.Shr -> Dfg.Fu_kind.shifter)
         kinds)
  in
  let counts = Dfg.Lifetime.min_modules g wanted in
  List.concat_map (fun (fu, n) -> List.init n (fun _ -> fu)) counts

let load ~circuit ~file =
  match (circuit, file) with
  | Some name, None -> (
      match Circuits.Suite.find name with
      | Some p -> Ok p
      | None ->
          Error
            (Printf.sprintf "unknown circuit %S; try: %s" name
               (String.concat ", "
                  (List.map fst (Circuits.Suite.all @ Circuits.Suite.extras)))))
  | None, Some path -> (
      match Dfg.Parse.of_file path with
      | Error msg -> Error msg
      | Ok g -> (
          match Dfg.Problem.make g (default_modules g) with
          | Ok p -> Ok p
          | Error msg -> Error msg))
  | Some _, Some _ -> Error "give either --circuit or --file, not both"
  | None, None -> Error "one of --circuit or --file is required"

let circuit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "c"; "circuit" ] ~docv:"NAME" ~doc:"Built-in benchmark circuit.")

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"FILE" ~doc:"DFG file (textual format).")

let time_limit_arg =
  Arg.(
    value
    & opt float 30.0
    & info [ "t"; "time-limit" ] ~docv:"SECONDS"
        ~doc:"Solver time limit per ILP (the paper used 24 CPU hours).")

let jobs_arg =
  Arg.(
    value
    & opt int (Ilp.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the work-stealing parallel tree search \
           (default: \\$(b,ADVBIST_JOBS) from the environment, else 1).")

let sym_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "sym" ] ~docv:"on|off"
        ~doc:
          "Orbit-based symmetry breaking in the solver (lexicographic \
           ordering rows + orbital fixing).  Default: on.")

let steal_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "steal" ] ~docv:"on|off"
        ~doc:
          "With -j >= 2, split each solve into open subtrees on a \
           work-stealing domain pool (deterministic across -j).  \
           Default: on.")

let portfolio_arg =
  Arg.(
    value & flag
    & info [ "portfolio" ]
        ~doc:
          "Race diverse solver configurations on a domain pool with a \
           shared incumbent bound instead of a single branch-and-bound \
           run.")

let pricing_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("dantzig", Ilp.Simplex.Dantzig); ("devex", Ilp.Simplex.Devex) ])
        Ilp.Simplex.Devex
    & info [ "pricing" ] ~docv:"dantzig|devex"
        ~doc:
          "Leaving-row pricing rule of the warm dual-simplex engine: \
           $(b,devex) (default) reference-weight pricing, or $(b,dantzig) \
           most-violated.  Both fall back to Bland's rule on stalls.")

let k_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "k" ] ~docv:"K"
        ~doc:"Number of sub-test sessions (default: number of modules).")

let method_arg =
  Arg.(
    value
    & opt (enum [ ("advbist", `Advbist); ("advan", `Advan);
                  ("ralloc", `Ralloc); ("bits", `Bits) ])
        `Advbist
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:"Synthesis method: advbist (exact ILP), advan, ralloc or bits.")

let verilog_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "verilog" ] ~docv:"FILE" ~doc:"Write the data path as Verilog.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE" ~doc:"Write the DFG as Graphviz dot.")

let lp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "lp" ] ~docv:"FILE"
        ~doc:"Export the ILP model in CPLEX LP format (synth only).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Collect solver telemetry (per-phase timers, propagation/LP/\
           probing counters, incumbent curve, depth histogram) and print \
           the table to stderr; sweep prints the aggregate over every \
           solve.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the structured solver search trace (nodes, prunes, \
           incumbents, cut rounds, subtree spawns/steals) to $(docv) as \
           JSON lines.")

let explain_arg =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Capture the solve's search trace and print a post-mortem to \
           stderr: prune-reason attribution, wasted work against the \
           final incumbent, primal/dual gap closure, per-depth and \
           per-orbit branching profiles.  Composes with --trace (the \
           sink still receives every event).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", Advbist.Report.Text); ("md", Advbist.Report.Markdown);
                  ("csv", Advbist.Report.Csv) ])
        Advbist.Report.Text
    & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text, md or csv.")

let or_die = function
  | Ok x -> x
  | Error msg ->
      Printf.eprintf "advbist: %s\n" msg;
      exit 1

(* -- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (name, p) ->
        Printf.printf "%-10s %2d vars %2d ops %d steps; %d registers, %d modules\n"
          name
          (Dfg.Graph.n_vars p.Dfg.Problem.dfg)
          (Dfg.Graph.n_ops p.Dfg.Problem.dfg)
          p.Dfg.Problem.dfg.Dfg.Graph.n_steps
          (Dfg.Problem.min_registers p)
          (Dfg.Problem.n_modules p))
      (Circuits.Suite.all @ Circuits.Suite.extras)
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in benchmark circuits.")
    Term.(const run $ const ())

(* -- show ---------------------------------------------------------------- *)

let show_cmd =
  let run circuit file dot =
    let p = or_die (load ~circuit ~file) in
    Format.printf "%a@." Dfg.Problem.pp p;
    Format.printf "minimum registers: %d@." (Dfg.Problem.min_registers p);
    Option.iter
      (fun path ->
        Dfg.Dot.to_file path p.Dfg.Problem.dfg;
        Format.printf "wrote %s@." path)
      dot
  in
  Cmd.v (Cmd.info "show" ~doc:"Print a DFG and its resource bounds.")
    Term.(const run $ circuit_arg $ file_arg $ dot_arg)

(* -- ref ----------------------------------------------------------------- *)

let ref_cmd =
  let run circuit file time_limit verilog =
    let p = or_die (load ~circuit ~file) in
    let r = or_die (Advbist.Synth.reference ~time_limit p) in
    Format.printf "%a@." Datapath.Netlist.pp r.Advbist.Synth.ref_netlist;
    Format.printf "reference area: %d%s@." r.Advbist.Synth.ref_area
      (if r.Advbist.Synth.ref_optimal then " (optimal)" else " *");
    Option.iter
      (fun path ->
        Datapath.Rtl.to_file path r.Advbist.Synth.ref_netlist;
        Format.printf "wrote %s@." path)
      verilog
  in
  Cmd.v
    (Cmd.info "ref" ~doc:"Synthesize the area-optimal non-BIST data path.")
    Term.(const run $ circuit_arg $ file_arg $ time_limit_arg $ verilog_arg)

(* -- synth --------------------------------------------------------------- *)

let synth_cmd =
  let run circuit file time_limit k meth verilog lp portfolio jobs sym steal
      stats trace_file explain pricing =
    let p = or_die (load ~circuit ~file) in
    let k = Option.value k ~default:(Dfg.Problem.n_modules p) in
    Option.iter
      (fun path ->
        let e = Advbist.Encoding.build p ~n_regs:(Dfg.Problem.min_registers p) ~k in
        Ilp.Lp_format.to_file path e.Advbist.Encoding.model;
        Format.printf "wrote %s@." path)
      lp;
    let trace = Option.map Ilp.Trace.file trace_file in
    let plan, tag =
      match meth with
      | `Advbist ->
          let o =
            or_die
              (Advbist.Synth.synthesize ~time_limit ~portfolio ~jobs ~sym
                 ~steal ~stats ?trace ~explain ~pricing p ~k)
          in
          (match o.Advbist.Synth.stats with
          | Some st ->
              Format.eprintf "%a@."
                (Ilp.Stats.pp ~time_s:o.Advbist.Synth.solve_time)
                st
          | None -> ());
          (match o.Advbist.Synth.explain with
          | Some report ->
              Format.eprintf "%a@?" Ilp.Replay.render_report report
          | None -> ());
          ( o.Advbist.Synth.plan,
            if o.Advbist.Synth.optimal then "optimal"
            else
              Printf.sprintf
                "time limit *; gap %.1f%%, %d orbits, %d stolen subtrees"
                o.Advbist.Synth.gap_pct o.Advbist.Synth.orbits
                o.Advbist.Synth.stolen )
      | `Advan -> (or_die (Baselines.Advan.synthesize p ~k), "heuristic")
      | `Ralloc -> (or_die (Baselines.Ralloc.synthesize p ~k), "heuristic")
      | `Bits -> (or_die (Baselines.Bits.synthesize p ~k), "heuristic")
    in
    Option.iter Ilp.Trace.close trace;
    Format.printf "%a@.(%s)@." Bist.Plan.pp plan tag;
    (match Advbist.Synth.reference ~time_limit p with
    | Ok r ->
        Format.printf "overhead vs reference (%d): %.1f%%@."
          r.Advbist.Synth.ref_area
          (Bist.Plan.overhead_pct plan ~reference:r.Advbist.Synth.ref_area)
    | Error _ -> ());
    Option.iter
      (fun path ->
        Datapath.Rtl.to_file path plan.Bist.Plan.netlist;
        Format.printf "wrote %s@." path)
      verilog
  in
  Cmd.v (Cmd.info "synth" ~doc:"Synthesize a built-in self-testable data path.")
    Term.(
      const run $ circuit_arg $ file_arg $ time_limit_arg $ k_arg $ method_arg
      $ verilog_arg $ lp_arg $ portfolio_arg $ jobs_arg $ sym_arg $ steal_arg
      $ stats_arg $ trace_arg $ explain_arg $ pricing_arg)

(* -- sweep --------------------------------------------------------------- *)

let sweep_cmd =
  let run circuit file time_limit fmt jobs sym steal stats trace_file explain
      pricing =
    let p = or_die (load ~circuit ~file) in
    let trace = Option.map Ilp.Trace.file trace_file in
    let reference, rows =
      or_die
        (Advbist.Synth.sweep ~time_limit ~jobs ~sym ~steal ~stats ?trace
           ~explain ~pricing p)
    in
    Option.iter Ilp.Trace.close trace;
    Format.printf "reference area %d%s@." reference.Advbist.Synth.ref_area
      (if reference.Advbist.Synth.ref_optimal then "" else " *");
    List.iter
      (fun { Advbist.Synth.k; outcome = o; _ } ->
        if not o.Advbist.Synth.optimal then
          Format.printf
            "k=%d: limit hit; gap %.1f%%, %d orbits, %d stolen subtrees@." k
            o.Advbist.Synth.gap_pct o.Advbist.Synth.orbits
            o.Advbist.Synth.stolen)
      rows;
    (* the aggregate over every solve of the sweep, reference included *)
    (match Advbist.Synth.sweep_stats ~reference rows with
    | Some st -> Format.eprintf "%a@." (Ilp.Stats.pp ?time_s:None) st
    | None -> ());
    List.iter
      (fun { Advbist.Synth.k; outcome = o; _ } ->
        match o.Advbist.Synth.explain with
        | Some report ->
            Format.eprintf "k=%d %a@?" k Ilp.Replay.render_report report
        | None -> ())
      rows;
    print_string
      (Advbist.Report.render_sweep fmt (Advbist.Report.sweep_points rows))
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Synthesize one ADVBIST design per k-test session (Table 2).")
    Term.(
      const run $ circuit_arg $ file_arg $ time_limit_arg $ format_arg
      $ jobs_arg $ sym_arg $ steal_arg $ stats_arg $ trace_arg
      $ explain_arg $ pricing_arg)

(* -- compare ------------------------------------------------------------- *)

let compare_cmd =
  let run circuit file time_limit fmt =
    let p = or_die (load ~circuit ~file) in
    let k = Dfg.Problem.n_modules p in
    let reference = or_die (Advbist.Synth.reference ~time_limit p) in
    Format.printf "k = %d; reference area %d@." k
      reference.Advbist.Synth.ref_area;
    let reference_area = reference.Advbist.Synth.ref_area in
    let rows = ref [] in
    (match Advbist.Synth.synthesize ~time_limit p ~k with
    | Ok o ->
        rows :=
          [ Advbist.Report.row_of_plan ~name:"ADVBIST"
              ~optimal:o.Advbist.Synth.optimal ~reference_area
              o.Advbist.Synth.plan ]
    | Error msg -> Format.printf "ADVBIST: %s@." msg);
    List.iter
      (fun (mname, f) ->
        match f p ~k with
        | Ok plan ->
            rows :=
              !rows
              @ [ Advbist.Report.row_of_plan ~name:mname ~reference_area plan ]
        | Error msg -> Format.printf "%-8s %s@." mname msg)
      [
        ("ADVAN", Baselines.Advan.synthesize);
        ("RALLOC", Baselines.Ralloc.synthesize);
        ("BITS", Baselines.Bits.synthesize);
      ];
    print_string (Advbist.Report.render_methods fmt !rows)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare ADVBIST with ADVAN, RALLOC and BITS (Table 3).")
    Term.(const run $ circuit_arg $ file_arg $ time_limit_arg $ format_arg)

let () =
  let doc = "ILP-based built-in self-testable data path synthesis (DAC'99)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "advbist" ~version:"1.0.0" ~doc)
          [ list_cmd; show_cmd; ref_cmd; synth_cmd; sweep_cmd; compare_cmd ]))
