(* Design-space exploration on the tseng benchmark: area/test-time trade-off
   across k-test sessions, and the four synthesis methods side by side — a
   miniature of the paper's Tables 2 and 3.

   Run with:  dune exec examples/design_space.exe *)

let () =
  let name = "tseng" in
  let p = Option.get (Circuits.Suite.find name) in
  let n = Dfg.Problem.n_modules p in

  let reference =
    match Advbist.Synth.reference ~time_limit:15.0 p with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  Format.printf "%s: reference area %d (%s)@.@." name
    reference.Advbist.Synth.ref_area
    (if reference.Advbist.Synth.ref_optimal then "optimal" else "best found");

  (* The area / test-time trade-off offered by ADVBIST: one optimal design
     per k (a k-test session runs k sub-tests, so larger k = longer test
     but cheaper test hardware). *)
  Format.printf "ADVBIST k-sweep:@.";
  Format.printf "  k   area  overhead  status@.";
  List.iter
    (fun k ->
      match Advbist.Synth.synthesize ~time_limit:15.0 p ~k with
      | Error msg -> Format.printf "  %d   %s@." k msg
      | Ok o ->
          Format.printf "  %d  %5d   %5.1f%%   %s@." k o.Advbist.Synth.area
            (Bist.Plan.overhead_pct o.Advbist.Synth.plan
               ~reference:reference.Advbist.Synth.ref_area)
            (if o.Advbist.Synth.optimal then "optimal" else "time limit *"))
    (List.init n (fun i -> i + 1));

  (* The test-time side of the trade-off: cycles per design and the Pareto
     front over (area, test time). *)
  let candidates =
    List.filter_map
      (fun k ->
        match Advbist.Synth.synthesize ~time_limit:15.0 p ~k with
        | Ok o -> Some (k, o.Advbist.Synth.plan)
        | Error _ -> None)
      (List.init n (fun i -> i + 1))
  in
  Format.printf "@.test time (255 patterns/session):@.";
  List.iter
    (fun (k, plan) ->
      let t = Bist.Test_time.estimate plan in
      Format.printf "  k=%d: %d cycles in %d sessions, area %d@." k
        t.Bist.Test_time.cycles t.Bist.Test_time.sessions_used
        (Bist.Plan.area plan))
    candidates;
  Format.printf "Pareto front (area vs cycles): k in {%s}@."
    (String.concat ", "
       (List.map (fun (k, _) -> string_of_int k) (Bist.Test_time.pareto candidates)));

  (* Test program of the cheapest design. *)
  (match List.rev candidates with
  | (k, plan) :: _ ->
      Format.printf "@.test program for k=%d:@.%s" k (Bist.Controller.summary plan)
  | [] -> ());

  (* Method comparison at maximal k (the paper's Table 3 view). *)
  Format.printf "@.method comparison (k = %d):@." n;
  Format.printf "  %-8s %2s %2s %2s %2s %2s %3s %6s %s@." "method" "R" "T"
    "S" "B" "C" "M" "area" "overhead";
  let show mname (plan : Bist.Plan.t) =
    let tp, sr, bi, cb = Bist.Plan.kind_counts plan in
    Format.printf "  %-8s %2d %2d %2d %2d %2d %3d %6d  %5.1f%%@." mname
      plan.Bist.Plan.netlist.Datapath.Netlist.n_registers tp sr bi cb
      (Datapath.Netlist.total_mux_inputs plan.Bist.Plan.netlist)
      (Bist.Plan.area plan)
      (Bist.Plan.overhead_pct plan ~reference:reference.Advbist.Synth.ref_area)
  in
  (match Advbist.Synth.synthesize ~time_limit:15.0 p ~k:n with
  | Ok o -> show "ADVBIST" o.Advbist.Synth.plan
  | Error msg -> Format.printf "  ADVBIST: %s@." msg);
  List.iter
    (fun (mname, f) ->
      match f p ~k:n with
      | Ok plan -> show mname plan
      | Error msg -> Format.printf "  %-8s %s@." mname msg)
    [
      ("ADVAN", Baselines.Advan.synthesize);
      ("RALLOC", Baselines.Ralloc.synthesize);
      ("BITS", Baselines.Bits.synthesize);
    ]
