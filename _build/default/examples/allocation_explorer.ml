(* From kernel to self-testable silicon, with the allocation step explicit:
   explore module allocations for the IIR filter, look at the
   (units, latency) Pareto front, pick one point, and push it through BIST
   synthesis — the step the paper treats as "known a priori".

   Run with:  dune exec examples/allocation_explorer.exe *)

let () =
  let kernel = Hls.Kernel.iir3 in
  Format.printf "kernel %s: %d operations, critical path %d steps@.@."
    kernel.Hls.Kernel.kname (Hls.Kernel.n_ops kernel)
    (Hls.Schedule.critical_path kernel);

  let points =
    Hls.Allocate.explore ~max_per_class:3 ~inputs_at_start:true kernel
  in
  Format.printf "allocations explored: %d@." (List.length points);
  Format.printf "@.Pareto front (total units vs schedule latency):@.";
  let front = Hls.Allocate.pareto points in
  List.iter
    (fun (p : Hls.Allocate.point) ->
      Format.printf "  %d units (%s) -> %d steps, %d registers@."
        p.Hls.Allocate.total_units
        (String.concat " + "
           (List.map
              (fun (fu, n) -> Printf.sprintf "%d %s" n fu.Dfg.Fu_kind.fu_name)
              p.Hls.Allocate.counts))
        p.Hls.Allocate.latency
        (Dfg.Problem.min_registers p.Hls.Allocate.problem))
    front;

  (* Pick the fastest point on the front and make it self-testable. *)
  match List.rev front with
  | [] -> Format.printf "no feasible allocation@."
  | fastest :: _ ->
      let problem = fastest.Hls.Allocate.problem in
      let k = Dfg.Problem.n_modules problem in
      Format.printf "@.synthesizing BIST for the fastest point (k = %d)...@." k;
      (match Advbist.Synth.synthesize ~time_limit:20.0 problem ~k with
      | Error msg -> Format.printf "  %s@." msg
      | Ok o ->
          Format.printf "%a@." Bist.Plan.pp o.Advbist.Synth.plan;
          let t = Bist.Test_time.estimate o.Advbist.Synth.plan in
          Format.printf "test time: %d cycles over %d sessions@."
            t.Bist.Test_time.cycles t.Bist.Test_time.sessions_used;
          Format.printf "@.test controller program:@.%s"
            (Bist.Controller.summary o.Advbist.Synth.plan))
