(* Why random-pattern BIST works: stuck-at coverage of the data-path module
   models as a function of pattern count.  The parallel BIST architecture
   the paper synthesizes relies on a few hundred LFSR patterns detecting
   nearly all faults in each module under test; this example measures it.

   Run with:  dune exec examples/fault_coverage.exe *)

let () =
  let budgets = [ 8; 16; 32; 64; 128; 255 ] in
  let kinds = Dfg.Op_kind.[ Add; Sub; Lt; Mul; And; Xor ] in
  Format.printf "stuck-at coverage (%%) vs LFSR pattern count, 8-bit modules@.@.";
  Format.printf "%-6s %6s" "module" "faults";
  List.iter (fun n -> Format.printf " %6d" n) budgets;
  Format.printf "@.";
  List.iter
    (fun kind ->
      let c = Bist.Gates.build kind ~width:8 in
      let n_faults = List.length (Bist.Fault_sim.faults c) in
      Format.printf "%-6s %6d" (Dfg.Op_kind.name kind) n_faults;
      List.iter
        (fun n ->
          let r = Bist.Fault_sim.random_pattern_coverage c ~n_patterns:n () in
          Format.printf " %6.2f" (Bist.Fault_sim.coverage r))
        budgets;
      Format.printf "@.")
    kinds;
  Format.printf
    "@.signature aliasing check: MISR-compacted coverage vs raw coverage@.";
  (* Compare plain output-difference coverage with through-the-MISR
     detection on the adder: aliasing should cost (almost) nothing. *)
  let p = Dfg.Benchmarks.fig1 in
  let d =
    Datapath.Netlist.make_exn p ~reg_of_var:[| 0; 1; 2; 1; 0; 2; 1; 2 |]
      ~module_of_op:[| 0; 0; 1; 1 |]
  in
  let plan =
    Bist.Plan.make_exn d ~k:2 ~session_of_module:[| 0; 1 |]
      ~sr_of_module:[| 2; 1 |]
      ~tpg_of_port:[| [| 0; 1 |]; [| 0; 2 |] |]
  in
  let raw =
    Bist.Fault_sim.random_pattern_coverage
      (Bist.Gates.build Dfg.Op_kind.Add ~width:8)
      ~n_patterns:128 ()
  in
  let misr =
    Bist.Session.session_coverage plan ~module_:0 ~kind:Dfg.Op_kind.Add
      ~n_patterns:128
  in
  Format.printf "  adder, 128 patterns: raw %.2f%%, through MISR %.2f%%@."
    (Bist.Fault_sim.coverage raw)
    (Bist.Fault_sim.coverage misr);

  (* Signature-based diagnosis: pre-compute the fault dictionary, inject a
     fault, and locate it from the signature alone. *)
  Format.printf "@.fault dictionary diagnosis (8-bit adder, 64 patterns):@.";
  let c = Bist.Gates.build Dfg.Op_kind.Add ~width:8 in
  let dict =
    Bist.Diagnosis.build c ~seed_a:1 ~seed_b:42 ~misr_seed:1 ~n_patterns:64
  in
  Format.printf "  %d faults, %d detected, mean ambiguity %.2f faults/signature@."
    (Bist.Diagnosis.n_faults dict)
    (List.length (Bist.Diagnosis.detected_faults dict))
    (Bist.Diagnosis.ambiguity dict);
  let injected = { Bist.Fault_sim.gate = 17; stuck_at = 0 } in
  let candidates =
    Bist.Diagnosis.diagnose dict c injected ~seed_a:1 ~seed_b:42 ~misr_seed:1
      ~n_patterns:64
  in
  Format.printf "  injected stuck-at-0 on gate 17 -> %d candidate(s)%s@."
    (List.length candidates)
    (if List.mem injected candidates then ", true fault among them" else "")
