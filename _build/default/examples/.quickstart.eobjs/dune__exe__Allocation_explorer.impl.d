examples/allocation_explorer.ml: Advbist Bist Dfg Format Hls List Printf String
