examples/fault_coverage.ml: Bist Datapath Dfg Format List
