examples/quickstart.ml: Advbist Bist Dfg Format List
