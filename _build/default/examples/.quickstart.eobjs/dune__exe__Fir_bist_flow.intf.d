examples/fir_bist_flow.mli:
