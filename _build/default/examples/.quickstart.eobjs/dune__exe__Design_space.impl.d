examples/design_space.ml: Advbist Baselines Bist Circuits Datapath Dfg Format List Option String
