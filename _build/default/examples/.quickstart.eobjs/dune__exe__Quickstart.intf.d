examples/quickstart.mli:
