examples/fir_bist_flow.ml: Advbist Bist Datapath Dfg Format Hls List
