examples/fault_coverage.mli:
