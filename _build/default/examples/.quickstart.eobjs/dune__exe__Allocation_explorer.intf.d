examples/allocation_explorer.mli:
