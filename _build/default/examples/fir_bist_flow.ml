(* A realistic flow: take the 6th-order FIR filter kernel, schedule it onto
   one multiplier and two ALUs (the HYPER-substitute front end), make it
   self-testable, then actually RUN the built-in self-test: LFSR pattern
   generators drive the gate-level module models, MISRs collect signatures,
   and an injected stuck-at fault is shown to corrupt the signature.

   Run with:  dune exec examples/fir_bist_flow.exe *)

let () =
  (* Front end: DSP kernel -> scheduled DFG. *)
  let problem =
    match
      Hls.Schedule.list_schedule ~inputs_at_start:true Hls.Kernel.fir6
        ~modules:[ Dfg.Fu_kind.multiplier; Dfg.Fu_kind.alu; Dfg.Fu_kind.alu ]
    with
    | Ok p -> p
    | Error msg -> failwith msg
  in
  let g = problem.Dfg.Problem.dfg in
  Format.printf "fir6: %d operations in %d steps, %d registers minimum@."
    (Dfg.Graph.n_ops g) g.Dfg.Graph.n_steps
    (Dfg.Problem.min_registers problem);

  (* BIST synthesis (3 test sessions = one per module). *)
  let outcome =
    match Advbist.Synth.synthesize ~time_limit:20.0 problem ~k:3 with
    | Ok o -> o
    | Error msg -> failwith msg
  in
  let plan = outcome.Advbist.Synth.plan in
  Format.printf "@.%a@.@." Bist.Plan.pp plan;

  (* Functional sanity: the synthesized data path still computes the FIR. *)
  let inputs =
    List.map
      (fun v -> ((Dfg.Graph.variable g v).Dfg.Graph.var_name, 10 + v))
      (Dfg.Graph.primary_inputs g)
  in
  assert (Datapath.Sim.agrees plan.Bist.Plan.netlist ~inputs);
  Format.printf "functional check: data path matches the DFG interpreter@.";

  (* Execute the test sessions: golden signatures per module mode. *)
  let signatures = Bist.Session.golden plan ~n_patterns:255 in
  Format.printf "@.golden signatures (255 patterns):@.";
  List.iter
    (fun s ->
      Format.printf "  module M%d as %-4s -> %02x@." s.Bist.Session.module_
        (Dfg.Op_kind.name s.Bist.Session.kind)
        s.Bist.Session.value)
    signatures;

  (* Inject a stuck-at fault into the multiplier and watch BIST catch it. *)
  let mul_circuit = Bist.Gates.build Dfg.Op_kind.Mul ~width:8 in
  let fault = { Bist.Fault_sim.gate = Bist.Gates.n_gates mul_circuit / 2;
                stuck_at = 1 } in
  let caught =
    Bist.Session.detects plan ~module_:0 ~kind:Dfg.Op_kind.Mul fault
      ~n_patterns:255
  in
  Format.printf "@.injected stuck-at-1 on gate %d of the multiplier: %s@."
    fault.Bist.Fault_sim.gate
    (if caught then "signature deviates - fault DETECTED" else "aliased");

  (* Overall random-pattern coverage of that multiplier under this plan. *)
  let r =
    Bist.Session.session_coverage plan ~module_:0 ~kind:Dfg.Op_kind.Mul
      ~n_patterns:255
  in
  Format.printf "multiplier stuck-at coverage through BIST: %.1f%% (%d/%d)@."
    (Bist.Fault_sim.coverage r) r.Bist.Fault_sim.n_detected
    r.Bist.Fault_sim.n_faults;

  (* Emit artifacts. *)
  Datapath.Rtl.to_file "fir6_bist.v" plan.Bist.Plan.netlist;
  Dfg.Dot.to_file "fir6.dot" g;
  Format.printf "@.wrote fir6_bist.v (Verilog) and fir6.dot (Graphviz)@."
