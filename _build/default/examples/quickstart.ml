(* Quickstart: the paper's Fig. 1 example, end to end.

   Run with:  dune exec examples/quickstart.exe

   1. Describe a scheduled DFG (either with the builder or the textual
      format).
   2. Synthesize the area-optimal non-BIST reference data path.
   3. Synthesize an optimal BIST design for every k-test session.
   4. Inspect the resulting plan: register reconfigurations and area. *)

let () =
  (* The same DFG as Dfg.Benchmarks.fig1, but written in the exchange
     format to demonstrate parsing. *)
  let source =
    {|
    (dfg
     (name fig1)
     (inputs v0 v1 v2 v3)
     (op add (step 0) (in v0 v1) (out v4))
     (op add (step 1) (in v3 v4) (out v5))
     (op mul (step 1) (in v4 v2) (out v6))
     (op mul (step 2) (in v5 v6) (out v7)))
    |}
  in
  let g =
    match Dfg.Parse.of_string source with
    | Ok g -> g
    | Error msg -> failwith msg
  in
  Format.printf "%a@.@." Dfg.Graph.pp g;

  (* One adder and one multiplier, as in the paper. *)
  let problem =
    Dfg.Problem.make_exn g [ Dfg.Fu_kind.adder; Dfg.Fu_kind.multiplier ]
  in
  Format.printf "minimum registers: %d@." (Dfg.Problem.min_registers problem);

  (* Reference (non-BIST) data path: optimal in area. *)
  (match Advbist.Synth.reference ~time_limit:30.0 problem with
  | Error msg -> failwith msg
  | Ok r ->
      Format.printf "reference area: %d transistors (optimal: %b)@.@."
        r.Advbist.Synth.ref_area r.Advbist.Synth.ref_optimal;

      (* BIST designs for k = 1 .. N. *)
      List.iter
        (fun k ->
          match Advbist.Synth.synthesize ~time_limit:30.0 problem ~k with
          | Error msg -> Format.printf "k=%d: %s@." k msg
          | Ok o ->
              Format.printf "=== k = %d ===@.%a@.area %d, overhead %.1f%%%s@.@."
                k Bist.Plan.pp o.Advbist.Synth.plan o.Advbist.Synth.area
                (Bist.Plan.overhead_pct o.Advbist.Synth.plan
                   ~reference:r.Advbist.Synth.ref_area)
                (if o.Advbist.Synth.optimal then " (proven optimal)" else " *"))
        [ 1; 2 ])
