bench/main.mli:
