bench/main.ml: Advbist Analyze Array Baselines Bechamel Benchmark Bist Circuits Datapath Dfg Hashtbl Hls Instance List Measure Option Paper_data Printf Result Staged String Sys Test Time Toolkit
