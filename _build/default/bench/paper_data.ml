(* Published numbers from the paper (DAC'99), used by the benchmark harness
   to print paper-vs-measured comparisons.

   Absolute values cannot be expected to match: the paper's exact scheduled
   DFGs (HYPER outputs and their tseng/paulin versions) are not published,
   so this repository re-derives structurally equivalent instances (see
   DESIGN.md).  What must reproduce is the *shape*: overheads fall with k,
   ADVBIST dominates the three baselines everywhere, RALLOC pays for extra
   registers, and the ADVBIST advantage concentrates in multiplexer area. *)

(* Table 2: ADVBIST area overhead (%) per circuit and k-test session; [None]
   where k exceeds the circuit's module count.  [starred] entries hit the
   paper's 24-hour CPU limit. *)
type table2_row = {
  t2_circuit : string;
  overheads : float option array;  (* k = 1 .. 4 *)
  starred : bool;
  times : string array;  (* as printed in the paper *)
}

let table2 =
  [
    { t2_circuit = "tseng";
      overheads = [| Some 33.8; Some 28.2; Some 25.7; None |];
      starred = false;
      times = [| "58s"; "1m 22s"; "35s"; "-" |] };
    { t2_circuit = "paulin";
      overheads = [| Some 37.5; Some 28.1; Some 25.3; Some 25.3 |];
      starred = false;
      times = [| "4h 42m"; "24m 55s"; "11m 40s"; "59m 34s" |] };
    { t2_circuit = "fir6";
      overheads = [| Some 30.1; Some 21.2; Some 15.3; None |];
      starred = false;
      times = [| "17m 34s"; "40m 16s"; "23h 56m"; "-" |] };
    { t2_circuit = "iir3";
      overheads = [| Some 23.6; Some 17.3; Some 16.3; None |];
      starred = false;
      times = [| "3h 11m"; "2h 6m"; "2h 50m"; "-" |] };
    { t2_circuit = "dct4";
      overheads = [| Some 23.3; Some 24.9; Some 45.5; Some 28.3 |];
      starred = true;
      times = [| "24h"; "24h"; "24h"; "24h" |] };
    { t2_circuit = "wavelet6";
      overheads = [| Some 13.9; Some 11.3; Some 11.3; None |];
      starred = false;
      times = [| "11m 9s"; "10h 5m"; "14h 39m"; "-" |] };
  ]

(* Table 3: method comparison at the maximal session count.
   (R, T, S, B, C, M, area, overhead %); the reference rows carry only R, M
   and area. *)
type table3_method = {
  m_name : string;
  r : int;
  t : int;
  s : int;
  b : int;
  c : int;
  mux_inputs : int;
  area : int;
  oh : float;
}

type table3_row = {
  t3_circuit : string;
  max_k : int;
  ref_r : int;
  ref_m : int;
  ref_area : int;
  rows : table3_method list;
}

let m name r t s b c mux_inputs area oh =
  { m_name = name; r; t; s; b; c; mux_inputs; area; oh }

let table3 =
  [
    { t3_circuit = "tseng"; max_k = 3; ref_r = 5; ref_m = 14; ref_area = 1600;
      rows =
        [ m "ADVBIST" 5 2 1 2 0 14 2152 25.7;
          m "ADVAN" 5 2 1 0 0 23 2368 32.4;
          m "RALLOC" 5 1 0 3 0 14 2300 30.4;
          m "BITS" 5 2 1 1 0 20 2436 34.3 ] };
    { t3_circuit = "paulin"; max_k = 4; ref_r = 5; ref_m = 19; ref_area = 1856;
      rows =
        [ m "ADVBIST" 5 2 2 1 0 23 2484 25.3;
          m "ADVAN" 5 3 1 0 0 26 2684 30.8;
          m "RALLOC" 5 1 0 3 0 25 2892 35.8;
          m "BITS" 5 2 0 0 1 27 3024 38.6 ] };
    { t3_circuit = "fir6"; max_k = 3; ref_r = 7; ref_m = 20; ref_area = 2576;
      rows =
        [ m "ADVBIST" 7 4 1 0 0 26 3040 15.3;
          m "ADVAN" 7 2 1 0 0 28 3308 22.1;
          m "RALLOC" 8 1 1 2 0 36 4212 38.8;
          m "BITS" 7 1 0 0 1 24 3280 21.5 ] };
    { t3_circuit = "iir3"; max_k = 3; ref_r = 6; ref_m = 22; ref_area = 2224;
      rows =
        [ m "ADVBIST" 6 5 1 0 0 23 2656 16.3;
          m "ADVAN" 6 3 1 0 0 32 3432 35.2;
          m "RALLOC" 7 1 0 2 0 38 4212 47.2;
          m "BITS" 6 2 0 2 0 29 3176 30.0 ] };
    { t3_circuit = "dct4"; max_k = 4; ref_r = 6; ref_m = 24; ref_area = 2320;
      rows =
        [ m "ADVBIST" 6 3 1 1 0 32 3236 28.3;
          m "ADVAN" 6 3 1 0 0 35 3420 32.2;
          m "RALLOC" 6 1 1 2 0 37 3812 39.1;
          m "BITS" 7 1 1 0 1 38 4180 44.5 ] };
    { t3_circuit = "wavelet6"; max_k = 3; ref_r = 7; ref_m = 25;
      ref_area = 2880;
      rows =
        [ m "ADVBIST" 7 2 2 0 0 31 3248 11.3;
          m "ADVAN" 7 2 1 0 0 46 4182 31.1;
          m "RALLOC" 8 1 0 3 0 50 5186 44.5;
          m "BITS" 7 1 0 2 0 40 3946 27.0 ] };
  ]
