let lx = Ilp.Linexpr.of_list

(* Distinct unit kinds with capacities, and the class of each node. *)
let classify (k : Kernel.t) modules =
  let kinds =
    List.fold_left
      (fun acc fu ->
        if List.exists (fun (g, _) -> Dfg.Fu_kind.equal g fu) acc then
          List.map
            (fun (g, c) ->
              if Dfg.Fu_kind.equal g fu then (g, c + 1) else (g, c))
            acc
        else acc @ [ (fu, 1) ])
      [] modules
  in
  let cls =
    Array.map
      (fun node ->
        let rec find i = function
          | [] -> None
          | (fu, _) :: rest ->
              if Dfg.Fu_kind.supports fu node.Kernel.kind then Some i
              else find (i + 1) rest
        in
        find 0 kinds)
      k.Kernel.nodes
  in
  (kinds, cls)

let preds (k : Kernel.t) i =
  let n = k.Kernel.nodes.(i) in
  List.filter_map
    (function Kernel.Ref j -> Some j | Kernel.Input _ | Kernel.Const _ -> None)
    [ n.Kernel.a; n.Kernel.b ]

let feasible ?time_limit ?inputs_at_start (k : Kernel.t) ~modules ~latency =
  let n = Kernel.n_ops k in
  let kinds, cls = classify k modules in
  if Array.exists Option.is_none cls then
    Error "an operation kind has no supporting module"
  else if latency < Schedule.critical_path k then Ok None
  else begin
    let asap = Schedule.asap k in
    let alap = Schedule.alap k ~latency in
    let m = Ilp.Model.create ~name:"schedule" () in
    let x =
      Array.init n (fun o ->
          Array.init latency (fun t ->
              if t >= asap.(o) && t <= alap.(o) then
                Ilp.Model.bool_var m (Printf.sprintf "x_%d_%d" o t)
              else -1))
    in
    let window o = List.filter (fun t -> x.(o).(t) >= 0) (List.init latency Fun.id) in
    let start_expr o = lx (List.map (fun t -> (t, x.(o).(t))) (window o)) in
    for o = 0 to n - 1 do
      Ilp.Model.add_eq m (lx (List.map (fun t -> (1, x.(o).(t))) (window o))) 1;
      List.iter
        (fun o' ->
          Ilp.Model.add_ge m
            (Ilp.Linexpr.sub (start_expr o) (start_expr o'))
            1)
        (preds k o)
    done;
    List.iteri
      (fun c (_, cap) ->
        for t = 0 to latency - 1 do
          let users =
            List.filter_map
              (fun o ->
                if cls.(o) = Some c && x.(o).(t) >= 0 then Some (1, x.(o).(t))
                else None)
              (List.init n Fun.id)
          in
          if List.length users > cap then Ilp.Model.add_le m (lx users) cap
        done)
      kinds;
    let options =
      { Ilp.Solver.default with Ilp.Solver.time_limit; lp = Ilp.Solver.Lp_never }
    in
    let r = Ilp.Solver.solve ~options m in
    match (r.Ilp.Solver.status, r.Ilp.Solver.solution) with
    | Ilp.Solver.Infeasible, _ -> Ok None
    | (Ilp.Solver.Optimal | Ilp.Solver.Feasible), Some sol ->
        let steps =
          Array.init n (fun o ->
              let found = ref (-1) in
              List.iter (fun t -> if sol.(x.(o).(t)) = 1 then found := t) (window o);
              !found)
        in
        Result.map Option.some
          (Schedule.of_steps ?inputs_at_start k ~steps ~modules)
    | (Ilp.Solver.Unknown | Ilp.Solver.Optimal | Ilp.Solver.Feasible), _ ->
        Error "scheduling ILP hit its limit before a proof"
  end

let min_latency ?(time_limit = 10.0) ?inputs_at_start (k : Kernel.t) ~modules =
  let cp = Schedule.critical_path k in
  let cap = cp + Kernel.n_ops k in
  let rec go latency =
    if latency > cap then Error "no feasible schedule within the latency cap"
    else
      match feasible ~time_limit ?inputs_at_start k ~modules ~latency with
      | Ok (Some p) -> Ok p
      | Ok None -> go (latency + 1)
      | Error msg -> Error msg
  in
  go cp
