(** Module-allocation exploration.

    The paper assumes the module allocation is "known a priori" (Section 2);
    in practice it comes from a latency/resource trade-off.  This module
    makes that step explicit: enumerate candidate allocations over the unit
    classes a kernel needs, schedule each with the list scheduler, and
    report the (total units, latency) Pareto front.

    Unit-class requirements are derived from the operation kinds present;
    the caller chooses which {!Dfg.Fu_kind.t} serves each kind (e.g. an
    [alu] for add/sub/compare or a dedicated [adder]). *)

val required_classes : Kernel.t -> Dfg.Fu_kind.t list
(** One default unit class per operation kind present: multiplier for
    [Mul], shifter for shifts, logic for bitwise kinds, alu otherwise
    (deduplicated, in first-appearance order). *)

type point = {
  counts : (Dfg.Fu_kind.t * int) list;  (** units per class *)
  total_units : int;
  latency : int;  (** steps achieved by the list scheduler *)
  problem : Dfg.Problem.t;
}

val explore :
  ?classes:Dfg.Fu_kind.t list -> ?max_per_class:int -> ?inputs_at_start:bool ->
  Kernel.t -> point list
(** All allocations with 1..[max_per_class] (default 3) units per class,
    scheduled; sorted by total units then latency. *)

val pareto : point list -> point list
(** Keep points not dominated on (total units, latency). *)

val cheapest_for_latency :
  ?classes:Dfg.Fu_kind.t list -> ?max_per_class:int -> ?inputs_at_start:bool ->
  Kernel.t -> latency:int -> (point, string) result
(** Fewest total units whose schedule meets the latency bound. *)
