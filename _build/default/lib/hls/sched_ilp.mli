(** Exact resource-constrained scheduling as a 0-1 ILP.

    The paper assumes scheduling is done before BIST synthesis and cites the
    ILP scheduling lineage (Hafer-Parker [7], Gebotys-Elmasry [8]); this
    module closes that loop with the classic time-indexed formulation:

    - binaries [x_{o,t}] over each operation's mobility window,
    - assignment [sum_t x_{o,t} = 1],
    - precedence [start(o) >= start(o') + 1] via start-time expressions,
    - per-step resource bounds per unit class.

    Minimal latency is found by solving feasibility for L = critical path,
    L+1, ... (each a small ILP solved by {!Ilp.Solver}); optimality of the
    returned latency is exact, making this the oracle against which the
    heuristic list scheduler is tested. *)

val feasible :
  ?time_limit:float -> ?inputs_at_start:bool -> Kernel.t ->
  modules:Dfg.Fu_kind.t list -> latency:int ->
  (Dfg.Problem.t option, string) result
(** [Ok None] = proven infeasible at this latency; [Ok (Some p)] = a valid
    schedule packaged as a problem instance; [Error] = solver limit hit
    before a proof (or an unsupported operation kind). *)

val min_latency :
  ?time_limit:float -> ?inputs_at_start:bool -> Kernel.t ->
  modules:Dfg.Fu_kind.t list -> (Dfg.Problem.t, string) result
(** The shortest-latency schedule under the given allocation.
    [time_limit] applies per candidate latency (default 10 s). *)
