let bind (p : Dfg.Problem.t) =
  let g = p.Dfg.Problem.dfg in
  let module_of_op = Array.make (Dfg.Graph.n_ops g) (-1) in
  let failed = ref None in
  for s = 0 to g.Dfg.Graph.n_steps - 1 do
    let taken = Array.make (Dfg.Problem.n_modules p) false in
    (* Most-constrained operations first. *)
    let ops =
      List.sort
        (fun a b ->
          compare
            (List.length (Dfg.Problem.candidates p a))
            (List.length (Dfg.Problem.candidates p b)))
        (Dfg.Graph.ops_at_step g s)
    in
    List.iter
      (fun o ->
        let free =
          List.filter (fun m -> not taken.(m)) (Dfg.Problem.candidates p o)
        in
        match free with
        | [] -> if !failed = None then failed := Some (o, s)
        | m :: _ ->
            module_of_op.(o) <- m;
            taken.(m) <- true)
      ops
  done;
  match !failed with
  | Some (o, s) ->
      Error (Printf.sprintf "no free module for op %d at step %d" o s)
  | None -> Ok module_of_op

let check (p : Dfg.Problem.t) module_of_op =
  let g = p.Dfg.Problem.dfg in
  let err = ref None in
  Array.iteri
    (fun o m ->
      if m < 0 || m >= Dfg.Problem.n_modules p then begin
        if !err = None then err := Some (Printf.sprintf "op %d unbound" o)
      end
      else if
        not
          (Dfg.Fu_kind.supports
             p.Dfg.Problem.modules.(m)
             (Dfg.Graph.operation g o).Dfg.Graph.kind)
      then
        if !err = None then
          err := Some (Printf.sprintf "op %d bound to unsupporting module %d" o m))
    module_of_op;
  for s = 0 to g.Dfg.Graph.n_steps - 1 do
    let seen = Hashtbl.create 7 in
    List.iter
      (fun o ->
        let m = module_of_op.(o) in
        if Hashtbl.mem seen m then begin
          if !err = None then
            err :=
              Some (Printf.sprintf "module %d double-booked at step %d" m s)
        end
        else Hashtbl.add seen m ())
      (Dfg.Graph.ops_at_step g s)
  done;
  match !err with None -> Ok () | Some msg -> Error msg
