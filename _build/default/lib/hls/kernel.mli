(** Unscheduled data-flow descriptions of DSP kernels.

    The paper synthesized its fir6/iir3/dct4/wavelet6 circuits with HYPER;
    this module plays HYPER's front-end role: it turns a signal-processing
    kernel into a data-flow of binary operations (with common-subexpression
    sharing), which {!Schedule} then maps onto control steps. *)

type arg =
  | Input of string
  | Const of int
  | Ref of int  (** result of an earlier node *)

type node = { kind : Dfg.Op_kind.t; a : arg; b : arg }

type t = {
  kname : string;
  nodes : node array;  (** in topological order: [Ref i] only with [i] < index *)
  outputs : (string * int) list;  (** named output nodes *)
}

(** {1 Expression builder} *)

module Build : sig
  type kernel := t
  type t
  type operand

  val create : string -> t
  val input : t -> string -> operand
  val const : t -> int -> operand

  val op : t -> Dfg.Op_kind.t -> operand -> operand -> operand
  (** Hash-consed: identical (kind, a, b) triples share one node;
      commutative kinds are normalized before consing. *)

  val add : t -> operand -> operand -> operand
  val sub : t -> operand -> operand -> operand
  val mul : t -> operand -> operand -> operand
  val output : t -> string -> operand -> unit
  val finish : t -> kernel
end

val n_ops : t -> int
val op_count : t -> Dfg.Op_kind.t -> int

(** {1 The paper's HYPER-synthesized circuits (reconstructions)} *)

val fir6 : t
(** 6th-order (7-tap) symmetric FIR filter: 4 multiplications (coefficient
    constants) and 6 additions. *)

val iir3 : t
(** 3rd-order IIR filter, direct form II (shared delay line):
    7 multiplications, 6 add/sub. *)

val dct4 : t
(** 4-point DCT via the even/odd butterfly decomposition: 6 multiplications,
    8 add/sub. *)

val wavelet6 : t
(** 6-tap orthogonal wavelet analysis stage (low-pass and high-pass outputs
    from the same 6 samples, quadrature-mirror coefficients). *)

val ewf : t
(** Fifth-order elliptic wave filter — the classic HLS stress benchmark
    (18 additions + 8 constant multiplications after common-subexpression
    sharing).  Not in the paper's evaluation; used for scalability
    experiments. *)
