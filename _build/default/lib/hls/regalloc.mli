(** Left-edge register allocation.

    The classic interval-graph colouring: sort variables by birth boundary
    and greedily pack each into the first register whose current occupant
    died earlier.  For interval conflict graphs this uses exactly
    the minimum number of registers (the maximal horizontal crossing).

    Used by the heuristic baselines and as a warm start for the exact ILP
    engines. *)

val allocate : Dfg.Graph.t -> int array
(** [allocate g] returns [reg_of_var]; registers are numbered from 0 and
    number exactly [Dfg.Lifetime.min_registers]. *)

val n_registers : int array -> int
(** Number of distinct registers in an assignment ([max + 1]). *)

val check : Dfg.Graph.t -> int array -> (unit, string) result
(** Verifies that no two incompatible variables share a register. *)
