type arg = Input of string | Const of int | Ref of int
type node = { kind : Dfg.Op_kind.t; a : arg; b : arg }

type t = {
  kname : string;
  nodes : node array;
  outputs : (string * int) list;
}

module Build = struct
  type operand = arg

  type t = {
    name : string;
    mutable nodes : node list;  (* reversed *)
    mutable count : int;
    cse : (Dfg.Op_kind.t * arg * arg, int) Hashtbl.t;
    mutable outs : (string * int) list;  (* reversed *)
  }

  let create name = { name; nodes = []; count = 0; cse = Hashtbl.create 97; outs = [] }
  let input _b name = Input name
  let const _b c = Const c

  (* Commutative operands are normalized with constants last (the
     conventional coefficient port), then structurally. *)
  let op b kind x y =
    let rank = function Const _ -> 1 | Input _ | Ref _ -> 0 in
    let x, y =
      if
        Dfg.Op_kind.commutative kind
        && compare (rank y, y) (rank x, x) < 0
      then (y, x)
      else (x, y)
    in
    match Hashtbl.find_opt b.cse (kind, x, y) with
    | Some i -> Ref i
    | None ->
        let i = b.count in
        b.nodes <- { kind; a = x; b = y } :: b.nodes;
        b.count <- i + 1;
        Hashtbl.add b.cse (kind, x, y) i;
        Ref i

  let add b = op b Dfg.Op_kind.Add
  let sub b = op b Dfg.Op_kind.Sub
  let mul b = op b Dfg.Op_kind.Mul

  let output b name = function
    | Ref i -> b.outs <- (name, i) :: b.outs
    | Input _ | Const _ ->
        invalid_arg "Kernel.Build.output: output must be an operation result"

  let finish b =
    {
      kname = b.name;
      nodes = Array.of_list (List.rev b.nodes);
      outputs = List.rev b.outs;
    }
end

let n_ops k = Array.length k.nodes

let op_count k kind =
  Array.fold_left
    (fun acc n -> if Dfg.Op_kind.equal n.kind kind then acc + 1 else acc)
    0 k.nodes

(* Symmetric 7-tap FIR: y = c0(x0+x6) + c1(x1+x5) + c2(x2+x4) + c3*x3. *)
let fir6 =
  let b = Build.create "fir6" in
  let x = Array.init 7 (fun i -> Build.input b (Printf.sprintf "x%d" i)) in
  let c = [| 3; 7; 11; 13 |] in
  let p0 = Build.add b x.(0) x.(6) in
  let p1 = Build.add b x.(1) x.(5) in
  let p2 = Build.add b x.(2) x.(4) in
  let m0 = Build.mul b p0 (Build.const b c.(0)) in
  let m1 = Build.mul b p1 (Build.const b c.(1)) in
  let m2 = Build.mul b p2 (Build.const b c.(2)) in
  let m3 = Build.mul b x.(3) (Build.const b c.(3)) in
  let s0 = Build.add b m0 m1 in
  let s1 = Build.add b m2 m3 in
  let y = Build.add b s0 s1 in
  Build.output b "y" y;
  Build.finish b

(* 3rd-order IIR, direct form II: one delay line w1..w3 shared between the
   recursive and the forward part.
     w = x - a1*w1 - a2*w2 - a3*w3
     y = b0*w + b1*w1 + b2*w2 + b3*w3 *)
let iir3 =
  let b = Build.create "iir3" in
  let x = Build.input b "x" in
  let w1 = Build.input b "w1" and w2 = Build.input b "w2" in
  let w3 = Build.input b "w3" in
  let m1 = Build.mul b w1 (Build.const b 6) in
  let m2 = Build.mul b w2 (Build.const b 4) in
  let m3 = Build.mul b w3 (Build.const b 2) in
  let w = Build.sub b (Build.sub b (Build.sub b x m1) m2) m3 in
  let n0 = Build.mul b w (Build.const b 5) in
  let n1 = Build.mul b w1 (Build.const b 9) in
  let n2 = Build.mul b w2 (Build.const b 9) in
  let n3 = Build.mul b w3 (Build.const b 5) in
  let y = Build.add b (Build.add b n0 n1) (Build.add b n2 n3) in
  Build.output b "w" w;
  Build.output b "y" y;
  Build.finish b

(* 4-point DCT, even/odd butterfly decomposition. *)
let dct4 =
  let b = Build.create "dct4" in
  let x = Array.init 4 (fun i -> Build.input b (Printf.sprintf "x%d" i)) in
  let c4 = Build.const b 11 and c1 = Build.const b 15 and c3 = Build.const b 6 in
  let s0 = Build.add b x.(0) x.(3) in
  let s1 = Build.add b x.(1) x.(2) in
  let d0 = Build.sub b x.(0) x.(3) in
  let d1 = Build.sub b x.(1) x.(2) in
  let y0 = Build.mul b (Build.add b s0 s1) c4 in
  let y2 = Build.mul b (Build.sub b s0 s1) c4 in
  let y1 = Build.add b (Build.mul b d0 c1) (Build.mul b d1 c3) in
  let y3 = Build.sub b (Build.mul b d0 c3) (Build.mul b d1 c1) in
  Build.output b "y0" y0;
  Build.output b "y1" y1;
  Build.output b "y2" y2;
  Build.output b "y3" y3;
  Build.finish b

(* 6-tap orthogonal wavelet analysis: low-pass h, high-pass g with the
   quadrature-mirror relation g_i = (-1)^i h_{5-i}; the shared products
   x_i * h_j are CSE-shared between the two outputs where they coincide. *)
let wavelet6 =
  let b = Build.create "wavelet6" in
  let x = Array.init 6 (fun i -> Build.input b (Printf.sprintf "x%d" i)) in
  let h = [| 5; 12; 14; 8; 3; 1 |] in
  let lo =
    let ms = Array.to_list (Array.mapi (fun i xi -> Build.mul b xi (Build.const b h.(i))) x) in
    match ms with
    | m0 :: m1 :: m2 :: m3 :: m4 :: m5 :: [] ->
        let a0 = Build.add b m0 m1 in
        let a1 = Build.add b m2 m3 in
        let a2 = Build.add b m4 m5 in
        Build.add b (Build.add b a0 a1) a2
    | _ -> assert false
  in
  let hi =
    (* g = [h5, -h4, h3, -h2, h1, -h0] *)
    let m0 = Build.mul b x.(0) (Build.const b h.(5)) in
    let m1 = Build.mul b x.(1) (Build.const b h.(4)) in
    let m2 = Build.mul b x.(2) (Build.const b h.(3)) in
    let m3 = Build.mul b x.(3) (Build.const b h.(2)) in
    let m4 = Build.mul b x.(4) (Build.const b h.(1)) in
    let m5 = Build.mul b x.(5) (Build.const b h.(0)) in
    let p = Build.add b (Build.add b m0 m2) m4 in
    let n = Build.add b (Build.add b m1 m3) m5 in
    Build.sub b p n
  in
  Build.output b "lo" lo;
  Build.output b "hi" hi;
  Build.finish b

(* Fifth-order elliptic wave filter (the classic HLS stress benchmark):
   a long dependence chain of additions and constant multiplications.
   Not part of the paper's evaluation; used here to exercise
   scalability. *)
let ewf =
  let b = Build.create "ewf" in
  let inp = Build.input b "inp" in
  let sv = Array.init 7 (fun i -> Build.input b (Printf.sprintf "sv%d" i)) in
  let cst v = Build.const b v in
  (* The add/mul structure follows the standard EWF data-flow graph; exact
     coefficient values are placeholders (they do not affect synthesis). *)
  let a1 = Build.add b inp sv.(0) in
  let a2 = Build.add b a1 sv.(1) in
  let m1 = Build.mul b a2 (cst 3) in
  let a3 = Build.add b m1 sv.(1) in
  let a4 = Build.add b a3 sv.(2) in
  let m2 = Build.mul b a4 (cst 5) in
  let a5 = Build.add b m2 a2 in
  let a6 = Build.add b a5 sv.(2) in
  let m3 = Build.mul b a6 (cst 7) in
  let a7 = Build.add b m3 a4 in
  let a8 = Build.add b a7 sv.(3) in
  let a9 = Build.add b a8 sv.(4) in
  let m4 = Build.mul b a9 (cst 9) in
  let a10 = Build.add b m4 a6 in
  let a11 = Build.add b a10 sv.(4) in
  let m5 = Build.mul b a11 (cst 11) in
  let a12 = Build.add b m5 a9 in
  let a13 = Build.add b a12 sv.(5) in
  let m6 = Build.mul b a13 (cst 13) in
  let a14 = Build.add b m6 a11 in
  let a15 = Build.add b a14 sv.(6) in
  let m7 = Build.mul b a15 (cst 15) in
  let a16 = Build.add b m7 a13 in
  let m8 = Build.mul b a16 (cst 2) in
  let a17 = Build.add b m8 a15 in
  let out = Build.add b a17 a16 in
  Build.output b "out" out;
  Build.output b "nsv0" a2;
  Build.output b "nsv1" a5;
  Build.output b "nsv2" a10;
  Build.output b "nsv3" a12;
  Build.output b "nsv4" a14;
  Build.output b "nsv5" a17;
  Build.finish b
