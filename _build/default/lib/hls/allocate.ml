let default_class = function
  | Dfg.Op_kind.Mul -> Dfg.Fu_kind.multiplier
  | Dfg.Op_kind.Shl | Dfg.Op_kind.Shr -> Dfg.Fu_kind.shifter
  | Dfg.Op_kind.And | Dfg.Op_kind.Or | Dfg.Op_kind.Xor -> Dfg.Fu_kind.logic
  | Dfg.Op_kind.Add | Dfg.Op_kind.Sub | Dfg.Op_kind.Lt -> Dfg.Fu_kind.alu

let required_classes (k : Kernel.t) =
  Array.fold_left
    (fun acc node ->
      let fu = default_class node.Kernel.kind in
      if List.exists (Dfg.Fu_kind.equal fu) acc then acc else acc @ [ fu ])
    [] k.Kernel.nodes

type point = {
  counts : (Dfg.Fu_kind.t * int) list;
  total_units : int;
  latency : int;
  problem : Dfg.Problem.t;
}

let explore ?classes ?(max_per_class = 3) ?inputs_at_start (k : Kernel.t) =
  let classes =
    match classes with Some c -> c | None -> required_classes k
  in
  (* enumerate count vectors *)
  let rec vectors = function
    | [] -> [ [] ]
    | fu :: rest ->
        let tails = vectors rest in
        List.concat_map
          (fun n -> List.map (fun tail -> (fu, n) :: tail) tails)
          (List.init max_per_class (fun i -> i + 1))
  in
  let points =
    List.filter_map
      (fun counts ->
        let modules =
          List.concat_map (fun (fu, n) -> List.init n (fun _ -> fu)) counts
        in
        match Schedule.list_schedule ?inputs_at_start k ~modules with
        | Error _ -> None
        | Ok problem ->
            Some
              {
                counts;
                total_units = List.fold_left (fun a (_, n) -> a + n) 0 counts;
                latency = problem.Dfg.Problem.dfg.Dfg.Graph.n_steps;
                problem;
              })
      (vectors classes)
  in
  List.sort
    (fun a b ->
      match compare a.total_units b.total_units with
      | 0 -> compare a.latency b.latency
      | c -> c)
    points

let pareto points =
  List.filter
    (fun p ->
      not
        (List.exists
           (fun q ->
             q != p
             && q.total_units <= p.total_units
             && q.latency <= p.latency
             && (q.total_units < p.total_units || q.latency < p.latency))
           points))
    points

let cheapest_for_latency ?classes ?max_per_class ?inputs_at_start k ~latency =
  let candidates =
    List.filter
      (fun p -> p.latency <= latency)
      (explore ?classes ?max_per_class ?inputs_at_start k)
  in
  match candidates with
  | p :: _ -> Ok p
  | [] ->
      Error
        (Printf.sprintf
           "no allocation meets latency %d (critical path is %d)" latency
           (Schedule.critical_path k))
