(** Resource-constrained scheduling of kernels onto control steps.

    All operations take one control step (the paper's model).  The list
    scheduler respects the module allocation: at each step, at most as many
    operations of each class as there are supporting modules.  Priority is
    longest-downstream-path first (critical path), the classic list
    heuristic; ASAP and ALAP are exposed for analysis and tests. *)

val asap : Kernel.t -> int array
(** Earliest start step per node. *)

val critical_path : Kernel.t -> int
(** Length (in steps) of the longest dependence chain. *)

val alap : Kernel.t -> latency:int -> int array
(** Latest start steps for the given overall latency.
    @raise Invalid_argument if [latency < critical_path]. *)

val list_schedule :
  ?latency:int -> ?inputs_at_start:bool -> ?minimize_pressure:bool ->
  Kernel.t -> modules:Dfg.Fu_kind.t list -> (Dfg.Problem.t, string) result
(** Schedules the kernel and packages it as a problem instance with the
    given module allocation.  [latency] caps the schedule length (the
    scheduler may exceed it only if resources force it; the cap steers
    priorities via ALAP mobility).  [minimize_pressure] replaces the
    ALAP-urgency priority with a register-pressure-aware one: ready
    operations that are the last use of the most live values go first.
    Fails if some operation kind has no supporting module. *)

val of_steps :
  ?inputs_at_start:bool -> Kernel.t -> steps:int array ->
  modules:Dfg.Fu_kind.t list -> (Dfg.Problem.t, string) result
(** Package an externally computed schedule (one step per node) as a
    problem instance; the DFG builder and {!Dfg.Problem.make} validate
    precedence and resource feasibility. *)
