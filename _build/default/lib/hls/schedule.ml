let preds (k : Kernel.t) i =
  let n = k.Kernel.nodes.(i) in
  let of_arg = function Kernel.Ref j -> Some j | Kernel.Input _ | Kernel.Const _ -> None in
  List.filter_map of_arg [ n.Kernel.a; n.Kernel.b ]

let succs (k : Kernel.t) =
  let n = Kernel.n_ops k in
  let out = Array.make n [] in
  for i = 0 to n - 1 do
    List.iter (fun j -> out.(j) <- i :: out.(j)) (preds k i)
  done;
  out

let asap k =
  let n = Kernel.n_ops k in
  let t = Array.make n 0 in
  for i = 0 to n - 1 do
    List.iter (fun j -> t.(i) <- max t.(i) (t.(j) + 1)) (preds k i)
  done;
  t

let critical_path k =
  let t = asap k in
  1 + Array.fold_left max (-1) t

let alap k ~latency =
  let cp = critical_path k in
  if latency < cp then
    invalid_arg
      (Printf.sprintf "Schedule.alap: latency %d < critical path %d" latency cp);
  let n = Kernel.n_ops k in
  let t = Array.make n (latency - 1) in
  let out = succs k in
  for i = n - 1 downto 0 do
    List.iter (fun j -> t.(i) <- min t.(i) (t.(j) - 1)) out.(i)
  done;
  t

(* Downstream height (longest chain of dependents), for list priority. *)
let height k =
  let n = Kernel.n_ops k in
  let out = succs k in
  let h = Array.make n 0 in
  for i = n - 1 downto 0 do
    List.iter (fun j -> h.(i) <- max h.(i) (h.(j) + 1)) out.(i)
  done;
  h

let module_class kinds op_kind =
  (* index of the first unit kind supporting the op kind *)
  let rec go idx = function
    | [] -> None
    | fu :: rest ->
        if Dfg.Fu_kind.supports fu op_kind then Some idx else go (idx + 1) rest
  in
  go 0 kinds

(* Number of operands of node [i] for which this is the last remaining use,
   given which nodes are already scheduled: used by the pressure-aware
   priority to prefer operations that free registers. *)
let kills (k : Kernel.t) step i =
  let n = Kernel.n_ops k in
  let last_use arg =
    match arg with
    | Kernel.Const _ -> false
    | Kernel.Input _ | Kernel.Ref _ ->
        (* no other unscheduled node shares this operand *)
        let shares j =
          j <> i && step.(j) < 0
          && (k.Kernel.nodes.(j).Kernel.a = arg
             || k.Kernel.nodes.(j).Kernel.b = arg)
        in
        let rec any j = j < n && (shares j || any (j + 1)) in
        not (any 0)
  in
  (if last_use k.Kernel.nodes.(i).Kernel.a then 1 else 0)
  + (if last_use k.Kernel.nodes.(i).Kernel.b then 1 else 0)

let rec list_schedule ?latency ?(inputs_at_start = false)
    ?(minimize_pressure = false) (k : Kernel.t) ~modules =
  let n = Kernel.n_ops k in
  (* Distinct unit kinds with capacities. *)
  let kinds =
    List.fold_left
      (fun acc fu ->
        if List.exists (fun (g, _) -> Dfg.Fu_kind.equal g fu) acc then
          List.map
            (fun (g, c) -> if Dfg.Fu_kind.equal g fu then (g, c + 1) else (g, c))
            acc
        else acc @ [ (fu, 1) ])
      [] modules
  in
  let kind_list = List.map fst kinds in
  let capacity = Array.of_list (List.map snd kinds) in
  let cls = Array.make n (-1) in
  let unsupported = ref [] in
  for i = 0 to n - 1 do
    match module_class kind_list k.Kernel.nodes.(i).Kernel.kind with
    | Some c -> cls.(i) <- c
    | None -> unsupported := i :: !unsupported
  done;
  if !unsupported <> [] then
    Error
      (Printf.sprintf "no module kind supports node(s) %s"
         (String.concat ", " (List.map string_of_int !unsupported)))
  else begin
    let h = height k in
    let pref_alap =
      match latency with
      | Some l when l >= critical_path k -> alap k ~latency:l
      | Some _ | None -> Array.make n max_int
    in
    let step = Array.make n (-1) in
    let scheduled = ref 0 in
    let t = ref 0 in
    while !scheduled < n do
      let used = Array.make (Array.length capacity) 0 in
      let ready =
        List.filter
          (fun i ->
            step.(i) < 0
            && List.for_all (fun j -> step.(j) >= 0 && step.(j) < !t) (preds k i))
          (List.init n Fun.id)
      in
      (* Least ALAP (most urgent), then greatest height. *)
      let ordered =
        if minimize_pressure then
          List.sort
            (fun a b ->
              match compare (kills k step b) (kills k step a) with
              | 0 -> compare h.(b) h.(a)
              | c -> c)
            ready
        else
          List.sort
            (fun a b ->
              match compare pref_alap.(a) pref_alap.(b) with
              | 0 -> compare h.(b) h.(a)
              | c -> c)
            ready
      in
      List.iter
        (fun i ->
          let c = cls.(i) in
          if used.(c) < capacity.(c) then begin
            step.(i) <- !t;
            used.(c) <- used.(c) + 1;
            incr scheduled
          end)
        ordered;
      incr t
    done;
    of_steps ~inputs_at_start k ~steps:step ~modules
  end

and of_steps ?(inputs_at_start = false) (k : Kernel.t) ~steps ~modules =
  let n = Kernel.n_ops k in
  if Array.length steps <> n then Error "of_steps: wrong step count"
  else begin
    let step = steps in
    (* Emit the scheduled DFG. *)
    let b = Dfg.Graph.Builder.create ~inputs_at_start ~name:k.Kernel.kname () in
    let inputs = Hashtbl.create 17 in
    let arg_operand results = function
      | Kernel.Input name -> (
          match Hashtbl.find_opt inputs name with
          | Some v -> v
          | None ->
              let v = Dfg.Graph.Builder.input b name in
              Hashtbl.add inputs name v;
              v)
      | Kernel.Const c -> Dfg.Graph.Const c
      | Kernel.Ref j -> results.(j)
    in
    let results = Array.make n (Dfg.Graph.Const 0) in
    let out_name =
      let tbl = Hashtbl.create 7 in
      List.iter (fun (name, i) -> Hashtbl.replace tbl i name) k.Kernel.outputs;
      fun i -> Hashtbl.find_opt tbl i
    in
    for i = 0 to n - 1 do
      let node = k.Kernel.nodes.(i) in
      let a = arg_operand results node.Kernel.a in
      let c = arg_operand results node.Kernel.b in
      let name =
        match out_name i with Some s -> s | None -> Printf.sprintf "t%d" i
      in
      results.(i) <-
        Dfg.Graph.Builder.op ~name b node.Kernel.kind ~step:step.(i) a c
    done;
    match Dfg.Graph.Builder.build b with
    | Error errs -> Error (String.concat "; " errs)
    | Ok g -> Dfg.Problem.make g modules
  end
