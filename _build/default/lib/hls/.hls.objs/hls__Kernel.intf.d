lib/hls/kernel.mli: Dfg
