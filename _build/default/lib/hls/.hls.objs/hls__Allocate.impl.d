lib/hls/allocate.ml: Array Dfg Kernel List Printf Schedule
