lib/hls/sched_ilp.ml: Array Dfg Fun Ilp Kernel List Option Printf Result Schedule
