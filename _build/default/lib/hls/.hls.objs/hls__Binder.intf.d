lib/hls/binder.mli: Dfg
