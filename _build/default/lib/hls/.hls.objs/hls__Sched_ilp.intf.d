lib/hls/sched_ilp.mli: Dfg Kernel
