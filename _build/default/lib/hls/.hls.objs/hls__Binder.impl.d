lib/hls/binder.ml: Array Dfg Hashtbl List Printf
