lib/hls/regalloc.ml: Array Dfg Fun List Printf
