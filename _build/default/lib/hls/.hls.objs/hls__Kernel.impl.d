lib/hls/kernel.ml: Array Dfg Hashtbl List Printf
