lib/hls/schedule.ml: Array Dfg Fun Hashtbl Kernel List Printf String
