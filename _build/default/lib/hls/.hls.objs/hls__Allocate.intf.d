lib/hls/allocate.mli: Dfg Kernel
