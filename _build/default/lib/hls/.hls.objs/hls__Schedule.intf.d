lib/hls/schedule.mli: Dfg Kernel
