lib/hls/regalloc.mli: Dfg
