(** Greedy operation-to-module binding.

    For each control step, scheduled operations are matched to supporting
    modules, preferring the module that already executes operations with the
    same source registers (to limit multiplexer growth).  Used by the
    heuristic baselines; the exact engines bind inside the optimization. *)

val bind : Dfg.Problem.t -> (int array, string) result
(** [bind p] returns [module_of_op]. *)

val check : Dfg.Problem.t -> int array -> (unit, string) result
(** Verifies kind support and that no module runs two operations in the same
    control step. *)
