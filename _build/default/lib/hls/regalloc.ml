let allocate g =
  let lt = Dfg.Lifetime.compute g in
  let nv = Dfg.Graph.n_vars g in
  let order =
    List.sort
      (fun v w ->
        let bv, dv = Dfg.Lifetime.interval lt v in
        let bw, dw = Dfg.Lifetime.interval lt w in
        match compare bv bw with 0 -> compare dv dw | c -> c)
      (List.init nv Fun.id)
  in
  let reg_of_var = Array.make nv (-1) in
  let reg_last_death = ref [] in
  (* reg_last_death: (reg, death) in register order *)
  let n_regs = ref 0 in
  List.iter
    (fun v ->
      let birth, death = Dfg.Lifetime.interval lt v in
      let rec find = function
        | [] ->
            let r = !n_regs in
            incr n_regs;
            reg_last_death := !reg_last_death @ [ (r, death) ];
            r
        | (r, d) :: _ when d < birth ->
            reg_last_death :=
              List.map (fun (r', d') -> if r' = r then (r, death) else (r', d'))
                !reg_last_death;
            r
        | _ :: rest -> find rest
      in
      reg_of_var.(v) <- find !reg_last_death)
    order;
  reg_of_var

let n_registers reg_of_var = 1 + Array.fold_left max (-1) reg_of_var

let check g reg_of_var =
  let lt = Dfg.Lifetime.compute g in
  let nv = Dfg.Graph.n_vars g in
  let conflict = ref None in
  for v = 0 to nv - 1 do
    for w = v + 1 to nv - 1 do
      if
        reg_of_var.(v) = reg_of_var.(w)
        && not (Dfg.Lifetime.compatible lt v w)
      then if !conflict = None then conflict := Some (v, w)
    done
  done;
  match !conflict with
  | None -> Ok ()
  | Some (v, w) ->
      Error
        (Printf.sprintf "variables %d and %d overlap but share register %d" v
           w reg_of_var.(v))
