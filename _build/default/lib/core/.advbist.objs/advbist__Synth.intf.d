lib/core/synth.mli: Bist Datapath Dfg
