lib/core/report.ml: Bist Datapath List Printf String Synth
