lib/core/report.mli: Bist Synth
