lib/core/encoding.ml: Array Bist Datapath Dfg Format Fun Hashtbl Ilp List Printf Result String
