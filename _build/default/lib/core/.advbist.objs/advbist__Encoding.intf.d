lib/core/encoding.mli: Bist Datapath Dfg Ilp
