lib/core/heuristic.mli: Datapath Dfg Session_opt
