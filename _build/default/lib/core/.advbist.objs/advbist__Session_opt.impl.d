lib/core/session_opt.ml: Array Bist Datapath Dfg Format Fun Hashtbl Ilp List Option Printf Result
