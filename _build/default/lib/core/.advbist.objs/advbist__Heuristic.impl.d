lib/core/heuristic.ml: Datapath Dfg Hls Result Session_opt
