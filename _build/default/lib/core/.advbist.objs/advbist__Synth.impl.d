lib/core/synth.ml: Array Bist Datapath Dfg Encoding Heuristic Ilp List Printf Result Session_opt
