lib/core/session_opt.mli: Bist Datapath
