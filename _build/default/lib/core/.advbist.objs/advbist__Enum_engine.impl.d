lib/core/enum_engine.ml: Array Bist Datapath Dfg Fun List Session_opt
