lib/core/enum_engine.mli: Bist Dfg
