type method_row = {
  method_name : string;
  registers : int;
  tpgs : int;
  srs : int;
  bilbos : int;
  cbilbos : int;
  mux_inputs : int;
  area : int;
  overhead_pct : float;
  proven_optimal : bool;
}

let row_of_plan ~name ?(optimal = false) ~reference_area (plan : Bist.Plan.t) =
  let tpgs, srs, bilbos, cbilbos = Bist.Plan.kind_counts plan in
  {
    method_name = name;
    registers = plan.Bist.Plan.netlist.Datapath.Netlist.n_registers;
    tpgs;
    srs;
    bilbos;
    cbilbos;
    mux_inputs = Datapath.Netlist.total_mux_inputs plan.Bist.Plan.netlist;
    area = Bist.Plan.area plan;
    overhead_pct = Bist.Plan.overhead_pct plan ~reference:reference_area;
    proven_optimal = optimal;
  }

type sweep_point = {
  sp_k : int;
  sp_area : int;
  sp_overhead_pct : float;
  sp_time : float;
  sp_optimal : bool;
  sp_test_cycles : int;
}

let sweep_points ?n_patterns (rows : Synth.sweep_row list) =
  List.map
    (fun (row : Synth.sweep_row) ->
      {
        sp_k = row.Synth.k;
        sp_area = row.Synth.outcome.Synth.area;
        sp_overhead_pct = row.Synth.overhead_pct;
        sp_time = row.Synth.outcome.Synth.solve_time;
        sp_optimal = row.Synth.outcome.Synth.optimal;
        sp_test_cycles =
          (Bist.Test_time.estimate ?n_patterns row.Synth.outcome.Synth.plan)
            .Bist.Test_time.cycles;
      })
    rows

type format = Text | Markdown | Csv

let method_header = [ "method"; "R"; "T"; "S"; "B"; "C"; "M"; "area"; "OH%"; "opt" ]

let method_cells r =
  [
    r.method_name;
    string_of_int r.registers;
    string_of_int r.tpgs;
    string_of_int r.srs;
    string_of_int r.bilbos;
    string_of_int r.cbilbos;
    string_of_int r.mux_inputs;
    string_of_int r.area;
    Printf.sprintf "%.1f" r.overhead_pct;
    (if r.proven_optimal then "yes" else "no");
  ]

let sweep_header = [ "k"; "area"; "OH%"; "time_s"; "optimal"; "test_cycles" ]

let sweep_cells p =
  [
    string_of_int p.sp_k;
    string_of_int p.sp_area;
    Printf.sprintf "%.1f" p.sp_overhead_pct;
    Printf.sprintf "%.2f" p.sp_time;
    (if p.sp_optimal then "yes" else "no");
    string_of_int p.sp_test_cycles;
  ]

let render fmt header rows =
  match fmt with
  | Csv ->
      String.concat "\n" (List.map (String.concat ",") (header :: rows)) ^ "\n"
  | Markdown ->
      let line cells = "| " ^ String.concat " | " cells ^ " |" in
      let sep = "|" ^ String.concat "|" (List.map (fun _ -> "---") header) ^ "|" in
      String.concat "\n" (line header :: sep :: List.map line rows) ^ "\n"
  | Text ->
      let widths =
        List.mapi
          (fun i h ->
            List.fold_left
              (fun acc row -> max acc (String.length (List.nth row i)))
              (String.length h) rows)
          header
      in
      let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
      let line cells =
        String.concat "  " (List.map2 pad cells widths)
      in
      String.concat "\n" (line header :: List.map line rows) ^ "\n"

let render_methods fmt rows = render fmt method_header (List.map method_cells rows)
let render_sweep fmt points = render fmt sweep_header (List.map sweep_cells points)
