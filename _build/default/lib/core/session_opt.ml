type outcome = {
  plan : Bist.Plan.t;
  optimal : bool;
  nodes : int;
  time_s : float;
}

let lx = Ilp.Linexpr.of_list
let bin m fmt = Format.kasprintf (fun s -> Ilp.Model.bool_var m s) fmt

let solve ?time_limit (d : Datapath.Netlist.t) ~k =
  let p = d.Datapath.Netlist.problem in
  let n_mod = Dfg.Problem.n_modules p in
  let n_regs = d.Datapath.Netlist.n_registers in
  let m = Ilp.Model.create ~name:"session" () in
  let const_only = Datapath.Netlist.constant_only_ports d in
  let writers md =
    List.filter_map
      (fun (md', r) -> if md' = md then Some r else None)
      d.Datapath.Netlist.module_to_reg
  in
  let feeders md l =
    List.filter_map
      (fun (r, md', l') -> if md' = md && l' = l then Some r else None)
      d.Datapath.Netlist.reg_to_port
  in
  let a = Array.init n_mod (fun md -> Array.init k (fun s -> bin m "a_%d_%d" md s)) in
  (* s and t variables exist only where wires exist (Eqs. 6, 9 by
     construction). *)
  let s_var = Hashtbl.create 64 and t_var = Hashtbl.create 64 in
  for md = 0 to n_mod - 1 do
    Ilp.Model.add_eq m (lx (List.init k (fun s -> (1, a.(md).(s))))) 1;
    List.iter
      (fun r ->
        for s = 0 to k - 1 do
          Hashtbl.replace s_var (md, r, s) (bin m "s_%d_%d_%d" md r s)
        done)
      (writers md);
    for s = 0 to k - 1 do
      let terms =
        List.map (fun r -> (1, Hashtbl.find s_var (md, r, s))) (writers md)
      in
      Ilp.Model.add_eq m (lx ((-1, a.(md).(s)) :: terms)) 0
    done;
    let fu = p.Dfg.Problem.modules.(md) in
    for l = 0 to Dfg.Fu_kind.n_ports fu - 1 do
      let srcs = feeders md l in
      if srcs = [] && not (List.mem (md, l) const_only) then
        (* untested port without sources: cannot happen on a valid netlist *)
        Ilp.Model.add_ge m Ilp.Linexpr.zero 1;
      List.iter
        (fun r ->
          for s = 0 to k - 1 do
            Hashtbl.replace t_var (r, md, l, s) (bin m "t_%d_%d_%d_%d" r md l s)
          done)
        srcs;
      if not (List.mem (md, l) const_only) then begin
        (* exactly one TPG, in the module's session *)
        Ilp.Model.add_eq m
          (lx
             (List.concat_map
                (fun r ->
                  List.init k (fun s -> (1, Hashtbl.find t_var (r, md, l, s))))
                srcs))
          1;
        for s = 0 to k - 1 do
          Ilp.Model.add_le m
            (lx
               ((-1, a.(md).(s))
               :: List.map (fun r -> (1, Hashtbl.find t_var (r, md, l, s))) srcs))
            0
        done
      end
      else
        (* constant-only port: dedicated generator, no t variables used *)
        List.iter
          (fun r ->
            for s = 0 to k - 1 do
              Ilp.Model.add_eq m (lx [ (1, Hashtbl.find t_var (r, md, l, s)) ]) 0
            done)
          srcs
    done;
    (* Eq. 13 *)
    let fu_ports = Dfg.Fu_kind.n_ports fu in
    if fu_ports = 2 then
      for r = 0 to n_regs - 1 do
        for s = 0 to k - 1 do
          match
            ( Hashtbl.find_opt t_var (r, md, 0, s),
              Hashtbl.find_opt t_var (r, md, 1, s) )
          with
          | Some t0, Some t1 -> Ilp.Model.add_le m (lx [ (1, t0); (1, t1) ]) 1
          | _, _ -> ()
        done
      done
  done;
  (* Eq. 8 *)
  for r = 0 to n_regs - 1 do
    for s = 0 to k - 1 do
      let terms =
        List.filter_map
          (fun md -> Option.map (fun v -> (1, v)) (Hashtbl.find_opt s_var (md, r, s)))
          (List.init n_mod Fun.id)
      in
      if List.length terms > 1 then Ilp.Model.add_le m (lx terms) 1
    done
  done;
  (* roles and objective *)
  let objective = ref Ilp.Linexpr.zero in
  let plain = Datapath.Area.register Datapath.Area.Plain in
  for r = 0 to n_regs - 1 do
    let t_reg = bin m "T_%d" r and s_reg = bin m "S_%d" r in
    let b_reg = bin m "B_%d" r and c_reg = bin m "C_%d" r in
    for s = 0 to k - 1 do
      let t_rp = bin m "Tp_%d_%d" r s and s_rp = bin m "Sp_%d_%d" r s in
      let c_rp = bin m "Cp_%d_%d" r s in
      Hashtbl.iter
        (fun (r', _, _, s') v ->
          if r' = r && s' = s then begin
            Ilp.Model.add_ge m (lx [ (1, t_rp); (-1, v) ]) 0;
            Ilp.Model.add_ge m (lx [ (1, t_reg); (-1, v) ]) 0
          end)
        t_var;
      Hashtbl.iter
        (fun (_, r', s') v ->
          if r' = r && s' = s then begin
            Ilp.Model.add_ge m (lx [ (1, s_rp); (-1, v) ]) 0;
            Ilp.Model.add_ge m (lx [ (1, s_reg); (-1, v) ]) 0
          end)
        s_var;
      Ilp.Model.add_ge m (lx [ (1, c_rp); (-1, t_rp); (-1, s_rp) ]) (-1);
      Ilp.Model.add_ge m (lx [ (1, c_reg); (-1, c_rp) ]) 0
    done;
    Ilp.Model.add_ge m (lx [ (1, b_reg); (-1, t_reg); (-1, s_reg) ]) (-1);
    objective :=
      Ilp.Linexpr.add !objective
        (lx
           [
             (Datapath.Area.register Datapath.Area.Tpg - plain, t_reg);
             (Datapath.Area.register Datapath.Area.Sr - plain, s_reg);
             ( Datapath.Area.register Datapath.Area.Bilbo
               - Datapath.Area.register Datapath.Area.Tpg
               - Datapath.Area.register Datapath.Area.Sr + plain, b_reg );
             ( Datapath.Area.register Datapath.Area.Cbilbo
               - Datapath.Area.register Datapath.Area.Bilbo, c_reg );
           ])
  done;
  Ilp.Model.set_objective m !objective;
  let options =
    { Ilp.Solver.default with Ilp.Solver.time_limit; lp = Ilp.Solver.Lp_never }
  in
  let r = Ilp.Solver.solve ~options m in
  match (r.Ilp.Solver.status, r.Ilp.Solver.solution) with
  | Ilp.Solver.Infeasible, _ ->
      Error
        (Printf.sprintf "no feasible %d-session BIST plan for this data path" k)
  | Ilp.Solver.Unknown, _ | _, None -> Error "session optimization timed out"
  | (Ilp.Solver.Optimal | Ilp.Solver.Feasible), Some x ->
      let session_of_module = Array.make n_mod 0 in
      let sr_of_module = Array.make n_mod (-1) in
      for md = 0 to n_mod - 1 do
        for s = 0 to k - 1 do
          if x.(a.(md).(s)) = 1 then session_of_module.(md) <- s
        done;
        List.iter
          (fun r' ->
            for s = 0 to k - 1 do
              if x.(Hashtbl.find s_var (md, r', s)) = 1 then
                sr_of_module.(md) <- r'
            done)
          (writers md)
      done;
      let tpg_of_port =
        Array.init n_mod (fun md ->
            let fu = p.Dfg.Problem.modules.(md) in
            Array.init (Dfg.Fu_kind.n_ports fu) (fun l ->
                let found = ref (-1) in
                List.iter
                  (fun r' ->
                    for s = 0 to k - 1 do
                      if x.(Hashtbl.find t_var (r', md, l, s)) = 1 then
                        found := r'
                    done)
                  (feeders md l);
                !found))
      in
      Result.map
        (fun plan ->
          {
            plan;
            optimal = r.Ilp.Solver.status = Ilp.Solver.Optimal;
            nodes = r.Ilp.Solver.nodes;
            time_s = r.Ilp.Solver.time_s;
          })
        (Bist.Plan.make d ~k ~session_of_module ~sr_of_module ~tpg_of_port)
