type outcome = {
  plan : Bist.Plan.t;
  area : int;
  leaves : int;
}

exception Too_large

(* Enumerate canonical register assignments: variables in index order; a
   variable may reuse any compatible register already opened, or open the
   next one (capped at the instance's register count). *)
let enumerate_netlists ?(max_leaves = 200_000) (p : Dfg.Problem.t) yield =
  let g = p.Dfg.Problem.dfg in
  let lt = Dfg.Lifetime.compute g in
  let nv = Dfg.Graph.n_vars g and no = Dfg.Graph.n_ops g in
  let n_regs = Dfg.Problem.min_registers p in
  let reg_of_var = Array.make nv (-1) in
  let module_of_op = Array.make no (-1) in
  let swapped = Array.make no false in
  let leaves = ref 0 in
  let commutative o =
    Dfg.Op_kind.commutative (Dfg.Graph.operation g o).Dfg.Graph.kind
  in
  let rec assign_swaps o =
    if o >= no then begin
      incr leaves;
      if !leaves > max_leaves then raise Too_large;
      yield reg_of_var module_of_op swapped
    end
    else if commutative o then begin
      swapped.(o) <- false;
      assign_swaps (o + 1);
      swapped.(o) <- true;
      assign_swaps (o + 1);
      swapped.(o) <- false
    end
    else assign_swaps (o + 1)
  in
  let rec assign_ops o =
    if o >= no then assign_swaps 0
    else begin
      let step = (Dfg.Graph.operation g o).Dfg.Graph.step in
      List.iter
        (fun m ->
          let clash =
            List.exists
              (fun o' -> o' < o && module_of_op.(o') = m)
              (Dfg.Graph.ops_at_step g step)
          in
          if not clash then begin
            module_of_op.(o) <- m;
            assign_ops (o + 1);
            module_of_op.(o) <- -1
          end)
        (Dfg.Problem.candidates p o)
    end
  in
  let rec assign_vars v used =
    if v >= nv then assign_ops 0
    else
      let compatible r =
        List.for_all
          (fun v' ->
            reg_of_var.(v') <> r || Dfg.Lifetime.compatible lt v v')
          (List.init v Fun.id)
      in
      let limit = min (used + 1) n_regs in
      for r = 0 to limit - 1 do
        if compatible r then begin
          reg_of_var.(v) <- r;
          assign_vars (v + 1) (max used (r + 1));
          reg_of_var.(v) <- -1
        end
      done
  in
  assign_vars 0 0

let synthesize ?max_leaves (p : Dfg.Problem.t) ~k =
  let best = ref None in
  let leaves = ref 0 in
  match
    enumerate_netlists ?max_leaves p (fun reg_of_var module_of_op swapped ->
        incr leaves;
        match
          Datapath.Netlist.make ~swapped:(Array.copy swapped) p
            ~reg_of_var:(Array.copy reg_of_var)
            ~module_of_op:(Array.copy module_of_op)
        with
        | Error _ -> ()
        | Ok d -> (
            (* skip data paths that cannot beat the incumbent even with free
               test registers *)
            let floor =
              Datapath.Netlist.reference_area d
              + (Datapath.Area.constant_tpg
                * List.length (Datapath.Netlist.constant_only_ports d))
            in
            match !best with
            | Some (_, cost) when floor >= cost -> ()
            | Some _ | None -> (
                match Session_opt.solve d ~k with
                | Error _ -> ()
                | Ok { Session_opt.plan; optimal; _ } ->
                    if optimal then begin
                      let cost = Bist.Plan.objective_cost plan in
                      match !best with
                      | Some (_, c) when c <= cost -> ()
                      | Some _ | None -> best := Some (plan, cost)
                    end)))
  with
  | exception Too_large -> Error "instance too large for exhaustive enumeration"
  | () -> (
      match !best with
      | Some (plan, _) ->
          Ok { plan; area = Bist.Plan.area plan; leaves = !leaves }
      | None -> Error "no feasible BIST design")

let reference ?max_leaves (p : Dfg.Problem.t) =
  let best = ref None in
  let leaves = ref 0 in
  match
    enumerate_netlists ?max_leaves p (fun reg_of_var module_of_op swapped ->
        incr leaves;
        match
          Datapath.Netlist.make ~swapped p ~reg_of_var ~module_of_op
        with
        | Error _ -> ()
        | Ok d ->
            let area = Datapath.Netlist.reference_area d in
            (match !best with
            | Some a when a <= area -> ()
            | Some _ | None -> best := Some area))
  with
  | exception Too_large -> Error "instance too large for exhaustive enumeration"
  | () -> (
      match !best with
      | Some area -> Ok area
      | None -> Error "no feasible data path")
