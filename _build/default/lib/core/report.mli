(** Structured result rows and renderers for the paper's tables.

    The benchmark harness and the CLI both need the Table 2 / Table 3 views
    of a set of synthesis results; this module computes the rows from plans
    and renders them as aligned text, Markdown or CSV. *)

type method_row = {
  method_name : string;
  registers : int;
  tpgs : int;
  srs : int;
  bilbos : int;
  cbilbos : int;
  mux_inputs : int;
  area : int;
  overhead_pct : float;
  proven_optimal : bool;
}

val row_of_plan :
  name:string -> ?optimal:bool -> reference_area:int -> Bist.Plan.t ->
  method_row
(** [optimal] defaults to [false] (heuristic methods never prove
    optimality). *)

type sweep_point = {
  sp_k : int;
  sp_area : int;
  sp_overhead_pct : float;
  sp_time : float;
  sp_optimal : bool;
  sp_test_cycles : int;
}

val sweep_points : ?n_patterns:int -> Synth.sweep_row list -> sweep_point list

(** {1 Renderers} *)

type format = Text | Markdown | Csv

val render_methods : format -> method_row list -> string
(** Header + one line per method; Text aligns columns. *)

val render_sweep : format -> sweep_point list -> string
