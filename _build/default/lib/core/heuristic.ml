let ( let* ) r f = Result.bind r f

let netlist (p : Dfg.Problem.t) =
  let g = p.Dfg.Problem.dfg in
  let reg_of_var = Hls.Regalloc.allocate g in
  let* module_of_op = Hls.Binder.bind p in
  Datapath.Netlist.make p ~reg_of_var ~module_of_op

let synthesize ?time_limit p ~k =
  let* d = netlist p in
  Session_opt.solve ?time_limit d ~k
