(** Independent exhaustive engine — the correctness oracle for the ILP.

    Enumerates every canonical register assignment (colourings of the
    lifetime conflict graph, symmetry-broken by first-use ordering), every
    module binding and every commutative port swap; evaluates each complete
    data path with the exact session optimizer ({!Session_opt}); returns the
    global optimum.

    Exponential by nature: refuses instances whose search space exceeds
    [max_leaves] (default [200_000]).  The test-suite runs it against the
    concurrent ILP on small instances — both must agree on the optimal
    cost, which validates the formulation, the solver and the decoder at
    once. *)

type outcome = {
  plan : Bist.Plan.t;
  area : int;
  leaves : int;  (** complete data paths evaluated *)
}

val synthesize :
  ?max_leaves:int -> Dfg.Problem.t -> k:int -> (outcome, string) result

val reference : ?max_leaves:int -> Dfg.Problem.t -> (int, string) result
(** Minimum non-BIST area over the same enumeration. *)
