(** Constructive heuristic synthesis: left-edge register allocation + greedy
    module binding, followed by exact session/SR/TPG assignment on the
    resulting data path ({!Session_opt}).

    This is fast and always succeeds when a plan exists; it provides the
    warm-start incumbent for the full concurrent ILP and a sequential
    baseline for the ablation bench (concurrent vs decoupled optimization —
    the paper's central claim is that concurrency wins). *)

val netlist : Dfg.Problem.t -> (Datapath.Netlist.t, string) result
(** Left-edge + greedy-binding data path (no port swaps). *)

val synthesize :
  ?time_limit:float -> Dfg.Problem.t -> k:int ->
  (Session_opt.outcome, string) result
