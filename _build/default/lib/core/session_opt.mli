(** Exact BIST-register assignment for a {e fixed} data path.

    When the register assignment, module binding and port swaps are frozen,
    the interconnect (and hence the multiplexer area) is determined; what
    remains of the paper's formulation is the small session/SR/TPG
    subproblem over Eqs. (6)-(23).  This module solves it to optimality —
    it is both the evaluation kernel of the heuristic engine and the warm
    start generator for the full concurrent ILP.

    The model is tiny (tens to a few hundred binaries), so no time limit is
    normally needed; one can be supplied for safety. *)

type outcome = {
  plan : Bist.Plan.t;
  optimal : bool;
  nodes : int;
  time_s : float;
}

val solve :
  ?time_limit:float -> Datapath.Netlist.t -> k:int ->
  (outcome, string) result
(** [Error] when no valid k-session plan exists for this data path (e.g.
    two modules writing only one register cannot be tested in one
    session). *)
