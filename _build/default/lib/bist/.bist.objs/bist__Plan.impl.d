lib/bist/plan.ml: Array Datapath Dfg Format Fun Hashtbl List Printf String
