lib/bist/session.ml: Array Datapath Dfg Fault_sim Gates Lfsr List Plan
