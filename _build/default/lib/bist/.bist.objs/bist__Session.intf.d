lib/bist/session.mli: Dfg Fault_sim Plan
