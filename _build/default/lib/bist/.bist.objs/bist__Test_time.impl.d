lib/bist/test_time.ml: Array Hashtbl List Plan
