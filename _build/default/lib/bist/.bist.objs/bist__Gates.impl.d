lib/bist/gates.ml: Array Dfg List
