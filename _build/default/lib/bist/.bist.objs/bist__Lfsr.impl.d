lib/bist/lfsr.ml: List Printf
