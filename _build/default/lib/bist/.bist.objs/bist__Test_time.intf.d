lib/bist/test_time.mli: Plan
