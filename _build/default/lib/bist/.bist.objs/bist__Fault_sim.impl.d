lib/bist/fault_sim.ml: Array Fun Gates Hashtbl Lfsr List Sys
