lib/bist/lfsr.mli:
