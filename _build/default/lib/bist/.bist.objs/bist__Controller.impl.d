lib/bist/controller.ml: Array Buffer Datapath List Plan Printf
