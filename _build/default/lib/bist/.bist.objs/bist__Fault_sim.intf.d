lib/bist/fault_sim.mli: Gates
