lib/bist/diagnosis.ml: Fault_sim Gates Hashtbl Lfsr List
