lib/bist/diagnosis.mli: Fault_sim Gates
