lib/bist/plan.mli: Datapath Format
