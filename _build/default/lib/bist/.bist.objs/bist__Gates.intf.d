lib/bist/gates.mli: Dfg
