lib/bist/controller.mli: Plan
