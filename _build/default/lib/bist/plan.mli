(** A complete BIST design: a data path plus a k-test-session plan.

    This is the common output representation of every synthesis method in
    this repository (the ILP engines and the three baselines).  The plan
    fixes, for a k-test session:

    - which sub-test session [0 .. k-1] tests each module (Eq. 7),
    - the signature register of each module (Eqs. 6-8),
    - the TPG register of each module input port (Eqs. 9-13), where [-1]
      denotes the dedicated generator of a constant-only port (§3.3.4).

    From those the register reconfigurations (TPG / SR / BILBO / CBILBO,
    Eqs. 14-23) and the area (§3.4) are derived. *)

type t = private {
  netlist : Datapath.Netlist.t;
  k : int;  (** number of sub-test sessions *)
  session_of_module : int array;
  sr_of_module : int array;
  tpg_of_port : int array array;  (** [m].[l]; [-1] = dedicated constant TPG *)
}

val make :
  Datapath.Netlist.t -> k:int -> session_of_module:int array ->
  sr_of_module:int array -> tpg_of_port:int array array ->
  (t, string) result
(** Validates the full rule set:
    - sessions within [0, k) (empty sub-sessions are legal: a k-session
      plan may effectively use fewer sessions);
    - SR wired from its module (Eq. 6) and not shared within a session
      (Eq. 8);
    - each TPG wired to its port (Eq. 9);
    - no TPG shared between two ports of the same module (Eq. 13);
    - a port gets a dedicated generator iff it is constant-only (§3.3.4 and
      the no-extra-paths constraint). *)

val make_exn :
  Datapath.Netlist.t -> k:int -> session_of_module:int array ->
  sr_of_module:int array -> tpg_of_port:int array array -> t

(** {1 Derived register roles (Eqs. 14-23)} *)

val reg_kind : t -> int -> Datapath.Area.reg_kind
(** Final reconfiguration of a register: CBILBO when it is TPG and SR in the
    same sub-test session; BILBO when both roles occur but never together;
    TPG / SR for a single role; Plain otherwise. *)

val reg_kinds : t -> Datapath.Area.reg_kind array

val kind_counts : t -> int * int * int * int
(** (TPGs, SRs, BILBOs, CBILBOs) — the T, S, B, C columns of Table 3. *)

val n_constant_tpgs : t -> int
(** Dedicated generators for constant-only ports ([N_tc] of §3.4). *)

(** {1 Area (§3.4)} *)

val area : t -> int
(** Reported hardware area: registers at their Table 1(a) reconfiguration
    cost + multiplexers + {!Datapath.Area.constant_tpg} per dedicated
    generator. *)

val objective_cost : t -> int
(** The ILP objective value: same as {!area} but constant-only ports charged
    {!Datapath.Area.constant_tpg_weight} (the steering weight [w_tc]). *)

val overhead_pct : t -> reference:int -> float
(** Percent area overhead with respect to a reference (non-BIST) area. *)

val modules_in_session : t -> int -> int list

val pp : Format.formatter -> t -> unit
