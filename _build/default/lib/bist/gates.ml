type gate =
  | G_and of int * int
  | G_or of int * int
  | G_xor of int * int
  | G_not of int
  | G_input of int
  | G_const0
  | G_const1

type t = {
  width : int;
  n_inputs : int;
  gates : gate array;
  outputs : int array;
}

(* Netlist builder: gates are appended, index = id. *)
module B = struct
  type b = { mutable gs : gate list; mutable n : int }

  let create () = { gs = []; n = 0 }

  let push b g =
    b.gs <- g :: b.gs;
    b.n <- b.n + 1;
    b.n - 1

  let input b i = push b (G_input i)
  let const0 b = push b G_const0
  let const1 b = push b G_const1
  let g_and b x y = push b (G_and (x, y))
  let g_or b x y = push b (G_or (x, y))
  let g_xor b x y = push b (G_xor (x, y))
  let g_not b x = push b (G_not x)

  (* full adder: returns (sum, carry) *)
  let full_adder b x y c =
    let xy = g_xor b x y in
    let s = g_xor b xy c in
    let a1 = g_and b x y in
    let a2 = g_and b c xy in
    let cout = g_or b a1 a2 in
    (s, cout)

  (* 2:1 mux built from gates: sel ? x1 : x0 *)
  let mux b sel x0 x1 =
    let ns = g_not b sel in
    let t0 = g_and b ns x0 in
    let t1 = g_and b sel x1 in
    g_or b t0 t1

  let finish b width outputs =
    {
      width;
      n_inputs = 2 * width;
      gates = Array.of_list (List.rev b.gs);
      outputs = Array.of_list outputs;
    }
end

let build kind ~width =
  let b = B.create () in
  let a = Array.init width (fun i -> B.input b i) in
  let bb = Array.init width (fun i -> B.input b (width + i)) in
  let ripple_sum xs ys ~carry_in =
    (* returns (sum bits, carry out) *)
    let c = ref carry_in in
    let sums =
      Array.init width (fun i ->
          let s, cout = B.full_adder b xs.(i) ys.(i) !c in
          c := cout;
          s)
    in
    (sums, !c)
  in
  match kind with
  | Dfg.Op_kind.Add ->
      let zero = B.const0 b in
      let sums, _ = ripple_sum a bb ~carry_in:zero in
      B.finish b width (Array.to_list sums)
  | Dfg.Op_kind.Sub ->
      let one = B.const1 b in
      let nb = Array.map (fun x -> B.g_not b x) bb in
      let sums, _ = ripple_sum a nb ~carry_in:one in
      B.finish b width (Array.to_list sums)
  | Dfg.Op_kind.Lt ->
      (* a < b  <=>  no carry out of a + ~b + 1 *)
      let one = B.const1 b in
      let nb = Array.map (fun x -> B.g_not b x) bb in
      let _, cout = ripple_sum a nb ~carry_in:one in
      let lt = B.g_not b cout in
      let zero = B.const0 b in
      B.finish b width (lt :: List.init (width - 1) (fun _ -> zero))
  | Dfg.Op_kind.And ->
      B.finish b width
        (List.init width (fun i -> B.g_and b a.(i) bb.(i)))
  | Dfg.Op_kind.Or ->
      B.finish b width (List.init width (fun i -> B.g_or b a.(i) bb.(i)))
  | Dfg.Op_kind.Xor ->
      B.finish b width (List.init width (fun i -> B.g_xor b a.(i) bb.(i)))
  | Dfg.Op_kind.Mul ->
      (* array multiplier, truncated to [width] bits *)
      let acc = ref (Array.init width (fun _ -> B.const0 b)) in
      for j = 0 to width - 1 do
        (* partial product row j, shifted left by j, truncated *)
        let row =
          Array.init width (fun i ->
              if i < j then B.const0 b else B.g_and b a.(i - j) bb.(j))
        in
        let zero = B.const0 b in
        let sums, _ = ripple_sum !acc row ~carry_in:zero in
        acc := sums
      done;
      B.finish b width (Array.to_list !acc)
  | Dfg.Op_kind.Shl | Dfg.Op_kind.Shr ->
      (* logarithmic barrel shifter on b's low log2(width) bits *)
      let stages =
        let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
        log2 width
      in
      let zero = B.const0 b in
      let cur = ref (Array.copy a) in
      for s = 0 to stages - 1 do
        let amount = 1 lsl s in
        let sel = bb.(s) in
        let next =
          Array.init width (fun i ->
              let shifted =
                match kind with
                | Dfg.Op_kind.Shl ->
                    if i - amount >= 0 then !cur.(i - amount) else zero
                | Dfg.Op_kind.Shr | Dfg.Op_kind.Add | Dfg.Op_kind.Sub
                | Dfg.Op_kind.Mul | Dfg.Op_kind.Lt | Dfg.Op_kind.And
                | Dfg.Op_kind.Or | Dfg.Op_kind.Xor ->
                    if i + amount < width then !cur.(i + amount) else zero
              in
              B.mux b sel !cur.(i) shifted)
        in
        cur := next
      done;
      B.finish b width (Array.to_list !cur)

let n_gates c = Array.length c.gates

let eval_words c inputs =
  if Array.length inputs <> c.n_inputs then
    invalid_arg "Gates.eval_words: wrong input count";
  let values = Array.make (Array.length c.gates) 0 in
  Array.iteri
    (fun i g ->
      values.(i) <-
        (match g with
        | G_and (x, y) -> values.(x) land values.(y)
        | G_or (x, y) -> values.(x) lor values.(y)
        | G_xor (x, y) -> values.(x) lxor values.(y)
        | G_not x -> lnot values.(x)
        | G_input j -> inputs.(j)
        | G_const0 -> 0
        | G_const1 -> -1 (* all ones *)))
    c.gates;
  Array.map (fun o -> values.(o)) c.outputs

let eval c ~a ~b =
  let inputs =
    Array.init c.n_inputs (fun i ->
        let bit =
          if i < c.width then (a lsr i) land 1
          else (b lsr (i - c.width)) land 1
        in
        if bit = 1 then -1 else 0)
  in
  let outs = eval_words c inputs in
  let r = ref 0 in
  Array.iteri (fun i w -> if w land 1 = 1 then r := !r lor (1 lsl i)) outs;
  !r
