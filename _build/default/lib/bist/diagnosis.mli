(** Signature-based fault diagnosis.

    Signature analysis compacts a whole test session into one word, so a
    failing signature identifies {e that} the module is faulty but not
    {e where}.  The classic remedy is a fault dictionary: pre-compute the
    signature every modelled stuck-at fault would produce and look the
    observed signature up.  Faults producing the fault-free signature are
    aliased/undetected; several faults may share one faulty signature
    (an equivalence class for this pattern set).

    Dictionaries here are per (module circuit, TPG seeds, pattern count) —
    the same session configuration {!Session} runs. *)

type t

val build :
  Gates.t -> seed_a:int -> seed_b:int -> misr_seed:int -> n_patterns:int -> t
(** Simulates every stuck-at fault of the circuit through the session
    configuration and records its signature. *)

val golden : t -> int
(** The fault-free signature. *)

val n_faults : t -> int

val detected_faults : t -> Fault_sim.fault list
(** Faults whose signature differs from {!golden}. *)

val lookup : t -> int -> Fault_sim.fault list
(** [lookup dict signature] — candidate faults for an observed signature.
    Empty for an unknown signature (fault outside the single-stuck-at
    model); looking up {!golden} returns the aliased/undetected faults. *)

val ambiguity : t -> float
(** Mean candidate-class size over detected faults: 1.0 = perfect
    diagnosability with this pattern set. *)

val diagnose :
  t -> Gates.t -> Fault_sim.fault -> seed_a:int -> seed_b:int ->
  misr_seed:int -> n_patterns:int -> Fault_sim.fault list
(** End-to-end: run the faulty session, look its signature up.  The true
    fault is always in the returned class (or the class is the aliased set
    when the fault escapes detection). *)
