type mode = Normal | Pattern | Signature | Both

type step = {
  session : int;
  modes : mode array;
  n_patterns : int;
  constant_generators : (int * int) list;
}

let mode_name = function
  | Normal -> "normal"
  | Pattern -> "TPG"
  | Signature -> "MISR"
  | Both -> "both"

let schedule ?(n_patterns = 255) (plan : Plan.t) =
  let n_regs = plan.Plan.netlist.Datapath.Netlist.n_registers in
  let steps = ref [] in
  for s = plan.Plan.k - 1 downto 0 do
    let modules = Plan.modules_in_session plan s in
    if modules <> [] then begin
      let modes = Array.make n_regs Normal in
      let consts = ref [] in
      List.iter
        (fun m ->
          let sr = plan.Plan.sr_of_module.(m) in
          modes.(sr) <-
            (match modes.(sr) with
            | Normal | Signature -> Signature
            | Pattern | Both -> Both);
          Array.iteri
            (fun l r ->
              if r < 0 then consts := (m, l) :: !consts
              else
                modes.(r) <-
                  (match modes.(r) with
                  | Normal | Pattern -> Pattern
                  | Signature | Both -> Both))
            plan.Plan.tpg_of_port.(m))
        modules;
      steps :=
        { session = s; modes; n_patterns; constant_generators = List.rev !consts }
        :: !steps
    end
  done;
  !steps

let summary ?n_patterns (plan : Plan.t) =
  let buf = Buffer.create 256 in
  List.iter
    (fun step ->
      Buffer.add_string buf (Printf.sprintf "session %d (%d patterns):"
                               step.session step.n_patterns);
      Array.iteri
        (fun r mode ->
          if mode <> Normal then
            Buffer.add_string buf (Printf.sprintf " R%d=%s" r (mode_name mode)))
        step.modes;
      List.iter
        (fun (m, l) ->
          Buffer.add_string buf (Printf.sprintf " M%d.%d=const-TPG" m l))
        step.constant_generators;
      Buffer.add_char buf '\n')
    (schedule ?n_patterns plan);
  Buffer.contents buf

let mode_bits = function
  | Normal -> "2'b11"
  | Pattern -> "2'b00"
  | Signature -> "2'b10"
  | Both -> "2'b01"

let to_verilog ?(n_patterns = 255) ?(name = "bist_controller") (plan : Plan.t) =
  let steps = schedule ~n_patterns plan in
  let n_regs = plan.Plan.netlist.Datapath.Netlist.n_registers in
  let n_steps = List.length steps in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let cnt_bits =
    let rec bits n = if n <= 1 then 1 else 1 + bits (n / 2) in
    bits (n_patterns + 1)
  in
  let step_bits =
    let rec bits n = if n <= 1 then 1 else 1 + bits (n / 2) in
    bits (max 2 (n_steps + 1))
  in
  add "// BIST controller for a %d-session test plan\n" plan.Plan.k;
  add "module %s (\n  input clk,\n  input rst,\n  input start" name;
  for r = 0 to n_regs - 1 do
    add ",\n  output reg [1:0] mode_r%d" r
  done;
  add ",\n  output reg [%d:0] test_session,\n  output reg done_o\n);\n\n"
    (step_bits - 1);
  add "  reg [%d:0] pattern_cnt;\n" (cnt_bits - 1);
  add "  reg running;\n\n";
  add "  always @(posedge clk) begin\n";
  add "    if (rst) begin\n";
  add "      running <= 0; done_o <= 0; test_session <= 0; pattern_cnt <= 0;\n";
  add "    end else if (start && !running && !done_o) begin\n";
  add "      running <= 1; test_session <= 0; pattern_cnt <= 0;\n";
  add "    end else if (running) begin\n";
  add "      if (pattern_cnt == %d) begin\n" n_patterns;
  add "        pattern_cnt <= 0;\n";
  add "        if (test_session == %d) begin running <= 0; done_o <= 1; end\n"
    (n_steps - 1);
  add "        else test_session <= test_session + 1;\n";
  add "      end else pattern_cnt <= pattern_cnt + 1;\n";
  add "    end\n  end\n\n";
  add "  always @* begin\n";
  for r = 0 to n_regs - 1 do
    add "    mode_r%d = 2'b11;\n" r
  done;
  add "    if (running) begin\n      case (test_session)\n";
  List.iteri
    (fun i step ->
      add "        %d'd%d: begin\n" step_bits i;
      Array.iteri
        (fun r mode ->
          if mode <> Normal then
            add "          mode_r%d = %s;\n" r (mode_bits mode))
        step.modes;
      add "        end\n")
    steps;
  add "        default: ;\n      endcase\n    end\n  end\n\nendmodule\n";
  Buffer.contents buf
