(** BIST test-controller generation.

    A synthesized plan needs on-chip control to run: per-register mode
    lines selecting normal / TPG / MISR / both behaviour per sub-test
    session, a pattern counter, and a session sequencer.  This module
    derives that controller:

    - {!schedule} — the per-session mode of every register (the microcode);
    - {!to_verilog} — a synthesizable-style Verilog controller module
      (session FSM, pattern counter, mode outputs, done flag);
    - {!summary} — a human-readable test program listing.

    The mode encoding follows the classic BILBO control conventions [11]:
    [Normal] (B1 B2 = 11), [Pattern] (00 with the scan input tied low),
    [Signature] (10), [Both] for a CBILBO's concurrent operation. *)

type mode = Normal | Pattern | Signature | Both

type step = {
  session : int;
  modes : mode array;  (** per register *)
  n_patterns : int;
  constant_generators : (int * int) list;  (** (module, port) §3.3.4 ports *)
}

val schedule : ?n_patterns:int -> Plan.t -> step list
(** One step per used sub-test session, in session order.
    [n_patterns] defaults to 255. *)

val mode_name : mode -> string

val summary : ?n_patterns:int -> Plan.t -> string
(** Test program listing, one line per session. *)

val to_verilog : ?n_patterns:int -> ?name:string -> Plan.t -> string
(** Controller module: inputs [clk], [rst], [start]; outputs one 2-bit mode
    per register, [test_session] index, [done_o]. *)
