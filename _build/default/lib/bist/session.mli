(** Executable test sessions: run a BIST plan and collect signatures.

    For every module of a plan, the TPG registers of its input ports run as
    LFSRs, the module's gate-level model ({!Gates}) computes responses, and
    the module's signature register runs as a MISR.  A fault-free run yields
    the golden signatures; runs with an injected stuck-at fault show whether
    the signature deviates (i.e. whether BIST detects it).

    A module supporting several operation kinds (an ALU) is tested once per
    supported kind, mirroring how a multi-function unit is exercised in each
    of its modes. *)

type signature = {
  module_ : int;
  kind : Dfg.Op_kind.t;
  value : int;  (** golden MISR contents after the session *)
}

val golden : Plan.t -> n_patterns:int -> signature list
(** Deterministic: TPG register [r] is seeded with [r + 1]; a constant-only
    port's dedicated generator with [31]; MISRs start at [1]. *)

val detects :
  Plan.t -> module_:int -> kind:Dfg.Op_kind.t -> Fault_sim.fault ->
  n_patterns:int -> bool
(** Whether the session's signature deviates from golden under the fault. *)

val session_coverage :
  Plan.t -> module_:int -> kind:Dfg.Op_kind.t -> n_patterns:int ->
  Fault_sim.result
(** Stuck-at coverage of the module when tested through the plan's actual
    TPG seeds and pattern count (signature aliasing included: a fault whose
    output differences cancel in the MISR counts as undetected). *)
