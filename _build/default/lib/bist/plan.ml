type t = {
  netlist : Datapath.Netlist.t;
  k : int;
  session_of_module : int array;
  sr_of_module : int array;
  tpg_of_port : int array array;
}

let make netlist ~k ~session_of_module ~sr_of_module ~tpg_of_port =
  let p = netlist.Datapath.Netlist.problem in
  let n_mod = Dfg.Problem.n_modules p in
  let err = ref None in
  let fail fmt =
    Format.kasprintf (fun s -> if !err = None then err := Some s) fmt
  in
  if k < 1 then fail "k must be >= 1 (got %d)" k;
  if Array.length session_of_module <> n_mod then
    fail "session_of_module has wrong length";
  if Array.length sr_of_module <> n_mod then
    fail "sr_of_module has wrong length";
  if Array.length tpg_of_port <> n_mod then
    fail "tpg_of_port has wrong length";
  if !err = None then begin
    (* A k-test session may effectively use fewer than k sub-sessions (the
       paper's paulin k=4 design equals its k=3 design); empty sub-sessions
       are therefore legal. *)
    Array.iteri
      (fun m s ->
        if s < 0 || s >= k then fail "module %d in session %d outside [0,%d)" m s k)
      session_of_module;
    (* Eq. 6: SR must be wired from its module. *)
    Array.iteri
      (fun m r ->
        if not (List.mem (m, r) netlist.Datapath.Netlist.module_to_reg) then
          fail "module %d has no wire to its signature register R%d" m r)
      sr_of_module;
    (* Eq. 8: an SR serves at most one module per sub-test session. *)
    let sr_seen = Hashtbl.create 7 in
    Array.iteri
      (fun m r ->
        let key = (session_of_module.(m), r) in
        match Hashtbl.find_opt sr_seen key with
        | Some m' ->
            fail "register R%d is the SR of modules %d and %d in session %d" r
              m' m session_of_module.(m)
        | None -> Hashtbl.add sr_seen key m)
      sr_of_module;
    (* TPGs. *)
    Array.iteri
      (fun m tpgs ->
        let fu = p.Dfg.Problem.modules.(m) in
        if Array.length tpgs <> Dfg.Fu_kind.n_ports fu then
          fail "module %d has %d ports but %d TPG entries" m
            (Dfg.Fu_kind.n_ports fu) (Array.length tpgs)
        else begin
          let const_only =
            Datapath.Netlist.constant_only_ports netlist
          in
          Array.iteri
            (fun l r ->
              let is_const_only = List.mem (m, l) const_only in
              if r < 0 then begin
                if not is_const_only then
                  fail
                    "port %d of module %d has register sources but a \
                     dedicated TPG (extra path)"
                    l m
              end
              else begin
                if is_const_only then
                  fail
                    "port %d of module %d is constant-only yet claims \
                     register TPG R%d (no such wire)"
                    l m r;
                (* Eq. 9: wire must exist. *)
                if
                  not
                    (List.exists
                       (fun (r', m', l') -> r' = r && m' = m && l' = l)
                       netlist.Datapath.Netlist.reg_to_port)
                then fail "no wire R%d -> M%d.%d for the TPG assignment" r m l
              end)
            tpgs;
          (* Eq. 13: distinct TPGs on the two ports of one module. *)
          if
            Array.length tpgs = 2
            && tpgs.(0) >= 0
            && tpgs.(0) = tpgs.(1)
          then fail "module %d uses register R%d as TPG on both ports" m tpgs.(0)
        end)
      tpg_of_port
  end;
  match !err with
  | Some msg -> Error msg
  | None ->
      Ok { netlist; k; session_of_module; sr_of_module; tpg_of_port }

let make_exn netlist ~k ~session_of_module ~sr_of_module ~tpg_of_port =
  match make netlist ~k ~session_of_module ~sr_of_module ~tpg_of_port with
  | Ok t -> t
  | Error msg -> invalid_arg ("Bist.Plan.make_exn: " ^ msg)

(* Roles per (register, session). *)
let roles t =
  let n_regs = t.netlist.Datapath.Netlist.n_registers in
  let tpg_in = Array.make_matrix n_regs t.k false in
  let sr_in = Array.make_matrix n_regs t.k false in
  Array.iteri
    (fun m tpgs ->
      let s = t.session_of_module.(m) in
      Array.iter (fun r -> if r >= 0 then tpg_in.(r).(s) <- true) tpgs)
    t.tpg_of_port;
  Array.iteri
    (fun m r -> sr_in.(r).(t.session_of_module.(m)) <- true)
    t.sr_of_module;
  (tpg_in, sr_in)

let reg_kinds t =
  let tpg_in, sr_in = roles t in
  Array.init t.netlist.Datapath.Netlist.n_registers (fun r ->
      let any a = Array.exists Fun.id a in
      let both_same_session =
        let res = ref false in
        for s = 0 to t.k - 1 do
          if tpg_in.(r).(s) && sr_in.(r).(s) then res := true
        done;
        !res
      in
      let is_tpg = any tpg_in.(r) and is_sr = any sr_in.(r) in
      if both_same_session then Datapath.Area.Cbilbo
      else if is_tpg && is_sr then Datapath.Area.Bilbo
      else if is_tpg then Datapath.Area.Tpg
      else if is_sr then Datapath.Area.Sr
      else Datapath.Area.Plain)

let reg_kind t r = (reg_kinds t).(r)

let kind_counts t =
  Array.fold_left
    (fun (tp, sr, bi, cb) kind ->
      match kind with
      | Datapath.Area.Tpg -> (tp + 1, sr, bi, cb)
      | Datapath.Area.Sr -> (tp, sr + 1, bi, cb)
      | Datapath.Area.Bilbo -> (tp, sr, bi + 1, cb)
      | Datapath.Area.Cbilbo -> (tp, sr, bi, cb + 1)
      | Datapath.Area.Plain -> (tp, sr, bi, cb))
    (0, 0, 0, 0) (reg_kinds t)

let n_constant_tpgs t =
  (* one dedicated generator per constant-only port that appears on a tested
     module; ports sharing... each port needs its own (no sharing, Eq. 13
     spirit). *)
  Array.fold_left
    (fun acc tpgs ->
      acc + Array.fold_left (fun a r -> if r < 0 then a + 1 else a) 0 tpgs)
    0 t.tpg_of_port

let area_with ~const_port_cost t =
  let regs =
    Array.fold_left
      (fun acc kind -> acc + Datapath.Area.register kind)
      0 (reg_kinds t)
  in
  regs
  + Datapath.Netlist.mux_area t.netlist
  + (const_port_cost * n_constant_tpgs t)

let area t = area_with ~const_port_cost:Datapath.Area.constant_tpg t

let objective_cost t =
  area_with ~const_port_cost:Datapath.Area.constant_tpg_weight t

let overhead_pct t ~reference =
  100.0 *. float_of_int (area t - reference) /. float_of_int reference

let modules_in_session t s =
  List.filter
    (fun m -> t.session_of_module.(m) = s)
    (List.init (Array.length t.session_of_module) Fun.id)

let pp ppf t =
  let tp, sr, bi, cb = kind_counts t in
  Format.fprintf ppf "@[<v>BIST plan (k = %d): T=%d S=%d B=%d C=%d area=%d"
    t.k tp sr bi cb (area t);
  for s = 0 to t.k - 1 do
    Format.fprintf ppf "@,  session %d:" s;
    List.iter
      (fun m ->
        Format.fprintf ppf " M%d(SR=R%d; TPG=%s)" m t.sr_of_module.(m)
          (String.concat ","
             (Array.to_list
                (Array.map
                   (fun r -> if r < 0 then "const" else Printf.sprintf "R%d" r)
                   t.tpg_of_port.(m)))))
      (modules_in_session t s)
  done;
  let kinds = reg_kinds t in
  Format.fprintf ppf "@,  registers:";
  Array.iteri
    (fun r kind ->
      Format.fprintf ppf " R%d=%s" r (Datapath.Area.reg_kind_name kind))
    kinds;
  Format.fprintf ppf "@]"
