type t = {
  golden_sig : int;
  by_signature : (int, Fault_sim.fault list) Hashtbl.t;
  total : int;
}

let run_session circuit ~fault ~seed_a ~seed_b ~misr_seed ~n_patterns =
  let width = circuit.Gates.width in
  let gen_a = Lfsr.create ~seed:seed_a ~width () in
  let gen_b = Lfsr.create ~seed:seed_b ~width () in
  let misr = Lfsr.create ~seed:misr_seed ~width () in
  for _ = 1 to n_patterns do
    let a = Lfsr.step gen_a and b = Lfsr.step gen_b in
    let response =
      match fault with
      | None -> Gates.eval circuit ~a ~b
      | Some f -> Fault_sim.eval_faulty circuit ~a ~b f
    in
    Lfsr.misr_absorb misr response
  done;
  Lfsr.signature misr

let build circuit ~seed_a ~seed_b ~misr_seed ~n_patterns =
  let golden_sig =
    run_session circuit ~fault:None ~seed_a ~seed_b ~misr_seed ~n_patterns
  in
  let by_signature = Hashtbl.create 256 in
  let faults = Fault_sim.faults circuit in
  List.iter
    (fun f ->
      let s =
        run_session circuit ~fault:(Some f) ~seed_a ~seed_b ~misr_seed
          ~n_patterns
      in
      Hashtbl.replace by_signature s
        (f
        :: (match Hashtbl.find_opt by_signature s with
           | Some l -> l
           | None -> [])))
    faults;
  { golden_sig; by_signature; total = List.length faults }

let golden d = d.golden_sig
let n_faults d = d.total

let lookup d signature =
  match Hashtbl.find_opt d.by_signature signature with
  | Some l -> List.rev l
  | None -> []

let detected_faults d =
  Hashtbl.fold
    (fun s faults acc -> if s = d.golden_sig then acc else faults @ acc)
    d.by_signature []

let ambiguity d =
  let classes = ref 0 and members = ref 0 in
  Hashtbl.iter
    (fun s faults ->
      if s <> d.golden_sig then begin
        incr classes;
        members := !members + List.length faults
      end)
    d.by_signature;
  if !classes = 0 then 0.0 else float_of_int !members /. float_of_int !classes

let diagnose d circuit fault ~seed_a ~seed_b ~misr_seed ~n_patterns =
  let s =
    run_session circuit ~fault:(Some fault) ~seed_a ~seed_b ~misr_seed
      ~n_patterns
  in
  lookup d s
