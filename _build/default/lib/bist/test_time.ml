type t = {
  sessions_used : int;
  cycles : int;
  per_session : (int * int) list;
}

let estimate ?(n_patterns = 255) (plan : Plan.t) =
  let per_session = ref [] in
  for s = plan.Plan.k - 1 downto 0 do
    let modules = Plan.modules_in_session plan s in
    if modules <> [] then begin
      (* registers involved in this session: all TPGs and SRs *)
      let regs = Hashtbl.create 7 in
      List.iter
        (fun m ->
          Hashtbl.replace regs plan.Plan.sr_of_module.(m) ();
          Array.iter
            (fun r -> if r >= 0 then Hashtbl.replace regs r ())
            plan.Plan.tpg_of_port.(m))
        modules;
      let setup = Hashtbl.length regs in
      let flush = List.length modules (* one signature read-out each *) in
      per_session := (s, setup + n_patterns + flush) :: !per_session
    end
  done;
  {
    sessions_used = List.length !per_session;
    cycles = List.fold_left (fun acc (_, c) -> acc + c) 0 !per_session;
    per_session = !per_session;
  }

let pareto candidates =
  let area (_, plan) = Plan.area plan in
  let time (_, plan) = (estimate plan).cycles in
  let dominated c =
    List.exists
      (fun c' ->
        c' != c
        && area c' <= area c
        && time c' <= time c
        && (area c' < area c || time c' < time c))
      candidates
  in
  List.sort
    (fun a b -> compare (area a) (area b))
    (List.filter (fun c -> not (dominated c)) candidates)
