(** Single-stuck-at fault simulation over gate-level module models.

    The parallel BIST architecture relies on random patterns detecting the
    module's faults; this simulator measures that coverage.  Faults are
    stuck-at-0/1 on every gate output (input faults on fan-out-free gates
    are equivalent and therefore not enumerated separately).  Simulation is
    word-parallel: [Sys.int_size - 1] patterns per pass. *)

type fault = { gate : int; stuck_at : int (* 0 or 1 *) }

val faults : Gates.t -> fault list
(** The collapsed fault list: two faults per gate (inputs and constants
    included — a stuck constant models a defective tie cell). *)

type result = {
  n_faults : int;
  n_detected : int;
  undetected : fault list;
}

val coverage : result -> float
(** Detected fraction in percent. *)

val simulate : Gates.t -> patterns:(int * int) list -> result
(** [simulate c ~patterns] applies the given (a, b) operand pairs and
    reports which stuck-at faults produce an output difference on at least
    one pattern. *)

val eval_faulty : Gates.t -> a:int -> b:int -> fault -> int
(** Numeric result of the module under the fault for one operand pair. *)

val random_pattern_coverage :
  Gates.t -> ?seed:int -> n_patterns:int -> unit -> result
(** Patterns drawn from two independent LFSRs of the module's width —
    exactly what a pair of TPG registers feeds the module during a test
    session. *)
