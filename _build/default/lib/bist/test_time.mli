(** Test-application time of a BIST plan.

    The area/test-time trade-off is the reason the paper synthesizes one
    design per k-test session: modules in the same sub-test session are
    tested {e concurrently}, so a k-session plan applies its patterns k
    times in sequence.  Following the parallel-BIST literature (and the
    authors' earlier test-session-oriented work [6]), the time model is

    {v
    time(plan) = sum over used sub-test sessions p of
                   (setup + n_patterns + flush)
    v}

    where [setup] covers seeding the session's TPGs/MISRs (one cycle per
    involved register, serially through the scan-configured registers) and
    [flush] the signature read-out. *)

type t = {
  sessions_used : int;  (** non-empty sub-test sessions *)
  cycles : int;  (** total test-application cycles *)
  per_session : (int * int) list;  (** (session, cycles) for used sessions *)
}

val estimate : ?n_patterns:int -> Plan.t -> t
(** [n_patterns] defaults to 255 (the full period of the 8-bit LFSRs). *)

val pareto :
  (int * Plan.t) list -> (int * Plan.t) list
(** Given [(k, plan)] candidates, keep the area/test-time Pareto-optimal
    ones (no other candidate is at least as good on both axes and better on
    one), sorted by area. *)
