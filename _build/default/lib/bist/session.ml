type signature = { module_ : int; kind : Dfg.Op_kind.t; value : int }

let width = Datapath.Area.width

let tpg_seed = function
  | r when r >= 0 -> r + 1
  | _ -> 31 (* dedicated constant-port generator *)

(* Run one module in one mode, optionally with a fault in its gate model,
   and return the MISR signature. *)
let run_module (t : Plan.t) ~module_ ~kind ~fault ~n_patterns =
  let circuit = Gates.build kind ~width in
  let tpgs = t.Plan.tpg_of_port.(module_) in
  let gen_a = Lfsr.create ~seed:(tpg_seed tpgs.(0)) ~width () in
  let gen_b =
    Lfsr.create
      ~seed:(tpg_seed (if Array.length tpgs > 1 then tpgs.(1) else -1))
      ~width ()
  in
  let misr = Lfsr.create ~seed:1 ~width () in
  for _ = 1 to n_patterns do
    let a = Lfsr.step gen_a and b = Lfsr.step gen_b in
    let response =
      match fault with
      | None -> Gates.eval circuit ~a ~b
      | Some f -> Fault_sim.eval_faulty circuit ~a ~b f
    in
    Lfsr.misr_absorb misr response
  done;
  Lfsr.signature misr

let golden (t : Plan.t) ~n_patterns =
  let p = t.Plan.netlist.Datapath.Netlist.problem in
  List.concat
    (List.init (Dfg.Problem.n_modules p) (fun m ->
         List.map
           (fun kind ->
             {
               module_ = m;
               kind;
               value = run_module t ~module_:m ~kind ~fault:None ~n_patterns;
             })
           p.Dfg.Problem.modules.(m).Dfg.Fu_kind.supports))

let detects t ~module_ ~kind fault ~n_patterns =
  let good = run_module t ~module_ ~kind ~fault:None ~n_patterns in
  let bad = run_module t ~module_ ~kind ~fault:(Some fault) ~n_patterns in
  good <> bad

let session_coverage t ~module_ ~kind ~n_patterns =
  let circuit = Gates.build kind ~width in
  let all = Fault_sim.faults circuit in
  let undetected =
    List.filter
      (fun f -> not (detects t ~module_ ~kind f ~n_patterns))
      all
  in
  {
    Fault_sim.n_faults = List.length all;
    n_detected = List.length all - List.length undetected;
    undetected;
  }
