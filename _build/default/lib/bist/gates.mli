(** Gate-level structural models of the data-path modules.

    Parallel BIST tests each module (a combinational circuit) with random
    patterns; assessing how well requires a structural model with faults.
    This module builds classic gate netlists — ripple-carry adder/subtractor,
    array multiplier, magnitude comparator, bitwise gates — for any width.

    Evaluation is word-parallel: each signal carries up to [Sys.int_size - 1]
    pattern bits at once, so fault simulation over many patterns is cheap. *)

type gate =
  | G_and of int * int
  | G_or of int * int
  | G_xor of int * int
  | G_not of int
  | G_input of int  (** primary input index: ports A then B, LSB first *)
  | G_const0
  | G_const1

type t = private {
  width : int;
  n_inputs : int;  (** [2 * width] *)
  gates : gate array;  (** topological: operands refer to earlier gates *)
  outputs : int array;  (** gate indices of the output bits, LSB first *)
}

val build : Dfg.Op_kind.t -> width:int -> t
(** Structural netlist computing the operation. Comparison outputs a single
    bit (zero-extended). Shift models are built for constant shift amounts
    encoded in operand B's low bits via a mux tree. *)

val n_gates : t -> int

val eval_words : t -> int array -> int array
(** [eval_words c inputs] — bit-parallel evaluation: element [i] of [inputs]
    is a word whose bit [j] is the value of input [i] in pattern [j].
    Returns one word per output bit. *)

val eval : t -> a:int -> b:int -> int
(** Single-pattern convenience: packs operand words, returns the numeric
    result (must agree with {!Dfg.Op_kind.eval}; the test-suite checks). *)
