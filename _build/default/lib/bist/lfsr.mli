(** Linear-feedback shift registers and multiple-input signature registers.

    These are the bit-level behaviours of the TPG and SR register
    reconfigurations of Section 2.2 [11][12]: a register reconfigured as a
    TPG runs as a maximal-length LFSR producing pseudo-random patterns; one
    reconfigured as an SR runs as a MISR compacting the module responses
    into a signature.  A BILBO provides both modes (alternately); a CBILBO
    both modes concurrently (hence double the flip-flops). *)

type t

val create : ?seed:int -> width:int -> unit -> t
(** Fibonacci LFSR over a primitive polynomial for the given width
    (supported widths: 2-16; the paper's data paths are 8 bits wide).
    [seed] defaults to 1; a zero seed is replaced by 1 (the all-zero state
    is a fixed point).
    @raise Invalid_argument for unsupported widths. *)

val width : t -> int
val state : t -> int

val step : t -> int
(** Advances one clock and returns the new state (the next test pattern). *)

val patterns : t -> int -> int list
(** [patterns t n] — the next [n] patterns. *)

val period : width:int -> int
(** Sequence period for a maximal-length LFSR: [2^width - 1]. *)

val misr_absorb : t -> int -> unit
(** One MISR clock: shift with feedback, XOR-ing in the response word. *)

val signature : t -> int
(** Current MISR contents. *)
