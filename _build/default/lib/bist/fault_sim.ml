type fault = { gate : int; stuck_at : int }

let faults (c : Gates.t) =
  List.concat_map
    (fun g -> [ { gate = g; stuck_at = 0 }; { gate = g; stuck_at = 1 } ])
    (List.init (Gates.n_gates c) Fun.id)

type result = {
  n_faults : int;
  n_detected : int;
  undetected : fault list;
}

let coverage r =
  if r.n_faults = 0 then 100.0
  else 100.0 *. float_of_int r.n_detected /. float_of_int r.n_faults

(* Evaluate with an optional fault override on one gate. *)
let eval_with_fault (c : Gates.t) inputs fault =
  let values = Array.make (Gates.n_gates c) 0 in
  Array.iteri
    (fun i g ->
      let v =
        match g with
        | Gates.G_and (x, y) -> values.(x) land values.(y)
        | Gates.G_or (x, y) -> values.(x) lor values.(y)
        | Gates.G_xor (x, y) -> values.(x) lxor values.(y)
        | Gates.G_not x -> lnot values.(x)
        | Gates.G_input j -> inputs.(j)
        | Gates.G_const0 -> 0
        | Gates.G_const1 -> -1
      in
      values.(i) <-
        (match fault with
        | Some { gate; stuck_at } when gate = i ->
            if stuck_at = 0 then 0 else -1
        | Some _ | None -> v))
    c.Gates.gates;
  Array.map (fun o -> values.(o)) c.Gates.outputs

let word_bits = Sys.int_size - 1

let pack_patterns (c : Gates.t) chunk =
  (* chunk: up to word_bits (a, b) pairs; build input words *)
  let inputs = Array.make c.Gates.n_inputs 0 in
  List.iteri
    (fun j (a, b) ->
      for i = 0 to c.Gates.width - 1 do
        if (a lsr i) land 1 = 1 then inputs.(i) <- inputs.(i) lor (1 lsl j);
        if (b lsr i) land 1 = 1 then
          inputs.(c.Gates.width + i) <-
            inputs.(c.Gates.width + i) lor (1 lsl j)
      done)
    chunk;
  inputs

let rec chunks n = function
  | [] -> []
  | l ->
      let rec take k acc = function
        | [] -> (List.rev acc, [])
        | x :: rest when k > 0 -> take (k - 1) (x :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let c, rest = take n [] l in
      c :: chunks n rest

let simulate (c : Gates.t) ~patterns =
  let all = faults c in
  let detected = Hashtbl.create 1024 in
  List.iter
    (fun chunk ->
      let inputs = pack_patterns c chunk in
      let mask =
        (* only the bits corresponding to real patterns in this chunk *)
        if List.length chunk >= word_bits then -1
        else (1 lsl List.length chunk) - 1
      in
      let good = eval_with_fault c inputs None in
      List.iter
        (fun f ->
          if not (Hashtbl.mem detected f) then begin
            let bad = eval_with_fault c inputs (Some f) in
            let differs = ref false in
            Array.iteri
              (fun i w -> if (w lxor good.(i)) land mask <> 0 then differs := true)
              bad;
            if !differs then Hashtbl.replace detected f ()
          end)
        all)
    (chunks word_bits patterns);
  let undetected = List.filter (fun f -> not (Hashtbl.mem detected f)) all in
  {
    n_faults = List.length all;
    n_detected = Hashtbl.length detected;
    undetected;
  }

let eval_faulty (c : Gates.t) ~a ~b fault =
  let inputs =
    Array.init c.Gates.n_inputs (fun i ->
        let bit =
          if i < c.Gates.width then (a lsr i) land 1
          else (b lsr (i - c.Gates.width)) land 1
        in
        if bit = 1 then -1 else 0)
  in
  let outs = eval_with_fault c inputs (Some fault) in
  let r = ref 0 in
  Array.iteri (fun i w -> if w land 1 = 1 then r := !r lor (1 lsl i)) outs;
  !r

let random_pattern_coverage (c : Gates.t) ?(seed = 1) ~n_patterns () =
  let ga = Lfsr.create ~seed ~width:c.Gates.width () in
  let gb = Lfsr.create ~seed:(seed + 41) ~width:c.Gates.width () in
  let patterns =
    List.init n_patterns (fun _ -> (Lfsr.step ga, Lfsr.step gb))
  in
  simulate c ~patterns
