type t = { w : int; taps : int; mutable st : int }

(* Primitive polynomial tap masks (Fibonacci form, bit 0 = x^1 term
   position): classic table for widths 2..16. *)
let tap_mask = function
  | 2 -> 0b11
  | 3 -> 0b110
  | 4 -> 0b1100
  | 5 -> 0b10100
  | 6 -> 0b110000
  | 7 -> 0b1100000
  | 8 -> 0b10111000
  | 9 -> 0b100010000
  | 10 -> 0b1001000000
  | 11 -> 0b10100000000
  | 12 -> 0b111000001000
  | 13 -> 0b1110010000000
  | 14 -> 0b11100000000010
  | 15 -> 0b110000000000000
  | 16 -> 0b1101000000001000
  | w -> invalid_arg (Printf.sprintf "Lfsr.create: unsupported width %d" w)

let create ?(seed = 1) ~width () =
  let taps = tap_mask width in
  let mask = (1 lsl width) - 1 in
  let st = seed land mask in
  { w = width; taps; st = (if st = 0 then 1 else st) }

let width t = t.w
let state t = t.st
let parity x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc lxor (x land 1)) in
  go x 0

let step t =
  let fb = parity (t.st land t.taps) in
  t.st <- ((t.st lsl 1) lor fb) land ((1 lsl t.w) - 1);
  t.st

let patterns t n = List.init n (fun _ -> step t)
let period ~width = (1 lsl width) - 1

let misr_absorb t response =
  let fb = parity (t.st land t.taps) in
  t.st <- (((t.st lsl 1) lor fb) lxor response) land ((1 lsl t.w) - 1)

let signature t = t.st
