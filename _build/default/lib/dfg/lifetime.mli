(** Variable lifetimes, compatibility and horizontal crossing (Section 2).

    A variable occupies a register on every clock boundary of its lifetime
    interval:

    - a variable produced by an operation at step [s] is born at boundary
      [s + 1];
    - a primary input is born at the boundary of its earliest use (it is
      loaded just in time, the convention under which the register assignment
      of Fig. 1 — R0 = \{0,4\}, R1 = \{1,3,6\}, R2 = \{2,5,7\} — is valid);
    - a variable dies at the boundary of its latest use; a variable with no
      use (primary output) dies at its birth boundary.

    Two variables that are simultaneously alive are {e incompatible} and must
    be assigned to distinct registers.  The {e horizontal crossing} of a
    boundary is the number of variables alive there; its maximum over all
    boundaries is the minimum register count. *)

type t
(** Precomputed lifetime table for one DFG. *)

val compute : Graph.t -> t

val interval : t -> int -> int * int
(** [interval lt v] is the inclusive boundary interval [(birth, death)]. *)

val alive_at : t -> int -> int -> bool
(** [alive_at lt v boundary]. *)

val alive_on_boundary : t -> int -> int list
(** Variables alive on a given boundary, ascending. *)

val compatible : t -> int -> int -> bool
(** [compatible lt v w] — disjoint lifetime intervals (or [v = w]). *)

val crossing : t -> int -> int
(** Horizontal crossing of a boundary. *)

val max_crossing : t -> int

val min_registers : t -> int
(** Equal to {!max_crossing}: the minimum number of registers for any valid
    register assignment. *)

val min_modules : Graph.t -> Fu_kind.t list -> (Fu_kind.t * int) list
(** [min_modules g kinds] assigns each operation kind of [g] to the first
    unit kind in [kinds] supporting it and returns, for each unit kind, the
    maximum number of concurrently scheduled operations it must serve (its
    minimum allocation).  Raises [Invalid_argument] if some operation kind is
    not supported by any unit kind. *)

val conflict_cliques : t -> int list list
(** For each boundary with at least two alive variables, the list of alive
    variables — a clique of the conflict graph.  Used for register-capacity
    constraints and symmetry reduction. *)

val max_clique : t -> int list
(** A maximum-cardinality set of pairwise-incompatible variables (one of the
    boundary cliques of maximal crossing — exact for interval conflict
    graphs). *)
