lib/dfg/problem.mli: Format Fu_kind Graph
