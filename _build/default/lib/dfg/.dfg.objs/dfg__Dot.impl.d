lib/dfg/dot.ml: Array Buffer Graph List Op_kind Out_channel Printf String
