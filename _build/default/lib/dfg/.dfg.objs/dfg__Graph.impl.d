lib/dfg/graph.ml: Array Format Int List Op_kind Printf String
