lib/dfg/lifetime.ml: Array Fu_kind Graph List Op_kind Printf
