lib/dfg/parse.ml: Array Buffer Graph In_channel List Op_kind Out_channel Printf Result Sexpr String
