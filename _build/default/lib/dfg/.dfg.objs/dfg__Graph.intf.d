lib/dfg/graph.mli: Format Op_kind
