lib/dfg/problem.ml: Array Format Fu_kind Graph Lifetime List Printf String
