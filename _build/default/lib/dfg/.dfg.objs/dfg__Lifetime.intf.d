lib/dfg/lifetime.mli: Fu_kind Graph
