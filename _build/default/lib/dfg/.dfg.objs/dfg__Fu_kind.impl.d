lib/dfg/fu_kind.ml: Format List Op_kind String
