lib/dfg/benchmarks.mli: Problem
