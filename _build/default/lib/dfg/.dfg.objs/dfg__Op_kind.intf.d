lib/dfg/op_kind.mli: Format
