lib/dfg/op_kind.ml: Format Stdlib String
