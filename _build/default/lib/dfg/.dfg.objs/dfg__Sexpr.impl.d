lib/dfg/sexpr.ml: Format List Printf String
