lib/dfg/parse.mli: Graph
