lib/dfg/sexpr.mli: Format
