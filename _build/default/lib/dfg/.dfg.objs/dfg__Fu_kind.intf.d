lib/dfg/fu_kind.mli: Format Op_kind
