lib/dfg/benchmarks.ml: Fu_kind Graph Op_kind Problem
