(** Scheduled data flow graphs (DFGs).

    Following Section 2 of the paper, a DFG here is {e already scheduled}:
    every operation carries the control step in which it executes.  Control
    steps are numbered [0 .. n_steps - 1]; clock (register) boundaries are
    numbered [0 .. n_steps], boundary [t] being the instant at which step [t]
    begins.  An operation at step [t] reads its input registers at boundary
    [t] and writes its output register at boundary [t + 1].

    Variables are integers [0 .. n_vars - 1]; operations are integers
    [0 .. n_ops - 1].  The nomenclature of Section 2.1 maps as follows:
    [Vo] = operation ids, [Vv] = variable ids, [Ei] = {!e_i},
    [Eo] = {!e_o}, [T] = [0 .. n_steps], [C] = {!constants}. *)

type operand =
  | Var of int  (** a variable id *)
  | Const of int  (** an immediate constant value *)

type var_def =
  | Primary_input  (** supplied by the environment *)
  | Output_of of int  (** produced by the given operation *)

type operation = {
  kind : Op_kind.t;
  step : int;  (** control step in which the operation executes *)
  inputs : operand array;  (** indexed by input-port label [l] *)
  output : int;  (** output variable id *)
}

type variable = { var_name : string; def : var_def }

type t = private {
  name : string;
  n_steps : int;
  inputs_at_start : bool;
      (** lifetime convention for primary inputs: [false] = loaded just in
          time for their first use (the convention of the paper's Fig. 1),
          [true] = held in registers from boundary 0 (filter state) *)
  variables : variable array;
  operations : operation array;
}

(** {1 Construction} *)

module Builder : sig
  (** Imperative construction of a scheduled DFG.  Steps may be declared in
      any order; {!build} validates the result. *)

  type dfg := t
  type t

  val create : ?inputs_at_start:bool -> name:string -> unit -> t

  val input : t -> string -> operand
  (** Fresh primary-input variable. *)

  val op :
    ?name:string -> t -> Op_kind.t -> step:int -> operand -> operand ->
    operand
  (** [op b k ~step a c] adds a binary operation and returns its output
      variable (named [name] if given). *)

  val build : t -> (dfg, string list) result
  (** Validates and freezes.  Errors are human-readable descriptions. *)

  val build_exn : t -> dfg
  (** @raise Invalid_argument listing all validation errors. *)
end

val v :
  ?inputs_at_start:bool -> name:string -> n_steps:int -> variable array ->
  operation array -> (t, string list) result
(** Direct constructor with validation (used by the parser). *)

(** {1 Accessors} *)

val n_vars : t -> int
val n_ops : t -> int
val n_boundaries : t -> int
(** [n_steps + 1]. *)

val variable : t -> int -> variable
val operation : t -> int -> operation

val def_of : t -> int -> var_def
(** Definition site of a variable. *)

val uses_of : t -> int -> (int * int) list
(** [uses_of g v] lists the [(o, l)] pairs such that variable [v] feeds input
    port [l] of operation [o]; ordered by operation id. *)

val e_i : t -> (int * int * int) list
(** The set [Ei] of [(v, o, l)] input-edge triples (constants excluded). *)

val e_o : t -> (int * int) list
(** The set [Eo] of [(o, v)] output-edge pairs. *)

val constants : t -> int list
(** Distinct constant values appearing as operands, sorted. *)

val const_edges : t -> (int * int * int) list
(** [(c, o, l)] triples: constant value [c] feeds port [l] of operation
    [o]. *)

val ops_at_step : t -> int -> int list
(** Operations scheduled at a given control step. *)

val op_kinds : t -> Op_kind.t list
(** Distinct operation kinds used, in order of first appearance. *)

val primary_inputs : t -> int list
val primary_outputs : t -> int list
(** Variables never consumed by any operation. *)

(** {1 Pretty-printing} *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable summary (one line per operation). *)

val pp_operand : t -> Format.formatter -> operand -> unit
