(** Minimal s-expression reader/printer used by the textual DFG format.

    Grammar: atoms are runs of non-whitespace, non-parenthesis characters;
    lists are parenthesised; [;] starts a comment to end of line. *)

type t = Atom of string | List of t list

val parse_string : string -> (t list, string) result
(** Parses a sequence of top-level s-expressions. The error message carries
    line/column information. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
(** Pretty-prints with indentation. *)

(** {1 Decoding helpers} *)

val atom : t -> (string, string) result
val int_atom : t -> (int, string) result

val assoc : string -> t list -> (t list, string) result
(** [assoc key items] finds the list [(key ...)] among [items] and returns
    its tail. *)

val assoc_opt : string -> t list -> t list option
