type t = { fu_name : string; supports : Op_kind.t list }

let make ~name supports =
  if supports = [] then invalid_arg "Fu_kind.make: empty support list";
  { fu_name = name; supports }

let adder = make ~name:"add" [ Op_kind.Add ]
let subtractor = make ~name:"sub" [ Op_kind.Sub ]
let alu = make ~name:"alu" [ Op_kind.Add; Op_kind.Sub; Op_kind.Lt ]
let multiplier = make ~name:"mul" [ Op_kind.Mul ]
let logic = make ~name:"logic" [ Op_kind.And; Op_kind.Or; Op_kind.Xor ]
let shifter = make ~name:"shift" [ Op_kind.Shl; Op_kind.Shr ]
let supports t k = List.exists (Op_kind.equal k) t.supports

let n_ports t =
  List.fold_left (fun acc k -> max acc (Op_kind.arity k)) 0 t.supports

let commutative t = List.for_all Op_kind.commutative t.supports

let equal a b =
  String.equal a.fu_name b.fu_name
  && List.length a.supports = List.length b.supports
  && List.for_all2 Op_kind.equal a.supports b.supports

let pp ppf t = Format.pp_print_string ppf t.fu_name
