(** Graphviz export of scheduled DFGs.

    Operations are drawn as circles labelled with their symbol, variables as
    plain nodes, constants as boxes; operations of the same control step are
    ranked together, mirroring Fig. 1(a) of the paper. *)

val to_string : Graph.t -> string
val to_file : string -> Graph.t -> unit
