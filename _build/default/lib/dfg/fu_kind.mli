(** Functional-unit (module) kinds for the data path.

    A module of the data path executes operations whose {!Op_kind.t} it
    supports.  High-level synthesis fixes the module allocation (how many
    modules of which kind) before BIST synthesis; the ILP then binds
    operations to concrete modules of a supporting kind. *)

type t = {
  fu_name : string;  (** e.g. ["alu"], ["mul"] *)
  supports : Op_kind.t list;  (** operation kinds executable on this unit *)
}

val adder : t
(** Supports [Add] only. *)

val subtractor : t
(** Supports [Sub] only. *)

val alu : t
(** Supports [Add], [Sub] and [Lt]. *)

val multiplier : t
(** Supports [Mul] only. *)

val logic : t
(** Supports [And], [Or], [Xor]. *)

val shifter : t
(** Supports [Shl], [Shr]. *)

val make : name:string -> Op_kind.t list -> t
(** Custom unit. The support list must be non-empty; raises
    [Invalid_argument] otherwise. *)

val supports : t -> Op_kind.t -> bool

val n_ports : t -> int
(** Number of input ports: the maximum arity over supported operations. *)

val commutative : t -> bool
(** A module is commutative when {e every} supported operation kind is
    commutative; only then may the ILP swap its input ports (Eq. (3)). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
