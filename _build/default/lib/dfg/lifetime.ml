type t = {
  dfg : Graph.t;
  birth : int array;
  death : int array;
}

let compute g =
  let nv = Graph.n_vars g in
  let birth = Array.make nv max_int and death = Array.make nv (-1) in
  for v = 0 to nv - 1 do
    (match Graph.def_of g v with
    | Graph.Primary_input -> if g.Graph.inputs_at_start then birth.(v) <- 0
    | Graph.Output_of o -> birth.(v) <- (Graph.operation g o).step + 1);
    List.iter
      (fun (o, _l) ->
        let s = (Graph.operation g o).step in
        if s < birth.(v) then birth.(v) <- s;
        if s > death.(v) then death.(v) <- s)
      (Graph.uses_of g v);
    (match Graph.def_of g v with
    | Graph.Primary_input -> if g.Graph.inputs_at_start then birth.(v) <- 0
    | Graph.Output_of _ -> ());
    (* Unused primary input: park it at boundary 0; unused op output dies at
       its birth boundary. *)
    if birth.(v) = max_int then birth.(v) <- 0;
    if death.(v) < birth.(v) then death.(v) <- birth.(v)
  done;
  { dfg = g; birth; death }

let interval lt v = (lt.birth.(v), lt.death.(v))
let alive_at lt v t = lt.birth.(v) <= t && t <= lt.death.(v)

let alive_on_boundary lt t =
  let acc = ref [] in
  for v = Array.length lt.birth - 1 downto 0 do
    if alive_at lt v t then acc := v :: !acc
  done;
  !acc

let compatible lt v w =
  v = w || lt.death.(v) < lt.birth.(w) || lt.death.(w) < lt.birth.(v)

let crossing lt t = List.length (alive_on_boundary lt t)

let max_crossing lt =
  let best = ref 0 in
  for t = 0 to Graph.n_boundaries lt.dfg - 1 do
    let c = crossing lt t in
    if c > !best then best := c
  done;
  !best

let min_registers = max_crossing

let min_modules g kinds =
  let kind_of_op op_kind =
    match List.find_opt (fun fu -> Fu_kind.supports fu op_kind) kinds with
    | Some fu -> fu
    | None ->
        invalid_arg
          (Printf.sprintf "Lifetime.min_modules: no unit supports %s"
             (Op_kind.name op_kind))
  in
  let count fu step =
    let n = ref 0 in
    List.iter
      (fun o ->
        let op = Graph.operation g o in
        if Fu_kind.equal (kind_of_op op.Graph.kind) fu then incr n)
      (Graph.ops_at_step g step);
    !n
  in
  List.map
    (fun fu ->
      let best = ref 0 in
      for s = 0 to (Graph.n_boundaries g) - 2 do
        let c = count fu s in
        if c > !best then best := c
      done;
      (fu, !best))
    kinds

let conflict_cliques lt =
  let cliques = ref [] in
  for t = Graph.n_boundaries lt.dfg - 1 downto 0 do
    let alive = alive_on_boundary lt t in
    match alive with
    | [] | [ _ ] -> ()
    | _ -> cliques := alive :: !cliques
  done;
  !cliques

let max_clique lt =
  let best = ref [] in
  for t = 0 to Graph.n_boundaries lt.dfg - 1 do
    let alive = alive_on_boundary lt t in
    if List.length alive > List.length !best then best := alive
  done;
  !best
