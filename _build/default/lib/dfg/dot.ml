let to_string g =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "digraph %S {\n  rankdir=TB;\n" g.Graph.name;
  Array.iteri
    (fun v (var : Graph.variable) ->
      add "  v%d [label=%S, shape=plaintext];\n" v var.var_name)
    g.Graph.variables;
  Array.iteri
    (fun o (op : Graph.operation) ->
      add "  o%d [label=\"%s\\n@%d\", shape=circle];\n" o
        (Op_kind.symbol op.kind) op.step)
    g.Graph.operations;
  (* Constants get one node per (op, port) occurrence to keep the drawing a
     tree-like DFG rather than a tangle. *)
  List.iteri
    (fun i (c, o, l) ->
      add "  c%d [label=\"%d\", shape=box];\n" i c;
      add "  c%d -> o%d [label=\"%d\"];\n" i o l)
    (Graph.const_edges g);
  List.iter (fun (v, o, l) -> add "  v%d -> o%d [label=\"%d\"];\n" v o l)
    (Graph.e_i g);
  List.iter (fun (o, v) -> add "  o%d -> v%d;\n" o v) (Graph.e_o g);
  for s = 0 to g.Graph.n_steps - 1 do
    match Graph.ops_at_step g s with
    | [] | [ _ ] -> ()
    | ops ->
        add "  { rank=same;%s }\n"
          (String.concat ""
             (List.map (fun o -> Printf.sprintf " o%d;" o) ops))
  done;
  add "}\n";
  Buffer.contents buf

let to_file path g =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string g))
