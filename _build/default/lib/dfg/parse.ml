let ( let* ) r f = Result.bind r f

(* Decoding context: variable names to ids, in declaration order. *)
type ctx = {
  mutable names : (string * int) list;
  mutable vars : Graph.variable list;  (* reversed *)
  mutable count : int;
}

let declare ctx name def =
  if List.mem_assoc name ctx.names then
    Error (Printf.sprintf "variable %S declared twice" name)
  else begin
    let id = ctx.count in
    ctx.names <- (name, id) :: ctx.names;
    ctx.vars <- { Graph.var_name = name; def } :: ctx.vars;
    ctx.count <- id + 1;
    Ok id
  end

let operand ctx sexp =
  let* a = Sexpr.atom sexp in
  if String.length a > 1 && a.[0] = '#' then
    match int_of_string_opt (String.sub a 1 (String.length a - 1)) with
    | Some c -> Ok (Graph.Const c)
    | None -> Error (Printf.sprintf "bad constant %S" a)
  else
    match List.assoc_opt a ctx.names with
    | Some id -> Ok (Graph.Var id)
    | None -> Error (Printf.sprintf "unknown variable %S" a)

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = collect f rest in
      Ok (y :: ys)

let decode_op ctx ~op_index items =
  let* kind_sexp =
    match items with
    | k :: _ -> Ok k
    | [] -> Error "empty (op ...) entry"
  in
  let* kind_name = Sexpr.atom kind_sexp in
  let* kind =
    match Op_kind.of_name kind_name with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "unknown op kind %S" kind_name)
  in
  let fields = List.tl items in
  let* step_items = Sexpr.assoc "step" fields in
  let* step =
    match step_items with
    | [ s ] -> Sexpr.int_atom s
    | _ -> Error "(step ...) takes one integer"
  in
  let* in_items = Sexpr.assoc "in" fields in
  let* inputs = collect (operand ctx) in_items in
  let* out_items = Sexpr.assoc "out" fields in
  let* out_name =
    match out_items with
    | [ s ] -> Sexpr.atom s
    | _ -> Error "(out ...) takes one variable name"
  in
  let* out_id = declare ctx out_name (Graph.Output_of op_index) in
  Ok { Graph.kind; step; inputs = Array.of_list inputs; output = out_id }

let of_string s =
  let* sexps = Sexpr.parse_string s in
  let* body =
    match sexps with
    | [ Sexpr.List (Sexpr.Atom "dfg" :: body) ] -> Ok body
    | _ -> Error "expected a single (dfg ...) form"
  in
  let* name_items = Sexpr.assoc "name" body in
  let* name =
    match name_items with
    | [ s ] -> Sexpr.atom s
    | _ -> Error "(name ...) takes one atom"
  in
  let ctx = { names = []; vars = []; count = 0 } in
  let* input_items =
    match Sexpr.assoc_opt "inputs" body with Some l -> Ok l | None -> Ok []
  in
  let* (_ : int list) =
    collect
      (fun s ->
        let* n = Sexpr.atom s in
        declare ctx n Graph.Primary_input)
      input_items
  in
  let op_forms =
    List.filter_map
      (function
        | Sexpr.List (Sexpr.Atom "op" :: tail) -> Some tail
        | Sexpr.Atom _ | Sexpr.List _ -> None)
      body
  in
  let rec decode_ops i = function
    | [] -> Ok []
    | items :: rest ->
        let* op = decode_op ctx ~op_index:i items in
        let* ops = decode_ops (i + 1) rest in
        Ok (op :: ops)
  in
  let inputs_at_start = Sexpr.assoc_opt "inputs-at-start" body <> None in
  let* ops = decode_ops 0 op_forms in
  let n_steps =
    1 + List.fold_left (fun acc (op : Graph.operation) -> max acc op.step) 0 ops
  in
  let variables = Array.of_list (List.rev ctx.vars) in
  match Graph.v ~inputs_at_start ~name ~n_steps variables (Array.of_list ops) with
  | Ok g -> Ok g
  | Error errs -> Error (String.concat "; " errs)

let to_string g =
  let buf = Buffer.create 256 in
  let name_of = function
    | Graph.Var v -> (Graph.variable g v).Graph.var_name
    | Graph.Const c -> Printf.sprintf "#%d" c
  in
  Buffer.add_string buf (Printf.sprintf "(dfg\n (name %s)\n" g.Graph.name);
  if g.Graph.inputs_at_start then Buffer.add_string buf " (inputs-at-start)\n";
  let inputs = Graph.primary_inputs g in
  if inputs <> [] then begin
    Buffer.add_string buf " (inputs";
    List.iter
      (fun v ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Graph.variable g v).Graph.var_name)
      inputs;
    Buffer.add_string buf ")\n"
  end;
  Array.iter
    (fun (op : Graph.operation) ->
      Buffer.add_string buf
        (Printf.sprintf " (op %s (step %d) (in %s %s) (out %s))\n"
           (Op_kind.name op.kind) op.step
           (name_of op.inputs.(0))
           (name_of op.inputs.(1))
           (Graph.variable g op.output).Graph.var_name))
    g.Graph.operations;
  Buffer.add_string buf ")\n";
  Buffer.contents buf

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error msg -> Error msg

let to_file path g = Out_channel.with_open_text path (fun oc ->
    Out_channel.output_string oc (to_string g))
