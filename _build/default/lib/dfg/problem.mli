(** A BIST-synthesis problem instance: a scheduled DFG together with its
    module allocation (Section 2: "the numbers of registers and modules to be
    used for the synthesis of a DFG are known a priori").

    The module list fixes how many functional units of each kind exist; the
    synthesis methods bind operations to them.  The register count defaults
    to the minimum (maximal horizontal crossing) but methods that add
    registers (RALLOC, BITS sometimes do) may use more. *)

type t = private {
  dfg : Graph.t;
  modules : Fu_kind.t array;  (** module [m] has kind [modules.(m)] *)
}

val make : Graph.t -> Fu_kind.t list -> (t, string) result
(** Checks that every operation kind is supported by at least one module and
    that the allocation admits a feasible binding (per step and unit kind,
    enough modules for the scheduled operations — necessary and, for
    kind-disjoint allocations, sufficient). *)

val make_exn : Graph.t -> Fu_kind.t list -> t

val n_modules : t -> int

val candidates : t -> int -> int list
(** [candidates p o] — modules whose kind supports operation [o]. *)

val candidate_ops : t -> int -> int list
(** [candidate_ops p m] — operations executable on module [m]. *)

val min_registers : t -> int
(** Maximal horizontal crossing of the DFG. *)

val pp : Format.formatter -> t -> unit
