(** Textual exchange format for scheduled DFGs.

    Example (the Fig. 1 DFG of the paper):

    {v
    (dfg
     (name fig1)
     (inputs v0 v1 v2 v3)
     (op add (step 0) (in v0 v1) (out v4))
     (op add (step 1) (in v3 v4) (out v5))
     (op mul (step 1) (in v4 v2) (out v6))
     (op mul (step 2) (in v5 v6) (out v7)))
    v}

    Constants are written [#<int>], e.g. [(in v0 #3)].  The step count is
    inferred as 1 + the maximum operation step. *)

val of_string : string -> (Graph.t, string) result
val to_string : Graph.t -> string

val of_file : string -> (Graph.t, string) result
(** Reads and parses a file; I/O errors are reported as [Error]. *)

val to_file : string -> Graph.t -> unit
