type t = Atom of string | List of t list

exception Parse_error of string

let parse_string s =
  let n = String.length s in
  let pos = ref 0 and line = ref 1 and col = ref 1 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%d:%d: %s" !line !col msg))
  in
  let advance () =
    (if !pos < n then
       match s.[!pos] with
       | '\n' ->
           incr line;
           col := 1
       | _ -> incr col);
    incr pos
  in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\r' | '\n' ->
          advance ();
          skip_ws ()
      | ';' ->
          while !pos < n && s.[!pos] <> '\n' do
            advance ()
          done;
          skip_ws ()
      | _ -> ()
  in
  let is_atom_char c =
    match c with
    | ' ' | '\t' | '\r' | '\n' | '(' | ')' | ';' -> false
    | _ -> true
  in
  let rec parse_one () =
    skip_ws ();
    if !pos >= n then fail "unexpected end of input"
    else
      match s.[!pos] with
      | '(' ->
          advance ();
          let items = ref [] in
          let rec loop () =
            skip_ws ();
            if !pos >= n then fail "unclosed '('"
            else if s.[!pos] = ')' then advance ()
            else begin
              items := parse_one () :: !items;
              loop ()
            end
          in
          loop ();
          List (List.rev !items)
      | ')' -> fail "unexpected ')'"
      | _ ->
          let start = !pos in
          while !pos < n && is_atom_char s.[!pos] do
            advance ()
          done;
          Atom (String.sub s start (!pos - start))
  in
  try
    let acc = ref [] in
    let rec loop () =
      skip_ws ();
      if !pos < n then begin
        acc := parse_one () :: !acc;
        loop ()
      end
    in
    loop ();
    Ok (List.rev !acc)
  with Parse_error msg -> Error msg

let rec pp ppf = function
  | Atom a -> Format.pp_print_string ppf a
  | List items ->
      Format.fprintf ppf "@[<hov 1>(%a)@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        items

let to_string t = Format.asprintf "%a" pp t

let atom = function
  | Atom a -> Ok a
  | List _ as l -> Error (Printf.sprintf "expected atom, got %s" (to_string l))

let int_atom t =
  match atom t with
  | Error _ as e -> e
  | Ok a -> (
      match int_of_string_opt a with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "expected integer, got %S" a))

let assoc_opt key items =
  List.find_map
    (function
      | List (Atom k :: tail) when String.equal k key -> Some tail
      | Atom _ | List _ -> None)
    items

let assoc key items =
  match assoc_opt key items with
  | Some tail -> Ok tail
  | None -> Error (Printf.sprintf "missing (%s ...) entry" key)
