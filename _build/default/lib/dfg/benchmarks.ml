let fig1 =
  let b = Graph.Builder.create ~name:"fig1" () in
  let v0 = Graph.Builder.input b "v0" in
  let v1 = Graph.Builder.input b "v1" in
  let v2 = Graph.Builder.input b "v2" in
  let v3 = Graph.Builder.input b "v3" in
  let v4 = Graph.Builder.op ~name:"v4" b Op_kind.Add ~step:0 v0 v1 in
  let v5 = Graph.Builder.op ~name:"v5" b Op_kind.Add ~step:1 v3 v4 in
  let v6 = Graph.Builder.op ~name:"v6" b Op_kind.Mul ~step:1 v4 v2 in
  let (_ : Graph.operand) =
    Graph.Builder.op ~name:"v7" b Op_kind.Mul ~step:2 v5 v6
  in
  Problem.make_exn (Graph.Builder.build_exn b)
    [ Fu_kind.adder; Fu_kind.multiplier ]

let tseng =
  let b = Graph.Builder.create ~name:"tseng" () in
  let a = Graph.Builder.input b "a" in
  let bb = Graph.Builder.input b "b" in
  let c = Graph.Builder.input b "c" in
  let d = Graph.Builder.input b "d" in
  let e = Graph.Builder.input b "e" in
  let t0 = Graph.Builder.op ~name:"t0" b Op_kind.Add ~step:0 a bb in
  let t1 = Graph.Builder.op ~name:"t1" b Op_kind.Or ~step:0 c d in
  let t2 = Graph.Builder.op ~name:"t2" b Op_kind.Mul ~step:1 t0 e in
  let t3 = Graph.Builder.op ~name:"t3" b Op_kind.Sub ~step:1 t0 d in
  let t4 = Graph.Builder.op ~name:"t4" b Op_kind.And ~step:2 t2 t1 in
  let t5 = Graph.Builder.op ~name:"t5" b Op_kind.Add ~step:2 t3 a in
  let (_ : Graph.operand) =
    Graph.Builder.op ~name:"t6" b Op_kind.Mul ~step:3 t5 t4
  in
  Problem.make_exn (Graph.Builder.build_exn b)
    [ Fu_kind.alu; Fu_kind.logic; Fu_kind.multiplier ]

(* HAL differential-equation benchmark (Paulin):
     x' = x + dx;  u' = u - 3*x*u*dx - 3*y*dx;  y' = y + u*dx;  c = x' < a
   with dx, 3 and a immediate constants. *)
let paulin =
  let b = Graph.Builder.create ~name:"paulin" () in
  let x = Graph.Builder.input b "x" in
  let u = Graph.Builder.input b "u" in
  let y = Graph.Builder.input b "y" in
  let dx = Graph.Const 2 in
  let three = Graph.Const 3 in
  let a = Graph.Const 100 in
  let m1 = Graph.Builder.op ~name:"m1" b Op_kind.Mul ~step:0 three x in
  let m6 = Graph.Builder.op ~name:"m6" b Op_kind.Mul ~step:0 u dx in
  let a1 = Graph.Builder.op ~name:"a1" b Op_kind.Add ~step:0 x dx in
  let m2 = Graph.Builder.op ~name:"m2" b Op_kind.Mul ~step:1 m1 u in
  let m4 = Graph.Builder.op ~name:"m4" b Op_kind.Mul ~step:1 three y in
  let (_a2 : Graph.operand) =
    Graph.Builder.op ~name:"a2" b Op_kind.Add ~step:1 y m6
  in
  let (_c : Graph.operand) =
    Graph.Builder.op ~name:"cmp" b Op_kind.Lt ~step:1 a1 a
  in
  let m3 = Graph.Builder.op ~name:"m3" b Op_kind.Mul ~step:2 m2 dx in
  let m5 = Graph.Builder.op ~name:"m5" b Op_kind.Mul ~step:2 m4 dx in
  let s1 = Graph.Builder.op ~name:"s1" b Op_kind.Sub ~step:3 u m3 in
  let (_s2 : Graph.operand) =
    Graph.Builder.op ~name:"s2" b Op_kind.Sub ~step:4 s1 m5
  in
  Problem.make_exn (Graph.Builder.build_exn b)
    [ Fu_kind.multiplier; Fu_kind.multiplier; Fu_kind.alu; Fu_kind.alu ]
