type t = Add | Sub | Mul | Lt | And | Or | Xor | Shl | Shr

let all = [ Add; Sub; Mul; Lt; And; Or; Xor; Shl; Shr ]

let arity = function
  | Add | Sub | Mul | Lt | And | Or | Xor | Shl | Shr -> 2

let commutative = function
  | Add | Mul | And | Or | Xor -> true
  | Sub | Lt | Shl | Shr -> false

let name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Lt -> "lt"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Lt -> "<"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let of_name s =
  let rec find = function
    | [] -> None
    | k :: rest -> if String.equal (name k) s then Some k else find rest
  in
  find all

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let pp ppf k = Format.pp_print_string ppf (name k)

let eval k ~width a b =
  let mask = (1 lsl width) - 1 in
  let a = a land mask and b = b land mask in
  let raw =
    match k with
    | Add -> a + b
    | Sub -> a - b
    | Mul -> a * b
    | Lt -> if a < b then 1 else 0
    | And -> a land b
    | Or -> a lor b
    | Xor -> a lxor b
    | Shl -> a lsl (b land (width - 1))
    | Shr -> a lsr (b land (width - 1))
  in
  raw land mask
