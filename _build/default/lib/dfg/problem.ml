type t = { dfg : Graph.t; modules : Fu_kind.t array }

let n_modules p = Array.length p.modules

let candidates p o =
  let kind = (Graph.operation p.dfg o).Graph.kind in
  let acc = ref [] in
  for m = n_modules p - 1 downto 0 do
    if Fu_kind.supports p.modules.(m) kind then acc := m :: !acc
  done;
  !acc

let candidate_ops p m =
  let fu = p.modules.(m) in
  let acc = ref [] in
  for o = Graph.n_ops p.dfg - 1 downto 0 do
    if Fu_kind.supports fu (Graph.operation p.dfg o).Graph.kind then
      acc := o :: !acc
  done;
  !acc

let min_registers p = Lifetime.min_registers (Lifetime.compute p.dfg)

let make dfg kinds =
  let p = { dfg; modules = Array.of_list kinds } in
  let missing = ref [] in
  for o = 0 to Graph.n_ops dfg - 1 do
    if candidates p o = [] then missing := o :: !missing
  done;
  if !missing <> [] then
    Error
      (Printf.sprintf "no module supports operation(s) %s"
         (String.concat ", " (List.map string_of_int !missing)))
  else begin
    (* Per-step feasibility: ops needing a kind-exclusive unit must not
       outnumber the supporting modules.  With overlapping support sets this
       is a conservative bipartite check via greedy matching. *)
    let infeasible = ref None in
    for s = 0 to dfg.Graph.n_steps - 1 do
      let ops = Graph.ops_at_step dfg s in
      let taken = Array.make (n_modules p) false in
      let rec assign = function
        | [] -> true
        | o :: rest -> (
            let free =
              List.filter (fun m -> not taken.(m)) (candidates p o)
            in
            (* Ops are matched most-constrained-first below, so greedy
               first-fit suffices for the allocations used here. *)
            match free with
            | [] -> false
            | m :: _ ->
                taken.(m) <- true;
                assign rest)
      in
      let ordered =
        List.sort
          (fun a b ->
            compare
              (List.length (candidates p a))
              (List.length (candidates p b)))
          ops
      in
      if not (assign ordered) then
        if !infeasible = None then infeasible := Some s
    done;
    match !infeasible with
    | Some s ->
        Error
          (Printf.sprintf "step %d has more operations than modules of the \
                           required kinds" s)
    | None -> Ok p
  end

let make_exn dfg kinds =
  match make dfg kinds with
  | Ok p -> p
  | Error msg -> invalid_arg ("Problem.make_exn: " ^ msg)

let pp ppf p =
  Format.fprintf ppf "@[<v>%a@,modules:" Graph.pp p.dfg;
  Array.iteri
    (fun m fu -> Format.fprintf ppf " M%d=%a" m Fu_kind.pp fu)
    p.modules;
  Format.fprintf ppf "@]"
