type operand = Var of int | Const of int
type var_def = Primary_input | Output_of of int

type operation = {
  kind : Op_kind.t;
  step : int;
  inputs : operand array;
  output : int;
}

type variable = { var_name : string; def : var_def }

type t = {
  name : string;
  n_steps : int;
  inputs_at_start : bool;
  variables : variable array;
  operations : operation array;
}

let n_vars g = Array.length g.variables
let n_ops g = Array.length g.operations
let n_boundaries g = g.n_steps + 1
let variable g v = g.variables.(v)
let operation g o = g.operations.(o)
let def_of g v = g.variables.(v).def

let uses_of g v =
  let acc = ref [] in
  for o = Array.length g.operations - 1 downto 0 do
    let inputs = g.operations.(o).inputs in
    for l = Array.length inputs - 1 downto 0 do
      match inputs.(l) with
      | Var v' when v' = v -> acc := (o, l) :: !acc
      | Var _ | Const _ -> ()
    done
  done;
  !acc

let e_i g =
  let acc = ref [] in
  for o = Array.length g.operations - 1 downto 0 do
    let inputs = g.operations.(o).inputs in
    for l = Array.length inputs - 1 downto 0 do
      match inputs.(l) with
      | Var v -> acc := (v, o, l) :: !acc
      | Const _ -> ()
    done
  done;
  !acc

let e_o g =
  Array.to_list (Array.mapi (fun o op -> (o, op.output)) g.operations)

let const_edges g =
  let acc = ref [] in
  for o = Array.length g.operations - 1 downto 0 do
    let inputs = g.operations.(o).inputs in
    for l = Array.length inputs - 1 downto 0 do
      match inputs.(l) with
      | Const c -> acc := (c, o, l) :: !acc
      | Var _ -> ()
    done
  done;
  !acc

let constants g =
  List.sort_uniq Int.compare (List.map (fun (c, _, _) -> c) (const_edges g))

let ops_at_step g step =
  let acc = ref [] in
  for o = Array.length g.operations - 1 downto 0 do
    if g.operations.(o).step = step then acc := o :: !acc
  done;
  !acc

let op_kinds g =
  Array.fold_left
    (fun acc op ->
      if List.exists (Op_kind.equal op.kind) acc then acc else acc @ [ op.kind ])
    [] g.operations

let primary_inputs g =
  let acc = ref [] in
  for v = n_vars g - 1 downto 0 do
    match g.variables.(v).def with
    | Primary_input -> acc := v :: !acc
    | Output_of _ -> ()
  done;
  !acc

let primary_outputs g =
  let used = Array.make (n_vars g) false in
  Array.iter
    (fun op ->
      Array.iter
        (function Var v -> used.(v) <- true | Const _ -> ())
        op.inputs)
    g.operations;
  let acc = ref [] in
  for v = n_vars g - 1 downto 0 do
    if not used.(v) then acc := v :: !acc
  done;
  !acc

(* Validation: every structural invariant a consumer may rely on. *)
let validate g =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let nv = n_vars g and no = n_ops g in
  if g.n_steps < 1 then err "n_steps must be >= 1 (got %d)" g.n_steps;
  let check_operand o l = function
    | Var v when v < 0 || v >= nv ->
        err "op %d port %d references unknown variable %d" o l v
    | Var _ | Const _ -> ()
  in
  Array.iteri
    (fun o op ->
      if op.step < 0 || op.step >= g.n_steps then
        err "op %d scheduled at step %d outside [0,%d)" o op.step g.n_steps;
      if Array.length op.inputs <> Op_kind.arity op.kind then
        err "op %d has %d inputs but %a has arity %d" o
          (Array.length op.inputs) Op_kind.pp op.kind (Op_kind.arity op.kind);
      Array.iteri (fun l x -> check_operand o l x) op.inputs;
      if op.output < 0 || op.output >= nv then
        err "op %d output references unknown variable %d" o op.output
      else begin
        match g.variables.(op.output).def with
        | Output_of o' when o' = o -> ()
        | Output_of o' ->
            err "op %d claims output var %d, whose def is op %d" o op.output o'
        | Primary_input ->
            err "op %d outputs var %d which is marked primary input" o
              op.output
      end)
    g.operations;
  Array.iteri
    (fun v var ->
      match var.def with
      | Primary_input -> ()
      | Output_of o ->
          if o < 0 || o >= no then
            err "var %d defined by unknown op %d" v o
          else if g.operations.(o).output <> v then
            err "var %d claims def op %d, whose output is var %d" v o
              g.operations.(o).output)
    g.variables;
  (* Data dependences must respect the schedule: a value produced at
     boundary step+1 can only be read at step >= step+1. *)
  Array.iteri
    (fun o op ->
      Array.iteri
        (fun l x ->
          match x with
          | Const _ -> ()
          | Var v -> (
              if v >= 0 && v < nv then
                match g.variables.(v).def with
                | Primary_input -> ()
                | Output_of o' ->
                    if o' >= 0 && o' < no then
                      let def_step = g.operations.(o').step in
                      if op.step <= def_step then
                        err
                          "op %d (step %d) port %d reads var %d produced at \
                           step %d"
                          o op.step l v def_step))
        op.inputs)
    g.operations;
  List.rev !errs

let v ?(inputs_at_start = false) ~name ~n_steps variables operations =
  let g = { name; n_steps; inputs_at_start; variables; operations } in
  match validate g with [] -> Ok g | errs -> Error errs

module Builder = struct

  type t = {
    b_name : string;
    b_inputs_at_start : bool;
    mutable vars : variable list;  (* reversed *)
    mutable n_var : int;
    mutable ops : operation list;  (* reversed *)
    mutable n_op : int;
    mutable max_step : int;
  }

  let create ?(inputs_at_start = false) ~name () =
    { b_name = name; b_inputs_at_start = inputs_at_start; vars = []; n_var = 0;
      ops = []; n_op = 0; max_step = -1 }

  let fresh_var b name def =
    let id = b.n_var in
    b.vars <- { var_name = name; def } :: b.vars;
    b.n_var <- id + 1;
    id

  let input b name = Var (fresh_var b name Primary_input)

  let op ?name b kind ~step a c =
    let o = b.n_op in
    let out_name =
      match name with Some n -> n | None -> Printf.sprintf "t%d" o
    in
    let out = fresh_var b out_name (Output_of o) in
    b.ops <- { kind; step; inputs = [| a; c |]; output = out } :: b.ops;
    b.n_op <- o + 1;
    if step > b.max_step then b.max_step <- step;
    Var out

  let build b =
    let variables = Array.of_list (List.rev b.vars) in
    let operations = Array.of_list (List.rev b.ops) in
    v ~inputs_at_start:b.b_inputs_at_start ~name:b.b_name
      ~n_steps:(b.max_step + 1) variables operations

  let build_exn b =
    match build b with
    | Ok g -> g
    | Error errs ->
        invalid_arg
          (Printf.sprintf "Dfg.Builder.build_exn (%s): %s" b.b_name
             (String.concat "; " errs))
end

let pp_operand g ppf = function
  | Var v -> Format.pp_print_string ppf g.variables.(v).var_name
  | Const c -> Format.fprintf ppf "#%d" c

let pp ppf g =
  Format.fprintf ppf "@[<v>dfg %s: %d steps, %d vars, %d ops" g.name g.n_steps
    (n_vars g) (n_ops g);
  Array.iteri
    (fun o op ->
      Format.fprintf ppf "@,  op%-3d @@%d  %s := %a %s %a" o op.step
        g.variables.(op.output).var_name (pp_operand g) op.inputs.(0)
        (Op_kind.symbol op.kind) (pp_operand g) op.inputs.(1))
    g.operations;
  Format.fprintf ppf "@]"
