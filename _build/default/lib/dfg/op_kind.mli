(** Operation kinds appearing in data flow graphs.

    The kinds cover the arithmetic/logic operations used by the DAC'99
    benchmark circuits (tseng, paulin, fir6, iir3, dct4, wavelet6): additions,
    subtractions, multiplications, comparisons and bitwise logic. *)

type t =
  | Add
  | Sub
  | Mul
  | Lt   (** less-than comparison, as in the Paulin differential equation *)
  | And
  | Or
  | Xor
  | Shl  (** logical shift left by a constant amount *)
  | Shr  (** logical shift right by a constant amount *)

val all : t list

val arity : t -> int
(** Number of input ports. All supported kinds are binary. *)

val commutative : t -> bool
(** [commutative k] is [true] when the two input ports of [k] may be swapped
    without changing the result (Eq. (3) of the paper applies to these). *)

val name : t -> string
(** Short lower-case mnemonic, e.g. ["add"], ["mul"]. *)

val symbol : t -> string
(** Infix symbol used in diagrams, e.g. ["+"], ["*"]. *)

val of_name : string -> t option
(** Inverse of {!name}. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val eval : t -> width:int -> int -> int -> int
(** [eval k ~width a b] computes the operation on [width]-bit unsigned
    operands, truncating the result to [width] bits (comparison yields 0/1).
    Used by the data-path and gate-level simulators. *)
