(** CPLEX LP-format reader.

    Parses the common subset of the LP format: a [Minimize]/[Maximize]
    objective, [Subject To] rows with [<=]/[>=]/[=], [Bounds], [Binary] and
    [General] sections, comments ([\ ...]) and [End].  Maximization is
    normalized to minimization by negating the objective (recorded in
    {!parsed.negated}).

    Coefficients must be integers (possibly signed); this matches
    {!Lp_format.to_string} output and keeps the solver exact.  Fractional
    models are rejected with a clear error. *)

type parsed = {
  model : Model.t;
  negated : bool;
      (** [true] when the source said [Maximize]: objective values returned
          by the solver must be negated for reporting *)
}

val of_string : string -> (parsed, string) result
val of_file : string -> (parsed, string) result
