let sanitize name =
  let ok c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> true
    | _ -> false
  in
  let b = Bytes.of_string name in
  let changed = ref false in
  Bytes.iteri
    (fun i c ->
      if not (ok c) then begin
        Bytes.set b i '_';
        changed := true
      end)
    b;
  let s = Bytes.to_string b in
  let s = if s = "" || (s.[0] >= '0' && s.[0] <= '9') then "v_" ^ s else s in
  (s, !changed || s <> name)

let to_string m =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n = Model.n_vars m in
  (* Unique sanitized names. *)
  let used = Hashtbl.create 97 in
  let names = Array.make n "" in
  let renamed = ref [] in
  for v = 0 to n - 1 do
    let base, changed = sanitize (Model.var_name m v) in
    let name =
      if Hashtbl.mem used base then Printf.sprintf "%s__%d" base v else base
    in
    Hashtbl.replace used name ();
    names.(v) <- name;
    if changed || name <> base then
      renamed := (Model.var_name m v, name) :: !renamed
  done;
  add "\\ %s\n" (Model.stats m);
  List.iter (fun (o, s) -> add "\\ renamed: %s -> %s\n" o s) (List.rev !renamed);
  let pp_expr e =
    let first = ref true in
    Linexpr.iter
      (fun ~coef ~var ->
        if !first then begin
          first := false;
          if coef = 1 then add "%s" names.(var)
          else if coef = -1 then add "- %s" names.(var)
          else add "%d %s" coef names.(var)
        end
        else if coef > 0 then
          if coef = 1 then add " + %s" names.(var)
          else add " + %d %s" coef names.(var)
        else if coef = -1 then add " - %s" names.(var)
        else add " - %d %s" (-coef) names.(var))
      e;
    if !first then add "0"
  in
  add "Minimize\n obj: ";
  pp_expr (Model.objective m);
  add "\nSubject To\n";
  Array.iter
    (fun (c : Model.constr) ->
      let cname, _ = sanitize c.Model.cname in
      add " %s: " cname;
      pp_expr c.Model.expr;
      let op =
        match c.Model.sense with
        | Model.Le -> "<="
        | Model.Ge -> ">="
        | Model.Eq -> "="
      in
      add " %s %d\n" op c.Model.rhs)
    (Model.constraints m);
  add "Bounds\n";
  for v = 0 to n - 1 do
    let lb, ub = Model.bounds m v in
    if not (Model.is_binary m v) then add " %d <= %s <= %d\n" lb names.(v) ub
  done;
  let binaries =
    List.filter (fun v -> Model.is_binary m v) (List.init n Fun.id)
  in
  if binaries <> [] then begin
    add "Binary\n";
    List.iter (fun v -> add " %s\n" names.(v)) binaries
  end;
  let generals =
    List.filter (fun v -> not (Model.is_binary m v)) (List.init n Fun.id)
  in
  if generals <> [] then begin
    add "General\n";
    List.iter (fun v -> add " %s\n" names.(v)) generals
  end;
  add "End\n";
  Buffer.contents buf

let to_file path m =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string m))
