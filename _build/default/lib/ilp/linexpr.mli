(** Sparse linear expressions with integer coefficients.

    All models produced in this repository are integral (the objective counts
    transistors), so coefficients are [int]; this keeps constraint
    propagation exact. *)

type t

val zero : t
val term : int -> int -> t
(** [term c v] is the single-term expression [c * x_v]. *)

val var : int -> t
(** [var v] = [term 1 v]. *)

val of_list : (int * int) list -> t
(** [(coef, var)] pairs; repeated variables are summed, zero coefficients
    dropped. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val sum : t list -> t

val terms : t -> (int * int) list
(** [(coef, var)] pairs with non-zero coefficients, sorted by variable. *)

val coef : t -> int -> int
(** Coefficient of a variable (0 if absent). *)

val n_terms : t -> int
val is_zero : t -> bool

val iter : (coef:int -> var:int -> unit) -> t -> unit
val fold : (coef:int -> var:int -> 'a -> 'a) -> t -> 'a -> 'a

val pp : ?name:(int -> string) -> unit -> Format.formatter -> t -> unit
(** e.g. ["3 x1 - 2 x4"]. *)
