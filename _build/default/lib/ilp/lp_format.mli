(** CPLEX LP-format export.

    The paper solved its formulations with CPLEX 6.0; this writer produces
    files any LP-format-reading solver (CPLEX, Gurobi, CBC, GLPK, HiGHS)
    accepts, so the exact models built here can be cross-checked externally.

    Variable and constraint names are sanitized to the LP-format character
    set; a name table comment is emitted when sanitization renames. *)

val to_string : Model.t -> string
val to_file : string -> Model.t -> unit
