(** Linear-programming relaxation solver: bounded-variable revised primal
    simplex with a two-phase start (artificial basis), Dantzig pricing with a
    Bland's-rule anti-cycling fallback, and periodic basis refactorization.

    This is the LP oracle behind {!Solver}'s branch-and-bound bounding step
    and is usable on its own.  It works on floats; callers that need safe
    integer bounds should subtract a tolerance (see {!Solver}). *)

type result =
  | Optimal of { objective : float; primal : float array }
      (** [primal] has one entry per structural variable. *)
  | Infeasible
  | Unbounded
  | Iteration_limit

type problem = {
  n_vars : int;
  lower : float array;  (** per-variable lower bounds (finite) *)
  upper : float array;  (** per-variable upper bounds (may be [infinity]) *)
  objective : float array;  (** minimized *)
  rows : (Model.sense * (int * float) list * float) list;
      (** constraint sense, [(var, coef)] terms, right-hand side *)
}

val solve : ?max_iters:int -> problem -> result
(** [max_iters] defaults to [20_000]. *)

val relax :
  ?lower:int array -> ?upper:int array -> Model.t -> result
(** LP relaxation of an ILP model, optionally with tightened variable bounds
    (as maintained by branch-and-bound nodes). *)
