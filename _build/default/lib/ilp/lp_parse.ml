type parsed = { model : Model.t; negated : bool }

type token =
  | Ident of string
  | Int of int
  | Plus
  | Minus
  | Le
  | Ge
  | EqT
  | Colon

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let err msg = Error (Printf.sprintf "lp: %s (at offset %d)" msg !i) in
  let is_ident_start c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '_' | '.' -> true
    | _ -> false
  in
  let is_ident_char c =
    is_ident_start c || (c >= '0' && c <= '9') || c = '[' || c = ']' || c = ','
  in
  let rec loop () =
    if !i >= n then Ok (List.rev !toks)
    else
      match s.[!i] with
      | ' ' | '\t' | '\r' | '\n' ->
          incr i;
          loop ()
      | '\\' ->
          (* comment to end of line *)
          while !i < n && s.[!i] <> '\n' do
            incr i
          done;
          loop ()
      | '+' ->
          incr i;
          toks := Plus :: !toks;
          loop ()
      | '-' ->
          incr i;
          toks := Minus :: !toks;
          loop ()
      | ':' ->
          incr i;
          toks := Colon :: !toks;
          loop ()
      | '<' ->
          incr i;
          if !i < n && s.[!i] = '=' then incr i;
          toks := Le :: !toks;
          loop ()
      | '>' ->
          incr i;
          if !i < n && s.[!i] = '=' then incr i;
          toks := Ge :: !toks;
          loop ()
      | '=' ->
          incr i;
          (* '=<' and '=>' are legal LP synonyms *)
          if !i < n && s.[!i] = '<' then begin
            incr i;
            toks := Le :: !toks
          end
          else if !i < n && s.[!i] = '>' then begin
            incr i;
            toks := Ge :: !toks
          end
          else toks := EqT :: !toks;
          loop ()
      | '0' .. '9' ->
          let start = !i in
          while !i < n && (match s.[!i] with '0' .. '9' -> true | _ -> false) do
            incr i
          done;
          if !i < n && (s.[!i] = '.' || s.[!i] = 'e' || s.[!i] = 'E') then
            err "fractional coefficients are not supported"
          else begin
            toks := Int (int_of_string (String.sub s start (!i - start))) :: !toks;
            loop ()
          end
      | c when is_ident_start c ->
          let start = !i in
          while !i < n && is_ident_char s.[!i] do
            incr i
          done;
          toks := Ident (String.sub s start (!i - start)) :: !toks;
          loop ()
      | c -> err (Printf.sprintf "unexpected character %C" c)
  in
  loop ()

let lower = String.lowercase_ascii

let keywords =
  [ "minimize"; "min"; "minimise"; "maximize"; "max"; "maximise"; "subject";
    "st"; "s.t."; "such"; "to"; "bounds"; "bound"; "binary"; "binaries";
    "bin"; "general"; "generals"; "gen"; "integer"; "integers"; "end" ]

let is_keyword name = List.mem (lower name) keywords

(* Split the token stream into sections keyed by the LP keywords. *)
type section = Objective of bool (* negated *) | Rows | Bnds | Bins | Gens

let of_string s =
  let ( let* ) r f = Result.bind r f in
  let* toks = tokenize s in
  (* walk tokens, tracking section *)
  let vars : (string, unit) Hashtbl.t = Hashtbl.create 97 in
  let bounds : (string, int option * int option) Hashtbl.t = Hashtbl.create 97 in
  let binaries : (string, unit) Hashtbl.t = Hashtbl.create 97 in
  let obj_terms = ref [] in
  let rows = ref [] in
  let negated = ref false in
  let err msg = Error ("lp: " ^ msg) in
  (* expression parser: returns (terms, rest); stops at section keywords *)
  let rec parse_expr acc sign coef toks =
    match toks with
    | Plus :: rest -> parse_expr acc 1 None rest
    | Minus :: rest -> parse_expr acc (-1) None rest
    | Int c :: rest -> (
        match coef with
        | None -> parse_expr acc sign (Some c) rest
        | Some _ -> (List.rev acc, toks))
    | Ident name :: _ when is_keyword name -> (List.rev acc, toks)
    | Ident name :: rest ->
        Hashtbl.replace vars name ();
        let c = sign * Option.value coef ~default:1 in
        parse_expr ((c, name) :: acc) 1 None rest
    | (Le | Ge | EqT | Colon) :: _ | [] -> (List.rev acc, toks)
  in
  let rec go section toks =
    match toks with
    | [] -> Ok ()
    | Ident kw :: rest when lower kw = "end" && rest = [] -> Ok ()
    | Ident kw :: rest -> (
        match lower kw with
        | "minimize" | "min" | "minimise" -> go (Objective false) rest
        | "maximize" | "max" | "maximise" ->
            negated := true;
            go (Objective true) rest
        | "subject" -> (
            match rest with
            | Ident to_kw :: rest' when lower to_kw = "to" -> go Rows rest'
            | _ -> err "expected 'to' after 'subject'")
        | "st" | "s.t." | "such" -> go Rows rest
        | "bounds" | "bound" -> go Bnds rest
        | "binary" | "binaries" | "bin" -> go Bins rest
        | "general" | "generals" | "gen" | "integer" | "integers" ->
            go Gens rest
        | "end" -> Ok ()
        | _ -> parse_item section toks)
    | _ -> parse_item section toks
  and parse_item section toks =
    match section with
    | Objective neg -> (
        (* optional label *)
        let toks =
          match toks with
          | Ident _ :: Colon :: rest -> rest
          | _ -> toks
        in
        let terms, rest = parse_expr [] 1 None toks in
        let terms =
          if neg then List.map (fun (c, v) -> (-c, v)) terms else terms
        in
        obj_terms := !obj_terms @ terms;
        match rest with
        | (Le | Ge | EqT) :: _ -> err "relation in the objective"
        | Colon :: _ -> err "unexpected ':' in the objective"
        | Int _ :: _ -> err "dangling number in the objective"
        | (Plus | Minus | Ident _) :: _ | [] ->
            if rest == toks then err "empty objective item" else go section rest)
    | Rows -> (
        let toks =
          match toks with
          | Ident _ :: Colon :: rest -> rest
          | _ -> toks
        in
        let terms, rest = parse_expr [] 1 None toks in
        match rest with
        | Le :: more | Ge :: more | EqT :: more -> (
            let sense =
              match rest with
              | Le :: _ -> Model.Le
              | Ge :: _ -> Model.Ge
              | _ -> Model.Eq
            in
            match more with
            | Int rhs :: rest' ->
                rows := (terms, sense, rhs) :: !rows;
                go section rest'
            | Minus :: Int rhs :: rest' ->
                rows := (terms, sense, -rhs) :: !rows;
                go section rest'
            | _ -> err "expected integer right-hand side")
        | _ ->
            if terms = [] then err "empty constraint"
            else err "constraint without relation")
    | Bnds -> (
        (* forms: l <= x <= u | x <= u | x >= l | x = v, with signs *)
        let int_tok toks =
          match toks with
          | Int v :: rest -> Some (v, rest)
          | Minus :: Int v :: rest -> Some (-v, rest)
          | Plus :: Int v :: rest -> Some (v, rest)
          | _ -> None
        in
        match int_tok toks with
        | Some (l, Le :: Ident x :: Le :: rest) -> (
            Hashtbl.replace vars x ();
            match int_tok rest with
            | Some (u, rest') ->
                Hashtbl.replace bounds x (Some l, Some u);
                go section rest'
            | None -> err "bad bounds line")
        | Some _ -> err "bad bounds line"
        | None -> (
            match toks with
            | Ident x :: Le :: rest -> (
                Hashtbl.replace vars x ();
                match int_tok rest with
                | Some (u, rest') ->
                    let l, _ =
                      Option.value (Hashtbl.find_opt bounds x)
                        ~default:(None, None)
                    in
                    Hashtbl.replace bounds x (l, Some u);
                    go section rest'
                | None -> err "bad bounds line")
            | Ident x :: Ge :: rest -> (
                Hashtbl.replace vars x ();
                match int_tok rest with
                | Some (l, rest') ->
                    let _, u =
                      Option.value (Hashtbl.find_opt bounds x)
                        ~default:(None, None)
                    in
                    Hashtbl.replace bounds x (Some l, u);
                    go section rest'
                | None -> err "bad bounds line")
            | Ident x :: EqT :: rest -> (
                Hashtbl.replace vars x ();
                match int_tok rest with
                | Some (v, rest') ->
                    Hashtbl.replace bounds x (Some v, Some v);
                    go section rest'
                | None -> err "bad bounds line")
            | _ -> err "bad bounds line"))
    | Bins -> (
        match toks with
        | Ident x :: rest when not (is_keyword x) ->
            Hashtbl.replace vars x ();
            Hashtbl.replace binaries x ();
            go section rest
        | _ -> err "expected variable name in Binary section")
    | Gens -> (
        match toks with
        | Ident x :: rest when not (is_keyword x) ->
            Hashtbl.replace vars x ();
            go section rest
        | _ -> err "expected variable name in General section")
  in
  let* () =
    match toks with
    | Ident kw :: _ when List.mem (lower kw)
        [ "minimize"; "min"; "minimise"; "maximize"; "max"; "maximise" ] ->
        go Rows toks (* go will re-dispatch on the keyword *)
    | _ -> err "LP file must start with Minimize or Maximize"
  in
  (* build the model: stable variable order = first appearance order is lost
     in the hashtable; sort names for determinism *)
  let names = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) vars []) in
  let model = Model.create ~name:"lp" () in
  let index = Hashtbl.create 97 in
  let default_ub = 1_000_000 in
  List.iter
    (fun name ->
      let lb, ub =
        if Hashtbl.mem binaries name then (0, 1)
        else
          match Hashtbl.find_opt bounds name with
          | Some (l, u) ->
              (Option.value l ~default:0, Option.value u ~default:default_ub)
          | None -> (0, default_ub)
      in
      Hashtbl.replace index name (Model.int_var model ~lb ~ub name))
    names;
  let to_expr terms =
    Linexpr.of_list
      (List.map (fun (c, name) -> (c, Hashtbl.find index name)) terms)
  in
  Model.set_objective model (to_expr !obj_terms);
  List.iter
    (fun (terms, sense, rhs) -> Model.add model (to_expr terms) sense rhs)
    (List.rev !rows);
  Ok { model; negated = !negated }

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error msg -> Error msg
