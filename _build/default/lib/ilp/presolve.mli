(** Presolve: cheap model reductions applied before branch & bound.

    Three classic, safe techniques for integer models:

    - {b bound tightening} to fixpoint over all rows (the same propagation
      the solver runs at its root, exposed as a analysis);
    - {b redundant-row elimination}: a row whose maximum activity under the
      tightened bounds cannot exceed its right-hand side never binds;
    - {b coefficient strengthening} on binary variables of [<=] rows: with
      [d = maxact - rhs > 0] and a binary coefficient [a_j > d], shifting
      [a_j] and the right-hand side down by [a_j - d] (the coefficient
      shrinks to [d]) leaves every 0-1 point's feasibility unchanged while
      cutting fractional LP corners, improving relaxation bounds.

    [strengthen] rebuilds an equivalent model (same variable indices, same
    objective, same integer solutions). *)

type stats = {
  infeasible : bool;  (** trivially infeasible found during analysis *)
  fixed_vars : int;  (** variables whose bounds collapsed to a point *)
  tightened_bounds : int;  (** non-collapsing bound improvements *)
  dropped_rows : int;
  strengthened_coefs : int;
}

val analyze : Model.t -> stats
(** Analysis only; the model is not modified. *)

val strengthen : Model.t -> Model.t * stats
(** A new, equivalent model with the reductions applied.  When the analysis
    proves infeasibility the returned model contains an explicitly
    contradictory row (so any solver reports infeasible), and
    [stats.infeasible] is set. *)

val pp_stats : Format.formatter -> stats -> unit
