(* Invariant: sorted by variable id, no zero coefficients, no duplicates. *)
type t = (int * int) list (* (coef, var) *)

let zero = []
let term c v = if c = 0 then [] else [ (c, v) ]
let var v = term 1 v

let rec add a b =
  match (a, b) with
  | [], e | e, [] -> e
  | (ca, va) :: ra, (cb, vb) :: rb ->
      if va < vb then (ca, va) :: add ra b
      else if vb < va then (cb, vb) :: add a rb
      else begin
        let c = ca + cb in
        if c = 0 then add ra rb else (c, va) :: add ra rb
      end

let scale k e = if k = 0 then [] else List.map (fun (c, v) -> (k * c, v)) e
let sub a b = add a (scale (-1) b)
let of_list pairs = List.fold_left (fun acc (c, v) -> add acc (term c v)) [] pairs
let sum es = List.fold_left add zero es
let terms e = e

let coef e v =
  match List.find_opt (fun (_, v') -> v' = v) e with
  | Some (c, _) -> c
  | None -> 0

let n_terms = List.length
let is_zero e = e = []
let iter f e = List.iter (fun (coef, var) -> f ~coef ~var) e
let fold f e init = List.fold_left (fun acc (coef, var) -> f ~coef ~var acc) init e

let pp ?(name = fun v -> Printf.sprintf "x%d" v) () ppf e =
  match e with
  | [] -> Format.pp_print_string ppf "0"
  | (c0, v0) :: rest ->
      let pp_first ppf (c, v) =
        if c = 1 then Format.pp_print_string ppf (name v)
        else if c = -1 then Format.fprintf ppf "- %s" (name v)
        else Format.fprintf ppf "%d %s" c (name v)
      in
      pp_first ppf (c0, v0);
      List.iter
        (fun (c, v) ->
          if c > 0 then
            if c = 1 then Format.fprintf ppf " + %s" (name v)
            else Format.fprintf ppf " + %d %s" c (name v)
          else if c = -1 then Format.fprintf ppf " - %s" (name v)
          else Format.fprintf ppf " - %d %s" (-c) (name v))
        rest
