type status = Optimal | Feasible | Infeasible | Unknown

type outcome = {
  status : status;
  solution : int array option;
  objective : int option;
  bound : int;
  nodes : int;
  time_s : float;
}

type lp_mode = Lp_never | Lp_root | Lp_depth of int

type options = {
  time_limit : float option;
  node_limit : int option;
  lp : lp_mode;
  branch_order : int list option;
  prefer_high : bool;
  warm_start : int array option;
  verbose : bool;
}

let default =
  {
    time_limit = None;
    node_limit = None;
    lp = Lp_root;
    branch_order = None;
    prefer_high = true;
    warm_start = None;
    verbose = false;
  }

(* Internal row: terms `sum coef*var <= rhs`.  Eq model rows are split into
   two Le rows; Ge rows are negated. *)
type row = { terms : (int * int) array; mutable rhs : int }

exception Out_of_time

type search = {
  model : Model.t;
  n : int;
  lb : int array;
  ub : int array;
  rows : row array;
  occ : int list array;  (* var -> row indices *)
  obj_terms : (int * int) array;
  obj_row : row option;  (* objective cutoff, rhs updated on incumbents *)
  trail : (int * int * int * bool) Stack.t;
      (* (var, old bound, mark-irrelevant, is_lb) encoded below *)
  opts : options;
  started : float;
  mutable incumbent : int array option;
  mutable incumbent_obj : int;
  mutable nodes : int;
  mutable root_bound : int;
  branch_seq : int array;
  value_hint : int array option;
}

let now () = Unix.gettimeofday ()

(* --- trail ------------------------------------------------------------- *)

let set_lb s v value =
  if value > s.lb.(v) then begin
    Stack.push (v, s.lb.(v), 0, true) s.trail;
    s.lb.(v) <- value
  end

let set_ub s v value =
  if value < s.ub.(v) then begin
    Stack.push (v, s.ub.(v), 0, false) s.trail;
    s.ub.(v) <- value
  end

let mark s = Stack.length s.trail

let undo_to s m =
  while Stack.length s.trail > m do
    let v, old, _, is_lb = Stack.pop s.trail in
    if is_lb then s.lb.(v) <- old else s.ub.(v) <- old
  done

(* --- propagation ------------------------------------------------------- *)

let min_activity s (r : row) =
  Array.fold_left
    (fun acc (a, v) -> acc + (if a > 0 then a * s.lb.(v) else a * s.ub.(v)))
    0 r.terms

(* Bound tightening on one Le row; returns false on conflict, records
   touched variables through [touch]. *)
let propagate_row s (r : row) ~touch =
  let minact = min_activity s r in
  if minact > r.rhs then false
  else begin
    let slack = r.rhs - minact in
    Array.iter
      (fun (a, v) ->
        if a > 0 then begin
          (* a * (x - lb) <= slack *)
          let max_x = s.lb.(v) + (slack / a) in
          if max_x < s.ub.(v) then begin
            set_ub s v max_x;
            touch v
          end
        end
        else begin
          (* (-a) * (ub - x) <= slack  =>  x >= ub - slack / (-a) *)
          let na = -a in
          let min_x = s.ub.(v) - (slack / na) in
          if min_x > s.lb.(v) then begin
            set_lb s v min_x;
            touch v
          end
        end)
      r.terms;
    true
  end

(* Worklist propagation to fixpoint starting from the given variables (or
   all rows when [None]). *)
let propagate s seeds =
  let pending = Queue.create () in
  let queued = Array.make (Array.length s.rows) false in
  let enqueue_row i =
    if not queued.(i) then begin
      queued.(i) <- true;
      Queue.add i pending
    end
  in
  let touch v = List.iter enqueue_row s.occ.(v) in
  (match seeds with
  | None -> Array.iteri (fun i _ -> enqueue_row i) s.rows
  | Some vars -> List.iter touch vars);
  let ok = ref true in
  (* The objective cutoff row participates whenever it exists.  Its
     tightenings enqueue ordinary rows, so the whole thing must run to a
     joint fixpoint: drain the queue, re-run the cutoff pass, and repeat
     until neither produces new work. *)
  let obj_pass () =
    match s.obj_row with
    | None -> true
    | Some r ->
        if s.incumbent = None then true
        else propagate_row s r ~touch
  in
  let drain () =
    while !ok && not (Queue.is_empty pending) do
      let i = Queue.take pending in
      queued.(i) <- false;
      if not (propagate_row s s.rows.(i) ~touch) then ok := false
    done
  in
  let rec fixpoint () =
    drain ();
    if !ok then
      if not (obj_pass ()) then ok := false
      else if not (Queue.is_empty pending) then fixpoint ()
  in
  fixpoint ();
  !ok

(* --- bounding ---------------------------------------------------------- *)

let objective_min_activity s =
  Array.fold_left
    (fun acc (a, v) -> acc + (if a > 0 then a * s.lb.(v) else a * s.ub.(v)))
    0 s.obj_terms

let lp_bound s =
  match Simplex.relax ~lower:s.lb ~upper:s.ub s.model with
  | Simplex.Optimal { objective; _ } ->
      (* Safety margin before integer rounding: the LP is float-based. *)
      Some (int_of_float (Float.ceil (objective -. 1e-4 -. (1e-9 *. Float.abs objective))))
  | Simplex.Infeasible -> Some max_int
  | Simplex.Unbounded | Simplex.Iteration_limit -> None

let use_lp_at s depth =
  match s.opts.lp with
  | Lp_never -> false
  | Lp_root -> depth = 0
  | Lp_depth d -> depth <= d

(* --- search ------------------------------------------------------------ *)

let check_limits s =
  (match s.opts.time_limit with
  | Some tl when now () -. s.started > tl -> raise Out_of_time
  | Some _ | None -> ());
  match s.opts.node_limit with
  | Some nl when s.nodes >= nl -> raise Out_of_time
  | Some _ | None -> ()

let record_incumbent s =
  let x = Array.copy s.lb in
  let obj =
    Array.fold_left (fun acc (a, v) -> acc + (a * x.(v))) 0 s.obj_terms
  in
  if s.incumbent = None || obj < s.incumbent_obj then begin
    (match Model.check s.model x with
    | Ok () -> ()
    | Error errs ->
        failwith
          ("Ilp.Solver internal error: incumbent fails audit: "
          ^ String.concat "; " errs));
    s.incumbent <- Some x;
    s.incumbent_obj <- obj;
    (match s.obj_row with Some r -> r.rhs <- obj - 1 | None -> ());
    if s.opts.verbose then
      Printf.eprintf "[ilp] incumbent %d after %d nodes (%.2fs)\n%!" obj
        s.nodes
        (now () -. s.started)
  end

let pick_branch_var s =
  let n_seq = Array.length s.branch_seq in
  let rec go i =
    if i >= n_seq then None
    else begin
      let v = s.branch_seq.(i) in
      if s.lb.(v) < s.ub.(v) then Some v else go (i + 1)
    end
  in
  go 0

let rec dfs s depth =
  s.nodes <- s.nodes + 1;
  if s.nodes land 63 = 0 || use_lp_at s depth then check_limits s;
  if
    s.incumbent <> None
    && objective_min_activity s >= s.incumbent_obj
  then ()
  else if use_lp_at s depth then begin
    match lp_bound s with
    | Some b ->
        if depth = 0 && b > s.root_bound then s.root_bound <- b;
        if b = max_int then () (* LP-infeasible node *)
        else if s.incumbent <> None && b >= s.incumbent_obj then ()
        else branch s depth
    | None -> branch s depth
  end
  else branch s depth

and branch s depth =
  match pick_branch_var s with
  | None -> record_incumbent s
  | Some v ->
      let lo = s.lb.(v) and hi = s.ub.(v) in
      let values =
        if hi - lo <= 8 then begin
          (* enumerate values, hint (or preferred end) first *)
          let all = List.init (hi - lo + 1) (fun i -> lo + i) in
          let all = if s.opts.prefer_high then List.rev all else all in
          match s.value_hint with
          | Some h when h.(v) >= lo && h.(v) <= hi ->
              h.(v) :: List.filter (fun x -> x <> h.(v)) all
          | Some _ | None -> all
        end
        else []
      in
      if values <> [] then
        List.iter
          (fun value ->
            let m = mark s in
            set_lb s v value;
            set_ub s v value;
            if propagate s (Some [ v ]) then dfs s (depth + 1);
            undo_to s m)
          values
      else begin
        (* wide integer domain: bisect *)
        let mid = lo + ((hi - lo) / 2) in
        let m = mark s in
        set_ub s v mid;
        if propagate s (Some [ v ]) then dfs s (depth + 1);
        undo_to s m;
        let m = mark s in
        set_lb s v (mid + 1);
        if propagate s (Some [ v ]) then dfs s (depth + 1);
        undo_to s m
      end

let solve ?(options = default) model =
  let n = Model.n_vars model in
  let lb = Array.make n 0 and ub = Array.make n 0 in
  for v = 0 to n - 1 do
    let l, u = Model.bounds model v in
    lb.(v) <- l;
    ub.(v) <- u
  done;
  (* Normalize rows to Le. *)
  let rows = ref [] in
  Array.iter
    (fun (c : Model.constr) ->
      let terms = Array.of_list (Linexpr.terms c.Model.expr) in
      let neg = Array.map (fun (a, v) -> (-a, v)) terms in
      match c.Model.sense with
      | Model.Le -> rows := { terms; rhs = c.Model.rhs } :: !rows
      | Model.Ge -> rows := { terms = neg; rhs = -c.Model.rhs } :: !rows
      | Model.Eq ->
          rows :=
            { terms = neg; rhs = -c.Model.rhs }
            :: { terms; rhs = c.Model.rhs }
            :: !rows)
    (Model.constraints model);
  let rows = Array.of_list (List.rev !rows) in
  let occ = Array.make (max n 1) [] in
  Array.iteri
    (fun i r ->
      Array.iter (fun (_, v) -> occ.(v) <- i :: occ.(v)) r.terms)
    rows;
  let obj_terms = Array.of_list (Linexpr.terms (Model.objective model)) in
  let obj_row =
    if Array.length obj_terms = 0 then None
    else Some { terms = obj_terms; rhs = max_int / 2 }
  in
  let branch_seq =
    match options.branch_order with
    | None -> Array.init n (fun i -> i)
    | Some order ->
        let seen = Array.make n false in
        let pref = List.filter (fun v -> v >= 0 && v < n) order in
        List.iter (fun v -> seen.(v) <- true) pref;
        let rest = List.filter (fun v -> not seen.(v)) (List.init n Fun.id) in
        Array.of_list (pref @ rest)
  in
  let warm =
    match options.warm_start with
    | Some x when Array.length x = n && Model.check model x = Ok () -> Some x
    | Some _ | None -> None
  in
  let s =
    {
      model;
      n;
      lb;
      ub;
      rows;
      occ;
      obj_terms;
      obj_row;
      trail = Stack.create ();
      opts = options;
      started = now ();
      incumbent = None;
      incumbent_obj = max_int;
      nodes = 0;
      root_bound = min_int;
      branch_seq;
      value_hint = options.warm_start;
    }
  in
  (match warm with
  | Some x ->
      let obj =
        Array.fold_left (fun acc (a, v) -> acc + (a * x.(v))) 0 obj_terms
      in
      s.incumbent <- Some (Array.copy x);
      s.incumbent_obj <- obj;
      (match s.obj_row with Some r -> r.rhs <- obj - 1 | None -> ())
  | None -> ());
  let complete =
    try
      if propagate s None then dfs s 0;
      true
    with Out_of_time -> false
  in
  let time_s = now () -. s.started in
  let trivial_bound = objective_min_activity s in
  match (s.incumbent, complete) with
  | Some x, true ->
      {
        status = Optimal;
        solution = Some x;
        objective = Some s.incumbent_obj;
        bound = s.incumbent_obj;
        nodes = s.nodes;
        time_s;
      }
  | Some x, false ->
      {
        status = Feasible;
        solution = Some x;
        objective = Some s.incumbent_obj;
        bound = max s.root_bound trivial_bound;
        nodes = s.nodes;
        time_s;
      }
  | None, true ->
      {
        status = Infeasible;
        solution = None;
        objective = None;
        bound = max_int;
        nodes = s.nodes;
        time_s;
      }
  | None, false ->
      {
        status = Unknown;
        solution = None;
        objective = None;
        bound = max s.root_bound trivial_bound;
        nodes = s.nodes;
        time_s;
      }
