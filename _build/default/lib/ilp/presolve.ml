type stats = {
  infeasible : bool;
  fixed_vars : int;
  tightened_bounds : int;
  dropped_rows : int;
  strengthened_coefs : int;
}

(* Internal row representation: sum coef*var <= rhs. *)
type row = { mutable terms : (int * int) list; mutable rhs : int }

let rows_of_model m =
  let rows = ref [] in
  Array.iter
    (fun (c : Model.constr) ->
      let terms = Linexpr.terms c.Model.expr in
      let neg = List.map (fun (a, v) -> (-a, v)) terms in
      match c.Model.sense with
      | Model.Le -> rows := { terms; rhs = c.Model.rhs } :: !rows
      | Model.Ge -> rows := { terms = neg; rhs = -c.Model.rhs } :: !rows
      | Model.Eq ->
          rows :=
            { terms = neg; rhs = -c.Model.rhs }
            :: { terms; rhs = c.Model.rhs }
            :: !rows)
    (Model.constraints m);
  Array.of_list (List.rev !rows)

let min_activity lb ub (r : row) =
  List.fold_left
    (fun acc (a, v) -> acc + (if a > 0 then a * lb.(v) else a * ub.(v)))
    0 r.terms

let max_activity lb ub (r : row) =
  List.fold_left
    (fun acc (a, v) -> acc + (if a > 0 then a * ub.(v) else a * lb.(v)))
    0 r.terms

(* Bound tightening to fixpoint; returns false on proven infeasibility. *)
let tighten lb ub rows =
  let changed = ref true in
  let feasible = ref true in
  while !changed && !feasible do
    changed := false;
    Array.iter
      (fun r ->
        let minact = min_activity lb ub r in
        if minact > r.rhs then feasible := false
        else
          let slack = r.rhs - minact in
          List.iter
            (fun (a, v) ->
              if a > 0 then begin
                let max_x = lb.(v) + (slack / a) in
                if max_x < ub.(v) then begin
                  ub.(v) <- max_x;
                  changed := true;
                  if ub.(v) < lb.(v) then feasible := false
                end
              end
              else begin
                let na = -a in
                let min_x = ub.(v) - (slack / na) in
                if min_x > lb.(v) then begin
                  lb.(v) <- min_x;
                  changed := true;
                  if ub.(v) < lb.(v) then feasible := false
                end
              end)
            r.terms)
      rows
  done;
  !feasible

let run m =
  let n = Model.n_vars m in
  let lb = Array.make n 0 and ub = Array.make n 0 in
  for v = 0 to n - 1 do
    let l, u = Model.bounds m v in
    lb.(v) <- l;
    ub.(v) <- u
  done;
  let lb0 = Array.copy lb and ub0 = Array.copy ub in
  let rows = rows_of_model m in
  let feasible = tighten lb ub rows in
  let fixed = ref 0 and tightened = ref 0 in
  if feasible then
    for v = 0 to n - 1 do
      if lb.(v) = ub.(v) && lb0.(v) <> ub0.(v) then incr fixed
      else if lb.(v) > lb0.(v) || ub.(v) < ub0.(v) then incr tightened
    done;
  (* redundant rows and coefficient strengthening under tightened bounds *)
  let dropped = ref 0 and strengthened = ref 0 in
  let kept = ref [] in
  if feasible then
    Array.iter
      (fun r ->
        let maxact = max_activity lb ub r in
        if maxact <= r.rhs then incr dropped
        else begin
          (* Coefficient strengthening (one application per row; running
             presolve again applies more).  For a <= row with binary x_j,
             coefficient a_j > 0 and d = maxact - rhs > 0: shifting both
             a_j and rhs down by delta keeps the x_j = 1 points identical,
             and keeps the x_j = 0 points identical as long as
             maxact - a_j <= rhs - delta, i.e. delta <= a_j - d.  The
             maximal valid reduction is therefore delta = a_j - d (needs
             a_j > d), which shrinks the coefficient exactly to d. *)
          let d = maxact - r.rhs in
          let rec apply acc = function
            | [] -> None
            | (a, v) :: rest when lb.(v) = 0 && ub.(v) = 1 && a > d ->
                Some
                  {
                    terms = List.rev_append acc ((d, v) :: rest);
                    rhs = r.rhs - (a - d);
                  }
            | t :: rest -> apply (t :: acc) rest
          in
          match apply [] r.terms with
          | Some r' ->
              incr strengthened;
              kept := r' :: !kept
          | None -> kept := r :: !kept
        end)
      rows;
  let stats =
    {
      infeasible = not feasible;
      fixed_vars = !fixed;
      tightened_bounds = !tightened;
      dropped_rows = !dropped;
      strengthened_coefs = !strengthened;
    }
  in
  (stats, lb, ub, List.rev !kept)

let analyze m =
  let stats, _, _, _ = run m in
  stats

let strengthen m =
  let stats, lb, ub, rows = run m in
  let m' = Model.create ~name:(Model.name m ^ "-presolved") () in
  let n = Model.n_vars m in
  for v = 0 to n - 1 do
    let l, u =
      if stats.infeasible then Model.bounds m v else (lb.(v), ub.(v))
    in
    ignore (Model.int_var m' ~lb:l ~ub:u (Model.var_name m v))
  done;
  if stats.infeasible then
    (* explicit contradiction: 0 <= -1 *)
    Model.add_le m' ~name:"infeasible" Linexpr.zero (-1)
  else
    List.iter
      (fun r -> Model.add_le m' (Linexpr.of_list r.terms) r.rhs)
      rows;
  Model.set_objective m' (Model.objective m);
  (m', stats)

let pp_stats ppf s =
  Format.fprintf ppf
    "presolve: %s, %d fixed, %d tightened, %d rows dropped, %d coefficients \
     strengthened"
    (if s.infeasible then "INFEASIBLE" else "feasible")
    s.fixed_vars s.tightened_bounds s.dropped_rows s.strengthened_coefs
