lib/ilp/linexpr.mli: Format
