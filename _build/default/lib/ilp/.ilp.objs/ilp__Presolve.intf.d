lib/ilp/presolve.mli: Format Model
