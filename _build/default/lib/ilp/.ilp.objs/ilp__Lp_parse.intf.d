lib/ilp/lp_parse.mli: Model
