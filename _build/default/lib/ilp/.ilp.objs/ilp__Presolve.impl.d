lib/ilp/presolve.ml: Array Format Linexpr List Model
