lib/ilp/solver.mli: Model
