lib/ilp/lp_format.ml: Array Buffer Bytes Fun Hashtbl Linexpr List Model Out_channel Printf String
