lib/ilp/model.ml: Array Format Linexpr List Printf
