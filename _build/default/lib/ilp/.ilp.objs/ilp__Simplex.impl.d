lib/ilp/simplex.ml: Array Float Linexpr List Model
