lib/ilp/solver.ml: Array Float Fun Linexpr List Model Printf Queue Simplex Stack String Unix
