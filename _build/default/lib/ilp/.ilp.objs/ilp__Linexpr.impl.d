lib/ilp/linexpr.ml: Format List Printf
