lib/ilp/lp_parse.ml: Hashtbl In_channel Linexpr List Model Option Printf Result String
