(** ADVAN — re-implementation of the authors' earlier test-session-oriented
    method [Kim, Takahashi, Ha, ITC'98] (reference [6] of the paper).

    Flavour: system synthesis by left-edge allocation and first-fit binding;
    signature registers are allocated first and shared across sub-test
    sessions; BILBO/CBILBO reconfigurations are avoided (the published
    method's designs use only TPGs and SRs — the B and C columns of Table 3
    are 0 for ADVAN), so a register already generating patterns is kept away
    from signature duty and vice versa. *)

val netlist : Dfg.Problem.t -> (Datapath.Netlist.t, string) result
val synthesize : Dfg.Problem.t -> k:int -> (Bist.Plan.t, string) result
