(** Shared machinery for the three prior-work baselines.

    Each baseline produces a data path with its own allocation flavour, then
    assigns test registers with a greedy, preference-ordered backtracking
    planner: modules are processed in index order (sessions round-robin,
    matching the test-session-oriented style of the era's heuristics), and
    for each module the SR and TPG candidates are tried cheapest-first
    according to the baseline's {!preference}.  The first complete valid
    plan wins — deterministic, fast, and never globally optimal, which is
    exactly the role the baselines play in the paper's Table 3. *)

type roles = {
  tpg_sessions : bool array array;  (** [r].[p] — register is a TPG in p *)
  sr_sessions : bool array array;  (** [r].[p] — register is an SR in p *)
}

type preference = {
  name : string;
  sr_score : roles -> session:int -> r:int -> int;
      (** lower = preferred; scores may inspect current roles *)
  tpg_score : roles -> session:int -> r:int -> int;
}

val plan :
  preference -> Datapath.Netlist.t -> k:int -> (Bist.Plan.t, string) result
(** Greedy preference-ordered backtracking over SR/TPG choices; modules are
    placed in sessions round-robin ([m mod k]). *)

val is_tpg : roles -> int -> bool
val is_sr : roles -> int -> bool
(** Whether a register already holds the role in any session. *)
