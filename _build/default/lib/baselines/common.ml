type roles = {
  tpg_sessions : bool array array;
  sr_sessions : bool array array;
}

type preference = {
  name : string;
  sr_score : roles -> session:int -> r:int -> int;
  tpg_score : roles -> session:int -> r:int -> int;
}

let is_tpg roles r = Array.exists Fun.id roles.tpg_sessions.(r)
let is_sr roles r = Array.exists Fun.id roles.sr_sessions.(r)

let plan pref (d : Datapath.Netlist.t) ~k =
  let p = d.Datapath.Netlist.problem in
  let n_mod = Dfg.Problem.n_modules p in
  let n_regs = d.Datapath.Netlist.n_registers in
  if k < 1 then Error "k must be >= 1"
  else begin
    let session_of_module = Array.init n_mod (fun m -> m mod k) in
    let const_only = Datapath.Netlist.constant_only_ports d in
    let writers m =
      List.filter_map
        (fun (m', r) -> if m' = m then Some r else None)
        d.Datapath.Netlist.module_to_reg
    in
    let feeders m l =
      List.filter_map
        (fun (r, m', l') -> if m' = m && l' = l then Some r else None)
        d.Datapath.Netlist.reg_to_port
    in
    let roles =
      {
        tpg_sessions = Array.make_matrix n_regs k false;
        sr_sessions = Array.make_matrix n_regs k false;
      }
    in
    let sr_of_module = Array.make n_mod (-1) in
    let tpg_of_port =
      Array.init n_mod (fun m ->
          Array.make (Dfg.Fu_kind.n_ports p.Dfg.Problem.modules.(m)) (-1))
    in
    let sr_taken = Array.make_matrix n_regs k false in
    (* DFS over modules; within a module, over SR then ports. *)
    let rec place_module m =
      if m >= n_mod then true
      else begin
        let s = session_of_module.(m) in
        let srs =
          List.sort
            (fun r1 r2 ->
              compare (pref.sr_score roles ~session:s ~r:r1)
                (pref.sr_score roles ~session:s ~r:r2))
            (writers m)
        in
        let rec try_srs = function
          | [] -> false
          | r :: rest ->
              if sr_taken.(r).(s) then try_srs rest
              else begin
                sr_of_module.(m) <- r;
                sr_taken.(r).(s) <- true;
                let old = roles.sr_sessions.(r).(s) in
                roles.sr_sessions.(r).(s) <- true;
                if place_ports m 0 then true
                else begin
                  roles.sr_sessions.(r).(s) <- old;
                  sr_taken.(r).(s) <- false;
                  sr_of_module.(m) <- -1;
                  try_srs rest
                end
              end
        in
        try_srs srs
      end
    and place_ports m l =
      let n_ports = Dfg.Fu_kind.n_ports p.Dfg.Problem.modules.(m) in
      if l >= n_ports then place_module (m + 1)
      else if List.mem (m, l) const_only then begin
        tpg_of_port.(m).(l) <- -1;
        place_ports m (l + 1)
      end
      else begin
        let s = session_of_module.(m) in
        let cands =
          List.sort
            (fun r1 r2 ->
              compare (pref.tpg_score roles ~session:s ~r:r1)
                (pref.tpg_score roles ~session:s ~r:r2))
            (feeders m l)
        in
        let rec try_tpgs = function
          | [] -> false
          | r :: rest ->
              (* Eq. 13: distinct TPGs on the two ports of one module *)
              if l = 1 && tpg_of_port.(m).(0) = r then try_tpgs rest
              else begin
                tpg_of_port.(m).(l) <- r;
                let old = roles.tpg_sessions.(r).(s) in
                roles.tpg_sessions.(r).(s) <- true;
                if place_ports m (l + 1) then true
                else begin
                  roles.tpg_sessions.(r).(s) <- old;
                  tpg_of_port.(m).(l) <- -1;
                  try_tpgs rest
                end
              end
        in
        try_tpgs cands
      end
    in
    if place_module 0 then
      Bist.Plan.make d ~k ~session_of_module ~sr_of_module ~tpg_of_port
    else
      Error
        (Printf.sprintf "%s: no feasible %d-session test-register assignment"
           pref.name k)
  end
