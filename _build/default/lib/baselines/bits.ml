let ( let* ) r f = Result.bind r f

(* Interval packing ordered by decreasing lifetime length (then birth):
   still optimal in register count for interval graphs only when sorted by
   birth, so first-fit here may occasionally open an extra register — as
   BITS does on dct4 in the paper's Table 3. *)
let allocate g =
  let lt = Dfg.Lifetime.compute g in
  let nv = Dfg.Graph.n_vars g in
  let order =
    List.sort
      (fun v w ->
        let bv, dv = Dfg.Lifetime.interval lt v in
        let bw, dw = Dfg.Lifetime.interval lt w in
        match compare (dw - bw) (dv - bv) with
        | 0 -> compare bv bw
        | c -> c)
      (List.init nv Fun.id)
  in
  let reg_of_var = Array.make nv (-1) in
  List.iter
    (fun v ->
      let rec fit r =
        let clash =
          List.exists
            (fun w ->
              reg_of_var.(w) = r && not (Dfg.Lifetime.compatible lt v w))
            (List.init nv Fun.id)
        in
        if clash then fit (r + 1) else r
      in
      reg_of_var.(v) <- fit 0)
    order;
  reg_of_var

let netlist (p : Dfg.Problem.t) =
  let g = p.Dfg.Problem.dfg in
  let reg_of_var = allocate g in
  let* module_of_op = Hls.Binder.bind p in
  Datapath.Netlist.make p ~reg_of_var ~module_of_op

(* Share test registers maximally: any register that already has a role is
   preferred, concurrent duty (CBILBO) tolerated at a small premium. *)
let preference =
  {
    Common.name = "BITS";
    sr_score =
      (fun roles ~session ~r ->
        (if Common.is_tpg roles r || Common.is_sr roles r then 0 else 10)
        + (if roles.Common.tpg_sessions.(r).(session) then 2 else 0));
    tpg_score =
      (fun roles ~session ~r ->
        (if Common.is_tpg roles r || Common.is_sr roles r then 0 else 10)
        + (if roles.Common.sr_sessions.(r).(session) then 2 else 0));
  }

let synthesize p ~k =
  let* d = netlist p in
  Common.plan preference d ~k
