(** RALLOC — re-implementation of Avra's allocation for self-testable data
    paths [ITC'91] (reference [3] of the paper).

    Flavour: the register conflict graph is augmented with edges between
    each operation's input variables and its output variable, so no
    register ever both feeds and receives one module (no self-adjacency —
    the situation that would demand a CBILBO).  Colouring the augmented
    graph may need {e more} than the minimal register count: the paper's
    Table 3 shows RALLOC adding one register on fir6, iir3 and wavelet6.
    Test registers then concentrate the two roles into few BILBOs. *)

val allocate : Dfg.Graph.t -> int array
(** Self-adjacency-avoiding colouring (first-fit on the augmented conflict
    graph). *)

val netlist : Dfg.Problem.t -> (Datapath.Netlist.t, string) result
val synthesize : Dfg.Problem.t -> k:int -> (Bist.Plan.t, string) result
