let ( let* ) r f = Result.bind r f

let netlist (p : Dfg.Problem.t) =
  let g = p.Dfg.Problem.dfg in
  let reg_of_var = Hls.Regalloc.allocate g in
  let* module_of_op = Hls.Binder.bind p in
  Datapath.Netlist.make p ~reg_of_var ~module_of_op

(* Keep the two roles on disjoint registers: an SR prefers a register
   already signing elsewhere (sharing SRs across sessions), never one used
   as a TPG; symmetrically for TPGs. *)
let preference =
  {
    Common.name = "ADVAN";
    sr_score =
      (fun roles ~session ~r ->
        ignore session;
        (if Common.is_tpg roles r then 1000 else 0)
        + (if Common.is_sr roles r then 0 else 10));
    tpg_score =
      (fun roles ~session ~r ->
        ignore session;
        (if Common.is_sr roles r then 1000 else 0)
        + (if Common.is_tpg roles r then 0 else 10));
  }

let synthesize p ~k =
  let* d = netlist p in
  Common.plan preference d ~k
