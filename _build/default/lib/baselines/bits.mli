(** BITS — re-implementation of Parulkar, Gupta and Breuer's low-BIST-area
    allocation [DAC'95] (reference [4] of the paper).

    Flavour: maximize the {e sharing} of test registers — the fewest
    distinct registers carry test roles, even at the price of an occasional
    concurrent BILBO (the C column of Table 3 is 1 for BITS on paulin, fir6
    and dct4).  System synthesis uses a widest-lifetime-first packing whose
    tie-breaking differs from the left-edge order, giving the slightly
    different interconnect the paper observes. *)

val allocate : Dfg.Graph.t -> int array
val netlist : Dfg.Problem.t -> (Datapath.Netlist.t, string) result
val synthesize : Dfg.Problem.t -> k:int -> (Bist.Plan.t, string) result
