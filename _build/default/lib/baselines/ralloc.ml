let ( let* ) r f = Result.bind r f

let allocate g =
  let lt = Dfg.Lifetime.compute g in
  let nv = Dfg.Graph.n_vars g in
  (* augmented conflicts: lifetime overlap, or input/output of one op *)
  let extra = Hashtbl.create 64 in
  Array.iter
    (fun (op : Dfg.Graph.operation) ->
      Array.iter
        (function
          | Dfg.Graph.Var v ->
              Hashtbl.replace extra (v, op.Dfg.Graph.output) ();
              Hashtbl.replace extra (op.Dfg.Graph.output, v) ()
          | Dfg.Graph.Const _ -> ())
        op.Dfg.Graph.inputs)
    g.Dfg.Graph.operations;
  let conflict v w =
    (not (Dfg.Lifetime.compatible lt v w)) || Hashtbl.mem extra (v, w)
  in
  let order =
    List.sort
      (fun v w ->
        compare (fst (Dfg.Lifetime.interval lt v))
          (fst (Dfg.Lifetime.interval lt w)))
      (List.init nv Fun.id)
  in
  let reg_of_var = Array.make nv (-1) in
  List.iter
    (fun v ->
      let rec fit r =
        let clash =
          List.exists
            (fun w -> reg_of_var.(w) = r && conflict v w)
            (List.init nv Fun.id)
        in
        if clash then fit (r + 1) else r
      in
      reg_of_var.(v) <- fit 0)
    order;
  reg_of_var

let netlist (p : Dfg.Problem.t) =
  let g = p.Dfg.Problem.dfg in
  let reg_of_var = allocate g in
  let* module_of_op = Hls.Binder.bind p in
  Datapath.Netlist.make p ~reg_of_var ~module_of_op

(* Concentrate both roles in few registers: BILBOs are the goal, concurrent
   (same-session) duty is still avoided. *)
let preference =
  {
    Common.name = "RALLOC";
    sr_score =
      (fun roles ~session ~r ->
        (if roles.Common.tpg_sessions.(r).(session) then 1000 else 0)
        + (if Common.is_tpg roles r then 0 else 5)
        + (if Common.is_sr roles r then 0 else 3));
    tpg_score =
      (fun roles ~session ~r ->
        (if roles.Common.sr_sessions.(r).(session) then 1000 else 0)
        + (if Common.is_sr roles r then 0 else 5)
        + (if Common.is_tpg roles r then 0 else 3));
  }

let synthesize p ~k =
  let* d = netlist p in
  Common.plan preference d ~k
