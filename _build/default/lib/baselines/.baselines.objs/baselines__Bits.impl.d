lib/baselines/bits.ml: Array Common Datapath Dfg Fun Hls List Result
