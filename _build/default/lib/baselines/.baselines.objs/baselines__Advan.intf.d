lib/baselines/advan.mli: Bist Datapath Dfg
