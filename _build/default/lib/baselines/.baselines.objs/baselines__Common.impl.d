lib/baselines/common.ml: Array Bist Datapath Dfg Fun List Printf
