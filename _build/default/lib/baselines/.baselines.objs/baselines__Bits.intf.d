lib/baselines/bits.mli: Bist Datapath Dfg
