lib/baselines/advan.ml: Common Datapath Dfg Hls Result
