lib/baselines/ralloc.mli: Bist Datapath Dfg
