lib/baselines/common.mli: Bist Datapath
