lib/baselines/ralloc.ml: Array Common Datapath Dfg Fun Hashtbl Hls List Result
