(** Synthesizable-style Verilog emission of a data path.

    One module per netlist: a step counter FSM, one register per data-path
    register with an input multiplexer controlled by the schedule, one
    combinational functional unit per module with port multiplexers, and
    load ports for primary inputs.  Intended for inspection and for feeding
    external RTL tools; the OCaml simulator ({!Sim}) is the source of truth
    in tests. *)

val to_string : Netlist.t -> string
val to_file : string -> Netlist.t -> unit
