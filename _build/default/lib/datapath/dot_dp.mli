(** Graphviz export of a synthesized data path — the Fig. 1(b) view.

    Registers are boxes (coloured by BIST reconfiguration when a kind array
    is supplied), modules are trapezoid-ish records with their two input
    ports, multiplexers are implicit in the fan-in edges. *)

val to_string :
  ?reg_kinds:Area.reg_kind array -> Netlist.t -> string

val to_file :
  ?reg_kinds:Area.reg_kind array -> string -> Netlist.t -> unit
