type t = {
  problem : Dfg.Problem.t;
  n_registers : int;
  reg_of_var : int array;
  module_of_op : int array;
  swapped : bool array;
  reg_to_port : (int * int * int) list;
  const_to_port : (int * int * int) list;
  module_to_reg : (int * int) list;
  reg_loads_input : bool array;
}

let validate (p : Dfg.Problem.t) reg_of_var module_of_op swapped =
  let g = p.Dfg.Problem.dfg in
  let nv = Dfg.Graph.n_vars g and no = Dfg.Graph.n_ops g in
  if Array.length reg_of_var <> nv then Some "reg_of_var has wrong length"
  else if Array.length module_of_op <> no then
    Some "module_of_op has wrong length"
  else if Array.length swapped <> no then Some "swapped has wrong length"
  else begin
    let lt = Dfg.Lifetime.compute g in
    let err = ref None in
    let fail fmt = Format.kasprintf (fun s -> if !err = None then err := Some s) fmt in
    Array.iteri
      (fun v r -> if r < 0 then fail "variable %d unassigned" v)
      reg_of_var;
    for v = 0 to nv - 1 do
      for w = v + 1 to nv - 1 do
        if reg_of_var.(v) = reg_of_var.(w)
           && not (Dfg.Lifetime.compatible lt v w)
        then
          fail "incompatible variables %d and %d share register %d" v w
            reg_of_var.(v)
      done
    done;
    Array.iteri
      (fun o m ->
        if m < 0 || m >= Dfg.Problem.n_modules p then
          fail "operation %d bound to unknown module %d" o m
        else begin
          let kind = (Dfg.Graph.operation g o).Dfg.Graph.kind in
          if not (Dfg.Fu_kind.supports p.Dfg.Problem.modules.(m) kind) then
            fail "operation %d (%s) bound to module %d which cannot run it" o
              (Dfg.Op_kind.name kind) m;
          if swapped.(o) && not (Dfg.Op_kind.commutative kind) then
            fail "operation %d (%s) is not commutative but is swapped" o
              (Dfg.Op_kind.name kind)
        end)
      module_of_op;
    for s = 0 to g.Dfg.Graph.n_steps - 1 do
      let seen = Hashtbl.create 7 in
      List.iter
        (fun o ->
          let m = module_of_op.(o) in
          if Hashtbl.mem seen m then
            fail "module %d executes two operations at step %d" m s
          else Hashtbl.add seen m ())
        (Dfg.Graph.ops_at_step g s)
    done;
    !err
  end

let make ?swapped (p : Dfg.Problem.t) ~reg_of_var ~module_of_op =
  let g = p.Dfg.Problem.dfg in
  let no = Dfg.Graph.n_ops g in
  let swapped =
    match swapped with Some s -> s | None -> Array.make no false
  in
  match validate p reg_of_var module_of_op swapped with
  | Some msg -> Error msg
  | None ->
      let n_registers = 1 + Array.fold_left max (-1) reg_of_var in
      let port o l = if swapped.(o) then 1 - l else l in
      let dedup l = List.sort_uniq compare l in
      let reg_to_port =
        dedup
          (List.map
             (fun (v, o, l) ->
               (reg_of_var.(v), module_of_op.(o), port o l))
             (Dfg.Graph.e_i g))
      in
      let const_to_port =
        dedup
          (List.map
             (fun (c, o, l) -> (c, module_of_op.(o), port o l))
             (Dfg.Graph.const_edges g))
      in
      let module_to_reg =
        dedup
          (List.map
             (fun (o, v) -> (module_of_op.(o), reg_of_var.(v)))
             (Dfg.Graph.e_o g))
      in
      let reg_loads_input = Array.make n_registers false in
      List.iter
        (fun v -> reg_loads_input.(reg_of_var.(v)) <- true)
        (Dfg.Graph.primary_inputs g);
      Ok
        {
          problem = p;
          n_registers;
          reg_of_var;
          module_of_op;
          swapped;
          reg_to_port;
          const_to_port;
          module_to_reg;
          reg_loads_input;
        }

let make_exn ?swapped p ~reg_of_var ~module_of_op =
  match make ?swapped p ~reg_of_var ~module_of_op with
  | Ok d -> d
  | Error msg -> invalid_arg ("Netlist.make_exn: " ^ msg)

let port_fanin d m l =
  List.length (List.filter (fun (_, m', l') -> m' = m && l' = l) d.reg_to_port)
  + List.length
      (List.filter (fun (_, m', l') -> m' = m && l' = l) d.const_to_port)

let reg_fanin d r =
  List.length (List.filter (fun (_, r') -> r' = r) d.module_to_reg)
  + (if d.reg_loads_input.(r) then 1 else 0)

let mux_sizes d =
  let sizes = ref [] in
  for r = 0 to d.n_registers - 1 do
    let f = reg_fanin d r in
    if f >= 2 then sizes := f :: !sizes
  done;
  Array.iteri
    (fun m fu ->
      for l = 0 to Dfg.Fu_kind.n_ports fu - 1 do
        let f = port_fanin d m l in
        if f >= 2 then sizes := f :: !sizes
      done)
    d.problem.Dfg.Problem.modules;
  List.sort (fun a b -> compare b a) !sizes

let total_mux_inputs d = List.fold_left ( + ) 0 (mux_sizes d)
let mux_area d = List.fold_left (fun acc n -> acc + Area.mux n) 0 (mux_sizes d)

let reference_area d =
  (d.n_registers * Area.register Area.Plain) + mux_area d

let constant_only_ports d =
  let ports = ref [] in
  Array.iteri
    (fun m fu ->
      for l = 0 to Dfg.Fu_kind.n_ports fu - 1 do
        let from_reg =
          List.exists (fun (_, m', l') -> m' = m && l' = l) d.reg_to_port
        in
        let from_const =
          List.exists (fun (_, m', l') -> m' = m && l' = l) d.const_to_port
        in
        if from_const && not from_reg then ports := (m, l) :: !ports
      done)
    d.problem.Dfg.Problem.modules;
  List.rev !ports

let pp ppf d =
  Format.fprintf ppf "@[<v>datapath %s: %d registers, %d modules"
    d.problem.Dfg.Problem.dfg.Dfg.Graph.name d.n_registers
    (Dfg.Problem.n_modules d.problem);
  List.iter
    (fun (r, m, l) -> Format.fprintf ppf "@,  R%d -> M%d.%d" r m l)
    d.reg_to_port;
  List.iter
    (fun (c, m, l) -> Format.fprintf ppf "@,  #%d -> M%d.%d" c m l)
    d.const_to_port;
  List.iter
    (fun (m, r) -> Format.fprintf ppf "@,  M%d -> R%d" m r)
    d.module_to_reg;
  Format.fprintf ppf "@,  mux sizes: %s; M = %d; ref area = %d@]"
    (String.concat ", " (List.map string_of_int (mux_sizes d)))
    (total_mux_inputs d) (reference_area d)
