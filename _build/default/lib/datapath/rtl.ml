let verilog_op = function
  | Dfg.Op_kind.Add -> "+"
  | Dfg.Op_kind.Sub -> "-"
  | Dfg.Op_kind.Mul -> "*"
  | Dfg.Op_kind.Lt -> "<"
  | Dfg.Op_kind.And -> "&"
  | Dfg.Op_kind.Or -> "|"
  | Dfg.Op_kind.Xor -> "^"
  | Dfg.Op_kind.Shl -> "<<"
  | Dfg.Op_kind.Shr -> ">>"

(* A functional unit supporting several op kinds gets an opcode input; the
   emitted unit muxes between the supported operations. *)
let to_string (d : Netlist.t) =
  let p = d.Netlist.problem in
  let g = p.Dfg.Problem.dfg in
  let lt = Dfg.Lifetime.compute g in
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let w = Area.width in
  let n_steps = g.Dfg.Graph.n_steps in
  let step_bits =
    let rec bits n = if n <= 1 then 1 else 1 + bits (n / 2) in
    bits n_steps
  in
  let sanitized name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name
  in
  let inputs = Dfg.Graph.primary_inputs g in
  let outputs = Dfg.Graph.primary_outputs g in
  add "// generated from DFG %s\n" g.Dfg.Graph.name;
  add "module %s (\n  input clk,\n  input rst" (sanitized g.Dfg.Graph.name);
  List.iter
    (fun v ->
      add ",\n  input [%d:0] in_%s" (w - 1)
        (sanitized (Dfg.Graph.variable g v).Dfg.Graph.var_name))
    inputs;
  List.iter
    (fun v ->
      add ",\n  output [%d:0] out_%s" (w - 1)
        (sanitized (Dfg.Graph.variable g v).Dfg.Graph.var_name))
    outputs;
  add "\n);\n\n";
  add "  reg [%d:0] step;\n" (step_bits - 1);
  add "  always @(posedge clk) begin\n";
  add "    if (rst) step <= 0;\n";
  add "    else if (step < %d) step <= step + 1;\n" n_steps;
  add "  end\n\n";
  for r = 0 to d.Netlist.n_registers - 1 do
    add "  reg [%d:0] R%d;\n" (w - 1) r
  done;
  add "\n";
  (* Functional units as wires computed from their current operation. *)
  Array.iteri
    (fun m _fu ->
      add "  reg [%d:0] M%d_a, M%d_b;\n  reg [%d:0] M%d_y;\n" (w - 1) m m
        (w - 1) m)
    p.Dfg.Problem.modules;
  add "\n  // module input selection and function per step\n";
  add "  always @* begin\n";
  Array.iteri
    (fun m _fu -> add "    M%d_a = 0; M%d_b = 0; M%d_y = 0;\n" m m m)
    p.Dfg.Problem.modules;
  add "    case (step)\n";
  for s = 0 to n_steps - 1 do
    add "      %d'd%d: begin\n" step_bits s;
    List.iter
      (fun o ->
        let op = Dfg.Graph.operation g o in
        let m = d.Netlist.module_of_op.(o) in
        let operand = function
          | Dfg.Graph.Var v -> Printf.sprintf "R%d" d.Netlist.reg_of_var.(v)
          | Dfg.Graph.Const c -> Printf.sprintf "%d'd%d" w (c land ((1 lsl w) - 1))
        in
        add "        M%d_a = %s; M%d_b = %s; M%d_y = M%d_a %s M%d_b;\n" m
          (operand op.Dfg.Graph.inputs.(0))
          m
          (operand op.Dfg.Graph.inputs.(1))
          m m (verilog_op op.Dfg.Graph.kind) m)
      (Dfg.Graph.ops_at_step g s);
    add "      end\n"
  done;
  add "      default: ;\n    endcase\n  end\n\n";
  add "  // register loads\n";
  add "  always @(posedge clk) begin\n";
  for s = 0 to n_steps - 1 do
    (* loads happening at the clock edge that ends step s (boundary s+1):
       operation results; plus primary inputs born at boundary s load at the
       edge entering step s (we fold them into the same case via step
       matching at their birth boundary). *)
    add "    if (step == %d) begin\n" s;
    List.iter
      (fun o ->
        let op = Dfg.Graph.operation g o in
        add "      R%d <= M%d_y;\n"
          d.Netlist.reg_of_var.(op.Dfg.Graph.output)
          d.Netlist.module_of_op.(o))
      (Dfg.Graph.ops_at_step g s);
    add "    end\n"
  done;
  (* primary input loads at their birth boundary (rst loads boundary 0) *)
  add "    if (rst) begin\n";
  List.iter
    (fun v ->
      let birth, _ = Dfg.Lifetime.interval lt v in
      if birth = 0 then
        add "      R%d <= in_%s;\n" d.Netlist.reg_of_var.(v)
          (sanitized (Dfg.Graph.variable g v).Dfg.Graph.var_name))
    inputs;
  add "    end\n";
  List.iter
    (fun v ->
      let birth, _ = Dfg.Lifetime.interval lt v in
      if birth > 0 then begin
        add "    if (step == %d) begin\n" (birth - 1);
        add "      R%d <= in_%s;\n" d.Netlist.reg_of_var.(v)
          (sanitized (Dfg.Graph.variable g v).Dfg.Graph.var_name);
        add "    end\n"
      end)
    inputs;
  add "  end\n\n";
  List.iter
    (fun v ->
      add "  assign out_%s = R%d;\n"
        (sanitized (Dfg.Graph.variable g v).Dfg.Graph.var_name)
        d.Netlist.reg_of_var.(v))
    outputs;
  add "\nendmodule\n";
  Buffer.contents buf

let to_file path d =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string d))
