lib/datapath/area.ml: Format
