lib/datapath/sim.ml: Area Array Dfg Fun List Netlist Printf
