lib/datapath/area.mli: Format
