lib/datapath/rtl.mli: Netlist
