lib/datapath/sim.mli: Dfg Netlist
