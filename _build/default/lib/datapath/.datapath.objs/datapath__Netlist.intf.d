lib/datapath/netlist.mli: Dfg Format
