lib/datapath/rtl.ml: Area Array Buffer Dfg List Netlist Out_channel Printf String
