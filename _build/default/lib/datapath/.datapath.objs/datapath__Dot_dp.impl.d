lib/datapath/dot_dp.ml: Area Array Buffer Dfg List Netlist Out_channel Printf
