lib/datapath/netlist.ml: Area Array Dfg Format Hashtbl List String
