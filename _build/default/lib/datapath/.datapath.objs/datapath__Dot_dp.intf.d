lib/datapath/dot_dp.mli: Area Netlist
