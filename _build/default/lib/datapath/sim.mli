(** Cycle-accurate functional simulation of a synthesized data path.

    Two evaluators are provided:

    - {!eval_dfg}: the reference interpreter — evaluates every DFG variable
      directly from the primary-input environment, ignoring the data path.
    - {!run}: drives the data path netlist cycle by cycle — registers load
      primary inputs at their birth boundaries and module results at the
      producing operation's write boundary; each operation reads its source
      registers through the derived interconnect.

    A correct register/module assignment makes the two agree; the test-suite
    uses this as a functional audit of every synthesis result. *)

val eval_dfg : Dfg.Graph.t -> inputs:(string * int) list -> int array
(** Values of all variables ([Area.width]-bit wrap-around arithmetic).
    @raise Invalid_argument if an input name is missing from [inputs]. *)

type trace = {
  reg_values : int array array;  (** [boundary][register] contents (-1 = x) *)
  outputs : (string * int) list;  (** primary-output variable values *)
}

val run : Netlist.t -> inputs:(string * int) list -> (trace, string) result
(** Simulates all control steps.  Errors indicate a netlist that does not
    implement its DFG (e.g. a missing interconnection) — which {!Netlist.make}
    should have made impossible — or an incomplete input environment. *)

val agrees : Netlist.t -> inputs:(string * int) list -> bool
(** [run] matches [eval_dfg] on every variable at its birth boundary and
    every primary output. *)
