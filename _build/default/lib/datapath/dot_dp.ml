let kind_color = function
  | Area.Plain -> "white"
  | Area.Tpg -> "lightblue"
  | Area.Sr -> "lightyellow"
  | Area.Bilbo -> "lightgreen"
  | Area.Cbilbo -> "salmon"

let to_string ?reg_kinds (d : Netlist.t) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let p = d.Netlist.problem in
  add "digraph datapath {\n  rankdir=TB;\n  node [fontname=\"sans\"];\n";
  for r = 0 to d.Netlist.n_registers - 1 do
    let kind =
      match reg_kinds with Some ks -> ks.(r) | None -> Area.Plain
    in
    let label =
      match kind with
      | Area.Plain -> Printf.sprintf "R%d" r
      | k -> Printf.sprintf "R%d\\n%s" r (Area.reg_kind_name k)
    in
    add "  r%d [label=\"%s\", shape=box, style=filled, fillcolor=%s];\n" r
      label (kind_color kind)
  done;
  Array.iteri
    (fun m fu ->
      add "  m%d [label=\"M%d (%s)|<p0> 0|<p1> 1\", shape=record];\n" m m
        fu.Dfg.Fu_kind.fu_name)
    p.Dfg.Problem.modules;
  List.iter
    (fun (r, m, l) -> add "  r%d -> m%d:p%d;\n" r m l)
    d.Netlist.reg_to_port;
  List.iter
    (fun (c, m, l) ->
      add "  c%d_%d_%d [label=\"%d\", shape=diamond];\n" c m l c;
      add "  c%d_%d_%d -> m%d:p%d;\n" c m l m l)
    d.Netlist.const_to_port;
  List.iter (fun (m, r) -> add "  m%d -> r%d;\n" m r) d.Netlist.module_to_reg;
  Array.iteri
    (fun r loads ->
      if loads then begin
        add "  in%d [label=\"in\", shape=plaintext];\n" r;
        add "  in%d -> r%d;\n" r r
      end)
    d.Netlist.reg_loads_input;
  add "}\n";
  Buffer.contents buf

let to_file ?reg_kinds path d =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string ?reg_kinds d))
