(** Transistor-count area model — Table 1 of the paper.

    All counts are for the paper's 8-bit data path width; other widths scale
    linearly (the table values are per-8-bit-register/mux).  The area of a
    circuit is the transistor count of its registers and multiplexers; the
    data-path logic modules are excluded, exactly as in Section 4.1. *)

type reg_kind =
  | Plain  (** ordinary system register *)
  | Tpg  (** test pattern generator *)
  | Sr  (** (multiple-input) signature register *)
  | Bilbo  (** built-in logic block observer *)
  | Cbilbo  (** concurrent BILBO: TPG and SR in the same sub-test session *)

val width : int
(** The paper's data-path width: 8 bits. *)

val register : reg_kind -> int
(** Table 1(a): 208 / 256 / 304 / 388 / 596 transistors. *)

val mux : int -> int
(** [mux n] — Table 1(b) cost of an [n]-input multiplexer: 0 for [n <= 1];
    80, 176, 208, 300, 320, 350 for [n = 2..7]; linear extrapolation at 54
    transistors per extra input beyond 7 (the table stops at 7). *)

val constant_tpg : int
(** Cost of the dedicated pattern generator a constant-only module port needs
    (Section 3.3.4): one TPG-class register, 256 transistors. *)

val constant_tpg_weight : int
(** The {e objective} weight [w_tc] for such a port: "a large number greater
    than any other weight" so the optimizer avoids the case when possible.
    Reported areas use {!constant_tpg}; only the ILP objective uses this. *)

val reg_kind_name : reg_kind -> string
val pp_reg_kind : Format.formatter -> reg_kind -> unit
