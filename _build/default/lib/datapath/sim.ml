let eval_dfg g ~inputs =
  let nv = Dfg.Graph.n_vars g in
  let values = Array.make nv 0 in
  let input_value name =
    match List.assoc_opt name inputs with
    | Some v -> v land ((1 lsl Area.width) - 1)
    | None ->
        invalid_arg (Printf.sprintf "Sim.eval_dfg: missing input %S" name)
  in
  for v = 0 to nv - 1 do
    match Dfg.Graph.def_of g v with
    | Dfg.Graph.Primary_input ->
        values.(v) <- input_value (Dfg.Graph.variable g v).Dfg.Graph.var_name
    | Dfg.Graph.Output_of _ -> ()
  done;
  (* operations in dependence order: schedule order suffices (validated). *)
  let by_step =
    List.sort
      (fun a b ->
        compare (Dfg.Graph.operation g a).Dfg.Graph.step
          (Dfg.Graph.operation g b).Dfg.Graph.step)
      (List.init (Dfg.Graph.n_ops g) Fun.id)
  in
  List.iter
    (fun o ->
      let op = Dfg.Graph.operation g o in
      let operand = function
        | Dfg.Graph.Var v -> values.(v)
        | Dfg.Graph.Const c -> c land ((1 lsl Area.width) - 1)
      in
      values.(op.Dfg.Graph.output) <-
        Dfg.Op_kind.eval op.Dfg.Graph.kind ~width:Area.width
          (operand op.Dfg.Graph.inputs.(0))
          (operand op.Dfg.Graph.inputs.(1)))
    by_step;
  values

type trace = {
  reg_values : int array array;
  outputs : (string * int) list;
}

let run (d : Netlist.t) ~inputs =
  let p = d.Netlist.problem in
  let g = p.Dfg.Problem.dfg in
  let lt = Dfg.Lifetime.compute g in
  let n_bound = Dfg.Graph.n_boundaries g in
  let regs = Array.make_matrix n_bound d.Netlist.n_registers (-1) in
  let cur = Array.make d.Netlist.n_registers (-1) in
  let pending = ref [] in
  let exception Fail of string in
  try
    let input_value name =
      match List.assoc_opt name inputs with
      | Some v -> v land ((1 lsl Area.width) - 1)
      | None -> raise (Fail (Printf.sprintf "missing input %S" name))
    in
    (* At each boundary t: apply the register writes of step t-1, then load
       primary inputs born at t, snapshot, then execute step t. *)
    for t = 0 to n_bound - 1 do
      List.iter (fun (r, value) -> cur.(r) <- value) !pending;
      pending := [];
      List.iter
        (fun v ->
          match Dfg.Graph.def_of g v with
          | Dfg.Graph.Primary_input ->
              let birth, _ = Dfg.Lifetime.interval lt v in
              if birth = t then
                cur.(d.Netlist.reg_of_var.(v)) <-
                  input_value (Dfg.Graph.variable g v).Dfg.Graph.var_name
          | Dfg.Graph.Output_of _ -> ())
        (List.init (Dfg.Graph.n_vars g) Fun.id);
      Array.blit cur 0 regs.(t) 0 d.Netlist.n_registers;
      (* Execute step t (if any): read the boundary-t contents, defer the
         writes to boundary t+1. *)
      if t < n_bound - 1 then
        List.iter
          (fun o ->
            let op = Dfg.Graph.operation g o in
            let m = d.Netlist.module_of_op.(o) in
            let read l = function
              | Dfg.Graph.Const c ->
                  (* the constant must be wired to the (possibly swapped)
                     port *)
                  let l' = if d.Netlist.swapped.(o) then 1 - l else l in
                  if
                    not
                      (List.mem (c, m, l') d.Netlist.const_to_port)
                  then
                    raise
                      (Fail
                         (Printf.sprintf "missing constant wire #%d->M%d.%d" c
                            m l'))
                  else c land ((1 lsl Area.width) - 1)
              | Dfg.Graph.Var v ->
                  let r = d.Netlist.reg_of_var.(v) in
                  let l' = if d.Netlist.swapped.(o) then 1 - l else l in
                  if not (List.mem (r, m, l') d.Netlist.reg_to_port) then
                    raise
                      (Fail
                         (Printf.sprintf "missing wire R%d->M%d.%d" r m l'))
                  else begin
                    let value = cur.(r) in
                    if value < 0 then
                      raise
                        (Fail
                           (Printf.sprintf
                              "register R%d read uninitialized at step %d" r t))
                    else value
                  end
            in
            let a = read 0 op.Dfg.Graph.inputs.(0) in
            let b = read 1 op.Dfg.Graph.inputs.(1) in
            (* Commutativity: swapping the operands of a commutative module
               does not change the result, so evaluate in DFG order. *)
            let result = Dfg.Op_kind.eval op.Dfg.Graph.kind ~width:Area.width a b in
            let dest = d.Netlist.reg_of_var.(op.Dfg.Graph.output) in
            if not (List.mem (m, dest) d.Netlist.module_to_reg) then
              raise (Fail (Printf.sprintf "missing wire M%d->R%d" m dest));
            pending := (dest, result) :: !pending)
          (Dfg.Graph.ops_at_step g t)
    done;
    let values = eval_dfg g ~inputs in
    let outputs =
      List.map
        (fun v -> ((Dfg.Graph.variable g v).Dfg.Graph.var_name, values.(v)))
        (Dfg.Graph.primary_outputs g)
    in
    Ok { reg_values = regs; outputs }
  with
  | Fail msg -> Error msg
  | Invalid_argument msg -> Error msg

let agrees d ~inputs =
  let g = d.Netlist.problem.Dfg.Problem.dfg in
  match run d ~inputs with
  | Error _ -> false
  | Ok trace ->
      let values = eval_dfg g ~inputs in
      let lt = Dfg.Lifetime.compute g in
      let ok = ref true in
      for v = 0 to Dfg.Graph.n_vars g - 1 do
        let birth, _ = Dfg.Lifetime.interval lt v in
        let r = d.Netlist.reg_of_var.(v) in
        if trace.reg_values.(birth).(r) <> values.(v) then ok := false
      done;
      !ok
