(** Register-transfer-level data path derived from an assignment.

    Given a problem instance, a register assignment (variable → register), a
    module binding (operation → module) and optional input-port swaps for
    commutative operations, this module derives the interconnection network —
    the [z_rml] and [z_mr] wires of Section 3.1 — and the multiplexer sizes
    of Section 3.2.

    Fan-in counting convention (fixed across all synthesis methods compared
    in this repository):
    - a module input port's multiplexer has one input per distinct source
      register and one per distinct constant wired to that port;
    - a register input multiplexer has one input per distinct source module
      plus one external input when the register ever loads a primary
      input. *)

type t = private {
  problem : Dfg.Problem.t;
  n_registers : int;
  reg_of_var : int array;
  module_of_op : int array;
  swapped : bool array;
      (** per operation: inputs applied to the module's ports in reverse
          order (only legal for commutative operations) *)
  reg_to_port : (int * int * int) list;  (** (r, m, l) wires — z_rml = 1 *)
  const_to_port : (int * int * int) list;  (** (c, m, l) constant wirings *)
  module_to_reg : (int * int) list;  (** (m, r) wires — z_mr = 1 *)
  reg_loads_input : bool array;  (** register ever loads a primary input *)
}

val make :
  ?swapped:bool array ->
  Dfg.Problem.t -> reg_of_var:int array -> module_of_op:int array ->
  (t, string) result
(** Validates the assignment (register compatibility, binding legality, swap
    legality) and derives the interconnect. *)

val make_exn :
  ?swapped:bool array ->
  Dfg.Problem.t -> reg_of_var:int array -> module_of_op:int array -> t

(** {1 Multiplexer statistics} *)

val port_fanin : t -> int -> int -> int
(** [port_fanin d m l] — multiplexer input count at port [l] of module [m]. *)

val reg_fanin : t -> int -> int
(** Multiplexer input count at the input of register [r]. *)

val mux_sizes : t -> int list
(** All multiplexer input counts [>= 2], descending. *)

val total_mux_inputs : t -> int
(** The paper's column M: the sum of the input counts of all multiplexers
    (fan-ins [>= 2]). *)

val mux_area : t -> int
(** Total multiplexer transistor count under {!Area.mux}. *)

val reference_area : t -> int
(** Registers (all {!Area.Plain}) + multiplexers: the area of the circuit as
    a non-BIST reference design. *)

val constant_only_ports : t -> (int * int) list
(** Ports fed exclusively by constants — the Section 3.3.4 cases that would
    need a dedicated test pattern generator. *)

val pp : Format.formatter -> t -> unit
