type reg_kind = Plain | Tpg | Sr | Bilbo | Cbilbo

let width = 8

let register = function
  | Plain -> 208
  | Tpg -> 256
  | Sr -> 304
  | Bilbo -> 388
  | Cbilbo -> 596

let mux n =
  if n <= 1 then 0
  else
    match n with
    | 2 -> 80
    | 3 -> 176
    | 4 -> 208
    | 5 -> 300
    | 6 -> 320
    | 7 -> 350
    | _ -> 350 + (54 * (n - 7))

let constant_tpg = register Tpg
let constant_tpg_weight = 1000

let reg_kind_name = function
  | Plain -> "reg"
  | Tpg -> "TPG"
  | Sr -> "SR"
  | Bilbo -> "BILBO"
  | Cbilbo -> "CBILBO"

let pp_reg_kind ppf k = Format.pp_print_string ppf (reg_kind_name k)
