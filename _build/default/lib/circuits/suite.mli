(** The six benchmark instances of the paper's evaluation (Section 4.1).

    tseng and paulin are the hand-constructed reconstructions from
    {!Dfg.Benchmarks}; fir6, iir3, dct4 and wavelet6 are produced by the
    {!Hls} scheduler (the HYPER substitute), with module allocations chosen
    to match the paper's module counts and, as closely as the reconstruction
    allows, its register counts:

    {v
    circuit    paper R/M    this repo R/M
    tseng        5 / 3          5 / 3
    paulin       5 / 4          5 / 4
    fir6         7 / 3          7 / 3
    iir3         6 / 3          6 / 3
    dct4         6 / 4          6 / 4
    wavelet6     7 / 3          8 / 3
    v}

    The DSP circuits use the [inputs_at_start] lifetime convention (filter
    state is held in registers from cycle 0). *)

val fir6 : Dfg.Problem.t
val iir3 : Dfg.Problem.t
val dct4 : Dfg.Problem.t
val wavelet6 : Dfg.Problem.t

val all : (string * Dfg.Problem.t) list
(** The six circuits in the paper's Table 2/3 order:
    tseng, paulin, fir6, iir3, dct4, wavelet6. *)

val ewf : Dfg.Problem.t
(** Fifth-order elliptic wave filter (34 operations) — a scalability stress
    circuit beyond the paper's evaluation. *)

val extras : (string * Dfg.Problem.t) list

val find : string -> Dfg.Problem.t option
(** Lookup by name, in {!all} then {!extras}. *)
