lib/circuits/suite.mli: Dfg
