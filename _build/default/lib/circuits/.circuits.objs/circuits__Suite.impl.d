lib/circuits/suite.ml: Dfg Hls List Printf
