let schedule ?minimize_pressure kernel modules =
  match
    Hls.Schedule.list_schedule ?minimize_pressure ~inputs_at_start:true kernel
      ~modules
  with
  | Ok p -> p
  | Error msg ->
      invalid_arg (Printf.sprintf "Circuits.Suite: %s: %s" kernel.Hls.Kernel.kname msg)

let fir6 =
  schedule Hls.Kernel.fir6 [ Dfg.Fu_kind.multiplier; Dfg.Fu_kind.alu; Dfg.Fu_kind.alu ]

let iir3 =
  schedule Hls.Kernel.iir3
    [ Dfg.Fu_kind.multiplier; Dfg.Fu_kind.multiplier; Dfg.Fu_kind.alu ]

let dct4 =
  schedule Hls.Kernel.dct4
    [ Dfg.Fu_kind.multiplier; Dfg.Fu_kind.multiplier; Dfg.Fu_kind.alu;
      Dfg.Fu_kind.alu ]

let wavelet6 =
  schedule ~minimize_pressure:true Hls.Kernel.wavelet6
    [ Dfg.Fu_kind.multiplier; Dfg.Fu_kind.alu; Dfg.Fu_kind.alu ]

(* Scalability stress circuit (not part of the paper's evaluation). *)
let ewf =
  schedule ~minimize_pressure:true Hls.Kernel.ewf
    [ Dfg.Fu_kind.multiplier; Dfg.Fu_kind.multiplier; Dfg.Fu_kind.adder;
      Dfg.Fu_kind.adder ]

let all =
  [
    ("tseng", Dfg.Benchmarks.tseng);
    ("paulin", Dfg.Benchmarks.paulin);
    ("fir6", fir6);
    ("iir3", iir3);
    ("dct4", dct4);
    ("wavelet6", wavelet6);
  ]

let extras = [ ("ewf", ewf) ]
let find name = List.assoc_opt name (all @ extras)
