(* Tests for the baseline re-implementations (ADVAN, RALLOC, BITS): plan
   validity on the whole suite, allocation properties (RALLOC's self-
   adjacency avoidance and extra registers), distinctive register-type
   profiles, and the paper's headline: ADVBIST dominates every baseline in
   area on every circuit. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let methods =
  [
    ("ADVAN", Baselines.Advan.synthesize);
    ("RALLOC", Baselines.Ralloc.synthesize);
    ("BITS", Baselines.Bits.synthesize);
  ]

let test_all_methods_synthesize_max_k () =
  List.iter
    (fun (cname, p) ->
      let k = Dfg.Problem.n_modules p in
      List.iter
        (fun (mname, f) ->
          match f p ~k with
          | Error e -> Alcotest.failf "%s on %s: %s" mname cname e
          | Ok plan ->
              check_bool
                (Printf.sprintf "%s/%s has test registers" mname cname)
                true
                (let tp, sr, bi, cb = Bist.Plan.kind_counts plan in
                 tp + sr + bi + cb >= 1))
        methods)
    Circuits.Suite.all

let test_ralloc_no_self_adjacency () =
  List.iter
    (fun (cname, (p : Dfg.Problem.t)) ->
      let g = p.Dfg.Problem.dfg in
      let a = Baselines.Ralloc.allocate g in
      Array.iter
        (fun (op : Dfg.Graph.operation) ->
          Array.iter
            (function
              | Dfg.Graph.Var v ->
                  check_bool
                    (Printf.sprintf "%s: no self-adjacent register" cname)
                    true
                    (a.(v) <> a.(op.Dfg.Graph.output))
              | Dfg.Graph.Const _ -> ())
            op.Dfg.Graph.inputs)
        g.Dfg.Graph.operations)
    Circuits.Suite.all

let test_ralloc_adds_registers_somewhere () =
  (* the augmented conflict graph needs more colours than the interval graph
     on at least one circuit, as in the paper's Table 3 *)
  let extra =
    List.filter
      (fun (_, (p : Dfg.Problem.t)) ->
        let g = p.Dfg.Problem.dfg in
        let n = 1 + Array.fold_left max (-1) (Baselines.Ralloc.allocate g) in
        n > Dfg.Problem.min_registers p)
      Circuits.Suite.all
  in
  check_bool "RALLOC uses extra registers on some circuits" true (extra <> [])

let test_ralloc_allocation_legal () =
  List.iter
    (fun (cname, (p : Dfg.Problem.t)) ->
      let g = p.Dfg.Problem.dfg in
      let a = Baselines.Ralloc.allocate g in
      check_bool (cname ^ " legal") true (Hls.Regalloc.check g a = Ok ()))
    Circuits.Suite.all

let test_bits_allocation_legal () =
  List.iter
    (fun (cname, (p : Dfg.Problem.t)) ->
      let g = p.Dfg.Problem.dfg in
      let a = Baselines.Bits.allocate g in
      check_bool (cname ^ " legal") true (Hls.Regalloc.check g a = Ok ()))
    Circuits.Suite.all

let test_profiles_differ () =
  (* on tseng, the three baselines produce three different register-type
     profiles — they are genuinely different methods *)
  let p = Dfg.Benchmarks.tseng in
  let k = Dfg.Problem.n_modules p in
  let profiles =
    List.map
      (fun (mname, f) ->
        match f p ~k with
        | Error e -> Alcotest.failf "%s: %s" mname e
        | Ok plan -> Bist.Plan.kind_counts plan)
      methods
  in
  check_int "three distinct profiles" 3
    (List.length (List.sort_uniq compare profiles))

let test_advbist_dominates () =
  (* Table 3's claim: ADVBIST is at least as small as every baseline on
     every circuit (at the maximal session count). *)
  List.iter
    (fun (cname, p) ->
      let k = Dfg.Problem.n_modules p in
      match Advbist.Synth.synthesize ~time_limit:5.0 p ~k with
      | Error e -> Alcotest.failf "ADVBIST on %s: %s" cname e
      | Ok o ->
          List.iter
            (fun (mname, f) ->
              match f p ~k with
              | Error e -> Alcotest.failf "%s on %s: %s" mname cname e
              | Ok plan ->
                  check_bool
                    (Printf.sprintf "ADVBIST <= %s on %s" mname cname)
                    true
                    (o.Advbist.Synth.area <= Bist.Plan.area plan))
            methods)
    Circuits.Suite.all

let test_common_planner_eq13 () =
  (* the planner never puts one register on both ports of a module *)
  List.iter
    (fun (_, p) ->
      let k = Dfg.Problem.n_modules p in
      List.iter
        (fun (_, f) ->
          match f p ~k with
          | Error _ -> ()
          | Ok plan ->
              Array.iter
                (fun tpgs ->
                  if Array.length tpgs = 2 && tpgs.(0) >= 0 then
                    check_bool "distinct tpgs" true (tpgs.(0) <> tpgs.(1)))
                plan.Bist.Plan.tpg_of_port)
        methods)
    Circuits.Suite.all

let () =
  Alcotest.run "baselines"
    [
      ( "synthesis",
        [
          Alcotest.test_case "all methods, max k" `Quick
            test_all_methods_synthesize_max_k;
          Alcotest.test_case "Eq 13 respected" `Quick test_common_planner_eq13;
        ] );
      ( "ralloc",
        [
          Alcotest.test_case "no self-adjacency" `Quick
            test_ralloc_no_self_adjacency;
          Alcotest.test_case "extra registers" `Quick
            test_ralloc_adds_registers_somewhere;
          Alcotest.test_case "legal allocation" `Quick
            test_ralloc_allocation_legal;
        ] );
      ( "bits",
        [ Alcotest.test_case "legal allocation" `Quick test_bits_allocation_legal ] );
      ( "comparison",
        [
          Alcotest.test_case "profiles differ" `Quick test_profiles_differ;
          Alcotest.test_case "ADVBIST dominates" `Slow test_advbist_dominates;
        ] );
    ]
