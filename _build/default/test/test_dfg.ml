(* Tests for the DFG substrate: graph construction, validation, lifetimes,
   compatibility, horizontal crossing, parsing, benchmarks.  The fig1 facts
   come straight from Section 2 of the paper. *)

let fig1 = Dfg.Benchmarks.fig1
let g1 = fig1.Dfg.Problem.dfg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- Graph structure ----------------------------------------------------- *)

let test_fig1_sets () =
  check_int "n_vars" 8 (Dfg.Graph.n_vars g1);
  check_int "n_ops" 4 (Dfg.Graph.n_ops g1);
  check_int "n_steps" 3 g1.Dfg.Graph.n_steps;
  check_int "boundaries" 4 (Dfg.Graph.n_boundaries g1);
  (* Ei from the paper, with paper op ids 8..11 = our 0..3. *)
  let ei = Dfg.Graph.e_i g1 in
  let expected =
    [ (0, 0, 0); (1, 0, 1); (3, 1, 0); (4, 1, 1); (4, 2, 0); (2, 2, 1);
      (5, 3, 0); (6, 3, 1) ]
  in
  Alcotest.(check (list (triple int int int)))
    "Ei" (List.sort compare expected)
    (List.sort compare ei);
  let eo = Dfg.Graph.e_o g1 in
  Alcotest.(check (list (pair int int)))
    "Eo" [ (0, 4); (1, 5); (2, 6); (3, 7) ] eo;
  Alcotest.(check (list int)) "constants" [] (Dfg.Graph.constants g1)

let test_fig1_uses () =
  Alcotest.(check (list (pair int int)))
    "uses of v4" [ (1, 1); (2, 0) ] (Dfg.Graph.uses_of g1 4);
  Alcotest.(check (list (pair int int)))
    "uses of v7" [] (Dfg.Graph.uses_of g1 7);
  Alcotest.(check (list int)) "primary inputs" [ 0; 1; 2; 3 ]
    (Dfg.Graph.primary_inputs g1);
  Alcotest.(check (list int)) "primary outputs" [ 7 ]
    (Dfg.Graph.primary_outputs g1)

let test_validation_catches_errors () =
  let bad_step =
    Dfg.Graph.v ~name:"bad" ~n_steps:1
      [| { Dfg.Graph.var_name = "x"; def = Dfg.Graph.Primary_input };
         { Dfg.Graph.var_name = "y"; def = Dfg.Graph.Output_of 0 } |]
      [| { Dfg.Graph.kind = Dfg.Op_kind.Add; step = 3;
           inputs = [| Dfg.Graph.Var 0; Dfg.Graph.Var 0 |]; output = 1 } |]
  in
  check_bool "bad step rejected" true (Result.is_error bad_step);
  let bad_dep =
    (* op 1 at step 0 reads the output of op 0 at step 0: impossible. *)
    Dfg.Graph.v ~name:"bad" ~n_steps:1
      [| { Dfg.Graph.var_name = "x"; def = Dfg.Graph.Primary_input };
         { Dfg.Graph.var_name = "y"; def = Dfg.Graph.Output_of 0 };
         { Dfg.Graph.var_name = "z"; def = Dfg.Graph.Output_of 1 } |]
      [| { Dfg.Graph.kind = Dfg.Op_kind.Add; step = 0;
           inputs = [| Dfg.Graph.Var 0; Dfg.Graph.Var 0 |]; output = 1 };
         { Dfg.Graph.kind = Dfg.Op_kind.Add; step = 0;
           inputs = [| Dfg.Graph.Var 1; Dfg.Graph.Var 0 |]; output = 2 } |]
  in
  check_bool "bad dependence rejected" true (Result.is_error bad_dep);
  let wrong_def =
    Dfg.Graph.v ~name:"bad" ~n_steps:1
      [| { Dfg.Graph.var_name = "x"; def = Dfg.Graph.Primary_input };
         { Dfg.Graph.var_name = "y"; def = Dfg.Graph.Primary_input } |]
      [| { Dfg.Graph.kind = Dfg.Op_kind.Add; step = 0;
           inputs = [| Dfg.Graph.Var 0; Dfg.Graph.Var 0 |]; output = 1 } |]
  in
  check_bool "wrong def rejected" true (Result.is_error wrong_def)

(* -- Lifetimes ----------------------------------------------------------- *)

let lt1 = Dfg.Lifetime.compute g1

let test_fig1_lifetimes () =
  let check_iv v exp =
    Alcotest.(check (pair int int))
      (Printf.sprintf "interval v%d" v)
      exp (Dfg.Lifetime.interval lt1 v)
  in
  check_iv 0 (0, 0);
  check_iv 1 (0, 0);
  check_iv 2 (1, 1);
  (* just-in-time load at its only use step *)
  check_iv 3 (1, 1);
  check_iv 4 (1, 1);
  check_iv 5 (2, 2);
  check_iv 6 (2, 2);
  check_iv 7 (3, 3)

let test_fig1_register_assignment_valid () =
  (* The paper's assignment R0={0,4}, R1={1,3,6}, R2={2,5,7} must be made of
     pairwise-compatible variables. *)
  let regs = [ [ 0; 4 ]; [ 1; 3; 6 ]; [ 2; 5; 7 ] ] in
  List.iter
    (fun vars ->
      List.iter
        (fun v ->
          List.iter
            (fun w ->
              check_bool
                (Printf.sprintf "compatible %d %d" v w)
                true
                (Dfg.Lifetime.compatible lt1 v w))
            vars)
        vars)
    regs

let test_fig1_crossing () =
  check_int "crossing b0" 2 (Dfg.Lifetime.crossing lt1 0);
  check_int "crossing b1" 3 (Dfg.Lifetime.crossing lt1 1);
  check_int "crossing b2" 2 (Dfg.Lifetime.crossing lt1 2);
  check_int "crossing b3" 1 (Dfg.Lifetime.crossing lt1 3);
  check_int "min registers (paper: three)" 3 (Dfg.Lifetime.min_registers lt1)

let test_fig1_min_modules () =
  let mins =
    Dfg.Lifetime.min_modules g1 [ Dfg.Fu_kind.adder; Dfg.Fu_kind.multiplier ]
  in
  Alcotest.(check (list int))
    "one adder, one multiplier (paper: two modules)" [ 1; 1 ]
    (List.map snd mins)

let test_incompatibility () =
  (* v4 and v3 are both alive at boundary 1. *)
  check_bool "v3/v4 incompatible" false (Dfg.Lifetime.compatible lt1 3 4);
  check_bool "v reflexive-compatible" true (Dfg.Lifetime.compatible lt1 4 4)

let test_max_clique () =
  let clique = Dfg.Lifetime.max_clique lt1 in
  check_int "max clique size" 3 (List.length clique);
  Alcotest.(check (list int)) "clique is boundary-1 vars" [ 2; 3; 4 ] clique

(* -- Benchmarks ---------------------------------------------------------- *)

let test_tseng_counts () =
  let p = Dfg.Benchmarks.tseng in
  let lt = Dfg.Lifetime.compute p.Dfg.Problem.dfg in
  check_int "tseng registers (Table 3: 5)" 5 (Dfg.Lifetime.min_registers lt);
  check_int "tseng modules (Table 3: 3)" 3 (Dfg.Problem.n_modules p)

let test_paulin_counts () =
  let p = Dfg.Benchmarks.paulin in
  let lt = Dfg.Lifetime.compute p.Dfg.Problem.dfg in
  check_int "paulin registers (Table 3: 5)" 5 (Dfg.Lifetime.min_registers lt);
  check_int "paulin modules (Table 3: 4)" 4 (Dfg.Problem.n_modules p);
  check_bool "paulin has constants" true
    (Dfg.Graph.constants p.Dfg.Problem.dfg <> [])

let test_problem_candidates () =
  let p = Dfg.Benchmarks.paulin in
  (* op 0 is a multiplication: modules 0 and 1. *)
  Alcotest.(check (list int)) "mul candidates" [ 0; 1 ]
    (Dfg.Problem.candidates p 0);
  (* the comparison op (index 6) only fits the ALUs (modules 2, 3). *)
  Alcotest.(check (list int)) "cmp candidates" [ 2; 3 ]
    (Dfg.Problem.candidates p 6)

let test_problem_rejects_bad_allocation () =
  check_bool "tseng with only an adder is rejected" true
    (Result.is_error
       (Dfg.Problem.make g1 [ Dfg.Fu_kind.adder ]));
  (* fig1 has no concurrent adds, but two concurrent ops at step 1 (one add,
     one mul): one adder + one mul works; a single ALU does not support
     mul. *)
  check_bool "fig1 single alu rejected" true
    (Result.is_error (Dfg.Problem.make g1 [ Dfg.Fu_kind.alu ]))

(* -- Parser round-trip --------------------------------------------------- *)

let test_parse_roundtrip () =
  List.iter
    (fun (p : Dfg.Problem.t) ->
      let g = p.Dfg.Problem.dfg in
      let s = Dfg.Parse.to_string g in
      match Dfg.Parse.of_string s with
      | Error msg -> Alcotest.failf "roundtrip %s: %s" g.Dfg.Graph.name msg
      | Ok g' ->
          check_int "same vars" (Dfg.Graph.n_vars g) (Dfg.Graph.n_vars g');
          check_int "same ops" (Dfg.Graph.n_ops g) (Dfg.Graph.n_ops g');
          check_int "same steps" g.Dfg.Graph.n_steps g'.Dfg.Graph.n_steps;
          Alcotest.(check (list (triple int int int)))
            "same Ei" (Dfg.Graph.e_i g) (Dfg.Graph.e_i g');
          Alcotest.(check (list (triple int int int)))
            "same const edges"
            (Dfg.Graph.const_edges g)
            (Dfg.Graph.const_edges g'))
    [ Dfg.Benchmarks.fig1; Dfg.Benchmarks.tseng; Dfg.Benchmarks.paulin ]

let test_parse_errors () =
  let bad = [ "(dfg)"; "(dfg (name x) (op add (step 0) (in a b) (out c)))";
              "(dfg (name x) (inputs a a))"; "(nope)"; "((" ] in
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "reject %S" s) true
        (Result.is_error (Dfg.Parse.of_string s)))
    bad

let test_dot_export () =
  let dot = Dfg.Dot.to_string g1 in
  check_bool "mentions digraph" true
    (String.length dot > 20 && String.sub dot 0 8 = "digraph ");
  (* every op node appears *)
  List.iter
    (fun o ->
      let needle = Printf.sprintf "o%d [" o in
      let found =
        let rec search i =
          if i + String.length needle > String.length dot then false
          else if String.sub dot i (String.length needle) = needle then true
          else search (i + 1)
        in
        search 0
      in
      check_bool needle true found)
    [ 0; 1; 2; 3 ]

(* -- Op kinds ------------------------------------------------------------ *)

let test_op_kind_eval () =
  check_int "add wraps" 1 (Dfg.Op_kind.eval Dfg.Op_kind.Add ~width:8 255 2);
  check_int "sub wraps" 254 (Dfg.Op_kind.eval Dfg.Op_kind.Sub ~width:8 1 3);
  check_int "mul wraps" ((200 * 3) land 255)
    (Dfg.Op_kind.eval Dfg.Op_kind.Mul ~width:8 200 3);
  check_int "lt true" 1 (Dfg.Op_kind.eval Dfg.Op_kind.Lt ~width:8 3 200);
  check_int "lt false" 0 (Dfg.Op_kind.eval Dfg.Op_kind.Lt ~width:8 200 3)

let test_op_kind_names () =
  List.iter
    (fun k ->
      match Dfg.Op_kind.of_name (Dfg.Op_kind.name k) with
      | Some k' ->
          check_bool ("roundtrip " ^ Dfg.Op_kind.name k) true (Dfg.Op_kind.equal k k')
      | None -> Alcotest.failf "of_name failed for %s" (Dfg.Op_kind.name k))
    Dfg.Op_kind.all

(* -- Property-based ------------------------------------------------------ *)

(* Random scheduled DFGs: a chain/tree of ops over a few steps. *)
let gen_dfg =
  QCheck2.Gen.(
    let* n_inputs = int_range 2 5 in
    let* n_ops = int_range 1 10 in
    let* kinds =
      list_size (return n_ops)
        (oneofl [ Dfg.Op_kind.Add; Dfg.Op_kind.Sub; Dfg.Op_kind.Mul; Dfg.Op_kind.And ])
    in
    let* seeds = list_size (return (2 * n_ops)) (int_range 0 1000) in
    return (n_inputs, kinds, seeds))

let build_random (n_inputs, kinds, seeds) =
  let b = Dfg.Graph.Builder.create ~name:"rand" () in
  let seeds = Array.of_list seeds in
  let operands =
    ref (List.init n_inputs (fun i -> (Dfg.Graph.Builder.input b (Printf.sprintf "i%d" i), 0)))
  in
  let pick i =
    let arr = Array.of_list !operands in
    arr.(seeds.(i mod Array.length seeds) mod Array.length arr)
  in
  List.iteri
    (fun i k ->
      let a, sa = pick (2 * i) and c, sc = pick ((2 * i) + 1) in
      (* schedule after both sources are available *)
      let step = max sa sc in
      let out = Dfg.Graph.Builder.op b k ~step a c in
      operands := (out, step + 1) :: !operands)
    kinds;
  Dfg.Graph.Builder.build_exn b

let prop_crossing_consistent =
  QCheck2.Test.make ~name:"max crossing = max over boundaries" ~count:200
    gen_dfg (fun spec ->
      let g = build_random spec in
      let lt = Dfg.Lifetime.compute g in
      let explicit = ref 0 in
      for t = 0 to Dfg.Graph.n_boundaries g - 1 do
        explicit := max !explicit (List.length (Dfg.Lifetime.alive_on_boundary lt t))
      done;
      !explicit = Dfg.Lifetime.max_crossing lt)

let prop_compatible_symmetric =
  QCheck2.Test.make ~name:"compatibility is symmetric" ~count:200 gen_dfg
    (fun spec ->
      let g = build_random spec in
      let lt = Dfg.Lifetime.compute g in
      let nv = Dfg.Graph.n_vars g in
      let ok = ref true in
      for v = 0 to nv - 1 do
        for w = 0 to nv - 1 do
          if Dfg.Lifetime.compatible lt v w <> Dfg.Lifetime.compatible lt w v
          then ok := false
        done
      done;
      !ok)

let prop_compatible_matches_intervals =
  QCheck2.Test.make ~name:"compatible iff disjoint intervals" ~count:200
    gen_dfg (fun spec ->
      let g = build_random spec in
      let lt = Dfg.Lifetime.compute g in
      let nv = Dfg.Graph.n_vars g in
      let ok = ref true in
      for v = 0 to nv - 1 do
        for w = 0 to nv - 1 do
          if v <> w then begin
            let overlap = ref false in
            for t = 0 to Dfg.Graph.n_boundaries g - 1 do
              if Dfg.Lifetime.alive_at lt v t && Dfg.Lifetime.alive_at lt w t
              then overlap := true
            done;
            if Dfg.Lifetime.compatible lt v w = !overlap then ok := false
          end
        done
      done;
      !ok)

let prop_parse_roundtrip =
  QCheck2.Test.make ~name:"parser roundtrip on random DFGs" ~count:200 gen_dfg
    (fun spec ->
      let g = build_random spec in
      match Dfg.Parse.of_string (Dfg.Parse.to_string g) with
      | Error _ -> false
      | Ok g' ->
          Dfg.Graph.e_i g = Dfg.Graph.e_i g'
          && Dfg.Graph.e_o g = Dfg.Graph.e_o g'
          && g.Dfg.Graph.n_steps = g'.Dfg.Graph.n_steps)

let prop_builder_validates =
  QCheck2.Test.make ~name:"builder output passes validation" ~count:200
    gen_dfg (fun spec ->
      let g = build_random spec in
      match
        Dfg.Graph.v ~name:"re" ~n_steps:g.Dfg.Graph.n_steps
          g.Dfg.Graph.variables g.Dfg.Graph.operations
      with
      | Ok _ -> true
      | Error _ -> false)

let () =
  Alcotest.run "dfg"
    [
      ( "graph",
        [
          Alcotest.test_case "fig1 sets" `Quick test_fig1_sets;
          Alcotest.test_case "fig1 uses" `Quick test_fig1_uses;
          Alcotest.test_case "validation" `Quick test_validation_catches_errors;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "fig1 intervals" `Quick test_fig1_lifetimes;
          Alcotest.test_case "fig1 paper assignment" `Quick
            test_fig1_register_assignment_valid;
          Alcotest.test_case "fig1 crossing" `Quick test_fig1_crossing;
          Alcotest.test_case "fig1 min modules" `Quick test_fig1_min_modules;
          Alcotest.test_case "incompatibility" `Quick test_incompatibility;
          Alcotest.test_case "max clique" `Quick test_max_clique;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "tseng counts" `Quick test_tseng_counts;
          Alcotest.test_case "paulin counts" `Quick test_paulin_counts;
          Alcotest.test_case "candidates" `Quick test_problem_candidates;
          Alcotest.test_case "bad allocation" `Quick
            test_problem_rejects_bad_allocation;
        ] );
      ( "parse",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "dot" `Quick test_dot_export;
        ] );
      ( "op_kind",
        [
          Alcotest.test_case "eval" `Quick test_op_kind_eval;
          Alcotest.test_case "names" `Quick test_op_kind_names;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_crossing_consistent;
            prop_compatible_symmetric;
            prop_compatible_matches_intervals;
            prop_parse_roundtrip;
            prop_builder_validates;
          ] );
    ]
