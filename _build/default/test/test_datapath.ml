(* Tests for the datapath substrate: the Table 1 area model, netlist
   derivation from assignments (Fig. 1 is checked against the paper's
   interconnect), multiplexer statistics, cycle simulation vs the reference
   interpreter, and Verilog emission. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- Area model (Table 1) ------------------------------------------------ *)

let test_table1_registers () =
  check_int "Reg" 208 (Datapath.Area.register Datapath.Area.Plain);
  check_int "TPG" 256 (Datapath.Area.register Datapath.Area.Tpg);
  check_int "SR" 304 (Datapath.Area.register Datapath.Area.Sr);
  check_int "BILBO" 388 (Datapath.Area.register Datapath.Area.Bilbo);
  check_int "CBILBO" 596 (Datapath.Area.register Datapath.Area.Cbilbo)

let test_table1_muxes () =
  List.iter
    (fun (n, c) -> check_int (Printf.sprintf "mux %d" n) c (Datapath.Area.mux n))
    [ (0, 0); (1, 0); (2, 80); (3, 176); (4, 208); (5, 300); (6, 320); (7, 350) ];
  check_int "mux 8 extrapolated" (350 + 54) (Datapath.Area.mux 8);
  check_bool "monotone" true
    (let rec mono n =
       n > 16 || (Datapath.Area.mux n <= Datapath.Area.mux (n + 1) && mono (n + 1))
     in
     mono 0)

(* -- Fig. 1 netlist ------------------------------------------------------ *)

(* Paper assignment: R0={0,4}, R1={1,3,6}, R2={2,5,7}; M3=adder (our module
   0), M4=multiplier (our module 1). *)
let fig1_netlist () =
  let p = Dfg.Benchmarks.fig1 in
  let reg_of_var = [| 0; 1; 2; 1; 0; 2; 1; 2 |] in
  let module_of_op = [| 0; 0; 1; 1 |] in
  Datapath.Netlist.make_exn p ~reg_of_var ~module_of_op

let test_fig1_interconnect () =
  let d = fig1_netlist () in
  (* Expected wires: add ops: (v0@R0,o0.0) (v1@R1,o0.1) (v3@R1,o1.0)
     (v4@R0,o1.1); mul: (v4@R0,o2.0) (v2@R2,o2.1) (v5@R2,o3.0) (v6@R1,o3.1).
     So R->port: R0->M0.0? wait o0 port0 reads v0 in R0: (0,0,0);
     (1,0,1) v1@R1->M0.1; (1,0,0) v3@R1->M0.0; (0,0,1) v4@R0->M0.1;
     (0,1,0) v4->M1.0; (2,1,1) v2->M1.1; (2,1,0) v5->M1.0; (1,1,1) v6->M1.1 *)
  Alcotest.(check (list (triple int int int)))
    "reg->port wires"
    [ (0, 0, 0); (0, 0, 1); (0, 1, 0); (1, 0, 0); (1, 0, 1); (1, 1, 1);
      (2, 1, 0); (2, 1, 1) ]
    d.Datapath.Netlist.reg_to_port;
  (* module->reg: o0 out v4@R0: (0,0); o1 out v5@R2: (0,2); o2 out v6@R1:
     (1,1); o3 out v7@R2: (1,2) *)
  Alcotest.(check (list (pair int int)))
    "module->reg wires"
    [ (0, 0); (0, 2); (1, 1); (1, 2) ]
    d.Datapath.Netlist.module_to_reg

let test_fig1_fanins () =
  let d = fig1_netlist () in
  check_int "M0 port0 fanin (R0,R1)" 2 (Datapath.Netlist.port_fanin d 0 0);
  check_int "M0 port1 fanin (R0,R1)" 2 (Datapath.Netlist.port_fanin d 0 1);
  check_int "M1 port0 fanin (R0,R2)" 2 (Datapath.Netlist.port_fanin d 1 0);
  check_int "M1 port1 fanin (R1,R2)" 2 (Datapath.Netlist.port_fanin d 1 1);
  (* registers: R0 loads inputs + M0 output: 2; R1 loads inputs + M1: 2;
     R2 inputs + M0 + M1: 3 *)
  check_int "R0 fanin" 2 (Datapath.Netlist.reg_fanin d 0);
  check_int "R1 fanin" 2 (Datapath.Netlist.reg_fanin d 1);
  check_int "R2 fanin" 3 (Datapath.Netlist.reg_fanin d 2);
  check_int "total mux inputs" (2 + 2 + 2 + 2 + 2 + 2 + 3)
    (Datapath.Netlist.total_mux_inputs d);
  check_int "mux area" ((6 * Datapath.Area.mux 2) + Datapath.Area.mux 3)
    (Datapath.Netlist.mux_area d);
  check_int "reference area"
    ((3 * 208) + (6 * 80) + 176)
    (Datapath.Netlist.reference_area d)

let test_netlist_validation () =
  let p = Dfg.Benchmarks.fig1 in
  (* v3 and v4 overlap at boundary 1: same register is illegal *)
  check_bool "conflicting registers rejected" true
    (Result.is_error
       (Datapath.Netlist.make p ~reg_of_var:[| 0; 1; 2; 0; 0; 2; 1; 2 |]
          ~module_of_op:[| 0; 0; 1; 1 |]));
  (* mul op on the adder *)
  check_bool "bad binding rejected" true
    (Result.is_error
       (Datapath.Netlist.make p ~reg_of_var:[| 0; 1; 2; 1; 0; 2; 1; 2 |]
          ~module_of_op:[| 0; 0; 0; 1 |]));
  (* swapping a non-commutative op *)
  let p2 = Dfg.Benchmarks.paulin in
  let reg = Hls.Regalloc.allocate p2.Dfg.Problem.dfg in
  let binding =
    match Hls.Binder.bind p2 with Ok b -> b | Error e -> Alcotest.fail e
  in
  let swapped = Array.make (Dfg.Graph.n_ops p2.Dfg.Problem.dfg) false in
  (* op 9 of paulin is a subtraction *)
  swapped.(9) <- true;
  check_bool "swap of non-commutative rejected" true
    (Result.is_error
       (Datapath.Netlist.make ~swapped p2 ~reg_of_var:reg
          ~module_of_op:binding))

let test_constant_only_ports () =
  (* fir6 multiplies by constants; with the default (unswapped) wiring the
     multiplier's port 1 sees only constants. *)
  let p = Circuits.Suite.fir6 in
  let reg = Hls.Regalloc.allocate p.Dfg.Problem.dfg in
  let binding =
    match Hls.Binder.bind p with Ok b -> b | Error e -> Alcotest.fail e
  in
  let d = Datapath.Netlist.make_exn p ~reg_of_var:reg ~module_of_op:binding in
  check_bool "fir6 has a constant-only port" true
    (Datapath.Netlist.constant_only_ports d <> []);
  (* fig1 has none *)
  check_bool "fig1 has none" true
    (Datapath.Netlist.constant_only_ports (fig1_netlist ()) = [])

(* -- Simulation ---------------------------------------------------------- *)

let test_eval_dfg_fig1 () =
  let g = Dfg.Benchmarks.fig1.Dfg.Problem.dfg in
  let values =
    Datapath.Sim.eval_dfg g
      ~inputs:[ ("v0", 3); ("v1", 5); ("v2", 2); ("v3", 7) ]
  in
  (* v4 = 3+5 = 8; v5 = 7+8 = 15; v6 = 8*2 = 16; v7 = 15*16 = 240 *)
  check_int "v4" 8 values.(4);
  check_int "v5" 15 values.(5);
  check_int "v6" 16 values.(6);
  check_int "v7" 240 values.(7)

let test_sim_fig1 () =
  let d = fig1_netlist () in
  let inputs = [ ("v0", 3); ("v1", 5); ("v2", 2); ("v3", 7) ] in
  (match Datapath.Sim.run d ~inputs with
  | Error e -> Alcotest.fail e
  | Ok trace ->
      Alcotest.(check (list (pair string int)))
        "outputs" [ ("v7", 240) ] trace.Datapath.Sim.outputs);
  check_bool "agrees with interpreter" true (Datapath.Sim.agrees d ~inputs)

let test_sim_missing_input () =
  let d = fig1_netlist () in
  check_bool "missing input detected" true
    (Result.is_error (Datapath.Sim.run d ~inputs:[ ("v0", 1) ]))

let test_sim_whole_suite () =
  (* Left-edge + greedy binding must yield functionally correct datapaths on
     all six circuits. *)
  List.iteri
    (fun idx (name, (p : Dfg.Problem.t)) ->
      let g = p.Dfg.Problem.dfg in
      let reg = Hls.Regalloc.allocate g in
      let binding =
        match Hls.Binder.bind p with Ok b -> b | Error e -> Alcotest.fail e
      in
      let d = Datapath.Netlist.make_exn p ~reg_of_var:reg ~module_of_op:binding in
      let inputs =
        List.map
          (fun v ->
            ( (Dfg.Graph.variable g v).Dfg.Graph.var_name,
              (17 * (v + 1)) + idx ))
          (Dfg.Graph.primary_inputs g)
      in
      check_bool (name ^ " simulates correctly") true
        (Datapath.Sim.agrees d ~inputs))
    Circuits.Suite.all

(* -- Verilog ------------------------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_datapath_dot () =
  let d = fig1_netlist () in
  let plain = Datapath.Dot_dp.to_string d in
  check_bool "digraph" true (contains plain "digraph datapath");
  check_bool "register nodes" true (contains plain "r0 [label=\"R0\"");
  check_bool "module records" true (contains plain "shape=record");
  let kinds =
    [| Datapath.Area.Tpg; Datapath.Area.Bilbo; Datapath.Area.Sr |]
  in
  let coloured = Datapath.Dot_dp.to_string ~reg_kinds:kinds d in
  check_bool "kind label" true (contains coloured "BILBO");
  check_bool "kind colour" true (contains coloured "lightgreen")

let test_verilog () =
  let d = fig1_netlist () in
  let v = Datapath.Rtl.to_string d in
  check_bool "module header" true (contains v "module fig1");
  check_bool "endmodule" true (contains v "endmodule");
  check_bool "registers declared" true (contains v "reg [7:0] R0;");
  check_bool "fsm" true (contains v "step <= step + 1");
  check_bool "an output" true (contains v "out_v7")

(* -- Properties ---------------------------------------------------------- *)

let gen_inputs =
  QCheck2.Gen.(list_size (return 16) (int_range 0 255))

let prop_suite_simulation =
  QCheck2.Test.make ~name:"random inputs simulate correctly on all circuits"
    ~count:50 gen_inputs (fun raw ->
      let raw = Array.of_list raw in
      List.for_all
        (fun (_, (p : Dfg.Problem.t)) ->
          let g = p.Dfg.Problem.dfg in
          let reg = Hls.Regalloc.allocate g in
          match Hls.Binder.bind p with
          | Error _ -> false
          | Ok binding ->
              let d =
                Datapath.Netlist.make_exn p ~reg_of_var:reg
                  ~module_of_op:binding
              in
              let inputs =
                List.mapi
                  (fun i v ->
                    ( (Dfg.Graph.variable g v).Dfg.Graph.var_name,
                      raw.(i mod Array.length raw) ))
                  (Dfg.Graph.primary_inputs g)
              in
              Datapath.Sim.agrees d ~inputs)
        Circuits.Suite.all)

let () =
  Alcotest.run "datapath"
    [
      ( "area",
        [
          Alcotest.test_case "table1 registers" `Quick test_table1_registers;
          Alcotest.test_case "table1 muxes" `Quick test_table1_muxes;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "fig1 interconnect" `Quick test_fig1_interconnect;
          Alcotest.test_case "fig1 fanins" `Quick test_fig1_fanins;
          Alcotest.test_case "validation" `Quick test_netlist_validation;
          Alcotest.test_case "constant ports" `Quick test_constant_only_ports;
        ] );
      ( "sim",
        [
          Alcotest.test_case "eval fig1" `Quick test_eval_dfg_fig1;
          Alcotest.test_case "run fig1" `Quick test_sim_fig1;
          Alcotest.test_case "missing input" `Quick test_sim_missing_input;
          Alcotest.test_case "whole suite" `Quick test_sim_whole_suite;
        ] );
      ( "rtl",
        [
          Alcotest.test_case "verilog" `Quick test_verilog;
          Alcotest.test_case "dot" `Quick test_datapath_dot;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_suite_simulation ] );
    ]
