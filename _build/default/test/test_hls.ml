(* Tests for the HLS substrate (the HYPER substitute): kernel construction,
   CSE, ASAP/ALAP, list scheduling, register allocation, binding, and the
   generated benchmark suite. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- Kernel -------------------------------------------------------------- *)

let test_kernel_cse () =
  let open Hls.Kernel in
  let b = Build.create "cse" in
  let x = Build.input b "x" and y = Build.input b "y" in
  let a1 = Build.add b x y in
  let a2 = Build.add b y x in
  (* commutative normalized *)
  check_bool "commutative CSE" true (a1 = a2);
  let s1 = Build.sub b x y in
  let s2 = Build.sub b y x in
  check_bool "non-commutative distinct" true (s1 <> s2);
  let k =
    Build.output b "o" (Build.add b a1 s1);
    Build.finish b
  in
  check_int "nodes" 4 (n_ops k)

let test_kernel_counts () =
  check_int "fir6 muls" 4 (Hls.Kernel.op_count Hls.Kernel.fir6 Dfg.Op_kind.Mul);
  check_int "fir6 adds" 6 (Hls.Kernel.op_count Hls.Kernel.fir6 Dfg.Op_kind.Add);
  check_int "iir3 muls" 7 (Hls.Kernel.op_count Hls.Kernel.iir3 Dfg.Op_kind.Mul);
  check_int "dct4 muls" 6 (Hls.Kernel.op_count Hls.Kernel.dct4 Dfg.Op_kind.Mul);
  check_int "wavelet6 muls" 12
    (Hls.Kernel.op_count Hls.Kernel.wavelet6 Dfg.Op_kind.Mul)

let test_output_must_be_op () =
  let open Hls.Kernel in
  let b = Build.create "bad" in
  let x = Build.input b "x" in
  check_bool "raises" true
    (try
       Build.output b "o" x;
       false
     with Invalid_argument _ -> true)

(* -- Scheduling ---------------------------------------------------------- *)

let test_asap_alap () =
  let k = Hls.Kernel.fir6 in
  let asap = Hls.Schedule.asap k in
  let cp = Hls.Schedule.critical_path k in
  check_int "critical path" 4 cp;
  (* pre-adds at 0, mults at <=1... every node within [asap, alap] *)
  let alap = Hls.Schedule.alap k ~latency:cp in
  Array.iteri
    (fun i a -> check_bool (Printf.sprintf "asap<=alap %d" i) true (a <= alap.(i)))
    asap;
  check_bool "alap below latency" true
    (Array.for_all (fun t -> t < cp) alap);
  check_bool "tight latency raises" true
    (try
       ignore (Hls.Schedule.alap k ~latency:(cp - 1));
       true
     with Invalid_argument _ -> true)

let test_schedule_respects_resources () =
  List.iter
    (fun (name, (p : Dfg.Problem.t)) ->
      let g = p.Dfg.Problem.dfg in
      (* at every step, ops of each kind <= number of supporting modules;
         verified via greedy matching in Problem.make, which already ran.
         Here check precedence: every op reads values produced earlier. *)
      Array.iteri
        (fun _o (op : Dfg.Graph.operation) ->
          Array.iter
            (function
              | Dfg.Graph.Const _ -> ()
              | Dfg.Graph.Var v -> (
                  match Dfg.Graph.def_of g v with
                  | Dfg.Graph.Primary_input -> ()
                  | Dfg.Graph.Output_of o' ->
                      check_bool
                        (Printf.sprintf "%s: dep order" name)
                        true
                        ((Dfg.Graph.operation g o').Dfg.Graph.step < op.Dfg.Graph.step)))
            op.Dfg.Graph.inputs)
        g.Dfg.Graph.operations)
    Circuits.Suite.all

let test_suite_resource_counts () =
  let expect = [ ("tseng", 5, 3); ("paulin", 5, 4); ("fir6", 7, 3);
                 ("iir3", 6, 3); ("dct4", 6, 4); ("wavelet6", 8, 3) ] in
  List.iter
    (fun (name, regs, mods) ->
      match Circuits.Suite.find name with
      | None -> Alcotest.failf "missing circuit %s" name
      | Some p ->
          check_int (name ^ " registers") regs (Dfg.Problem.min_registers p);
          check_int (name ^ " modules") mods (Dfg.Problem.n_modules p))
    expect

let test_ewf_stress_circuit () =
  let p = Circuits.Suite.ewf in
  let g = p.Dfg.Problem.dfg in
  Alcotest.(check int) "ops" 26 (Dfg.Graph.n_ops g);
  Alcotest.(check int) "modules" 4 (Dfg.Problem.n_modules p);
  Alcotest.(check bool) "registers reasonable" true
    (Dfg.Problem.min_registers p >= 8);
  (* long dependence chain: critical path at least 14 *)
  Alcotest.(check bool) "deep critical path" true
    (Hls.Schedule.critical_path Hls.Kernel.ewf >= 14)

let test_suite_order () =
  Alcotest.(check (list string))
    "paper order"
    [ "tseng"; "paulin"; "fir6"; "iir3"; "dct4"; "wavelet6" ]
    (List.map fst Circuits.Suite.all)

(* -- ILP scheduling (exact oracle) ---------------------------------------- *)

let test_sched_ilp_matches_or_beats_list () =
  List.iter
    (fun (k, modules) ->
      match
        ( Hls.Sched_ilp.min_latency k ~modules,
          Hls.Schedule.list_schedule k ~modules )
      with
      | Ok exact, Ok heuristic ->
          let le = exact.Dfg.Problem.dfg.Dfg.Graph.n_steps in
          let lh = heuristic.Dfg.Problem.dfg.Dfg.Graph.n_steps in
          Alcotest.(check bool) "ILP latency <= list latency" true (le <= lh);
          Alcotest.(check bool) "ILP latency >= critical path" true
            (le >= Hls.Schedule.critical_path k)
      | Error msg, _ | _, Error msg -> Alcotest.fail msg)
    [
      (Hls.Kernel.fir6, [ Dfg.Fu_kind.multiplier; Dfg.Fu_kind.alu ]);
      (Hls.Kernel.iir3, [ Dfg.Fu_kind.multiplier; Dfg.Fu_kind.multiplier; Dfg.Fu_kind.alu ]);
      (Hls.Kernel.dct4, [ Dfg.Fu_kind.multiplier; Dfg.Fu_kind.alu ]);
    ]

let test_sched_ilp_feasibility_boundary () =
  (* below the critical path: trivially infeasible *)
  let k = Hls.Kernel.fir6 in
  let modules = [ Dfg.Fu_kind.multiplier; Dfg.Fu_kind.alu ] in
  (match Hls.Sched_ilp.feasible k ~modules ~latency:(Hls.Schedule.critical_path k - 1) with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "infeasible latency accepted"
  | Error msg -> Alcotest.fail msg);
  (* generous latency: always feasible *)
  match Hls.Sched_ilp.feasible k ~modules ~latency:(Hls.Kernel.n_ops k + 5) with
  | Ok (Some _) -> ()
  | Ok None -> Alcotest.fail "generous latency rejected"
  | Error msg -> Alcotest.fail msg

(* -- Allocation exploration ----------------------------------------------- *)

let test_allocate_required_classes () =
  let classes = Hls.Allocate.required_classes Hls.Kernel.fir6 in
  Alcotest.(check int) "two classes (alu + mul)" 2 (List.length classes)

let test_allocate_explore_fir6 () =
  let points = Hls.Allocate.explore ~max_per_class:2 Hls.Kernel.fir6 in
  Alcotest.(check int) "4 allocations" 4 (List.length points);
  List.iter
    (fun (p : Hls.Allocate.point) ->
      Alcotest.(check bool) "latency >= critical path" true
        (p.Hls.Allocate.latency >= Hls.Schedule.critical_path Hls.Kernel.fir6))
    points;
  (* the front is non-empty and contains the cheapest allocation *)
  let front = Hls.Allocate.pareto points in
  Alcotest.(check bool) "front non-empty" true (front <> []);
  Alcotest.(check bool) "cheapest on front" true
    (List.exists (fun (p : Hls.Allocate.point) -> p.Hls.Allocate.total_units = 2) front)

let test_allocate_cheapest_for_latency () =
  (* at the critical path, fir6 needs more than one unit of something *)
  let cp = Hls.Schedule.critical_path Hls.Kernel.fir6 in
  (match Hls.Allocate.cheapest_for_latency ~max_per_class:3 Hls.Kernel.fir6 ~latency:cp with
  | Ok p -> Alcotest.(check bool) "meets bound" true (p.Hls.Allocate.latency <= cp)
  | Error _ ->
      (* acceptable: the list scheduler may not reach the CP bound with <= 3
         units per class *)
      ());
  (* an impossible bound fails with a clear message *)
  Alcotest.(check bool) "impossible bound" true
    (Result.is_error
       (Hls.Allocate.cheapest_for_latency Hls.Kernel.fir6 ~latency:(cp - 1)))

let test_allocate_monotone_front () =
  let front = Hls.Allocate.pareto (Hls.Allocate.explore ~max_per_class:3 Hls.Kernel.wavelet6) in
  (* on a Pareto front sorted by units, latency strictly decreases *)
  let rec check = function
    | (a : Hls.Allocate.point) :: (b : Hls.Allocate.point) :: rest ->
        Alcotest.(check bool) "front shape" true
          (a.Hls.Allocate.total_units < b.Hls.Allocate.total_units
          && a.Hls.Allocate.latency > b.Hls.Allocate.latency);
        check (b :: rest)
    | [ _ ] | [] -> ()
  in
  check front

(* -- Register allocation ------------------------------------------------- *)

let test_left_edge_on_suite () =
  List.iter
    (fun (name, (p : Dfg.Problem.t)) ->
      let g = p.Dfg.Problem.dfg in
      let assignment = Hls.Regalloc.allocate g in
      check_bool (name ^ " legal") true (Hls.Regalloc.check g assignment = Ok ());
      check_int
        (name ^ " uses min registers")
        (Dfg.Problem.min_registers p)
        (Hls.Regalloc.n_registers assignment))
    Circuits.Suite.all

let test_left_edge_fig1 () =
  let g = Dfg.Benchmarks.fig1.Dfg.Problem.dfg in
  let a = Hls.Regalloc.allocate g in
  check_int "three registers" 3 (Hls.Regalloc.n_registers a);
  check_bool "legal" true (Hls.Regalloc.check g a = Ok ());
  (* check detects a broken assignment *)
  let bad = Array.make (Dfg.Graph.n_vars g) 0 in
  check_bool "detects conflicts" true (Result.is_error (Hls.Regalloc.check g bad))

(* -- Binding ------------------------------------------------------------- *)

let test_binder_on_suite () =
  List.iter
    (fun (name, p) ->
      match Hls.Binder.bind p with
      | Error msg -> Alcotest.failf "%s: %s" name msg
      | Ok binding ->
          check_bool (name ^ " binding legal") true
            (Hls.Binder.check p binding = Ok ()))
    Circuits.Suite.all

let test_binder_check_detects () =
  let p = Dfg.Benchmarks.fig1 in
  (* Both ops of step 1 on the same module: double-booked. *)
  check_bool "double booking" true
    (Result.is_error (Hls.Binder.check p [| 0; 0; 0; 1 |]));
  (* Add op on the multiplier: unsupported. *)
  check_bool "unsupported kind" true
    (Result.is_error (Hls.Binder.check p [| 1; 0; 1; 1 |]))

(* -- Properties ---------------------------------------------------------- *)

let gen_kernel =
  QCheck2.Gen.(
    let* n_inputs = int_range 2 4 in
    let* ops =
      list_size (int_range 1 12)
        (pair
           (oneofl [ Dfg.Op_kind.Add; Dfg.Op_kind.Sub; Dfg.Op_kind.Mul ])
           (pair (int_range 0 100) (int_range 0 100)))
    in
    return (n_inputs, ops))

let build_kernel (n_inputs, ops) =
  let open Hls.Kernel in
  let b = Build.create "rand" in
  let pool =
    ref (List.init n_inputs (fun i -> Build.input b (Printf.sprintf "i%d" i)))
  in
  List.iter
    (fun (kind, (sa, sb)) ->
      let arr = Array.of_list !pool in
      let x = arr.(sa mod Array.length arr) in
      let y = arr.(sb mod Array.length arr) in
      let r = Build.op b kind x y in
      pool := r :: !pool)
    ops;
  (match !pool with
  | r :: _ -> (try Build.output b "o" r with Invalid_argument _ -> ())
  | [] -> ());
  Build.finish b

let prop_schedule_legal =
  QCheck2.Test.make ~name:"list schedule produces valid problems" ~count:200
    gen_kernel (fun spec ->
      let k = build_kernel spec in
      if Hls.Kernel.n_ops k = 0 then true
      else
        match
          Hls.Schedule.list_schedule k
            ~modules:[ Dfg.Fu_kind.multiplier; Dfg.Fu_kind.alu ]
        with
        | Ok _ -> true
        | Error _ -> false)

let prop_regalloc_optimal =
  QCheck2.Test.make ~name:"left edge always hits max crossing" ~count:200
    gen_kernel (fun spec ->
      let k = build_kernel spec in
      if Hls.Kernel.n_ops k = 0 then true
      else
        match
          Hls.Schedule.list_schedule k
            ~modules:[ Dfg.Fu_kind.multiplier; Dfg.Fu_kind.alu ]
        with
        | Error _ -> false
        | Ok p ->
            let g = p.Dfg.Problem.dfg in
            let a = Hls.Regalloc.allocate g in
            Hls.Regalloc.check g a = Ok ()
            && Hls.Regalloc.n_registers a = Dfg.Problem.min_registers p)

let prop_sched_ilp_random =
  QCheck2.Test.make ~name:"ILP schedule valid and no worse than list" ~count:30
    gen_kernel (fun spec ->
      let k = build_kernel spec in
      if Hls.Kernel.n_ops k = 0 || Hls.Kernel.n_ops k > 10 then true
      else
        let modules = [ Dfg.Fu_kind.multiplier; Dfg.Fu_kind.alu ] in
        match
          ( Hls.Sched_ilp.min_latency ~time_limit:20.0 k ~modules,
            Hls.Schedule.list_schedule k ~modules )
        with
        | Ok exact, Ok heuristic ->
            exact.Dfg.Problem.dfg.Dfg.Graph.n_steps
            <= heuristic.Dfg.Problem.dfg.Dfg.Graph.n_steps
        | Error _, _ | _, Error _ -> false)

let prop_pressure_mode_legal =
  QCheck2.Test.make ~name:"pressure-aware schedule is valid too" ~count:100
    gen_kernel (fun spec ->
      let k = build_kernel spec in
      if Hls.Kernel.n_ops k = 0 then true
      else
        match
          Hls.Schedule.list_schedule ~minimize_pressure:true k
            ~modules:[ Dfg.Fu_kind.multiplier; Dfg.Fu_kind.alu ]
        with
        | Ok _ -> true
        | Error _ -> false)

let () =
  Alcotest.run "hls"
    [
      ( "kernel",
        [
          Alcotest.test_case "cse" `Quick test_kernel_cse;
          Alcotest.test_case "counts" `Quick test_kernel_counts;
          Alcotest.test_case "output validation" `Quick test_output_must_be_op;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "asap/alap" `Quick test_asap_alap;
          Alcotest.test_case "resources" `Quick test_schedule_respects_resources;
          Alcotest.test_case "suite counts" `Quick test_suite_resource_counts;
          Alcotest.test_case "ewf" `Quick test_ewf_stress_circuit;
          Alcotest.test_case "suite order" `Quick test_suite_order;
        ] );
      ( "sched_ilp",
        [
          Alcotest.test_case "beats list scheduler" `Quick
            test_sched_ilp_matches_or_beats_list;
          Alcotest.test_case "feasibility boundary" `Quick
            test_sched_ilp_feasibility_boundary;
        ] );
      ( "allocate",
        [
          Alcotest.test_case "required classes" `Quick test_allocate_required_classes;
          Alcotest.test_case "explore" `Quick test_allocate_explore_fir6;
          Alcotest.test_case "cheapest for latency" `Quick
            test_allocate_cheapest_for_latency;
          Alcotest.test_case "front shape" `Quick test_allocate_monotone_front;
        ] );
      ( "regalloc",
        [
          Alcotest.test_case "suite" `Quick test_left_edge_on_suite;
          Alcotest.test_case "fig1" `Quick test_left_edge_fig1;
        ] );
      ( "binder",
        [
          Alcotest.test_case "suite" `Quick test_binder_on_suite;
          Alcotest.test_case "detects" `Quick test_binder_check_detects;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_schedule_legal; prop_regalloc_optimal; prop_pressure_mode_legal;
            prop_sched_ilp_random ] );
    ]
