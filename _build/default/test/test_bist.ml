(* Tests for the BIST substrate: LFSR/MISR behaviour, gate-level module
   models vs the arithmetic reference, stuck-at fault simulation, plan
   validity rules (Eqs. 6-13), register-role derivation (Eqs. 14-23) and
   the Section 3.4 area accounting, plus executable test sessions. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- LFSR ---------------------------------------------------------------- *)

let test_lfsr_maximal_period () =
  List.iter
    (fun width ->
      let l = Bist.Lfsr.create ~width () in
      let seen = Hashtbl.create 300 in
      let rec count n =
        let s = Bist.Lfsr.step l in
        if Hashtbl.mem seen s then n
        else begin
          Hashtbl.add seen s ();
          count (n + 1)
        end
      in
      let period = count 0 in
      check_int
        (Printf.sprintf "width-%d period" width)
        (Bist.Lfsr.period ~width) period)
    [ 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let test_lfsr_never_zero () =
  let l = Bist.Lfsr.create ~width:8 () in
  for _ = 1 to 300 do
    check_bool "nonzero" true (Bist.Lfsr.step l <> 0)
  done

let test_lfsr_zero_seed () =
  let l = Bist.Lfsr.create ~seed:0 ~width:8 () in
  check_int "escapes zero" 1 (Bist.Lfsr.state l)

let test_lfsr_bad_width () =
  check_bool "width 1 rejected" true
    (try
       ignore (Bist.Lfsr.create ~width:1 ());
       false
     with Invalid_argument _ -> true)

let test_misr_sensitivity () =
  (* identical streams -> identical signatures; one changed word -> almost
     surely different *)
  let run responses =
    let m = Bist.Lfsr.create ~width:8 () in
    List.iter (Bist.Lfsr.misr_absorb m) responses;
    Bist.Lfsr.signature m
  in
  let stream = List.init 40 (fun i -> (i * 37) land 255) in
  check_int "deterministic" (run stream) (run stream);
  let corrupted = List.mapi (fun i x -> if i = 20 then x lxor 4 else x) stream in
  check_bool "corruption changes signature" true (run stream <> run corrupted)

(* -- Gates --------------------------------------------------------------- *)

let test_gates_match_arith () =
  List.iter
    (fun kind ->
      for a = 0 to 15 do
        for b = 0 to 15 do
          let c = Bist.Gates.build kind ~width:4 in
          check_int
            (Printf.sprintf "%s %d %d" (Dfg.Op_kind.name kind) a b)
            (Dfg.Op_kind.eval kind ~width:4 a b)
            (Bist.Gates.eval c ~a ~b)
        done
      done)
    Dfg.Op_kind.all

let prop_gates_8bit =
  QCheck2.Test.make ~name:"8-bit gate models match arithmetic" ~count:300
    QCheck2.Gen.(
      triple (oneofl Dfg.Op_kind.all) (int_range 0 255) (int_range 0 255))
    (fun (kind, a, b) ->
      let c = Bist.Gates.build kind ~width:8 in
      Bist.Gates.eval c ~a ~b = Dfg.Op_kind.eval kind ~width:8 a b)

(* -- Fault simulation ---------------------------------------------------- *)

let test_fault_list_size () =
  let c = Bist.Gates.build Dfg.Op_kind.Add ~width:4 in
  check_int "two faults per gate"
    (2 * Bist.Gates.n_gates c)
    (List.length (Bist.Fault_sim.faults c))

let test_adder_random_coverage () =
  let c = Bist.Gates.build Dfg.Op_kind.Add ~width:8 in
  let r = Bist.Fault_sim.random_pattern_coverage c ~n_patterns:255 () in
  check_bool "high coverage" true (Bist.Fault_sim.coverage r > 90.0);
  (* exhaustive patterns detect everything detectable; an 8-bit adder's
     stuck faults are all detectable except on constant tie cells *)
  check_bool "reasonable fault count" true (r.Bist.Fault_sim.n_faults > 50)

let test_single_pattern_low_coverage () =
  let c = Bist.Gates.build Dfg.Op_kind.Add ~width:8 in
  let one = Bist.Fault_sim.simulate c ~patterns:[ (1, 2) ] in
  let many = Bist.Fault_sim.random_pattern_coverage c ~n_patterns:200 () in
  check_bool "more patterns detect at least as much" true
    (many.Bist.Fault_sim.n_detected >= one.Bist.Fault_sim.n_detected)

let test_eval_faulty_differs () =
  let c = Bist.Gates.build Dfg.Op_kind.Add ~width:4 in
  (* stuck-at on an input gate must corrupt some addition *)
  let f = { Bist.Fault_sim.gate = 0; stuck_at = 1 } in
  let differs = ref false in
  for a = 0 to 15 do
    for b = 0 to 15 do
      if Bist.Fault_sim.eval_faulty c ~a ~b f <> Bist.Gates.eval c ~a ~b then
        differs := true
    done
  done;
  check_bool "fault observable" true !differs

(* -- Plans --------------------------------------------------------------- *)

(* Fig. 1 with the paper's register assignment. *)
let fig1_netlist () =
  Datapath.Netlist.make_exn Dfg.Benchmarks.fig1
    ~reg_of_var:[| 0; 1; 2; 1; 0; 2; 1; 2 |]
    ~module_of_op:[| 0; 0; 1; 1 |]

let fig1_plan_k1 () =
  Bist.Plan.make_exn (fig1_netlist ()) ~k:1 ~session_of_module:[| 0; 0 |]
    ~sr_of_module:[| 2; 1 |]
    ~tpg_of_port:[| [| 0; 1 |]; [| 0; 2 |] |]

let fig1_plan_k2 () =
  Bist.Plan.make_exn (fig1_netlist ()) ~k:2 ~session_of_module:[| 0; 1 |]
    ~sr_of_module:[| 2; 1 |]
    ~tpg_of_port:[| [| 0; 1 |]; [| 0; 2 |] |]

let test_plan_k1_kinds () =
  let plan = fig1_plan_k1 () in
  (* R0: TPG only; R1: TPG (M0.1) + SR (M1) same session -> CBILBO;
     R2: TPG (M1.1) + SR (M0) same session -> CBILBO *)
  Alcotest.(check (list string))
    "kinds"
    [ "TPG"; "CBILBO"; "CBILBO" ]
    (Array.to_list
       (Array.map Datapath.Area.reg_kind_name (Bist.Plan.reg_kinds plan)));
  let tp, sr, bi, cb = Bist.Plan.kind_counts plan in
  check_int "T" 1 tp;
  check_int "S" 0 sr;
  check_int "B" 0 bi;
  check_int "C" 2 cb;
  check_int "area" (256 + 596 + 596 + (6 * 80) + 176) (Bist.Plan.area plan)

let test_plan_k2_kinds () =
  let plan = fig1_plan_k2 () in
  (* R0: TPG both sessions; R1: TPG s0 + SR s1 -> BILBO; R2: SR s0 + TPG s1
     -> BILBO *)
  Alcotest.(check (list string))
    "kinds"
    [ "TPG"; "BILBO"; "BILBO" ]
    (Array.to_list
       (Array.map Datapath.Area.reg_kind_name (Bist.Plan.reg_kinds plan)));
  check_int "area" (256 + 388 + 388 + (6 * 80) + 176) (Bist.Plan.area plan);
  check_bool "k=2 cheaper than k=1" true
    (Bist.Plan.area plan < Bist.Plan.area (fig1_plan_k1 ()))

let test_plan_overhead () =
  let d = fig1_netlist () in
  let reference = Datapath.Netlist.reference_area d in
  check_int "reference" ((3 * 208) + (6 * 80) + 176) reference;
  let plan = fig1_plan_k2 () in
  Alcotest.(check (float 0.01))
    "overhead %"
    (100.0 *. float_of_int (Bist.Plan.area plan - reference)
    /. float_of_int reference)
    (Bist.Plan.overhead_pct plan ~reference)

let test_plan_validity_rules () =
  let d = fig1_netlist () in
  (* Eq. 6: M1 (multiplier) never writes R0 *)
  check_bool "SR without wire rejected" true
    (Result.is_error
       (Bist.Plan.make d ~k:1 ~session_of_module:[| 0; 0 |]
          ~sr_of_module:[| 2; 0 |]
          ~tpg_of_port:[| [| 0; 1 |]; [| 0; 2 |] |]));
  (* Eq. 8: R2 as SR of both modules in one session *)
  check_bool "shared SR in session rejected" true
    (Result.is_error
       (Bist.Plan.make d ~k:1 ~session_of_module:[| 0; 0 |]
          ~sr_of_module:[| 2; 2 |]
          ~tpg_of_port:[| [| 0; 1 |]; [| 0; 2 |] |]));
  (* ... but fine in separate sessions *)
  check_bool "shared SR across sessions allowed" true
    (Result.is_ok
       (Bist.Plan.make d ~k:2 ~session_of_module:[| 0; 1 |]
          ~sr_of_module:[| 2; 2 |]
          ~tpg_of_port:[| [| 0; 1 |]; [| 0; 2 |] |]));
  (* Eq. 9: R2 does not feed M0 port 0 *)
  check_bool "TPG without wire rejected" true
    (Result.is_error
       (Bist.Plan.make d ~k:1 ~session_of_module:[| 0; 0 |]
          ~sr_of_module:[| 2; 1 |]
          ~tpg_of_port:[| [| 2; 1 |]; [| 0; 2 |] |]));
  (* Eq. 13: same TPG on both ports of M0 *)
  check_bool "shared TPG on one module rejected" true
    (Result.is_error
       (Bist.Plan.make d ~k:1 ~session_of_module:[| 0; 0 |]
          ~sr_of_module:[| 2; 1 |]
          ~tpg_of_port:[| [| 0; 0 |]; [| 0; 2 |] |]));
  (* dedicated TPG on a port with register sources *)
  check_bool "extra-path TPG rejected" true
    (Result.is_error
       (Bist.Plan.make d ~k:1 ~session_of_module:[| 0; 0 |]
          ~sr_of_module:[| 2; 1 |]
          ~tpg_of_port:[| [| -1; 1 |]; [| 0; 2 |] |]));
  (* empty sub-sessions are legal (a k-session plan may use fewer) *)
  check_bool "empty trailing session allowed" true
    (Result.is_ok
       (Bist.Plan.make d ~k:2 ~session_of_module:[| 0; 0 |]
          ~sr_of_module:[| 2; 1 |]
          ~tpg_of_port:[| [| 0; 1 |]; [| 0; 2 |] |]));
  (* out-of-range session id *)
  check_bool "session out of range rejected" true
    (Result.is_error
       (Bist.Plan.make d ~k:2 ~session_of_module:[| 0; 2 |]
          ~sr_of_module:[| 2; 1 |]
          ~tpg_of_port:[| [| 0; 1 |]; [| 0; 2 |] |]))

let test_constant_tpg_accounting () =
  (* dct4 with default wiring has constant-only multiplier ports; build a
     plan through left-edge + greedy and count dedicated TPGs *)
  let p = Circuits.Suite.dct4 in
  let g = p.Dfg.Problem.dfg in
  let reg = Hls.Regalloc.allocate g in
  let binding =
    match Hls.Binder.bind p with Ok b -> b | Error e -> Alcotest.fail e
  in
  let d = Datapath.Netlist.make_exn p ~reg_of_var:reg ~module_of_op:binding in
  let const_ports = Datapath.Netlist.constant_only_ports d in
  check_bool "dct4 has constant-only ports" true (const_ports <> []);
  check_bool "plan area charges constant TPGs" true
    ((* area with dedicated generators exceeds pure register+mux area *)
     let n = List.length const_ports in
     n * Datapath.Area.constant_tpg > 0)

(* -- Sessions ------------------------------------------------------------ *)

let test_session_signatures_deterministic () =
  let plan = fig1_plan_k2 () in
  let s1 = Bist.Session.golden plan ~n_patterns:100 in
  let s2 = Bist.Session.golden plan ~n_patterns:100 in
  check_bool "repeatable" true (s1 = s2);
  check_int "one signature per module mode" 2 (List.length s1)

let test_session_detects_faults () =
  let plan = fig1_plan_k2 () in
  (* inject a few faults into the adder; most must shift the signature *)
  let c = Bist.Gates.build Dfg.Op_kind.Add ~width:8 in
  let faults = Bist.Fault_sim.faults c in
  let sample = List.filteri (fun i _ -> i mod 17 = 0) faults in
  let detected =
    List.length
      (List.filter
         (fun f ->
           Bist.Session.detects plan ~module_:0 ~kind:Dfg.Op_kind.Add f
             ~n_patterns:120)
         sample)
  in
  check_bool "most faults shift the signature" true
    (float_of_int detected >= 0.8 *. float_of_int (List.length sample))

let test_session_coverage_api () =
  let plan = fig1_plan_k2 () in
  let r =
    Bist.Session.session_coverage plan ~module_:0 ~kind:Dfg.Op_kind.Add
      ~n_patterns:64
  in
  check_bool "coverage in range" true
    (Bist.Fault_sim.coverage r >= 0.0 && Bist.Fault_sim.coverage r <= 100.0);
  check_bool "nontrivial detection" true (r.Bist.Fault_sim.n_detected > 0)

(* -- Test time ------------------------------------------------------------ *)

let test_time_tradeoff () =
  let p1 = fig1_plan_k1 () and p2 = fig1_plan_k2 () in
  let t1 = Bist.Test_time.estimate p1 and t2 = Bist.Test_time.estimate p2 in
  check_int "k=1 uses one session" 1 t1.Bist.Test_time.sessions_used;
  check_int "k=2 uses two sessions" 2 t2.Bist.Test_time.sessions_used;
  check_bool "fewer sessions test faster" true
    (t1.Bist.Test_time.cycles < t2.Bist.Test_time.cycles);
  check_bool "area/time trade-off" true
    (Bist.Plan.area p1 > Bist.Plan.area p2);
  (* both plans are Pareto-optimal: cheaper-but-slower vs dearer-but-faster *)
  let front = Bist.Test_time.pareto [ (1, p1); (2, p2) ] in
  check_int "both on the front" 2 (List.length front)

let test_time_empty_sessions_skipped () =
  (* a k=2 plan using only session 0 counts one session *)
  let d = fig1_netlist () in
  let plan =
    Bist.Plan.make_exn d ~k:2 ~session_of_module:[| 0; 0 |]
      ~sr_of_module:[| 2; 1 |]
      ~tpg_of_port:[| [| 0; 1 |]; [| 0; 2 |] |]
  in
  let t = Bist.Test_time.estimate plan in
  check_int "one used session" 1 t.Bist.Test_time.sessions_used

let test_pareto_dominance () =
  let p1 = fig1_plan_k1 () in
  (* duplicating a plan: the duplicate is not strictly dominated, both kept;
     a plan dominated on both axes is dropped *)
  let front = Bist.Test_time.pareto [ (1, p1); (1, p1) ] in
  check_int "ties kept" 2 (List.length front)

(* -- Controller ----------------------------------------------------------- *)

let test_controller_schedule_matches_kinds () =
  let plan = fig1_plan_k2 () in
  let steps = Bist.Controller.schedule plan in
  check_int "two steps" 2 (List.length steps);
  (* a register never in Normal mode across all sessions where it serves,
     and the per-session modes agree with the plan's roles: session 0 tests
     M0 (SR=R2, TPGs R0,R1); session 1 tests M1 (SR=R1... wait: plan k2:
     sr = [|2;1|]? fig1_plan_k2 uses sr_of_module [|2;1|], tpg
     [| [|0;1|]; [|0;2|] |] *)
  (match steps with
  | [ s0; s1 ] ->
      check_int "session ids" 0 s0.Bist.Controller.session;
      check_int "session ids" 1 s1.Bist.Controller.session;
      Alcotest.(check (list string))
        "session 0 modes"
        [ "TPG"; "TPG"; "MISR" ]
        (Array.to_list (Array.map Bist.Controller.mode_name s0.Bist.Controller.modes));
      Alcotest.(check (list string))
        "session 1 modes"
        [ "TPG"; "MISR"; "TPG" ]
        (Array.to_list (Array.map Bist.Controller.mode_name s1.Bist.Controller.modes))
  | _ -> Alcotest.fail "expected two steps");
  (* CBILBO case: k=1 plan has R1, R2 doing both *)
  let steps1 = Bist.Controller.schedule (fig1_plan_k1 ()) in
  match steps1 with
  | [ s ] ->
      Alcotest.(check (list string))
        "k=1 concurrent modes"
        [ "TPG"; "both"; "both" ]
        (Array.to_list (Array.map Bist.Controller.mode_name s.Bist.Controller.modes))
  | _ -> Alcotest.fail "expected one step"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_controller_verilog () =
  let v = Bist.Controller.to_verilog (fig1_plan_k2 ()) in
  check_bool "module" true (contains v "module bist_controller");
  check_bool "mode ports" true (contains v "mode_r2");
  check_bool "pattern counter" true (contains v "pattern_cnt");
  check_bool "done" true (contains v "done_o <= 1");
  check_bool "endmodule" true (contains v "endmodule")

let test_controller_summary () =
  let s = Bist.Controller.summary (fig1_plan_k2 ()) in
  check_bool "mentions sessions" true (contains s "session 0");
  check_bool "mentions MISR" true (contains s "MISR")

(* -- Diagnosis ------------------------------------------------------------ *)

let test_diagnosis_dictionary () =
  let c = Bist.Gates.build Dfg.Op_kind.Add ~width:4 in
  let d = Bist.Diagnosis.build c ~seed_a:1 ~seed_b:7 ~misr_seed:1 ~n_patterns:15 in
  check_int "covers all faults" (List.length (Bist.Fault_sim.faults c))
    (Bist.Diagnosis.n_faults d);
  (* every detected fault's diagnosis class contains the fault itself *)
  List.iter
    (fun f ->
      let cls =
        Bist.Diagnosis.diagnose d c f ~seed_a:1 ~seed_b:7 ~misr_seed:1
          ~n_patterns:15
      in
      check_bool "true fault in its class" true (List.mem f cls))
    (Bist.Diagnosis.detected_faults d);
  check_bool "most faults detected" true
    (List.length (Bist.Diagnosis.detected_faults d)
    > Bist.Diagnosis.n_faults d / 2);
  check_bool "ambiguity sane" true (Bist.Diagnosis.ambiguity d >= 1.0);
  check_bool "unknown signature -> no candidates" true
    (Bist.Diagnosis.lookup d 0xdead = []
    || Bist.Diagnosis.lookup d 0xbeef = [] (* 4-bit sigs: one may collide *))

let test_diagnosis_golden_lookup () =
  let c = Bist.Gates.build Dfg.Op_kind.And ~width:4 in
  let d = Bist.Diagnosis.build c ~seed_a:1 ~seed_b:5 ~misr_seed:1 ~n_patterns:15 in
  (* looking up the golden signature yields exactly the undetected faults *)
  let aliased = Bist.Diagnosis.lookup d (Bist.Diagnosis.golden d) in
  let detected = Bist.Diagnosis.detected_faults d in
  check_int "partition" (Bist.Diagnosis.n_faults d)
    (List.length aliased + List.length detected)

let test_diagnosis_more_patterns_sharper () =
  let c = Bist.Gates.build Dfg.Op_kind.Add ~width:8 in
  let det n =
    let d = Bist.Diagnosis.build c ~seed_a:1 ~seed_b:7 ~misr_seed:1 ~n_patterns:n in
    List.length (Bist.Diagnosis.detected_faults d)
  in
  check_bool "more patterns detect at least as much" true (det 64 >= det 4)

let () =
  Alcotest.run "bist"
    [
      ( "lfsr",
        [
          Alcotest.test_case "maximal period" `Quick test_lfsr_maximal_period;
          Alcotest.test_case "never zero" `Quick test_lfsr_never_zero;
          Alcotest.test_case "zero seed" `Quick test_lfsr_zero_seed;
          Alcotest.test_case "bad width" `Quick test_lfsr_bad_width;
          Alcotest.test_case "misr sensitivity" `Quick test_misr_sensitivity;
        ] );
      ( "gates",
        [
          Alcotest.test_case "4-bit exhaustive" `Quick test_gates_match_arith;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_gates_8bit ] );
      ( "fault_sim",
        [
          Alcotest.test_case "fault list" `Quick test_fault_list_size;
          Alcotest.test_case "adder coverage" `Quick test_adder_random_coverage;
          Alcotest.test_case "monotone" `Quick test_single_pattern_low_coverage;
          Alcotest.test_case "eval faulty" `Quick test_eval_faulty_differs;
        ] );
      ( "plan",
        [
          Alcotest.test_case "k=1 kinds" `Quick test_plan_k1_kinds;
          Alcotest.test_case "k=2 kinds" `Quick test_plan_k2_kinds;
          Alcotest.test_case "overhead" `Quick test_plan_overhead;
          Alcotest.test_case "validity rules" `Quick test_plan_validity_rules;
          Alcotest.test_case "constant TPGs" `Quick test_constant_tpg_accounting;
        ] );
      ( "session",
        [
          Alcotest.test_case "deterministic" `Quick
            test_session_signatures_deterministic;
          Alcotest.test_case "detects faults" `Quick test_session_detects_faults;
          Alcotest.test_case "coverage api" `Quick test_session_coverage_api;
        ] );
      ( "test_time",
        [
          Alcotest.test_case "trade-off" `Quick test_time_tradeoff;
          Alcotest.test_case "empty sessions" `Quick
            test_time_empty_sessions_skipped;
          Alcotest.test_case "pareto" `Quick test_pareto_dominance;
        ] );
      ( "controller",
        [
          Alcotest.test_case "schedule" `Quick
            test_controller_schedule_matches_kinds;
          Alcotest.test_case "verilog" `Quick test_controller_verilog;
          Alcotest.test_case "summary" `Quick test_controller_summary;
        ] );
      ( "diagnosis",
        [
          Alcotest.test_case "dictionary" `Quick test_diagnosis_dictionary;
          Alcotest.test_case "golden lookup" `Quick test_diagnosis_golden_lookup;
          Alcotest.test_case "pattern count" `Quick
            test_diagnosis_more_patterns_sharper;
        ] );
    ]
