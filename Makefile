# Convenience targets around dune.

.PHONY: all build test bench bench-json ci clean

all: build

build:
	dune build

test:
	dune runtest

# Full paper-table benchmark (long; budget in seconds via ADVBIST_BENCH_BUDGET).
bench:
	dune exec bench/main.exe -- all

# Machine-readable solver perf snapshot for CI trend tracking: per-circuit,
# per-k wall time / node counts / optimality flags at a tight 2 s budget.
# Writes BENCH_solver.json in the repo root (override: ADVBIST_BENCH_JSON).
bench-json:
	ADVBIST_BENCH_BUDGET=2 ADVBIST_BENCH_JSON=$(CURDIR)/BENCH_solver.json \
		dune exec bench/main.exe -- json

# Fast gate for every change: build, unit tests, and a bench smoke that
# asserts the solver still proves tseng k=1 optimal at the 2 s budget and
# that no (circuit, k) row's design area regressed vs the committed
# BENCH_solver.json, so bounding-strength and warm-start regressions fail
# CI immediately (~1 min: it re-runs every committed sweep at 2 s/ILP).
ci: build test
	ADVBIST_BENCH_BUDGET=2 dune exec bench/main.exe -- smoke

clean:
	dune clean
