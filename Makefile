# Convenience targets around dune.

.PHONY: all build test bench bench-json bench-diff perf ci clean

all: build

build:
	dune build

test:
	dune runtest

# Full paper-table benchmark (long; budget in seconds via ADVBIST_BENCH_BUDGET).
bench:
	dune exec bench/main.exe -- all

# Machine-readable solver perf snapshot for CI trend tracking: per-circuit,
# per-k wall time / node counts / optimality flags at a tight 2 s budget.
# Writes BENCH_solver.json in the repo root (override: ADVBIST_BENCH_JSON).
bench-json:
	ADVBIST_BENCH_BUDGET=2 ADVBIST_BENCH_JSON=$(CURDIR)/BENCH_solver.json \
		dune exec bench/main.exe -- json

# Bench regression diff: run the smoke sweep at the committed 2 s budget,
# write a fresh schema-v5 snapshot to _build/bench_smoke.json, then diff it
# against the committed BENCH_solver.json.  Exits non-zero when any
# (circuit, k) row's design area regressed or proven optimality was lost;
# node-count (localized to the prune reason whose share moved) / waste /
# gap / time / phase-share drift is reported as warnings.  The full report
# lands in _build/bench_diff.txt; the tseng k=1 smoke run also leaves its
# JSONL search trace (_build/bench_smoke_trace.jsonl) and Ilp.Replay
# post-mortem (_build/bench_smoke_explain.txt) behind for CI upload.
bench-diff:
	ADVBIST_BENCH_BUDGET=2 \
	ADVBIST_BENCH_JSON_OUT=$(CURDIR)/_build/bench_smoke.json \
	ADVBIST_BENCH_TRACE_OUT=$(CURDIR)/_build/bench_smoke_trace.jsonl \
	ADVBIST_BENCH_EXPLAIN_OUT=$(CURDIR)/_build/bench_smoke_explain.txt \
		dune exec bench/main.exe -- smoke
	ADVBIST_BENCH_DIFF_OUT=$(CURDIR)/_build/bench_diff.txt \
		dune exec bench/main.exe -- diff \
			$(CURDIR)/BENCH_solver.json $(CURDIR)/_build/bench_smoke.json

# Kernel micro-benchmark: simplex re-solve iterations/s and propagation
# fixpoint sweeps/s on a fixed instance (tseng k=1).  Non-gating — rates
# are machine-dependent — but the report is kept in _build/perf_micro.txt
# so CI can upload it next to bench_diff.txt for trend eyeballing.
perf:
	dune exec bench/main.exe -- perf | tee $(CURDIR)/_build/perf_micro.txt

# Fast gate for every change: build, unit tests, then the bench smoke +
# regression diff above — the smoke asserts the solver still proves tseng
# k=1 optimal at the 2 s budget and that no (circuit, k) row's design area
# regressed vs the committed BENCH_solver.json, and the diff report
# classifies every other drift (~1 min: it re-runs every committed sweep
# at 2 s/ILP).  The perf micro-rates ride along non-gating (`|| true`
# lives in the CI step, not here, so interactive `make perf` still
# reports failures).
ci: build test bench-diff

clean:
	dune clean
