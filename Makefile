# Convenience targets around dune.

.PHONY: all build test bench bench-json clean

all: build

build:
	dune build

test:
	dune runtest

# Full paper-table benchmark (long; budget in seconds via ADVBIST_BENCH_BUDGET).
bench:
	dune exec bench/main.exe -- all

# Machine-readable solver perf snapshot for CI trend tracking: per-circuit,
# per-k wall time / node counts / optimality flags at a tight 2 s budget.
# Writes BENCH_solver.json in the repo root (override: ADVBIST_BENCH_JSON).
bench-json:
	ADVBIST_BENCH_BUDGET=2 ADVBIST_BENCH_JSON=$(CURDIR)/BENCH_solver.json \
		dune exec bench/main.exe -- json

clean:
	dune clean
